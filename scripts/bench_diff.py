#!/usr/bin/env python3
"""Diff a fresh bench --json run against a committed BENCH_*.json baseline.

The repo tracks performance per PR through committed JSON baselines
(BENCH_ingest.json). bench_to_json.py guarantees each document is
well-formed; this tool compares two of them and turns the comparison into
a CI gate plus a human trend table:

  * Schema drift is a hard failure (exit 2): a table, column or row that
    exists in the baseline but not in the fresh run means the bench
    silently stopped measuring something — exactly the regression a
    committed baseline exists to catch. A baseline-numeric cell that
    comes back non-numeric (crash garbage, "-") fails the same way.
    New tables/columns/rows in the fresh run are reported, not failed:
    growth is how the baseline evolves.
  * Metric drift prints as a per-metric trend table with relative deltas.
    By default every metric is warn-only, because CI runs the benches at
    a tiny FARMER_BENCH_SCALE where absolute numbers are incomparable
    with the committed full-scale baseline.
  * --hard REGEX promotes metrics (matched as "table:row:column") to hard
    failures (exit 1) when |relative delta| exceeds --tolerance. Use this
    when both documents were produced at the same scale (e.g. comparing
    consecutive PRs' committed baselines).
  * --hard-min TABLE:COLUMN=VALUE enforces a scale-independent floor: the
    named column must stay >= VALUE in every row. This is the CI gate for
    ratio metrics ("publish_cost:speedup=1.0" pins "COW publish beats the
    deep copy it replaced" at any scale).
  * --hard-row-ratio "TABLE:ROWA/ROWB:COLUMN>=VALUE" enforces a
    scale-independent *relative* gate inside the fresh run alone: the
    column's value in row ROWA divided by its value in row ROWB must be
    >= VALUE. This is the CI gate for same-binary speedup claims
    ("parallel_apply:sharded x4/sharded x1:records/s>=0.8" pins "the
    parallel apply path is never meaningfully slower than serial") where
    the absolute numbers depend on machine and scale but the ratio does
    not. A missing table, row or column is a schema failure unless the
    whole table was skipped under --allow-new-tables.
  * --allow-new-tables downgrades "whole table in the baseline but not in
    the fresh run" from a hard failure to a warn row, so the commit that
    introduces a table (baseline regenerated, older branches' binaries
    unaware of it) does not wedge every other branch's CI. Removed or
    renamed *columns* inside a shared table still fail — that is silent
    measurement loss, not growth.

Usage:
    scripts/bench_diff.py --baseline BENCH_ingest.json \
        --fresh /tmp/ingest_smoke.json --tolerance 0.5 \
        --hard-min publish_cost:speedup=1.0

Exit status: 0 OK (warnings allowed), 1 hard metric regression,
2 schema violation / malformed input. Stdlib only — no pip dependencies.
"""

from __future__ import annotations

import argparse
import json
import re
import sys


def fail(msg: str) -> "NoReturn":  # noqa: F821 (py3.8-friendly annotation)
    print(f"bench_diff: SCHEMA: {msg}", file=sys.stderr)
    raise SystemExit(2)


def load_tables(path: str) -> "dict[str, dict]":
    """Loads a table-bench JSON document, keyed by table name."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"malformed JSON in {path}: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("tables"), list):
        fail(f"{path}: not a table-bench document (missing 'tables')")
    tables = {}
    for i, table in enumerate(doc["tables"]):
        if not isinstance(table, dict) or "name" not in table:
            fail(f"{path}: tables[{i}] has no name")
        for key in ("columns", "rows"):
            if not isinstance(table.get(key), list):
                fail(f"{path}: table {table['name']!r} missing {key!r}")
        tables[table["name"]] = table
    if not tables:
        fail(f"{path}: no tables")
    return tables


NUMBER = re.compile(r"^-?\d+(?:\.\d+)?(?:[x%])?$")


def parse_cell(cell: str) -> "float | None":
    """Numeric value of a cell, tolerating the benches' 'x'/'%' suffixes."""
    cell = cell.strip().replace(",", "")
    if not NUMBER.match(cell):
        return None
    return float(cell.rstrip("x%"))


def parse_hard_min(spec: str) -> "tuple[str, str, float]":
    try:
        target, value = spec.rsplit("=", 1)
        table, column = target.split(":", 1)
        return table, column, float(value)
    except ValueError:
        raise SystemExit(f"bench_diff: bad --hard-min {spec!r} "
                         "(expected TABLE:COLUMN=VALUE)")


def parse_hard_row_ratio(spec: str) -> "tuple[str, str, str, str, float]":
    try:
        target, value = spec.rsplit(">=", 1)
        table, rows, column = target.split(":", 2)
        row_a, row_b = rows.split("/")
        return table, row_a, row_b, column, float(value)
    except ValueError:
        raise SystemExit(f"bench_diff: bad --hard-row-ratio {spec!r} "
                         "(expected TABLE:ROWA/ROWB:COLUMN>=VALUE)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="fresh bench_to_json.py output to compare")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative drift allowed on --hard metrics "
                        "(default 0.25 = 25%%)")
    parser.add_argument("--hard", action="append", default=[],
                        metavar="REGEX",
                        help="metrics (table:row:column) whose drift beyond "
                        "--tolerance fails the run (repeatable; default: "
                        "every metric is warn-only)")
    parser.add_argument("--hard-min", action="append", default=[],
                        metavar="TABLE:COLUMN=VALUE",
                        help="scale-independent floor: the column must stay "
                        ">= VALUE in every row (repeatable)")
    parser.add_argument("--hard-row-ratio", action="append", default=[],
                        metavar="TABLE:ROWA/ROWB:COLUMN>=VALUE",
                        help="relative gate inside the fresh run: the "
                        "column's ROWA value divided by its ROWB value must "
                        "be >= VALUE (repeatable; scale-independent)")
    parser.add_argument("--allow-new-tables", action="store_true",
                        help="a whole table present in the baseline but "
                        "absent from the fresh run warns instead of failing "
                        "(for the commit that introduces a table: the "
                        "baseline already has it while older branches' "
                        "binaries do not). Removed or renamed columns "
                        "inside a table still fail")
    args = parser.parse_args()

    base_tables = load_tables(args.baseline)
    fresh_tables = load_tables(args.fresh)
    hard = [re.compile(p) for p in args.hard]
    floors = [parse_hard_min(s) for s in args.hard_min]
    floor_hits = {i: 0 for i in range(len(floors))}

    rows_out = []  # (metric, base, fresh, delta_str, status)
    hard_failures = []
    skipped_tables = set()  # baseline-only tables under --allow-new-tables

    for name, base in base_tables.items():
        fresh = fresh_tables.get(name)
        if fresh is None:
            if args.allow_new_tables:
                rows_out.append((f"{name}:*:*", "(baseline only)", "-", "-",
                                 "warn"))
                skipped_tables.add(name)
                continue
            fail(f"table {name!r} missing from fresh run")
        if fresh["columns"] != base["columns"]:
            fail(f"table {name!r} columns changed: baseline "
                 f"{base['columns']} vs fresh {fresh['columns']}")
        if len(fresh["rows"]) < len(base["rows"]):
            fail(f"table {name!r} lost rows: baseline has "
                 f"{len(base['rows'])}, fresh has {len(fresh['rows'])}")
        for r, (brow, frow) in enumerate(zip(base["rows"], fresh["rows"])):
            if len(brow) != len(base["columns"]) or \
                    len(frow) != len(base["columns"]):
                fail(f"table {name!r} row {r} has the wrong cell count")
            label = brow[0]
            if frow[0] != label:
                fail(f"table {name!r} row {r} label changed: "
                     f"{label!r} -> {frow[0]!r}")
            for c, column in enumerate(base["columns"]):
                bval = parse_cell(brow[c])
                if bval is None:
                    continue  # label / "-" cell in the baseline
                fval = parse_cell(frow[c])
                metric = f"{name}:{label}:{column}"
                if fval is None:
                    fail(f"metric {metric} was numeric in the baseline "
                         f"({brow[c]!r}) but not in the fresh run "
                         f"({frow[c]!r})")
                for i, (ftable, fcolumn, floor) in enumerate(floors):
                    if name == ftable and column == fcolumn:
                        floor_hits[i] += 1
                        if fval < floor:
                            hard_failures.append(
                                f"{metric} = {fval} below floor {floor}")
                delta = ((fval - bval) / abs(bval)) if bval else \
                    (0.0 if fval == 0 else float("inf"))
                is_hard = any(p.search(metric) for p in hard)
                within = abs(delta) <= args.tolerance
                status = "ok" if within else \
                    ("FAIL" if is_hard else "warn")
                if is_hard and not within:
                    hard_failures.append(
                        f"{metric}: {bval} -> {fval} "
                        f"({delta:+.1%} > ±{args.tolerance:.0%})")
                rows_out.append((metric, brow[c], frow[c],
                                 f"{delta:+.1%}", status))
        for extra in fresh["rows"][len(base["rows"]):]:
            if not isinstance(extra, list) or \
                    len(extra) != len(base["columns"]):
                fail(f"table {name!r} extra row has the wrong cell count")
            rows_out.append((f"{name}:{extra[0]}:*", "-", "(new row)", "-",
                             "new"))
            # "Every row" includes rows the baseline does not know yet: a
            # floor must hold on new rows too, or growing a table would
            # silently widen the gate.
            for i, (ftable, fcolumn, floor) in enumerate(floors):
                if name != ftable or fcolumn not in base["columns"]:
                    continue
                cell = extra[base["columns"].index(fcolumn)]
                fval = parse_cell(cell)
                if fval is None:
                    fail(f"metric {name}:{extra[0]}:{fcolumn} under a "
                         f"--hard-min floor is not numeric ({cell!r})")
                floor_hits[i] += 1
                if fval < floor:
                    hard_failures.append(
                        f"{name}:{extra[0]}:{fcolumn} = {fval} below "
                        f"floor {floor} (new row)")
    for name in fresh_tables:
        if name not in base_tables:
            rows_out.append((f"{name}:*:*", "-", "(new table)", "-", "new"))

    for i, (ftable, fcolumn, floor) in enumerate(floors):
        if floor_hits[i] == 0 and ftable not in skipped_tables:
            fail(f"--hard-min {ftable}:{fcolumn}={floor} matched no metric "
                 "(typo in table/column name?)")

    # Row-ratio gates judge the fresh run alone: the two rows come from one
    # binary on one machine, so their ratio is comparable at any scale.
    for spec in args.hard_row_ratio:
        table, row_a, row_b, column, ratio_min = parse_hard_row_ratio(spec)
        if table in skipped_tables:
            rows_out.append((f"{table}:{row_a}/{row_b}:{column}",
                             "(table skipped)", "-", "-", "warn"))
            continue
        fresh = fresh_tables.get(table)
        if fresh is None:
            fail(f"--hard-row-ratio table {table!r} missing from fresh run")
        if column not in fresh["columns"]:
            fail(f"--hard-row-ratio column {column!r} missing from "
                 f"table {table!r}")
        c = fresh["columns"].index(column)
        values = {}
        for label in (row_a, row_b):
            matches = [row for row in fresh["rows"] if row[0] == label]
            if not matches:
                fail(f"--hard-row-ratio row {label!r} missing from "
                     f"table {table!r}")
            val = parse_cell(matches[0][c])
            if val is None:
                fail(f"--hard-row-ratio metric {table}:{label}:{column} "
                     f"is not numeric ({matches[0][c]!r})")
            values[label] = val
        if values[row_b] == 0:
            fail(f"--hard-row-ratio denominator {table}:{row_b}:{column} "
                 "is zero")
        ratio = values[row_a] / values[row_b]
        metric = f"{table}:{row_a}/{row_b}:{column}"
        if ratio < ratio_min:
            hard_failures.append(
                f"{metric} = {ratio:.3f} below required ratio {ratio_min}")
            rows_out.append((metric, f">={ratio_min}", f"{ratio:.3f}", "-",
                             "FAIL"))
        else:
            rows_out.append((metric, f">={ratio_min}", f"{ratio:.3f}", "-",
                             "ok"))

    width = max((len(m) for m, *_ in rows_out), default=10)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'fresh':>12}  "
          f"{'delta':>9}  status")
    for metric, bcell, fcell, delta, status in rows_out:
        print(f"{metric:<{width}}  {bcell:>12}  {fcell:>12}  {delta:>9}  "
              f"{status}")

    warns = sum(1 for *_, s in rows_out if s == "warn")
    if hard_failures:
        print(f"\nbench_diff: {len(hard_failures)} hard regression(s):",
              file=sys.stderr)
        for h in hard_failures:
            print(f"  {h}", file=sys.stderr)
        return 1
    print(f"\nbench_diff: OK ({len(rows_out)} metrics, {warns} drifted "
          f"beyond ±{args.tolerance:.0%} [warn-only])", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
