#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked *.md file for inline links and validates the ones that
point inside the repository:

  * relative file links must resolve to an existing file or directory
    (anchors are stripped; `path#heading` checks `path`);
  * bare in-document anchors (`#heading`) and external schemes
    (http/https/mailto) are ignored — this is an offline repo check, not a
    crawler.

Exit status: 0 when every link resolves, 1 otherwise (each broken link is
reported as `file:line: target`).
"""
from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

# Inline links: [text](target). Images share the syntax via a leading '!',
# which the pattern happily treats the same way. Reference-style link
# definitions `[id]: target` are rare here; handled separately below.
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # http:, https:, mailto:


def tracked_markdown(root: Path) -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=root, capture_output=True, text=True, check=True)
    return [root / line for line in out.stdout.splitlines() if line]


def targets_in(line: str) -> list[str]:
    found = [m.group(1) for m in INLINE_LINK.finditer(line)]
    ref = REF_DEF.match(line)
    if ref:
        found.append(ref.group(1))
    return found


def main() -> int:
    root = Path(
        subprocess.run(["git", "rev-parse", "--show-toplevel"],
                       capture_output=True, text=True,
                       check=True).stdout.strip())
    broken: list[str] = []
    checked = 0
    in_code_fence = False
    for md in tracked_markdown(root):
        in_code_fence = False
        for lineno, line in enumerate(
                md.read_text(encoding="utf-8").splitlines(), start=1):
            if line.lstrip().startswith("```"):
                in_code_fence = not in_code_fence
                continue
            if in_code_fence:
                continue
            for target in targets_in(line):
                if EXTERNAL.match(target) or target.startswith("#"):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                # Leading slash = repo-root-relative (GitHub style); strip
                # it or pathlib would resolve against the filesystem root.
                resolved = (root / path_part.lstrip("/")) \
                    if path_part.startswith("/") \
                    else (md.parent / path_part)
                checked += 1
                if not resolved.exists():
                    broken.append(
                        f"{md.relative_to(root)}:{lineno}: {target}")
    for b in broken:
        print(f"BROKEN {b}", file=sys.stderr)
    print(f"check_md_links: {checked} intra-repo links checked, "
          f"{len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
