#!/usr/bin/env python3
"""Run/validate the benches' --json output and write a normalized baseline.

The repo tracks performance per PR through committed JSON baselines
(BENCH_ingest.json today). This tool is the one producer of those files and
the one validator CI's bench-smoke job runs, so a malformed --json emitter
can never slip into a baseline unnoticed.

Usage:
    # Run a bench binary with --json, validate, pretty-write the baseline:
    scripts/bench_to_json.py --run build/bench_ingest_throughput \
        --out BENCH_ingest.json

    # Validate JSON already produced (a file or stdin via "-"):
    build/bench_ingest_throughput --json | scripts/bench_to_json.py -
    build/bench_micro --json | scripts/bench_to_json.py --google-benchmark -

    # Merge one bench's tables into an existing multi-bench baseline
    # (replaces same-named tables in place, appends new ones):
    scripts/bench_to_json.py --run build/bench_serving \
        --merge-into BENCH_ingest.json

Exit status: 0 on valid output, 2 on malformed/empty JSON or a failed run.
Stdlib only — no pip dependencies.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys


def fail(msg: str) -> "NoReturn":  # noqa: F821 (py3.8-friendly annotation)
    print(f"bench_to_json: {msg}", file=sys.stderr)
    raise SystemExit(2)


def validate_table_document(doc: object) -> None:
    """Schema of the table benches' --json output (bench_ingest_throughput)."""
    if not isinstance(doc, dict):
        fail(f"top level must be an object, got {type(doc).__name__}")
    for key in ("bench", "tables"):
        if key not in doc:
            fail(f"missing required key {key!r}")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        fail("'bench' must be a non-empty string")
    tables = doc["tables"]
    if not isinstance(tables, list) or not tables:
        fail("'tables' must be a non-empty array")
    for i, table in enumerate(tables):
        where = f"tables[{i}]"
        if not isinstance(table, dict):
            fail(f"{where} must be an object")
        for key in ("name", "columns", "rows"):
            if key not in table:
                fail(f"{where} missing {key!r}")
        columns = table["columns"]
        if not isinstance(columns, list) or not all(
            isinstance(c, str) for c in columns
        ):
            fail(f"{where}.columns must be an array of strings")
        rows = table["rows"]
        if not isinstance(rows, list):
            fail(f"{where}.rows must be an array")
        for j, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != len(columns):
                fail(
                    f"{where}.rows[{j}] must be an array of "
                    f"{len(columns)} cells"
                )
            if not all(isinstance(cell, str) for cell in row):
                fail(f"{where}.rows[{j}] cells must all be strings")


def validate_google_benchmark_document(doc: object) -> None:
    """Schema of google-benchmark's --benchmark_format=json (bench_micro)."""
    if not isinstance(doc, dict):
        fail(f"top level must be an object, got {type(doc).__name__}")
    if "benchmarks" not in doc or not isinstance(doc["benchmarks"], list):
        fail("missing 'benchmarks' array (is this --benchmark_format=json?)")
    if not doc["benchmarks"]:
        fail("'benchmarks' is empty — no benchmark ran")
    for i, bench in enumerate(doc["benchmarks"]):
        if not isinstance(bench, dict) or "name" not in bench:
            fail(f"benchmarks[{i}] must be an object with a 'name'")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--run",
        metavar="BINARY",
        help="bench binary to execute with --json (plus --extra-arg flags)",
    )
    source.add_argument(
        "input",
        nargs="?",
        metavar="FILE",
        help="existing JSON to validate ('-' = stdin)",
    )
    parser.add_argument(
        "--extra-arg",
        action="append",
        default=[],
        help="additional argv for --run (repeatable)",
    )
    parser.add_argument(
        "--google-benchmark",
        action="store_true",
        help="validate google-benchmark JSON instead of the table schema",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the validated document, pretty-printed (the committed "
        "baseline format); omit to validate only",
    )
    parser.add_argument(
        "--merge-into",
        metavar="PATH",
        help="merge the validated document's tables into the existing "
        "baseline at PATH (same-named tables replaced in place, new "
        "tables appended) and rewrite it; table schema only",
    )
    args = parser.parse_args()
    if args.merge_into and args.google_benchmark:
        fail("--merge-into only applies to the table schema")

    if args.run:
        cmd = [args.run, "--json", *args.extra_arg]
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=False
            )
        except OSError as e:
            fail(f"cannot execute {cmd[0]}: {e}")
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            fail(f"{' '.join(cmd)} exited with {proc.returncode}")
        raw = proc.stdout
    elif args.input == "-":
        raw = sys.stdin.read()
    else:
        try:
            with open(args.input, "r", encoding="utf-8") as f:
                raw = f.read()
        except OSError as e:
            fail(str(e))

    if not raw.strip():
        fail("no JSON on input (did the bench print tables instead?)")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as e:
        fail(f"malformed JSON: {e}")

    if args.google_benchmark:
        validate_google_benchmark_document(doc)
    else:
        validate_table_document(doc)

    if args.merge_into:
        try:
            with open(args.merge_into, "r", encoding="utf-8") as f:
                base = json.load(f)
        except OSError as e:
            fail(f"cannot read {args.merge_into}: {e}")
        except json.JSONDecodeError as e:
            fail(f"malformed JSON in {args.merge_into}: {e}")
        validate_table_document(base)
        by_name = {t["name"]: i for i, t in enumerate(base["tables"])}
        for table in doc["tables"]:
            if table["name"] in by_name:
                base["tables"][by_name[table["name"]]] = table
            else:
                base["tables"].append(table)
        with open(args.merge_into, "w", encoding="utf-8") as f:
            json.dump(base, f, indent=2, sort_keys=False)
            f.write("\n")
        names = ", ".join(t["name"] for t in doc["tables"])
        print(
            f"bench_to_json: merged [{names}] into {args.merge_into}",
            file=sys.stderr,
        )
    elif args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2, sort_keys=False)
            f.write("\n")
        print(f"bench_to_json: wrote {args.out}", file=sys.stderr)
    else:
        print("bench_to_json: OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
