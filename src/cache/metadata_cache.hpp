// Prefetch-aware metadata cache.
//
// The MDS cache holds metadata entries keyed by FileId, enforces a fixed
// entry capacity with a pluggable replacement policy, and distinguishes
// demand-fetched from prefetched entries so the experiments can report:
//
//   * demand hit ratio       — the paper's "cache hit ratio" (Figs 3/5/7)
//   * prefetch accuracy      — prefetched entries that served a demand hit
//                              before eviction / prefetched entries (Tab 3)
//   * cache pollution        — prefetched entries evicted unused
#pragma once

#include <cstdint>
#include <memory>

#include "cache/replacement.hpp"
#include "common/stats.hpp"

namespace farmer {

struct CacheStats {
  RatioCounter demand;             ///< hits/accesses of demand requests
  std::uint64_t prefetch_inserted = 0;
  std::uint64_t prefetch_used = 0;      ///< first demand hit on a prefetch
  std::uint64_t prefetch_evicted_unused = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_ratio() const noexcept { return demand.ratio(); }
  [[nodiscard]] double prefetch_accuracy() const noexcept {
    return prefetch_inserted
               ? static_cast<double>(prefetch_used) /
                     static_cast<double>(prefetch_inserted)
               : 0.0;
  }
  [[nodiscard]] double pollution_ratio() const noexcept {
    return prefetch_inserted
               ? static_cast<double>(prefetch_evicted_unused) /
                     static_cast<double>(prefetch_inserted)
               : 0.0;
  }
};

class MetadataCache {
 public:
  MetadataCache(std::size_t capacity, CachePolicy policy);

  /// Demand access. Returns true on hit. On miss the caller is expected to
  /// fetch and call `insert_demand` (the cache does not auto-populate, since
  /// in the DES the fetch has latency).
  bool access(FileId f);

  /// Inserts a demand-fetched entry (no-op if present), evicting as needed.
  void insert_demand(FileId f);

  /// Inserts a prefetched entry. Returns false (and counts nothing) if the
  /// entry is already resident — an already-cached prediction costs nothing
  /// and earns nothing. Evicts as needed.
  bool insert_prefetch(FileId f);

  /// Whether `f` is resident (no recency update, no stats).
  [[nodiscard]] bool contains(FileId f) const noexcept;

  /// Invalidates an entry if resident (metadata updates in the MDS).
  void erase(FileId f);

  /// Zeroes the counters without touching residency (warm-up support).
  void reset_stats() noexcept { stats_ = CacheStats{}; }

  [[nodiscard]] std::size_t size() const noexcept { return resident_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const char* policy_name() const noexcept {
    return policy_->name();
  }

 private:
  void evict_if_full();

  std::size_t capacity_;
  std::unique_ptr<ReplacementPolicy> policy_;
  // Resident set; value = entry came from prefetch and is still unused.
  std::unordered_map<FileId, bool> resident_;
  CacheStats stats_;
};

}  // namespace farmer
