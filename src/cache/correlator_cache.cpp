#include "cache/correlator_cache.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace farmer {

CorrelatorCache::CorrelatorCache(std::size_t capacity, CachePolicy policy,
                                 std::size_t stripes)
    : capacity_(capacity) {
  const std::size_t n =
      std::max<std::size_t>(1, std::min(stripes, std::max<std::size_t>(
                                                     capacity, 1)));
  // Ceil split so the stripe capacities sum to >= capacity; a stripe never
  // holds fewer than one entry.
  per_stripe_capacity_ = capacity == 0 ? 0 : (capacity + n - 1) / n;
  stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Stripe>();
    s->policy = make_policy(policy);
    // ARC sizes its ghost lists from the capacity it manages — here, one
    // stripe's share (same wiring as MetadataCache's constructor).
    if (auto* arc = dynamic_cast<ArcPolicy*>(s->policy.get()))
      arc->set_capacity(per_stripe_capacity_);
    stripes_.push_back(std::move(s));
  }
}

CorrelatorCache::Stripe& CorrelatorCache::stripe_of(FileId f) noexcept {
  return *stripes_[static_cast<std::size_t>(mix64(f.value())) %
                   stripes_.size()];
}

bool CorrelatorCache::revalidate(Entry& e,
                                 std::span<const std::uint64_t> current_epochs,
                                 const ShardAbsenceProbe& still_absent) {
  // A reconfigured shard count can never match entry state; treat as stale.
  if (e.epochs.size() != current_epochs.size()) return false;
  for (std::size_t s = 0; s < current_epochs.size(); ++s) {
    if (e.epochs[s] == current_epochs[s]) continue;
    // Shard s republished since the merge. If it contributed to the list
    // the entry is stale; if it did not, the entry survives as long as the
    // file is still absent from s (a newly appearing file would change the
    // merge). Memoize the verdict by advancing the recorded epoch.
    if (e.contained[s] || !still_absent(s)) return false;
    e.epochs[s] = current_epochs[s];
  }
  return true;
}

std::optional<std::vector<Correlator>> CorrelatorCache::lookup(
    FileId f, std::span<const std::uint64_t> current_epochs,
    ShardAbsenceProbe still_absent) {
  if (!enabled()) return std::nullopt;
  Stripe& st = stripe_of(f);
  std::lock_guard<std::mutex> lk(st.mu);
  const auto it = st.entries.find(f);
  if (it == st.entries.end()) {
    ++st.stats.misses;
    return std::nullopt;
  }
  if (!revalidate(it->second, current_epochs, still_absent)) {
    st.policy->on_erase(f);
    st.entries.erase(it);
    ++st.stats.invalidations;
    return std::nullopt;
  }
  st.policy->on_access(f);
  ++st.stats.hits;
  return it->second.list;
}

void CorrelatorCache::insert(FileId f, std::span<const std::uint64_t> epochs,
                             std::vector<std::uint8_t> contained,
                             std::vector<Correlator> list) {
  if (!enabled()) return;
  Stripe& st = stripe_of(f);
  std::lock_guard<std::mutex> lk(st.mu);
  auto [it, fresh] = st.entries.try_emplace(f);
  it->second.list = std::move(list);
  it->second.epochs.assign(epochs.begin(), epochs.end());
  it->second.contained = std::move(contained);
  if (fresh) {
    st.policy->on_insert(f);
    ++st.stats.insertions;
    while (st.entries.size() > per_stripe_capacity_) {
      const std::optional<FileId> victim = st.policy->victim();
      if (!victim) break;  // defensive: policy lost track, stop evicting
      st.policy->on_erase(*victim);
      st.entries.erase(*victim);
      ++st.stats.evictions;
    }
  } else {
    st.policy->on_access(f);
  }
}

void CorrelatorCache::clear() {
  for (auto& st : stripes_) {
    std::lock_guard<std::mutex> lk(st->mu);
    for (const auto& [f, e] : st->entries) st->policy->on_erase(f);
    st->entries.clear();
  }
}

std::size_t CorrelatorCache::size() const {
  std::size_t n = 0;
  for (const auto& st : stripes_) {
    std::lock_guard<std::mutex> lk(st->mu);
    n += st->entries.size();
  }
  return n;
}

CorrelatorCacheStats CorrelatorCache::stats() const {
  CorrelatorCacheStats total;
  for (const auto& st : stripes_) {
    std::lock_guard<std::mutex> lk(st->mu);
    total.hits += st->stats.hits;
    total.misses += st->stats.misses;
    total.invalidations += st->stats.invalidations;
    total.insertions += st->stats.insertions;
    total.evictions += st->stats.evictions;
  }
  return total;
}

std::size_t CorrelatorCache::footprint_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& st : stripes_) {
    std::lock_guard<std::mutex> lk(st->mu);
    bytes += sizeof(Stripe);
    for (const auto& [f, e] : st->entries) {
      (void)f;
      bytes += sizeof(FileId) + sizeof(Entry) +
               e.list.capacity() * sizeof(Correlator) +
               e.epochs.capacity() * sizeof(std::uint64_t) +
               e.contained.capacity();
    }
  }
  return bytes;
}

}  // namespace farmer
