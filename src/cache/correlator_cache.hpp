// Epoch-validated cache of hot merged Correlator Lists.
//
// Merging a Correlator List across S shards costs a sort + dedup per query;
// at peta-scale the query stream is heavily skewed (the same hot files are
// asked for by prefetch, grouping and policy propagation), so the merge for
// a hot file is recomputed thousands of times between changes. This cache
// sits in front of the concurrent backend's snapshot query path and
// memoizes merged lists, validated against the per-shard publish epochs:
//
//   * An entry remembers the epoch of every shard it merged from and which
//     shards *contained* the file at build time (access count > 0).
//   * On lookup the entry is revalidated against the current epochs: a
//     contributing shard that republished invalidates it; a non-contributing
//     shard that republished keeps it valid as long as the file is still
//     absent from that shard (the caller answers that via the absence
//     probe — an O(1) read of the published snapshot). Absence re-checks
//     are memoized by bumping the entry's recorded epoch forward.
//
// Validation is lazy (per-lookup) — there is no invalidation broadcast to
// race with, which is what keeps the reader path lock-free outside the
// cache's own stripe. The table is striped: a FileId hashes to one of
// `stripes` sub-caches, each with its own mutex and its own replacement
// policy (reusing cache/replacement.hpp), so concurrent readers of
// different hot files do not serialize on one lock.
//
// Thread-safety: all methods are safe to call concurrently. A lookup hit
// copies the list out under the stripe lock (lists are capped at the
// configured correlator capacity, typically 8 entries).
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "cache/replacement.hpp"
#include "common/types.hpp"
#include "graph/correlation_graph.hpp"

namespace farmer {

/// Aggregate counters across all stripes.
struct CorrelatorCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;          ///< absent entries (cold or evicted)
  std::uint64_t invalidations = 0;   ///< entries dropped as epoch-stale
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_ratio() const noexcept {
    const std::uint64_t total = hits + misses + invalidations;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Non-owning callable `bool(shard)` answering "is the file absent from
/// shard s's currently published snapshot?" — a function_ref, so the hot
/// path never allocates for the closure.
class ShardAbsenceProbe {
 public:
  // Constrained so this can never hijack copy construction (Fn = probe)
  // or bind a non-callable: the stored pointer must address a genuine
  // bool(std::size_t) callable that outlives the probe.
  template <typename Fn>
    requires(!std::same_as<std::remove_cvref_t<Fn>, ShardAbsenceProbe> &&
             std::is_invocable_r_v<bool, const Fn&, std::size_t>)
  ShardAbsenceProbe(const Fn& fn)  // NOLINT(google-explicit-constructor)
      : ctx_(&fn), call_([](const void* ctx, std::size_t s) {
          return (*static_cast<const Fn*>(ctx))(s);
        }) {}

  [[nodiscard]] bool operator()(std::size_t shard) const {
    return call_(ctx_, shard);
  }

 private:
  const void* ctx_;
  bool (*call_)(const void*, std::size_t);
};

class CorrelatorCache {
 public:
  static constexpr std::size_t kDefaultStripes = 16;

  /// `capacity` == 0 disables the cache entirely: lookups miss without
  /// counting and inserts are dropped, so a disabled cache is bit-for-bit
  /// the uncached query path.
  explicit CorrelatorCache(std::size_t capacity,
                           CachePolicy policy = CachePolicy::kLRU,
                           std::size_t stripes = kDefaultStripes);

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Returns the cached merged list for `f` if an entry exists and is still
  /// valid against `current_epochs` (one publish count per shard) and the
  /// absence probe. A stale entry is erased and counted as an invalidation.
  [[nodiscard]] std::optional<std::vector<Correlator>> lookup(
      FileId f, std::span<const std::uint64_t> current_epochs,
      ShardAbsenceProbe still_absent);

  /// Memoizes a freshly merged list. `epochs` are the shard epochs the
  /// merge read; `contained[s]` != 0 iff shard s held the file (access
  /// count > 0) at merge time. No-op when disabled.
  void insert(FileId f, std::span<const std::uint64_t> epochs,
              std::vector<std::uint8_t> contained,
              std::vector<Correlator> list);

  /// Drops every entry (stats are kept).
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] CorrelatorCacheStats stats() const;
  [[nodiscard]] std::size_t footprint_bytes() const;

 private:
  struct Entry {
    std::vector<Correlator> list;
    std::vector<std::uint64_t> epochs;
    std::vector<std::uint8_t> contained;
  };

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<FileId, Entry> entries;
    std::unique_ptr<ReplacementPolicy> policy;
    CorrelatorCacheStats stats;  // guarded by mu, aggregated on demand
  };

  [[nodiscard]] Stripe& stripe_of(FileId f) noexcept;
  /// True when the entry may still be served; advances the entry's recorded
  /// epochs past shards verified still-absent.
  [[nodiscard]] static bool revalidate(
      Entry& e, std::span<const std::uint64_t> current_epochs,
      const ShardAbsenceProbe& still_absent);

  std::size_t capacity_ = 0;
  std::size_t per_stripe_capacity_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace farmer
