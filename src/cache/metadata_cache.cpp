#include "cache/metadata_cache.hpp"

#include <cassert>

namespace farmer {

MetadataCache::MetadataCache(std::size_t capacity, CachePolicy policy)
    : capacity_(capacity == 0 ? 1 : capacity), policy_(make_policy(policy)) {
  if (auto* arc = dynamic_cast<ArcPolicy*>(policy_.get()))
    arc->set_capacity(capacity_);
  resident_.reserve(capacity_ * 2);
}

bool MetadataCache::access(FileId f) {
  auto it = resident_.find(f);
  if (it == resident_.end()) {
    stats_.demand.miss();
    return false;
  }
  if (it->second) {  // first demand hit on a prefetched entry
    ++stats_.prefetch_used;
    it->second = false;
  }
  stats_.demand.hit();
  policy_->on_access(f);
  return true;
}

void MetadataCache::insert_demand(FileId f) {
  if (resident_.count(f)) return;
  evict_if_full();
  resident_.emplace(f, false);
  policy_->on_insert(f);
}

bool MetadataCache::insert_prefetch(FileId f) {
  if (resident_.count(f)) return false;
  evict_if_full();
  resident_.emplace(f, true);
  policy_->on_insert(f);
  ++stats_.prefetch_inserted;
  return true;
}

bool MetadataCache::contains(FileId f) const noexcept {
  return resident_.count(f) != 0;
}

void MetadataCache::erase(FileId f) {
  auto it = resident_.find(f);
  if (it == resident_.end()) return;
  if (it->second) ++stats_.prefetch_evicted_unused;
  resident_.erase(it);
  policy_->on_erase(f);
}

void MetadataCache::evict_if_full() {
  while (resident_.size() >= capacity_) {
    const auto victim = policy_->victim();
    assert(victim.has_value());
    if (!victim) return;  // defensive: drop capacity enforcement over UB
    auto it = resident_.find(*victim);
    assert(it != resident_.end());
    if (it->second) ++stats_.prefetch_evicted_unused;
    resident_.erase(it);
    policy_->on_erase(*victim);
    ++stats_.evictions;
  }
}

}  // namespace farmer
