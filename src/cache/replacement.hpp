// Replacement policies for the metadata cache.
//
// LRU is the paper's baseline replacement policy; LFU, CLOCK and ARC are
// provided both as extensions and as sanity baselines for the ablation
// benches. All policies share one interface so the metadata cache and the
// MDS are policy-agnostic.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace farmer {

enum class CachePolicy { kLRU, kLFU, kCLOCK, kARC };

[[nodiscard]] const char* cache_policy_name(CachePolicy p) noexcept;

/// Pure replacement state machine over FileId keys. Capacity is enforced by
/// the caller via `evict()`; policies only pick victims and track recency/
/// frequency. All operations are O(1) amortized except LFU's victim scan,
/// which is O(distinct frequencies) via frequency buckets.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Notes an access (hit) on a resident key.
  virtual void on_access(FileId key) = 0;
  /// Notes an insertion of a new resident key.
  virtual void on_insert(FileId key) = 0;
  /// Notes a removal (by eviction or invalidation) of a resident key.
  virtual void on_erase(FileId key) = 0;
  /// Picks the victim the policy would evict next (does not remove it).
  [[nodiscard]] virtual std::optional<FileId> victim() = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_policy(CachePolicy p);

/// Strict-LRU via intrusive list + index map.
class LruPolicy final : public ReplacementPolicy {
 public:
  void on_access(FileId key) override;
  void on_insert(FileId key) override;
  void on_erase(FileId key) override;
  [[nodiscard]] std::optional<FileId> victim() override;
  [[nodiscard]] const char* name() const noexcept override { return "LRU"; }

 private:
  std::list<FileId> order_;  // front = MRU
  std::unordered_map<FileId, std::list<FileId>::iterator> where_;
};

/// LFU with frequency buckets (O(1) all ops); ties broken by LRU within the
/// lowest-frequency bucket.
class LfuPolicy final : public ReplacementPolicy {
 public:
  void on_access(FileId key) override;
  void on_insert(FileId key) override;
  void on_erase(FileId key) override;
  [[nodiscard]] std::optional<FileId> victim() override;
  [[nodiscard]] const char* name() const noexcept override { return "LFU"; }

 private:
  struct Entry {
    std::uint64_t freq;
    std::list<FileId>::iterator pos;
  };
  void bump(FileId key, Entry& e);
  std::unordered_map<FileId, Entry> entries_;
  std::unordered_map<std::uint64_t, std::list<FileId>> buckets_;
  std::uint64_t min_freq_ = 0;
};

/// Second-chance CLOCK.
class ClockPolicy final : public ReplacementPolicy {
 public:
  void on_access(FileId key) override;
  void on_insert(FileId key) override;
  void on_erase(FileId key) override;
  [[nodiscard]] std::optional<FileId> victim() override;
  [[nodiscard]] const char* name() const noexcept override { return "CLOCK"; }

 private:
  struct Frame {
    FileId key;
    bool referenced;
    bool live;
  };
  std::vector<Frame> frames_;
  std::unordered_map<FileId, std::size_t> where_;
  std::size_t hand_ = 0;
};

/// ARC (Megiddo & Modha, FAST'03). The policy tracks the four ARC lists
/// internally; `victim()` follows the REPLACE rule using the adaptive
/// target p. Ghost hits adapt p on `on_insert` of a ghost-resident key.
class ArcPolicy final : public ReplacementPolicy {
 public:
  void on_access(FileId key) override;
  void on_insert(FileId key) override;
  void on_erase(FileId key) override;
  [[nodiscard]] std::optional<FileId> victim() override;
  [[nodiscard]] const char* name() const noexcept override { return "ARC"; }

  /// ARC needs to know the cache capacity to size its ghost lists.
  void set_capacity(std::size_t c) { capacity_ = c; }

 private:
  enum class Where : std::uint8_t { kT1, kT2, kB1, kB2 };
  struct Entry {
    Where where;
    std::list<FileId>::iterator pos;
  };
  void move_to(FileId key, Entry& e, Where dst);
  void trim_ghosts();
  std::list<FileId>& list_of(Where w);

  std::list<FileId> t1_, t2_, b1_, b2_;  // front = MRU
  std::unordered_map<FileId, Entry> entries_;
  std::size_t capacity_ = 0;
  double p_ = 0.0;  // adaptive target size of t1
};

}  // namespace farmer
