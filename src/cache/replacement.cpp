#include "cache/replacement.hpp"

#include <algorithm>
#include <cassert>

namespace farmer {

const char* cache_policy_name(CachePolicy p) noexcept {
  switch (p) {
    case CachePolicy::kLRU:
      return "LRU";
    case CachePolicy::kLFU:
      return "LFU";
    case CachePolicy::kCLOCK:
      return "CLOCK";
    case CachePolicy::kARC:
      return "ARC";
  }
  return "?";
}

std::unique_ptr<ReplacementPolicy> make_policy(CachePolicy p) {
  switch (p) {
    case CachePolicy::kLRU:
      return std::make_unique<LruPolicy>();
    case CachePolicy::kLFU:
      return std::make_unique<LfuPolicy>();
    case CachePolicy::kCLOCK:
      return std::make_unique<ClockPolicy>();
    case CachePolicy::kARC:
      return std::make_unique<ArcPolicy>();
  }
  return nullptr;
}

// ---------------------------------------------------------------- LRU ----

void LruPolicy::on_access(FileId key) {
  auto it = where_.find(key);
  if (it == where_.end()) return;
  order_.splice(order_.begin(), order_, it->second);
}

void LruPolicy::on_insert(FileId key) {
  assert(!where_.count(key));
  order_.push_front(key);
  where_[key] = order_.begin();
}

void LruPolicy::on_erase(FileId key) {
  auto it = where_.find(key);
  if (it == where_.end()) return;
  order_.erase(it->second);
  where_.erase(it);
}

std::optional<FileId> LruPolicy::victim() {
  if (order_.empty()) return std::nullopt;
  return order_.back();
}

// ---------------------------------------------------------------- LFU ----

void LfuPolicy::bump(FileId key, Entry& e) {
  auto& old_bucket = buckets_[e.freq];
  old_bucket.erase(e.pos);
  if (old_bucket.empty()) {
    buckets_.erase(e.freq);
    if (min_freq_ == e.freq) ++min_freq_;
  }
  ++e.freq;
  auto& bucket = buckets_[e.freq];
  bucket.push_front(key);
  e.pos = bucket.begin();
}

void LfuPolicy::on_access(FileId key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  bump(key, it->second);
}

void LfuPolicy::on_insert(FileId key) {
  assert(!entries_.count(key));
  auto& bucket = buckets_[1];
  bucket.push_front(key);
  entries_[key] = {1, bucket.begin()};
  min_freq_ = 1;
}

void LfuPolicy::on_erase(FileId key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  auto& bucket = buckets_[it->second.freq];
  bucket.erase(it->second.pos);
  if (bucket.empty()) buckets_.erase(it->second.freq);
  entries_.erase(it);
}

std::optional<FileId> LfuPolicy::victim() {
  if (entries_.empty()) return std::nullopt;
  auto it = buckets_.find(min_freq_);
  while (it == buckets_.end()) {
    ++min_freq_;  // min bucket emptied by erase; advance lazily
    if (min_freq_ > entries_.size() * 64 + 64) return std::nullopt;
    it = buckets_.find(min_freq_);
  }
  return it->second.back();  // LRU within the minimum-frequency bucket
}

// -------------------------------------------------------------- CLOCK ----

void ClockPolicy::on_access(FileId key) {
  auto it = where_.find(key);
  if (it == where_.end()) return;
  frames_[it->second].referenced = true;
}

void ClockPolicy::on_insert(FileId key) {
  assert(!where_.count(key));
  // Reuse a dead frame if one exists at/after the hand; else append.
  for (std::size_t scanned = 0; scanned < frames_.size(); ++scanned) {
    std::size_t i = (hand_ + scanned) % frames_.size();
    if (!frames_[i].live) {
      frames_[i] = {key, true, true};
      where_[key] = i;
      return;
    }
  }
  frames_.push_back({key, true, true});
  where_[key] = frames_.size() - 1;
}

void ClockPolicy::on_erase(FileId key) {
  auto it = where_.find(key);
  if (it == where_.end()) return;
  frames_[it->second].live = false;
  where_.erase(it);
}

std::optional<FileId> ClockPolicy::victim() {
  if (where_.empty()) return std::nullopt;
  // Classic second chance: clear reference bits until an unreferenced live
  // frame is found. Bounded by two sweeps.
  for (std::size_t scanned = 0; scanned < frames_.size() * 2; ++scanned) {
    Frame& f = frames_[hand_];
    hand_ = (hand_ + 1) % frames_.size();
    if (!f.live) continue;
    if (f.referenced) {
      f.referenced = false;
    } else {
      return f.key;
    }
  }
  // Every frame referenced: fall back to the frame under the hand.
  for (std::size_t scanned = 0; scanned < frames_.size(); ++scanned) {
    Frame& f = frames_[(hand_ + scanned) % frames_.size()];
    if (f.live) return f.key;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------- ARC ----

std::list<FileId>& ArcPolicy::list_of(Where w) {
  switch (w) {
    case Where::kT1:
      return t1_;
    case Where::kT2:
      return t2_;
    case Where::kB1:
      return b1_;
    case Where::kB2:
      return b2_;
  }
  return t1_;
}

void ArcPolicy::move_to(FileId key, Entry& e, Where dst) {
  list_of(e.where).erase(e.pos);
  auto& dl = list_of(dst);
  dl.push_front(key);
  e.where = dst;
  e.pos = dl.begin();
}

void ArcPolicy::trim_ghosts() {
  const std::size_t cap = std::max<std::size_t>(capacity_, 1);
  while (b1_.size() > cap) {
    entries_.erase(b1_.back());
    b1_.pop_back();
  }
  while (b2_.size() > cap) {
    entries_.erase(b2_.back());
    b2_.pop_back();
  }
}

void ArcPolicy::on_access(FileId key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  if (e.where == Where::kT1 || e.where == Where::kT2) {
    move_to(key, e, Where::kT2);  // promoted: seen at least twice
  }
  // Ghost hits are handled on insert (the caller re-inserts after a miss).
}

void ArcPolicy::on_insert(FileId key) {
  const double cap = static_cast<double>(std::max<std::size_t>(capacity_, 1));
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& e = it->second;
    if (e.where == Where::kB1) {
      // Ghost hit in B1: recency list too small -> grow p.
      const double delta =
          std::max(1.0, static_cast<double>(b2_.size()) /
                            std::max<std::size_t>(b1_.size(), 1));
      p_ = std::min(cap, p_ + delta);
      move_to(key, e, Where::kT2);
      return;
    }
    if (e.where == Where::kB2) {
      // Ghost hit in B2: frequency list too small -> shrink p.
      const double delta =
          std::max(1.0, static_cast<double>(b1_.size()) /
                            std::max<std::size_t>(b2_.size(), 1));
      p_ = std::max(0.0, p_ - delta);
      move_to(key, e, Where::kT2);
      return;
    }
    return;  // already resident
  }
  t1_.push_front(key);
  entries_[key] = {Where::kT1, t1_.begin()};
  trim_ghosts();
}

void ArcPolicy::on_erase(FileId key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  Entry& e = it->second;
  // Residents demote to the matching ghost list (ARC's REPLACE); ghosts
  // vanish entirely.
  if (e.where == Where::kT1) {
    move_to(key, e, Where::kB1);
    trim_ghosts();
  } else if (e.where == Where::kT2) {
    move_to(key, e, Where::kB2);
    trim_ghosts();
  } else {
    list_of(e.where).erase(e.pos);
    entries_.erase(it);
  }
}

std::optional<FileId> ArcPolicy::victim() {
  if (t1_.empty() && t2_.empty()) return std::nullopt;
  const bool from_t1 =
      !t1_.empty() &&
      (static_cast<double>(t1_.size()) > p_ || t2_.empty());
  return from_t1 ? t1_.back() : t2_.back();
}

}  // namespace farmer
