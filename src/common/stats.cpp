#include "common/stats.hpp"

#include <bit>
#include <cmath>
#include <cstdio>

namespace farmer {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination of Welford accumulators.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::size_t LatencyHistogram::index_of(std::uint64_t v) noexcept {
  if (v < kSub) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - 4;  // log2(kSub)
  const auto major = static_cast<std::size_t>(msb - 3);
  const auto sub = static_cast<std::size_t>((v >> shift) & (kSub - 1));
  const std::size_t idx = major * kSub + sub;
  return std::min(idx, kMajor * kSub - 1);
}

std::uint64_t LatencyHistogram::value_of(std::size_t idx) noexcept {
  const std::size_t major = idx / kSub;
  const std::size_t sub = idx % kSub;
  if (major == 0) return sub;
  const int shift = static_cast<int>(major) - 1;
  return (static_cast<std::uint64_t>(kSub + sub)) << shift;
}

void LatencyHistogram::record(std::uint64_t value_us) noexcept {
  ++buckets_[index_of(value_us)];
  ++count_;
  sum_ += static_cast<double>(value_us);
  max_ = std::max(max_, value_us);
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

std::uint64_t LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) return value_of(i);
  }
  return max_;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_bytes(std::size_t bytes) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < std::size(kUnits)) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  return buf;
}

}  // namespace farmer
