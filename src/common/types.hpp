// Strong identifier types shared across the FARMER library.
//
// Every entity in a trace (file, user, process, host, path, job) is referred
// to by a dense 32-bit id. Dense ids keep the correlation graph and the
// caches compact (Core Guidelines Per.16: use compact data structures) and
// make vectors indexable without hashing. The `TaggedId` wrapper prevents the
// classic bug of passing a user id where a file id is expected; it compiles
// down to a bare integer.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace farmer {

/// Phantom-tagged integer id. `Tag` differentiates id spaces at compile time.
template <typename Tag>
class TaggedId {
 public:
  using underlying_type = std::uint32_t;

  /// Sentinel meaning "no entity".
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr TaggedId() noexcept : value_(kInvalid) {}
  constexpr explicit TaggedId(underlying_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr underlying_type value() const noexcept {
    return value_;
  }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }

  friend constexpr bool operator==(TaggedId a, TaggedId b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TaggedId a, TaggedId b) noexcept {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TaggedId a, TaggedId b) noexcept {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator<=(TaggedId a, TaggedId b) noexcept {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>(TaggedId a, TaggedId b) noexcept {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator>=(TaggedId a, TaggedId b) noexcept {
    return a.value_ >= b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, TaggedId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  underlying_type value_;
};

struct FileTag {};
struct UserTag {};
struct ProcessTag {};
struct HostTag {};
struct PathTag {};
struct JobTag {};
struct ObjectTag {};
struct TokenTag {};

using FileId = TaggedId<FileTag>;      ///< A file (== metadata object) id.
using UserId = TaggedId<UserTag>;      ///< A user (uid) id.
using ProcessId = TaggedId<ProcessTag>;///< A process (pid) id.
using HostId = TaggedId<HostTag>;      ///< A client host id.
using PathId = TaggedId<PathTag>;      ///< An interned full-path id.
using JobId = TaggedId<JobTag>;        ///< A parallel-job id (LLNL profile).
using ObjectId = TaggedId<ObjectTag>;  ///< An OSD object id.
using TokenId = TaggedId<TokenTag>;    ///< An interned semantic-vector token.

/// Simulated time in microseconds. All latency models and the DES engine
/// operate in this unit; 64 bits cover ~292k years of simulated time.
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Converts a SimTime to fractional milliseconds for reporting.
[[nodiscard]] constexpr double to_ms(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace farmer

namespace std {
template <typename Tag>
struct hash<farmer::TaggedId<Tag>> {
  size_t operator()(farmer::TaggedId<Tag> id) const noexcept {
    // Fibonacci multiplicative mix: dense sequential ids otherwise collide
    // into consecutive buckets and defeat open addressing.
    return static_cast<size_t>(id.value()) * 0x9E3779B97F4A7C15ull;
  }
};
}  // namespace std
