// String interning.
//
// Semantic vectors compare attribute values (user names, path components,
// host names) millions of times while mining; comparing interned 32-bit
// tokens instead of strings turns every comparison into an integer compare
// and every vector into a flat array of ints (Per.16, Per.19).
//
// `Interner` is the single-threaded building block; `SharedInterner` wraps it
// with a shard-per-stripe lock for concurrent extraction pipelines.
#pragma once

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace farmer {

/// Maps strings to dense TokenIds and back. Not thread-safe.
class Interner {
 public:
  Interner();

  /// Returns the id for `s`, creating it on first sight.
  TokenId intern(std::string_view s);

  /// Returns the id for `s` or an invalid id if never interned. Const.
  [[nodiscard]] TokenId lookup(std::string_view s) const;

  /// Resolves an id back to its string. Precondition: id was produced by
  /// this interner.
  [[nodiscard]] std::string_view resolve(TokenId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return strings_.size(); }

  /// Approximate heap footprint in bytes (for Table-4 style accounting).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept;

 private:
  std::unordered_map<std::string, TokenId> index_;
  std::vector<std::string> strings_;
};

/// Striped thread-safe interner. Token ids remain globally unique: each
/// stripe allocates ids from its own range (stripe index in the low bits),
/// so ids from different stripes never collide.
class SharedInterner {
 public:
  static constexpr std::size_t kStripes = 16;  // power of two

  TokenId intern(std::string_view s);
  [[nodiscard]] std::string resolve(TokenId id) const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Stripe {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, std::uint32_t> index;  // local ordinal
    std::vector<std::string> strings;
  };

  [[nodiscard]] static std::size_t stripe_of(std::string_view s) noexcept;

  Stripe stripes_[kStripes];
};

}  // namespace farmer
