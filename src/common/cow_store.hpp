// Copy-on-write block store: refcounted immutable per-index blocks behind a
// paged index, with generation-counted lazy cloning.
//
// The mining state that a snapshot publish used to deep-copy (graph nodes,
// per-file semantic state) is dense-by-FileId but mutated with heavy skew: a
// drain round under a Zipf head touches a few hundred files out of a
// 100k-file shard. `CowBlockStore` makes publication cost proportional to
// that *dirty set* instead of the shard size:
//
//   * Every populated index holds a heap block (`shared_ptr<Block>`) tagged
//     with the store generation it was created or cloned at. Block addresses
//     are stable: growing the index never moves a block.
//   * `share()` bumps the generation and returns a second store whose pages
//     structurally share every block — O(pages) pointer copies, no block is
//     touched. After a share, *both* stores see `block.gen < gen_` and will
//     clone before the first mutation, so either side may keep mutating
//     while the other stays frozen (the exported-snapshot use only ever
//     mutates the live side).
//   * `mutate(i)` is the single write gate: it clones the page (an array of
//     `kPageSize` shared_ptrs) and then the block exactly when they are
//     still shared with an earlier `share()`, marks them current, and hands
//     out a mutable reference. A hot file is cloned once per publish epoch
//     and then written in place — the implicit dirty set.
//
// No atomics are read on the write path: sharing is tracked by generation
// counters the owning thread wrote itself, never by `use_count()` (whose
// reader-side decrements would race the check). Cross-thread publication
// safety comes from the caller's release/acquire edge (the RCU table swap):
// after that edge the snapshot side is read-only, so shared blocks are
// immutable by construction and reclamation is plain shared_ptr counting.
//
// The store itself is single-owner (external synchronization required, like
// every mining structure); only the *blocks* are shared across stores.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace farmer {

/// Tag selecting the structural-sharing copy of a COW-backed structure
/// (Farmer, CorrelationGraph): `Farmer snap(CowShare{}, live)`.
struct CowShare {};

/// Cumulative write-path counters (monotone for the lifetime of a store;
/// `share()` copies them into the snapshot, deep copies reset them).
struct CowStoreStats {
  std::uint64_t blocks = 0;   ///< populated indices right now
  std::uint64_t creates = 0;  ///< blocks first populated
  std::uint64_t clones = 0;   ///< blocks copied because a snapshot shared them

  /// Write-path events total: every block that is *not* structurally shared
  /// with the previous share() was counted here exactly once.
  [[nodiscard]] std::uint64_t mutations() const noexcept {
    return creates + clones;
  }
};

template <typename T, std::size_t PageSizeN = 256>
class CowBlockStore {
  static_assert(PageSizeN > 0, "page size must be positive");

 public:
  static constexpr std::size_t kPageSize = PageSizeN;

  CowBlockStore() = default;

  /// Copying a store is always a *deep* copy (every block duplicated,
  /// nothing shared, counters reset to a fresh baseline). Structural
  /// sharing is only ever handed out by the explicit `share()` below, so a
  /// defaulted member copy can never silently alias mining state.
  CowBlockStore(const CowBlockStore& other) { deep_copy_from(other); }
  CowBlockStore& operator=(const CowBlockStore& other) {
    if (this != &other) {
      pages_.clear();
      page_gens_.clear();
      deep_copy_from(other);
    }
    return *this;
  }
  CowBlockStore(CowBlockStore&&) noexcept = default;
  CowBlockStore& operator=(CowBlockStore&&) noexcept = default;

  /// Structurally sharing copy for snapshot publication: O(pages) pointer
  /// copies. Bumps this store's generation first, so every block either
  /// side touches afterwards is cloned before the write.
  [[nodiscard]] CowBlockStore share() {
    ++gen_;
    CowBlockStore snap;
    snap.gen_ = gen_;
    snap.size_ = size_;
    snap.pages_ = pages_;          // shared_ptr copies: pages + blocks shared
    snap.page_gens_ = page_gens_;  // all < gen_, so the snapshot also clones
    snap.stats_ = stats_;
    return snap;
  }

  /// Logical size: one past the highest index ever touched (dense-table
  /// semantics; absent indices read as "no block").
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Grows the logical size without populating anything.
  void grow_to(std::size_t n) {
    if (n > size_) size_ = n;
  }

  /// Block value at `i`, or nullptr when absent / out of range.
  [[nodiscard]] const T* find(std::size_t i) const noexcept {
    if (i >= size_) return nullptr;
    const std::size_t p = i / kPageSize;
    if (p >= pages_.size() || !pages_[p]) return nullptr;
    const BlockPtr& b = pages_[p]->slots[i % kPageSize];
    return b ? &b->value : nullptr;
  }

  /// The write gate: returns a mutable reference to the block at `i`,
  /// default-constructing it when absent and COW-cloning page and block
  /// when they are still shared with an earlier share().
  [[nodiscard]] T& mutate(std::size_t i) {
    const std::size_t p = i / kPageSize;
    if (p >= pages_.size()) {
      pages_.resize(p + 1);
      page_gens_.resize(p + 1, 0);
    }
    if (i >= size_) size_ = i + 1;
    PagePtr& page = pages_[p];
    if (!page) {
      page = std::make_shared<Page>();
      page_gens_[p] = gen_;
    } else if (page_gens_[p] != gen_) {
      page = std::make_shared<Page>(*page);  // kPageSize pointer copies
      page_gens_[p] = gen_;
    }
    BlockPtr& b = page->slots[i % kPageSize];
    if (!b) {
      b = std::make_shared<Block>();
      b->gen = gen_;
      ++stats_.blocks;
      ++stats_.creates;
    } else if (b->gen != gen_) {
      auto fresh = std::make_shared<Block>(*b);  // the actual dirty-copy
      fresh->gen = gen_;
      b = std::move(fresh);
      ++stats_.clones;
    }
    return b->value;
  }

  /// Stable identity of the block at `i` (nullptr when absent): two stores
  /// returning the same pointer are structurally sharing that block — the
  /// COW-invariant tests pin snapshots down with exactly this.
  [[nodiscard]] const void* block_identity(std::size_t i) const noexcept {
    if (i >= size_) return nullptr;
    const std::size_t p = i / kPageSize;
    if (p >= pages_.size() || !pages_[p]) return nullptr;
    return pages_[p]->slots[i % kPageSize].get();
  }

  [[nodiscard]] const CowStoreStats& stats() const noexcept { return stats_; }

  /// Inline bytes of one block as allocated by this store (heap spill of T
  /// is the caller's to account via `footprint_bytes`'s callback).
  [[nodiscard]] static constexpr std::size_t block_inline_bytes() noexcept {
    return sizeof(Block);
  }

  /// Visits every populated block in index order: fn(const T&).
  template <typename Fn>
  void for_each_block(Fn&& fn) const {
    for (const PagePtr& page : pages_) {
      if (!page) continue;
      for (const BlockPtr& b : page->slots)
        if (b) fn(b->value);
    }
  }

  /// Index table + pages + blocks + per-value heap spill, where
  /// `value_heap_bytes(const T&)` reports T's owned heap. Shared blocks are
  /// counted in full by every store referencing them, so summing stores
  /// over-counts shared state — callers that publish snapshots document the
  /// bound they report.
  template <typename Fn>
  [[nodiscard]] std::size_t footprint_bytes(Fn&& value_heap_bytes) const {
    std::size_t bytes = sizeof(*this) + pages_.capacity() * sizeof(PagePtr) +
                        page_gens_.capacity() * sizeof(std::uint64_t);
    for (const PagePtr& page : pages_) {
      if (!page) continue;
      bytes += sizeof(Page);
      for (const BlockPtr& b : page->slots)
        if (b) bytes += sizeof(Block) + value_heap_bytes(b->value);
    }
    return bytes;
  }

 private:
  struct Block {
    std::uint64_t gen = 0;  ///< generation this block was created/cloned at
    T value{};
  };
  using BlockPtr = std::shared_ptr<Block>;
  struct Page {
    std::array<BlockPtr, kPageSize> slots;
  };
  using PagePtr = std::shared_ptr<Page>;

  void deep_copy_from(const CowBlockStore& other) {
    gen_ = 1;
    size_ = other.size_;
    pages_.reserve(other.pages_.size());
    page_gens_.assign(other.pages_.size(), 1);
    stats_ = CowStoreStats{};
    for (const PagePtr& src : other.pages_) {
      if (!src) {
        pages_.push_back(nullptr);
        continue;
      }
      auto page = std::make_shared<Page>();
      for (std::size_t s = 0; s < kPageSize; ++s) {
        if (!src->slots[s]) continue;
        page->slots[s] = std::make_shared<Block>(*src->slots[s]);
        page->slots[s]->gen = 1;
        ++stats_.blocks;
      }
      pages_.push_back(std::move(page));
    }
    stats_.creates = stats_.blocks;
  }

  // Invariant: page_gens_[p] == gen_ iff this store created/cloned page p
  // since the last share(), i.e. the page (and via block gens, each block)
  // is exclusively owned and writable in place.
  std::uint64_t gen_ = 1;
  std::size_t size_ = 0;
  std::vector<PagePtr> pages_;
  std::vector<std::uint64_t> page_gens_;
  CowStoreStats stats_;
};

}  // namespace farmer
