// SmallVector: a vector with inline storage for the first N elements.
//
// Semantic vectors hold 4-12 tokens; successor windows hold <= 8 entries.
// Storing them inline avoids a heap allocation per file request on the
// mining hot path (Core Guidelines Per.14: minimize allocations, Per.15: do
// not allocate on a critical branch).
//
// Only the operations the library needs are implemented; the element type is
// required to be trivially copyable, which all our interned-token and id
// types are. This keeps the grow path a single memcpy.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>

namespace farmer {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector requires trivially copyable elements");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  // User-provided (not defaulted) so `const SmallVector<T, N> v{};` is
  // well-formed; the inline byte storage is deliberately left raw.
  SmallVector() noexcept {}  // NOLINT(modernize-use-equals-default)

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) { copy_from(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear_storage();
      copy_from(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { move_from(std::move(other)); }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear_storage();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { clear_storage(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool is_inline() const noexcept {
    return data_ == inline_data();
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data_[i];
  }

  [[nodiscard]] T& front() noexcept { return (*this)[0]; }
  [[nodiscard]] const T& front() const noexcept { return (*this)[0]; }
  [[nodiscard]] T& back() noexcept { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return (*this)[size_ - 1]; }

  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }

  void push_back(const T& v) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data_[size_++] = v;
  }

  void pop_back() noexcept {
    assert(size_ > 0);
    --size_;
  }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  void resize(std::size_t n, const T& fill = T{}) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  /// Removes the element at index i by shifting the tail left. O(size).
  void erase_at(std::size_t i) noexcept {
    assert(i < size_);
    std::memmove(data_ + i, data_ + i + 1, (size_ - i - 1) * sizeof(T));
    --size_;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) noexcept {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

  /// Heap bytes owned by this vector (0 when inline) — footprint accounting.
  [[nodiscard]] std::size_t heap_bytes() const noexcept {
    return is_inline() ? 0 : capacity_ * sizeof(T);
  }

 private:
  [[nodiscard]] T* inline_data() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  [[nodiscard]] const T* inline_data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void grow(std::size_t new_cap) {
    new_cap = std::max<std::size_t>(new_cap, N * 2);
    T* heap = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (!is_inline()) ::operator delete(data_);
    data_ = heap;
    capacity_ = new_cap;
  }

  void clear_storage() noexcept {
    if (!is_inline()) ::operator delete(data_);
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
  }

  void copy_from(const SmallVector& other) {
    reserve(other.size_);
    std::memcpy(data_, other.data_, other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void move_from(SmallVector&& other) noexcept {
    if (other.is_inline()) {
      std::memcpy(data_, other.data_, other.size_ * sizeof(T));
      size_ = other.size_;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  alignas(T) std::byte inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace farmer
