// Streaming statistics and fixed-resolution latency histograms.
//
// All experiment metrics (hit ratios, response times, accuracies) flow
// through these accumulators so every bench prints consistent summaries.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace farmer {

/// Welford single-pass mean/variance with min/max. O(1) space.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats(); }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log-scaled latency histogram (HdrHistogram-lite): 64 power-of-two major
/// buckets each split into 16 linear sub-buckets, giving <= 6.25% relative
/// error on any quantile while using a fixed 8 KiB footprint.
class LatencyHistogram {
 public:
  LatencyHistogram() : buckets_(kMajor * kSub, 0) {}

  void record(std::uint64_t value_us) noexcept;
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Quantile in [0,1]; returns the representative value of the bucket that
  /// contains the q-th sample.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] std::uint64_t max_value() const noexcept { return max_; }

 private:
  static constexpr std::size_t kMajor = 64;
  static constexpr std::size_t kSub = 16;

  [[nodiscard]] static std::size_t index_of(std::uint64_t v) noexcept;
  [[nodiscard]] static std::uint64_t value_of(std::size_t idx) noexcept;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t max_ = 0;
};

/// Ratio counter for hit/accuracy metrics: numerator/denominator with safe
/// division and percent formatting.
class RatioCounter {
 public:
  void hit() noexcept { ++num_; ++den_; }
  void miss() noexcept { ++den_; }
  void add(bool is_hit) noexcept { is_hit ? hit() : miss(); }

  [[nodiscard]] std::uint64_t numerator() const noexcept { return num_; }
  [[nodiscard]] std::uint64_t denominator() const noexcept { return den_; }
  [[nodiscard]] double ratio() const noexcept {
    return den_ ? static_cast<double>(num_) / static_cast<double>(den_) : 0.0;
  }
  [[nodiscard]] double percent() const noexcept { return ratio() * 100.0; }
  void merge(const RatioCounter& o) noexcept { num_ += o.num_; den_ += o.den_; }
  void reset() noexcept { num_ = den_ = 0; }

 private:
  std::uint64_t num_ = 0;
  std::uint64_t den_ = 0;
};

/// Formats a double with fixed precision — tiny helper shared by benches.
[[nodiscard]] std::string fmt_double(double v, int precision = 2);

/// Formats a byte count as a human-readable string ("98.4 MB").
[[nodiscard]] std::string fmt_bytes(std::size_t bytes);

}  // namespace farmer
