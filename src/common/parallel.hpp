// Minimal task-parallel helpers (Core Guidelines CP.4: think in terms of
// tasks, not threads).
//
// The library parallelises three embarrassingly parallel stages: synthetic
// trace generation (per-process streams), parameter sweeps in the benches,
// and sharded mining. `parallel_for` uses OpenMP when available and falls
// back to a plain loop otherwise, so the build never requires OpenMP.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#if defined(FARMER_HAVE_OPENMP)
#include <omp.h>
#endif

namespace farmer {

/// Number of worker threads the helpers will use.
[[nodiscard]] inline unsigned hardware_parallelism() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Runs body(i) for i in [0, n). `body` must be safe to run concurrently
/// for distinct i. Exceptions must not escape `body` (OpenMP constraint);
/// our bodies write into pre-sized slots and do not throw.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  // Early out: with n == 0 the std::thread fallback would compute
  // workers == 0 and fall into the serial branch only by accident of the
  // `workers <= 1` comparison; make the no-op case explicit for both paths.
  if (n == 0) return;
#if defined(FARMER_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i)
    body(static_cast<std::size_t>(i));
#else
  // Fallback: hand-rolled static partitioning over std::thread.
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(hardware_parallelism(), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t i = w; i < n; i += workers) body(i);
    });
  }
  for (auto& t : pool) t.join();
#endif
}

/// Maps body(i) -> T over [0, n) into a pre-sized vector, in parallel.
template <typename T, typename Body>
[[nodiscard]] std::vector<T> parallel_map(std::size_t n, Body&& body) {
  std::vector<T> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = body(i); });
  return out;
}

}  // namespace farmer
