// Minimal task-parallel helpers (Core Guidelines CP.4: think in terms of
// tasks, not threads).
//
// The library parallelises three embarrassingly parallel stages: synthetic
// trace generation (per-process streams), parameter sweeps in the benches,
// and sharded mining. `parallel_for` uses OpenMP when available and falls
// back to a plain loop otherwise, so the build never requires OpenMP.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#if defined(FARMER_HAVE_OPENMP)
#include <omp.h>
#endif

namespace farmer {

/// Number of worker threads the helpers will use.
[[nodiscard]] inline unsigned hardware_parallelism() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Runs body(i) for i in [0, n). `body` must be safe to run concurrently
/// for distinct i. Exceptions must not escape `body` (OpenMP constraint);
/// our bodies write into pre-sized slots and do not throw.
template <typename Body>
void parallel_for(std::size_t n, Body&& body) {
  // Early out: with n == 0 the std::thread fallback would compute
  // workers == 0 and fall into the serial branch only by accident of the
  // `workers <= 1` comparison; make the no-op case explicit for both paths.
  if (n == 0) return;
#if defined(FARMER_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i)
    body(static_cast<std::size_t>(i));
#else
  // Fallback: hand-rolled static partitioning over std::thread.
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(hardware_parallelism(), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t i = w; i < n; i += workers) body(i);
    });
  }
  for (auto& t : pool) t.join();
#endif
}

/// Maps body(i) -> T over [0, n) into a pre-sized vector, in parallel.
template <typename T, typename Body>
[[nodiscard]] std::vector<T> parallel_map(std::size_t n, Body&& body) {
  std::vector<T> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = body(i); });
  return out;
}

/// A persistent worker pool for repeated small fan-outs (the sharded apply
/// path runs one per ingested batch, where parallel_for's per-call thread
/// spawn would dominate the work). `run(n, body)` executes body(i) for every
/// i in [0, n) and returns only after the last item finished; the calling
/// thread participates, so a pool built with `threads` executes with exactly
/// `threads` lanes. Work is claimed item-by-item from a shared atomic
/// counter (dynamic scheduling — shard slices are skewed by routing).
///
/// Thread-safety: run() is *not* reentrant — one job at a time, issued from
/// one thread (the drain/apply thread in every shipped consumer). The
/// workers are plain std::thread + mutex/condvar, so TSan instruments the
/// pool directly (unlike the OpenMP path of parallel_for).
class WorkerPool {
 public:
  /// Spawns `threads - 1` helper threads (the caller is the last lane).
  /// `threads <= 1` spawns nothing and run() degrades to the serial loop.
  explicit WorkerPool(std::size_t threads) {
    const std::size_t helpers = threads > 1 ? threads - 1 : 0;
    threads_.reserve(helpers);
    for (std::size_t i = 0; i < helpers; ++i)
      threads_.emplace_back([this] { worker_loop(); });
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Lanes this pool executes with (helpers + the calling thread).
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return threads_.size() + 1;
  }

  /// Runs body(i) for i in [0, n); returns after every item completed.
  /// `body` must be safe to run concurrently for distinct i and must not
  /// throw (an escaping exception would strand the completion count).
  template <typename Body>
  void run(std::size_t n, Body&& body) {
    if (n == 0) return;
    if (threads_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    std::function<void(std::size_t)> fn =
        [&body](std::size_t i) { body(i); };
    {
      std::lock_guard<std::mutex> lk(mu_);
      body_ = &fn;
      n_ = n;
      completed_ = 0;
      next_.store(0, std::memory_order_relaxed);
      ++generation_;
    }
    cv_work_.notify_all();
    const std::size_t did = participate(fn, n);
    std::unique_lock<std::mutex> lk(mu_);
    completed_ += did;
    cv_done_.wait(lk, [&] { return completed_ == n_; });
    body_ = nullptr;  // helpers that executed items have already re-locked
  }

 private:
  /// Claims items off the shared counter until the job is exhausted.
  std::size_t participate(const std::function<void(std::size_t)>& fn,
                          std::size_t n) {
    std::size_t did = 0;
    for (std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
         i < n; i = next_.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
      ++did;
    }
    return did;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      const std::function<void(std::size_t)>* fn = body_;
      const std::size_t n = n_;
      // A slow wake can miss a job entirely: the other lanes drained it and
      // run() already retired the body. Nothing left to claim.
      if (fn == nullptr) continue;
      lk.unlock();
      const std::size_t did = participate(*fn, n);
      lk.lock();
      // run() cannot return (and retire `fn`) before every executed item
      // has been counted here, so the dereference above never goes stale.
      completed_ += did;
      if (completed_ == n_) cv_done_.notify_all();
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  // Job slot, guarded by mu_ except for the lock-free item counter.
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::atomic<std::size_t> next_{0};
};

}  // namespace farmer
