// Hash helpers shared across modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace farmer {

/// boost-style hash_combine with a 64-bit mix.
inline void hash_combine(std::size_t& seed, std::size_t v) noexcept {
  seed ^= v + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2);
}

/// Hash for an (id, id) pair — used for edge maps keyed by (file, file).
struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const noexcept {
    std::size_t seed = std::hash<A>{}(p.first);
    hash_combine(seed, std::hash<B>{}(p.second));
    return seed;
  }
};

/// 64-bit finaliser (xxhash/murmur style) for integer keys.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace farmer
