// A single-slot atomically swappable shared_ptr — the RCU publication cell.
//
// The concurrent miner publishes immutable state by atomically swapping a
// shared_ptr: the writer installs a new snapshot (release), readers load
// the current one (acquire) and keep it alive by reference count. C++20's
// std::atomic<std::shared_ptr<T>> is exactly this primitive, and the
// default implementation below is a thin alias for it.
//
// ThreadSanitizer builds substitute a mutex-guarded cell with identical
// acquire/release semantics. This is not paranoia: libstdc++'s _Sp_atomic
// protects its raw pointer with a spin bit-lock whose *reader-side* unlock
// is deliberately memory_order_relaxed (the reader wrote nothing), so the
// mutual exclusion is real but the formal happens-before edge TSan looks
// for does not exist — every load/store pair reports a false-positive race
// on the internal pointer (see GCC PR 113073). Swapping in a primitive
// TSan fully understands keeps the sanitizer tier able to validate all the
// code *around* the cell (queues, drain, snapshot immutability, cache
// stripes) instead of drowning in one known-benign report.
#pragma once

#include <memory>

#if defined(__SANITIZE_THREAD__)
#define FARMER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FARMER_TSAN 1
#endif
#endif

#ifdef FARMER_TSAN
#include <mutex>
#else
#include <atomic>
#endif

namespace farmer {

#ifdef FARMER_TSAN

/// Mutex-backed fallback for sanitizer builds; same observable semantics
/// as the atomic specialization (load-acquire / store-release on one slot).
template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;

  [[nodiscard]] std::shared_ptr<T> load() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ptr_;
  }
  void store(std::shared_ptr<T> p) {
    std::lock_guard<std::mutex> lk(mu_);
    ptr_ = std::move(p);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<T> ptr_;
};

#else

/// One atomic shared_ptr slot: lock-free for readers in the sense that a
/// load is a constant-time refcount acquisition that never waits on the
/// writer's snapshot construction (the swap itself is a pointer-sized
/// critical section inside libstdc++).
template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;

  [[nodiscard]] std::shared_ptr<T> load() const {
    return slot_.load(std::memory_order_acquire);
  }
  void store(std::shared_ptr<T> p) {
    slot_.store(std::move(p), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<T>> slot_;
};

#endif  // FARMER_TSAN

}  // namespace farmer
