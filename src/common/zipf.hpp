// Zipf-distributed sampling over a finite population.
//
// File popularity in every studied trace is heavy-tailed; the workload
// generators draw file/group ranks from Zipf(s, N). Two samplers are
// provided:
//  * `ZipfTable` — O(N) setup, O(log N) draw via CDF inversion; exact.
//  * `ZipfRejection` — O(1) setup and O(1) expected draw using
//    rejection-inversion (Hörmann & Derflinger 1996); preferred for large N.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace farmer {

/// Exact Zipf sampler backed by an explicit cumulative table.
class ZipfTable {
 public:
  /// Ranks are 0-based: rank 0 has probability proportional to 1^-s.
  ZipfTable(std::size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
    const double inv = 1.0 / acc;
    for (auto& c : cdf_) c *= inv;
    cdf_[n - 1] = 1.0;  // guard against accumulated rounding
  }

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  /// Draws a 0-based rank.
  std::size_t sample(Rng& rng) const noexcept {
    const double u = rng.next_double();
    // Branchless-ish binary search over the CDF.
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  /// Probability mass of a rank (for analysis/tests).
  [[nodiscard]] double pmf(std::size_t rank) const noexcept {
    assert(rank < cdf_.size());
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
  }

 private:
  std::vector<double> cdf_;
};

/// O(1) Zipf sampler via rejection-inversion. Valid for s != 1 handled by
/// the generalised harmonic integral; s == 1 uses the log form.
class ZipfRejection {
 public:
  ZipfRejection(std::size_t n, double s)
      : n_(n), s_(s), h_x1_(h(1.5) - std::exp(-s * std::log(1.0))) {
    assert(n > 0);
    h_n_ = h(static_cast<double>(n) + 0.5);
    dist_ = h_x1_ - h_n_;
  }

  std::size_t sample(Rng& rng) const noexcept {
    // Hörmann & Derflinger rejection-inversion loop; expected < 1.1 trips.
    for (;;) {
      const double u = h_n_ + rng.next_double() * dist_;
      const double x = h_inv(u);
      auto k = static_cast<std::int64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > static_cast<std::int64_t>(n_)) k = static_cast<std::int64_t>(n_);
      const double kd = static_cast<double>(k);
      if (kd - x <= s_eps_ || u >= h(kd + 0.5) - std::exp(-s_ * std::log(kd)))
        return static_cast<std::size_t>(k - 1);  // 0-based rank
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  // H(x) = integral of x^-s  (antiderivative, shifted for s == 1).
  [[nodiscard]] double h(double x) const noexcept {
    const double logx = std::log(x);
    if (std::abs(s_ - 1.0) < 1e-12) return logx;
    return std::exp((1.0 - s_) * logx) / (1.0 - s_);
  }
  [[nodiscard]] double h_inv(double u) const noexcept {
    if (std::abs(s_ - 1.0) < 1e-12) return std::exp(u);
    return std::exp(std::log((1.0 - s_) * u) / (1.0 - s_));
  }

  std::size_t n_;
  double s_;
  double h_x1_;
  double h_n_ = 0;
  double dist_ = 0;
  static constexpr double s_eps_ = 1e-8;
};

}  // namespace farmer
