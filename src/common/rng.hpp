// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (workload generators, latency
// jitter, sampling) takes an explicit `Rng&`. There is no global generator:
// experiments must be reproducible bit-for-bit from a seed, including when
// trace generation is parallelised (each shard derives an independent stream
// via `split()`).
#pragma once

#include <cstdint>
#include <cmath>
#include <cassert>

namespace farmer {

/// SplitMix64: used to seed and to derive independent streams.
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the library's workhorse generator.
/// Fast, passes BigCrush, and trivially seedable from SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  /// Uniform 64-bit draw.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound). Lemire's nearly-divisionless method.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    assert(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability `p` of true.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Exponentially distributed draw with the given mean (>0).
  double next_exponential(double mean) noexcept {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);  // avoid log(0)
    return -mean * std::log(u);
  }

  /// Standard-normal draw (Marsaglia polar method, cached spare discarded
  /// deliberately: statelessness keeps split streams independent).
  double next_normal(double mean, double stddev) noexcept {
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
  }

  /// Log-normal draw parameterised by the mean/sigma of the underlying
  /// normal (natural-log scale). Used for file sizes.
  double next_lognormal(double mu, double sigma) noexcept {
    return std::exp(next_normal(mu, sigma));
  }

  /// Derives an independent child generator; deterministic given this
  /// generator's current state. Parallel workload shards each get one.
  Rng split() noexcept { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5Aull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace farmer
