#include "common/interner.hpp"

#include <cassert>
#include <functional>

namespace farmer {

Interner::Interner() {
  strings_.reserve(1024);
  index_.reserve(1024);
}

TokenId Interner::intern(std::string_view s) {
  // Transparent lookup would avoid the temporary; kept simple because
  // interning is off the mining hot path (each string is seen once).
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  const TokenId id(static_cast<std::uint32_t>(strings_.size()));
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

TokenId Interner::lookup(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? TokenId() : it->second;
}

std::string_view Interner::resolve(TokenId id) const {
  assert(id.valid() && id.value() < strings_.size());
  return strings_[id.value()];
}

std::size_t Interner::footprint_bytes() const noexcept {
  std::size_t bytes = sizeof(*this);
  for (const auto& s : strings_) {
    bytes += sizeof(std::string) + s.capacity();
    // Hash-map node: string key (shared semantics counted once), id, bucket
    // pointer. Approximate with the libstdc++ node layout.
    bytes += sizeof(void*) * 2 + sizeof(TokenId) + s.capacity();
  }
  bytes += index_.bucket_count() * sizeof(void*);
  return bytes;
}

std::size_t SharedInterner::stripe_of(std::string_view s) noexcept {
  return std::hash<std::string_view>{}(s) & (kStripes - 1);
}

TokenId SharedInterner::intern(std::string_view s) {
  const std::size_t si = stripe_of(s);
  Stripe& stripe = stripes_[si];
  {
    std::shared_lock lock(stripe.mu);
    auto it = stripe.index.find(std::string(s));
    if (it != stripe.index.end())
      return TokenId(it->second * static_cast<std::uint32_t>(kStripes) +
                     static_cast<std::uint32_t>(si));
  }
  std::unique_lock lock(stripe.mu);
  auto [it, inserted] = stripe.index.try_emplace(
      std::string(s), static_cast<std::uint32_t>(stripe.strings.size()));
  if (inserted) stripe.strings.emplace_back(s);
  return TokenId(it->second * static_cast<std::uint32_t>(kStripes) +
                 static_cast<std::uint32_t>(si));
}

std::string SharedInterner::resolve(TokenId id) const {
  const std::size_t si = id.value() % kStripes;
  const std::size_t ordinal = id.value() / kStripes;
  const Stripe& stripe = stripes_[si];
  std::shared_lock lock(stripe.mu);
  assert(ordinal < stripe.strings.size());
  return stripe.strings[ordinal];
}

std::size_t SharedInterner::size() const {
  std::size_t n = 0;
  for (const auto& stripe : stripes_) {
    std::shared_lock lock(stripe.mu);
    n += stripe.strings.size();
  }
  return n;
}

}  // namespace farmer
