// Lock-free multi-producer single-consumer queue (Vyukov's non-intrusive
// MPSC algorithm).
//
// The async ingest backend gives every producer slot one of these: any
// number of threads may `push()` concurrently and wait-free (one atomic
// exchange each), while exactly one drain thread `pop()`s. Per-queue FIFO
// order is the linearization order of the exchanges, so a single producer's
// records are always applied in program order.
//
// The consumer-side caveat of the algorithm is preserved deliberately: a
// producer that has exchanged `head_` but not yet published `next` makes the
// element momentarily invisible to `pop()`. Callers that need an "everything
// pushed so far is drained" barrier must count elements externally (the
// concurrent miner's `pending` counter does exactly that) instead of polling
// `empty()`.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>

namespace farmer {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() : head_(new Node()), tail_(head_.load(std::memory_order_relaxed)) {}

  ~MpscQueue() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Enqueues `value`. Safe to call from any number of threads concurrently;
  /// never blocks and never takes a lock.
  void push(T value) {
    Node* n = new Node(std::move(value));
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
  }

  /// Dequeues into `out`. Single consumer only. Returns false when the queue
  /// is (observably) empty.
  bool pop(T& out) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->value);
    tail_ = next;
    delete tail;
    return true;
  }

  /// Consumer-side emptiness check; may transiently report empty while a
  /// push is mid-flight (see the header comment).
  [[nodiscard]] bool empty() const noexcept {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  alignas(64) std::atomic<Node*> head_;  // push end (producers)
  alignas(64) Node* tail_;               // pop end (consumer-owned stub)
};

}  // namespace farmer
