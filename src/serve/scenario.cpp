#include "serve/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <stdexcept>
#include <utility>

#include "trace/generator.hpp"

namespace farmer {

const char* load_shape_name(LoadShape s) noexcept {
  switch (s) {
    case LoadShape::kSteady: return "steady";
    case LoadShape::kDiurnal: return "diurnal";
    case LoadShape::kFlashCrowd: return "flash_crowd";
    case LoadShape::kTenantShift: return "tenant_shift";
  }
  return "?";
}

std::string ScenarioSpec::validate() const {
  std::string errs;
  const auto fail = [&errs](const std::string& msg) {
    if (!errs.empty()) errs += "; ";
    errs += msg;
  };
  if (tenants.empty()) fail("tenants must name at least one workload");
  if (!(scale > 0.0) || scale > 1.0) fail("scale must be in (0, 1]");
  if (!(time_scale > 0.0)) fail("time_scale must be positive");
  if (windows == 0 || windows > 1024) fail("windows must be in [1, 1024]");
  if (diurnal_amplitude < 0.0 || diurnal_amplitude >= 1.0)
    fail("diurnal_amplitude must be in [0, 1)");
  if (!(flash_fraction > 0.0) || flash_fraction >= 1.0)
    fail("flash_fraction must be in (0, 1)");
  if (!(flash_squeeze > 0.0) || flash_squeeze >= 1.0)
    fail("flash_squeeze must be in (0, 1)");
  if (pretrain_fraction < 0.0 || pretrain_fraction > 0.9)
    fail("pretrain_fraction must be in [0, 0.9]");
  if (churn_fraction < 0.0 || churn_fraction > 1.0)
    fail("churn_fraction must be in [0, 1]");
  if (churn_events > 0 && churn_fraction == 0.0)
    fail("churn_events without churn_fraction invalidates nothing");
  if (shape == LoadShape::kTenantShift && tenants.size() < 2)
    fail("tenant_shift needs at least two tenants");
  if (warm_start && pretrain_fraction == 0.0)
    fail("warm_start needs pretrain_fraction > 0");
  return errs;
}

namespace {

using Registry = std::map<std::string, ScenarioSpec, std::less<>>;

ScenarioSpec builtin(std::string name, std::string description) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.description = std::move(description);
  return s;
}

Registry& registry() {
  static Registry reg = [] {
    Registry r;
    const auto put = [&r](ScenarioSpec s) { r.emplace(s.name, std::move(s)); };
    {
      ScenarioSpec s = builtin(
          "steady", "single INS tenant at the generator's native rate");
      put(std::move(s));
    }
    {
      ScenarioSpec s = builtin(
          "diurnal", "INS under a sinusoidal day cycle: 5x peak over trough");
      s.shape = LoadShape::kDiurnal;
      put(std::move(s));
    }
    {
      ScenarioSpec s = builtin(
          "flash_crowd",
          "RES with a quarter of all requests landing in 5% of the run");
      s.tenants = {TraceKind::kRES};
      s.shape = LoadShape::kFlashCrowd;
      put(std::move(s));
    }
    {
      ScenarioSpec s = builtin(
          "tenant_shift",
          "two-tenant mix rotating from INS-dominated to RES-dominated");
      s.tenants = {TraceKind::kINS, TraceKind::kRES};
      s.shape = LoadShape::kTenantShift;
      put(std::move(s));
    }
    {
      ScenarioSpec s = builtin(
          "churn",
          "HP with 20% of the file population invalidated six times");
      s.tenants = {TraceKind::kHP};
      s.churn_events = 6;
      s.churn_fraction = 0.2;
      put(std::move(s));
    }
    {
      ScenarioSpec s = builtin(
          "cold_start",
          "serve the last half of INS with a model that saw none of it");
      s.pretrain_fraction = 0.5;
      put(std::move(s));
    }
    {
      ScenarioSpec s = builtin(
          "warm_start",
          "same served half as cold_start, model checkpoint-restored from "
          "the first half");
      s.pretrain_fraction = 0.5;
      s.warm_start = true;
      put(std::move(s));
    }
    {
      ScenarioSpec s = builtin(
          "smoke", "tiny LLNL run for CI loops and quick sanity checks");
      s.tenants = {TraceKind::kLLNL};
      s.scale = 0.05;
      s.windows = 6;
      put(std::move(s));
    }
    return r;
  }();
  return reg;
}

/// Monotone warp of a normalised arrival position u in [0, 1]. The arrival
/// *density* at warped position w(u) is proportional to 1/w'(u), so a flat
/// stretch of w concentrates requests and a steep stretch thins them.
double warp(const ScenarioSpec& spec, double u, std::uint32_t tenant) {
  switch (spec.shape) {
    case LoadShape::kSteady:
      return u;
    case LoadShape::kDiurnal: {
      // w' = 1 + A cos(2πu): steep (sparse) at the edges, flat (dense)
      // mid-run — one day cycle peaking at the middle of the trace.
      const double a = spec.diurnal_amplitude;
      constexpr double kTwoPi = 2.0 * std::numbers::pi;
      return u + a / kTwoPi * std::sin(kTwoPi * u);
    }
    case LoadShape::kFlashCrowd: {
      // The middle `flash_fraction` of requests (by position) land inside
      // `flash_squeeze` of the span; the outer segments stretch linearly
      // over the remaining time. Piecewise linear, strictly increasing.
      const double a = 0.5 - spec.flash_fraction / 2.0;
      const double b = 0.5 + spec.flash_fraction / 2.0;
      const double lo = 0.5 - spec.flash_squeeze / 2.0;
      const double hi = 0.5 + spec.flash_squeeze / 2.0;
      if (u < a) return u * (lo / a);
      if (u <= b) return lo + (u - a) * ((hi - lo) / (b - a));
      return hi + (u - b) * ((1.0 - hi) / (1.0 - b));
    }
    case LoadShape::kTenantShift:
      // Even tenants front-load (w' = 2u: dense early, draining), odd
      // tenants back-load (mirror image, ramping) — the serving mix
      // rotates mid-run while each tenant's internal order is untouched.
      return tenant % 2 == 0 ? u * u : 1.0 - (1.0 - u) * (1.0 - u);
  }
  return u;
}

}  // namespace

bool register_scenario(ScenarioSpec spec) {
  const std::string name = spec.name;
  return registry().insert_or_assign(name, std::move(spec)).second;
}

std::vector<std::string> registered_scenarios() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, spec] : registry()) names.push_back(name);
  return names;
}

ScenarioSpec scenario_spec(std::string_view name) {
  const Registry& reg = registry();
  if (const auto it = reg.find(name); it != reg.end()) return it->second;
  std::string msg = "unknown scenario \"";
  msg += name;
  msg += "\"; registered:";
  for (const auto& [known, spec] : reg) msg += " " + known;
  throw std::invalid_argument(msg);
}

ScenarioWorkload build_workload(const ScenarioSpec& spec) {
  if (const std::string err = spec.validate(); !err.empty())
    throw std::invalid_argument("scenario \"" + spec.name + "\": " + err);

  MultiTenantTrace mt =
      make_multi_tenant_trace(spec.tenants, spec.seed, spec.scale);
  ScenarioWorkload wl;
  wl.trace = std::move(mt.trace);
  wl.file_begin = std::move(mt.file_begin);

  auto& recs = wl.trace.records;
  if (!recs.empty() && spec.shape != LoadShape::kSteady) {
    const SimTime t0 = recs.front().timestamp;
    const double span =
        static_cast<double>(recs.back().timestamp - t0);
    if (span > 0.0) {
      for (TraceRecord& r : recs) {
        const double u = static_cast<double>(r.timestamp - t0) / span;
        const double w = warp(spec, u, mt.tenant_of(r.file));
        r.timestamp = t0 + static_cast<SimTime>(std::llround(w * span));
      }
      // The warp is monotone per tenant but tenants interleave; a stable
      // sort restores global time order while preserving the original
      // relative order of simultaneous records — bit-reproducible.
      std::stable_sort(recs.begin(), recs.end(),
                       [](const TraceRecord& a, const TraceRecord& b) {
                         return a.timestamp < b.timestamp;
                       });
    }
  }

  wl.pretrain_records = std::min(
      recs.size(),
      static_cast<std::size_t>(
          spec.pretrain_fraction * static_cast<double>(recs.size()) + 0.5));

  if (spec.churn_events > 0 && wl.pretrain_records < recs.size()) {
    const std::size_t files = wl.trace.file_count();
    const auto count = static_cast<std::size_t>(
        std::max(1.0, spec.churn_fraction * static_cast<double>(files)));
    const SimTime ts0 = recs[wl.pretrain_records].timestamp;
    const double span = static_cast<double>(recs.back().timestamp - ts0);
    for (std::size_t k = 0; k < spec.churn_events; ++k) {
      ChurnEvent ev;
      ev.at = ts0 + static_cast<SimTime>(std::llround(
                        span * static_cast<double>(k + 1) /
                        static_cast<double>(spec.churn_events + 1)));
      // Rotate through the population so successive events hit different
      // (deterministic) file ranges.
      ev.file_lo = files ? static_cast<std::uint32_t>((k * count) % files)
                         : 0;
      ev.file_hi = static_cast<std::uint32_t>(
          std::min(files, static_cast<std::size_t>(ev.file_lo) + count));
      wl.churn.push_back(ev);
    }
  }
  return wl;
}

}  // namespace farmer
