// Closed-loop serving harness.
//
// Replays a ScenarioWorkload against a live MDS under discrete-event time:
// every demand request trains the predictor (learning is in the loop, not
// ahead of it), the predictor's prefetch decisions land in the metadata
// cache through the two-priority disk queue, and the run streams out one
// WindowStats row per reporting window — hit-ratio ramp, prefetch
// precision/waste, response-time percentiles, ingest lag — so scenario
// effects show up as a time series instead of one washed-out average.
//
//   trace ──▶ arrival chain ──▶ MdsServer ──▶ cache / disk queues
//                 │                 │
//                 │          Predictor.observe / predict
//                 │                 │
//            window clock ──▶ WindowStats rows (api/window_stats.hpp)
//
// `run_scenario` is the whole loop: realise the spec, build the predictor
// by factory name, pretrain / checkpoint-restore when the spec says so,
// serve, report. `serve` is the lower-level entry for callers that bring
// their own predictor instance (the stress tests drive a concurrently
// ingesting miner through it).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "api/predictor_factory.hpp"
#include "api/window_stats.hpp"
#include "cache/metadata_cache.hpp"
#include "common/stats.hpp"
#include "prefetch/predictor.hpp"
#include "serve/scenario.hpp"

namespace farmer {

/// One scenario run: the per-window time series plus run totals. The
/// windowed counters sum exactly to the cumulative ones (WindowStats field
/// contract).
struct ServingResult {
  std::string scenario;
  std::string predictor;  ///< Predictor::name() of the serving predictor
  std::vector<WindowStats> windows;
  LatencyHistogram response;  ///< every demand completion, µs
  CacheStats cache;           ///< cumulative over the served span
  std::uint64_t requests = 0;
  std::uint64_t prefetch_batches = 0;
  std::uint64_t duplicate_suppressed = 0;
  std::uint64_t invalidations = 0;
  SimTime sim_duration = 0;
  std::size_t model_footprint_bytes = 0;
  /// Warm-start runs only: the model reached serving through a real
  /// save()/load() checkpoint round-trip (false = warmed in memory because
  /// the backend has no persistence, or not a warm start at all).
  bool checkpoint_restored = false;

  [[nodiscard]] double demand_hit_ratio() const noexcept {
    return cache.hit_ratio();
  }
};

/// Serves `wl`'s post-pretrain suffix through `predictor` (whatever state
/// it is in — run_scenario handles warming). Deterministic for a given
/// (spec, wl, predictor state).
[[nodiscard]] ServingResult serve(const ScenarioSpec& spec,
                                  const ScenarioWorkload& wl,
                                  Predictor& predictor);

/// The full closed loop: build_workload(spec), construct `predictor_name`
/// through the PredictorFactory, apply the spec's cold/warm-start policy
/// (warm: pretrain on the prefix, checkpoint-restore via the miner's
/// save()/load() when supported), then serve. Throws std::invalid_argument
/// on a bad spec, unknown predictor or invalid options.
[[nodiscard]] ServingResult run_scenario(const ScenarioSpec& spec,
                                         std::string_view predictor_name,
                                         const PredictorOptions& opts = {});

}  // namespace farmer
