#include "serve/harness.hpp"

#include <unistd.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <utility>

#include "analysis/experiment.hpp"
#include "api/correlation_miner.hpp"
#include "core/config.hpp"
#include "sim/simulator.hpp"
#include "storage/mds.hpp"

namespace farmer {

ServingResult serve(const ScenarioSpec& spec, const ScenarioWorkload& wl,
                    Predictor& predictor) {
  ServingResult res;
  res.scenario = spec.name;
  res.predictor = predictor.name();
  res.windows.resize(spec.windows);
  for (std::size_t i = 0; i < res.windows.size(); ++i)
    res.windows[i].index = i;

  const auto& recs = wl.trace.records;
  const std::size_t begin = std::min(wl.pretrain_records, recs.size());
  const std::size_t n = recs.size() - begin;
  if (n == 0) return res;

  Simulator sim;
  MdsConfig mcfg;
  mcfg.cache_capacity = spec.cache_capacity ? spec.cache_capacity
                                            : default_cache_capacity(wl.trace);
  mcfg.prefetch_degree =
      spec.prefetch_degree ? spec.prefetch_degree : kDefaultPrefetchDegree;
  MdsServer mds(sim, mcfg, predictor);
  mds.populate(wl.trace.file_count());

  // Serving time starts at 0 at the first served record; arrivals and churn
  // events share the spec's time_scale.
  const SimTime tb = recs[begin].timestamp;
  const auto scaled = [&](SimTime t) {
    return static_cast<SimTime>(static_cast<double>(t - tb) *
                                spec.time_scale);
  };
  const std::size_t nwin = spec.windows;
  const SimTime span = scaled(recs.back().timestamp);
  // Ceil so the last arrival falls inside window nwin-1; completions past
  // the final boundary clamp into it (WindowStats contract).
  const SimTime window_len =
      std::max<SimTime>(1, (span + static_cast<SimTime>(nwin)) /
                               static_cast<SimTime>(nwin));

  std::vector<LatencyHistogram> whist(nwin);
  std::uint64_t invalidations = 0;

  // Cumulative counters at the previous window close; the window's numbers
  // are diffs against these.
  CacheStats prev_cache;
  std::uint64_t prev_inval = 0;
  const auto close_window = [&](std::size_t i, SimTime end_time) {
    WindowStats& w = res.windows[i];
    w.begin_us = static_cast<SimTime>(i) * window_len;
    w.end_us = end_time;
    const CacheStats& cur = mds.cache().stats();
    w.demand_requests =
        cur.demand.denominator() - prev_cache.demand.denominator();
    w.demand_hits = cur.demand.numerator() - prev_cache.demand.numerator();
    w.prefetch_inserted = cur.prefetch_inserted - prev_cache.prefetch_inserted;
    w.prefetch_used = cur.prefetch_used - prev_cache.prefetch_used;
    w.prefetch_evicted_unused =
        cur.prefetch_evicted_unused - prev_cache.prefetch_evicted_unused;
    w.invalidations = invalidations - prev_inval;
    prev_cache = cur;
    prev_inval = invalidations;
    if (const CorrelationMiner* m = std::as_const(predictor).miner()) {
      const MinerStats ms = m->stats();
      w.ingest_pending = ms.pending;
      w.ingest_epoch = ms.epoch;
    }
    w.model_footprint_bytes = predictor.footprint_bytes();
  };
  // Interior boundaries are simulation events so the gauges are sampled at
  // the window's close, mid-run; the final window closes after the queue
  // drains (its end is the true run end, covering trailing completions).
  for (std::size_t i = 0; i + 1 < nwin; ++i) {
    const SimTime at = static_cast<SimTime>(i + 1) * window_len;
    sim.schedule_at(at, [&close_window, i, at] { close_window(i, at); });
  }

  for (const ChurnEvent& ev : wl.churn) {
    sim.schedule_at(scaled(ev.at), [&mds, &invalidations, ev] {
      for (std::uint32_t f = ev.file_lo; f < ev.file_hi; ++f)
        mds.invalidate(FileId(f));
      invalidations += ev.file_hi - ev.file_lo;
    });
  }

  // Self-clocking arrival chain (see storage/cluster.cpp for the weak_ptr
  // rationale): each arrival schedules the next, and every completion bins
  // its response time into the window containing the completion instant.
  const auto record_response = [&](SimTime rt) {
    res.response.record(static_cast<std::uint64_t>(rt));
    const auto idx = std::min(
        nwin - 1, static_cast<std::size_t>(sim.now() / window_len));
    whist[idx].record(static_cast<std::uint64_t>(rt));
  };
  auto issue = std::make_shared<std::function<void(std::size_t)>>();
  *issue = [&, weak = std::weak_ptr(issue)](std::size_t i) {
    if (i + 1 < recs.size())
      sim.schedule_at(scaled(recs[i + 1].timestamp), [weak, i] {
        if (const auto self = weak.lock()) (*self)(i + 1);
      });
    mds.handle_demand(recs[i], record_response);
  };
  sim.schedule_at(0, [issue, begin] { (*issue)(begin); });

  sim.run();

  close_window(nwin - 1, sim.now());
  for (std::size_t i = 0; i < nwin; ++i) {
    WindowStats& w = res.windows[i];
    const LatencyHistogram& h = whist[i];
    w.responses = h.count();
    w.mean_response_us = h.mean();
    w.p50_response_us = h.p50();
    w.p95_response_us = h.p95();
    w.p99_response_us = h.p99();
  }

  res.cache = mds.cache().stats();
  res.requests = n;
  res.prefetch_batches = mds.prefetch_batches();
  res.duplicate_suppressed = mds.duplicate_suppressed();
  res.invalidations = invalidations;
  res.sim_duration = sim.now();
  res.model_footprint_bytes = predictor.footprint_bytes();
  return res;
}

ServingResult run_scenario(const ScenarioSpec& spec,
                           std::string_view predictor_name,
                           const PredictorOptions& opts) {
  const ScenarioWorkload wl = build_workload(spec);
  FarmerConfig cfg;
  cfg.attributes = wl.trace.has_paths ? AttributeMask::all_with_path()
                                      : AttributeMask::all_with_fileid();
  auto serving = make_predictor(predictor_name, cfg, wl.trace.dict, opts);
  bool restored = false;
  if (spec.warm_start && wl.pretrain_records > 0) {
    auto pre = make_predictor(predictor_name, cfg, wl.trace.dict, opts);
    for (std::size_t i = 0; i < wl.pretrain_records; ++i)
      pre->observe(wl.trace.records[i]);
    pre->flush();
    CorrelationMiner* warmed = pre->miner();
    CorrelationMiner* fresh = serving->miner();
    if (warmed && fresh) {
      namespace fs = std::filesystem;
      const fs::path dir =
          fs::temp_directory_path() /
          ("farmer-serve-" + spec.name + "-" + std::to_string(spec.seed) +
           "-" + std::to_string(static_cast<long>(::getpid())));
      try {
        warmed->save(dir.string());
        fresh->load(dir.string());
        restored = true;
      } catch (const std::logic_error&) {
        // Backend without persistence: serve with the in-memory warm model.
        serving = std::move(pre);
      }
      std::error_code ec;
      fs::remove_all(dir, ec);
    } else {
      // Self-contained baseline predictor: nothing to checkpoint, carry the
      // pretrained instance into serving directly.
      serving = std::move(pre);
    }
  }
  ServingResult res = serve(spec, wl, *serving);
  res.checkpoint_restored = restored;
  return res;
}

}  // namespace farmer
