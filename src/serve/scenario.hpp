// Declarative serving scenarios.
//
// A ScenarioSpec describes one closed-loop serving experiment as data: which
// workloads arrive, how the arrival rate is shaped over the run, how much
// history the model holds when serving starts, and what perturbs the file
// population mid-run. `build_workload` turns the spec into a deterministic
// ScenarioWorkload — a time-warped trace plus a churn plan — and
// serve/harness.hpp replays it against a live predictor.
//
// Load shapes are monotone timestamp warps over the generated trace: the
// request *content* (files, users, ordering within equal instants) is
// untouched, only the arrival density changes, so two shapes over the same
// (tenants, seed, scale) stress the same model with different queueing.
// Everything is derived from the spec's seed; the same spec always builds
// the bit-identical workload (the determinism tests pin this down).
//
// Built-in scenarios mirror the registry idiom of MinerFactory and
// PredictorFactory: look one up by name (`FARMER_SCENARIO=...`,
// `bench_serving --scenario ...`), or register new ones at startup.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "trace/record.hpp"

namespace farmer {

/// How the arrival rate evolves over the serving run.
enum class LoadShape : std::uint8_t {
  kSteady,       ///< the generator's native arrival process
  kDiurnal,      ///< sinusoidal rate: quiet edges, peak mid-run
  kFlashCrowd,   ///< a burst: many requests squeezed into a short span
  kTenantShift,  ///< tenant mix rotates: early tenants drain, late ones ramp
};

[[nodiscard]] const char* load_shape_name(LoadShape s) noexcept;

/// One serving experiment, as data. Defaults describe a steady
/// single-tenant run; the built-ins override from here.
struct ScenarioSpec {
  std::string name;         ///< registry key (and the bench row label)
  std::string description;  ///< one line for --list-scenarios
  /// Workloads merged into the request stream (one = single tenant).
  std::vector<TraceKind> tenants{TraceKind::kINS};
  std::uint64_t seed = 20080122;  ///< kExperimentSeed
  double scale = 0.15;            ///< trace volume fraction, (0, 1]
  LoadShape shape = LoadShape::kSteady;
  /// kDiurnal: rate swing around the mean, [0, 1). 0.8 means the peak rate
  /// is 5x the trough.
  double diurnal_amplitude = 0.8;
  /// kFlashCrowd: the middle `flash_fraction` of requests arrive within
  /// `flash_squeeze` of the time span (both in (0, 1)).
  double flash_fraction = 0.25;
  double flash_squeeze = 0.05;
  /// Multiplies arrival gaps; < 1 compresses time and raises load.
  double time_scale = 1.0;
  /// Reporting windows the serving span is split into, [1, 1024].
  std::size_t windows = 12;
  /// Leading fraction of the stream that is model history, not served:
  /// cold-start scenarios skip it (the model simply never saw it),
  /// warm-start scenarios pretrain on it before serving the rest.
  double pretrain_fraction = 0.0;
  /// Pretrain on the prefix and carry the model into serving — through a
  /// save()/load() checkpoint round-trip when the mining backend supports
  /// persistence (reusing src/persist/), in memory otherwise. false with
  /// pretrain_fraction > 0 is the cold-start control: same served suffix,
  /// empty model.
  bool warm_start = false;
  /// File-population churn: this many invalidation events, evenly spaced
  /// over the serving span, each dropping a rotating `churn_fraction` of
  /// the file population from the MDS cache (files deleted/recreated under
  /// the server).
  std::size_t churn_events = 0;
  double churn_fraction = 0.0;  ///< of the file population, [0, 1]
  /// MDS overrides; 0 = derive from the trace (default_cache_capacity,
  /// kDefaultPrefetchDegree).
  std::size_t cache_capacity = 0;
  std::size_t prefetch_degree = 0;

  /// Empty string when every constraint holds; otherwise all violations,
  /// "; "-joined (mirroring FarmerConfig::validate).
  [[nodiscard]] std::string validate() const;
};

/// Adds (or replaces) `spec` under `spec.name`. Returns true when the name
/// was new. Built-ins "steady", "diurnal", "flash_crowd", "tenant_shift",
/// "churn", "cold_start", "warm_start" and "smoke" are pre-registered.
/// Thread-safety: like the other registries, register at startup only.
bool register_scenario(ScenarioSpec spec);

/// Registered scenario names, sorted.
[[nodiscard]] std::vector<std::string> registered_scenarios();

/// The spec registered under `name` (by value — callers tweak their copy).
/// Throws std::invalid_argument on an unknown name, listing the registered
/// scenarios.
[[nodiscard]] ScenarioSpec scenario_spec(std::string_view name);

/// One churn event: at simulated trace time `at` (unscaled — the harness
/// applies the spec's time_scale), files [file_lo, file_hi) are invalidated.
struct ChurnEvent {
  SimTime at = 0;
  std::uint32_t file_lo = 0;
  std::uint32_t file_hi = 0;
};

/// A spec, realised: the warped request stream plus the serving plan.
struct ScenarioWorkload {
  Trace trace;  ///< time-warped, re-sorted; dictionary shared as usual
  /// Per-tenant FileId range starts plus end marker (MultiTenantTrace).
  std::vector<std::uint32_t> file_begin;
  /// Records [0, pretrain_records) are history; serving replays the rest.
  std::size_t pretrain_records = 0;
  std::vector<ChurnEvent> churn;  ///< by ascending `at`
};

/// Deterministically realises `spec`. Throws std::invalid_argument when
/// `spec.validate()` is non-empty.
[[nodiscard]] ScenarioWorkload build_workload(const ScenarioSpec& spec);

}  // namespace farmer
