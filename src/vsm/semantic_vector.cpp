#include "vsm/semantic_vector.hpp"

#include <algorithm>

namespace farmer {

namespace {

void push_if_valid(SmallVector<TokenId, 12>& items, TokenId t) {
  if (t.valid()) items.push_back(t);
}

}  // namespace

Signature build_signature(const SemanticVector& sv, AttributeMask mask,
                          PathMode mode) {
  Signature sig;
  if (mask.has(Attribute::kUser)) push_if_valid(sig.items, sv.user);
  if (mask.has(Attribute::kProcess)) push_if_valid(sig.items, sv.process);
  if (mask.has(Attribute::kHost)) push_if_valid(sig.items, sv.host);
  if (mask.has(Attribute::kFileId)) {
    push_if_valid(sig.items, sv.dev);
    push_if_valid(sig.items, sv.fid);
  }
  if (mask.has(Attribute::kPath) && sv.has_path()) {
    if (mode == PathMode::kDivided) {
      // DPA: every component is an ordinary item.
      for (TokenId t : sv.path_components) sig.items.push_back(t);
    } else {
      sig.ipa_path = true;
      sig.path_sorted = sv.path_components;
      std::sort(sig.path_sorted.begin(), sig.path_sorted.end());
    }
  }
  std::sort(sig.items.begin(), sig.items.end());
  return sig;
}

void intern_path_components(std::string_view path, Interner& interner,
                            SmallVector<TokenId, 8>& out) {
  out.clear();
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) out.push_back(interner.intern(path.substr(i, j - i)));
    i = j;
  }
}

}  // namespace farmer
