// Semantic vectors: the VSM representation of a file's request context.
//
// A semantic vector holds one interned token per scalar attribute (user,
// process, host, device, fid) plus the interned components of the file path
// when the trace provides one. Tokens live in a single global interner so a
// user name appearing as a path component ("user1" in /home/user1/...)
// matches the user attribute token — exactly the multiset semantics of the
// paper's Table 1 example.
#pragma once

#include <string_view>

#include "common/interner.hpp"
#include "common/small_vector.hpp"
#include "common/types.hpp"
#include "vsm/attribute.hpp"

namespace farmer {

/// Raw semantic vector of one file as of its most recent access.
struct SemanticVector {
  TokenId user;     ///< user-name token (invalid if unknown)
  TokenId process;  ///< process/program token
  TokenId host;     ///< host-name token
  TokenId dev;      ///< device token (INS/RES "File ID" locality part)
  TokenId fid;      ///< per-file token (INS/RES "File ID" identity part)
  SmallVector<TokenId, 8> path_components;  ///< path dirs + filename; empty
                                            ///< when the trace has no paths

  [[nodiscard]] bool has_path() const noexcept {
    return !path_components.empty();
  }
};

/// Path handling mode for the similarity computation (Section 3.2.1).
enum class PathMode {
  kDivided,     ///< DPA: each path component is an independent vector item
  kIntegrated,  ///< IPA: the whole path is one item valued by dir similarity
};

/// A `Signature` is a semantic vector pre-processed for one experiment
/// configuration (attribute mask + path mode): scalar items are gathered and
/// sorted once so pairwise similarity is a linear merge. Building signatures
/// once per access (instead of per pair) keeps CoMiner's per-request cost at
/// O(window * tokens).
struct Signature {
  SmallVector<TokenId, 12> items;       ///< sorted scalar (and DPA path) items
  SmallVector<TokenId, 8> path_sorted;  ///< sorted path components (IPA only)
  bool ipa_path = false;                ///< path participates as one item

  /// Total item count, with the IPA path counting as a single item.
  [[nodiscard]] std::size_t item_count() const noexcept {
    return items.size() + (ipa_path ? 1 : 0);
  }
};

/// Builds the signature of `sv` under `mask`/`mode`.
[[nodiscard]] Signature build_signature(const SemanticVector& sv,
                                        AttributeMask mask, PathMode mode);

/// Convenience: parse "/home/user1/paper/a" into interned components.
/// Consecutive separators are collapsed; a trailing separator is ignored.
void intern_path_components(std::string_view path, Interner& interner,
                            SmallVector<TokenId, 8>& out);

}  // namespace farmer
