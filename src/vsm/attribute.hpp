// Semantic attribute kinds and attribute-combination masks.
//
// The paper evaluates fifteen combinations of four attributes per trace
// (Table 5 / "Figure 5"): {User, Process, Host, File Path} for the HP trace
// and {User, Process, Host, File ID} for INS/RES (which lack path
// information). A mask selects which attributes participate in the semantic
// vector for a given experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace farmer {

enum class Attribute : std::uint8_t {
  kUser = 1u << 0,
  kProcess = 1u << 1,
  kHost = 1u << 2,
  kPath = 1u << 3,    ///< full file path (HP / LLNL style traces)
  kFileId = 1u << 4,  ///< device + fid pair (INS / RES style traces)
};

/// Bitmask of `Attribute` values.
class AttributeMask {
 public:
  constexpr AttributeMask() noexcept = default;
  constexpr explicit AttributeMask(std::uint8_t bits) noexcept : bits_(bits) {}
  constexpr AttributeMask(std::initializer_list<Attribute> attrs) noexcept {
    for (Attribute a : attrs) bits_ |= static_cast<std::uint8_t>(a);
  }

  [[nodiscard]] constexpr bool has(Attribute a) const noexcept {
    return (bits_ & static_cast<std::uint8_t>(a)) != 0;
  }
  [[nodiscard]] constexpr std::uint8_t bits() const noexcept { return bits_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return bits_ == 0; }

  constexpr AttributeMask& operator|=(Attribute a) noexcept {
    bits_ |= static_cast<std::uint8_t>(a);
    return *this;
  }
  friend constexpr AttributeMask operator|(AttributeMask m,
                                           Attribute a) noexcept {
    m |= a;
    return m;
  }
  friend constexpr bool operator==(AttributeMask a, AttributeMask b) noexcept {
    return a.bits_ == b.bits_;
  }

  /// All four attributes with a full path (HP/LLNL experiments).
  [[nodiscard]] static constexpr AttributeMask all_with_path() noexcept {
    return AttributeMask{Attribute::kUser, Attribute::kProcess,
                         Attribute::kHost, Attribute::kPath};
  }
  /// All four attributes with file-id locality (INS/RES experiments).
  [[nodiscard]] static constexpr AttributeMask all_with_fileid() noexcept {
    return AttributeMask{Attribute::kUser, Attribute::kProcess,
                         Attribute::kHost, Attribute::kFileId};
  }

 private:
  std::uint8_t bits_ = 0;
};

/// A named attribute combination (one row of Table 5).
struct AttributeCombination {
  std::string label;
  AttributeMask mask;
};

/// The fifteen combinations the paper enumerates, in the paper's row order.
/// `use_path` selects File Path (HP) vs File ID (INS/RES) as the fourth
/// attribute.
[[nodiscard]] std::vector<AttributeCombination> paper_attribute_combinations(
    bool use_path);

/// Human-readable name of a single attribute.
[[nodiscard]] const char* attribute_name(Attribute a) noexcept;

/// Human-readable rendering of a mask, e.g. "{User, Process, File Path}".
[[nodiscard]] std::string mask_to_string(AttributeMask mask);

}  // namespace farmer
