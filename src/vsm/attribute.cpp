#include "vsm/attribute.hpp"

namespace farmer {

const char* attribute_name(Attribute a) noexcept {
  switch (a) {
    case Attribute::kUser:
      return "User";
    case Attribute::kProcess:
      return "Process";
    case Attribute::kHost:
      return "Host";
    case Attribute::kPath:
      return "File Path";
    case Attribute::kFileId:
      return "File ID";
  }
  return "?";
}

std::string mask_to_string(AttributeMask mask) {
  std::string out = "{";
  bool first = true;
  for (Attribute a : {Attribute::kUser, Attribute::kProcess, Attribute::kHost,
                      Attribute::kPath, Attribute::kFileId}) {
    if (!mask.has(a)) continue;
    if (!first) out += ", ";
    out += attribute_name(a);
    first = false;
  }
  out += "}";
  return out;
}

std::vector<AttributeCombination> paper_attribute_combinations(bool use_path) {
  const Attribute loc = use_path ? Attribute::kPath : Attribute::kFileId;
  const std::string loc_name = attribute_name(loc);
  using A = Attribute;
  // Row order follows Table 5 in the paper.
  std::vector<AttributeCombination> rows;
  auto add = [&rows](std::string label, AttributeMask m) {
    rows.push_back({std::move(label), m});
  };
  add("{User}", {A::kUser});
  add("{Process}", {A::kProcess});
  add("{Host}", {A::kHost});
  add("{" + loc_name + "}", AttributeMask{} | loc);
  add("{User, " + loc_name + "}", AttributeMask{A::kUser} | loc);
  add("{Process, " + loc_name + "}", AttributeMask{A::kProcess} | loc);
  add("{User, Process}", {A::kUser, A::kProcess});
  add("{Host, Process}", {A::kHost, A::kProcess});
  add("{Host, User}", {A::kHost, A::kUser});
  add("{Host, " + loc_name + "}", AttributeMask{A::kHost} | loc);
  add("{Host, Process, " + loc_name + "}",
      AttributeMask{A::kHost, A::kProcess} | loc);
  add("{Host, User, " + loc_name + "}",
      AttributeMask{A::kHost, A::kUser} | loc);
  add("{User, Process, " + loc_name + "}",
      AttributeMask{A::kUser, A::kProcess} | loc);
  add("{Host, Process, User}", {A::kHost, A::kProcess, A::kUser});
  add("{Host, User, Process, " + loc_name + "}",
      AttributeMask{A::kHost, A::kUser, A::kProcess} | loc);
  return rows;
}

}  // namespace farmer
