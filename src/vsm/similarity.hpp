// Semantic Distance: the VSM similarity function of Section 3.2.1.
//
//   sim(A, B) = |A ∩ B| / |max(A, B)|
//
// where A and B are semantic vectors treated as multisets of items, the
// intersection is the multiset intersection, and |max(A,B)| is the larger
// cardinality. Under IPA the file path contributes a *fractional* item whose
// value is the directory-component similarity, reproducing the paper's
// Table 2 worked example exactly:
//
//   DPA: sim(A,B) = 5/7,  sim(A,C) = sim(B,C) = 1/7
//   IPA: sim(A,B) = 2.75/4, sim(A,C) = sim(B,C) = 0.25/4
#pragma once

#include "vsm/semantic_vector.hpp"

namespace farmer {

/// Multiset intersection size of two *sorted* token ranges. O(n+m).
[[nodiscard]] std::size_t multiset_intersection(const TokenId* a,
                                                std::size_t na,
                                                const TokenId* b,
                                                std::size_t nb) noexcept;

/// Directory similarity used by IPA: multiset intersection of path
/// components divided by the larger component count. Both inputs sorted.
[[nodiscard]] double path_similarity(const SmallVector<TokenId, 8>& a,
                                     const SmallVector<TokenId, 8>& b) noexcept;

/// Semantic Distance between two prebuilt signatures (same mask/mode).
/// Returns a value in [0, 1]; 0 when either signature is empty.
[[nodiscard]] double similarity(const Signature& a,
                                const Signature& b) noexcept;

/// Convenience overload building signatures on the fly (tests, examples).
[[nodiscard]] double similarity(const SemanticVector& a,
                                const SemanticVector& b, AttributeMask mask,
                                PathMode mode);

}  // namespace farmer
