#include "vsm/similarity.hpp"

#include <algorithm>

namespace farmer {

std::size_t multiset_intersection(const TokenId* a, std::size_t na,
                                  const TokenId* b, std::size_t nb) noexcept {
  std::size_t i = 0, j = 0, common = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

double path_similarity(const SmallVector<TokenId, 8>& a,
                       const SmallVector<TokenId, 8>& b) noexcept {
  if (a.empty() || b.empty()) return 0.0;
  const std::size_t common =
      multiset_intersection(a.data(), a.size(), b.data(), b.size());
  const std::size_t denom = std::max(a.size(), b.size());
  return static_cast<double>(common) / static_cast<double>(denom);
}

double similarity(const Signature& a, const Signature& b) noexcept {
  const std::size_t ca = a.item_count();
  const std::size_t cb = b.item_count();
  if (ca == 0 || cb == 0) return 0.0;
  double common = static_cast<double>(multiset_intersection(
      a.items.data(), a.items.size(), b.items.data(), b.items.size()));
  if (a.ipa_path && b.ipa_path)
    common += path_similarity(a.path_sorted, b.path_sorted);
  const auto denom = static_cast<double>(std::max(ca, cb));
  return common / denom;
}

double similarity(const SemanticVector& a, const SemanticVector& b,
                  AttributeMask mask, PathMode mode) {
  return similarity(build_signature(a, mask, mode),
                    build_signature(b, mask, mode));
}

}  // namespace farmer
