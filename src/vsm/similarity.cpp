#include "vsm/similarity.hpp"

#include <algorithm>
#include <utility>

namespace farmer {

namespace {
/// Size ratio beyond which the per-item galloping search beats the linear
/// merge: the merge is O(na + nb) while galloping is O(na * log nb), so the
/// crossover sits where nb/na outruns the log.
constexpr std::size_t kGallopSkew = 16;
}  // namespace

std::size_t multiset_intersection(const TokenId* a, std::size_t na,
                                  const TokenId* b, std::size_t nb) noexcept {
  // Intersection is symmetric; keep `a` the smaller sequence so the skew
  // check and the gallop both run off the short side.
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  std::size_t common = 0;
  if (nb >= kGallopSkew * na) {
    // Skewed sizes: for each a[i], exponential-search b for the first
    // element >= a[i], resuming where the previous item left off. Matched
    // elements of b are consumed (j advances past them), which preserves
    // the multiset semantics: x counts min(count_a(x), count_b(x)) times.
    std::size_t j = 0;
    for (std::size_t i = 0; i < na && j < nb; ++i) {
      std::size_t lo = j, hi = j, step = 1;
      while (hi < nb && b[hi] < a[i]) {
        lo = hi + 1;
        hi += step;
        step <<= 1;
      }
      const TokenId* pos =
          std::lower_bound(b + lo, b + std::min(hi, nb), a[i]);
      j = static_cast<std::size_t>(pos - b);
      if (j < nb && b[j] == a[i]) {
        ++common;
        ++j;
      }
    }
    return common;
  }
  // Comparable sizes: branch-light linear merge. Every iteration advances
  // at least one cursor; the comparisons compile to flag arithmetic instead
  // of a three-way branch the predictor must guess per token.
  std::size_t i = 0, j = 0;
  while (i < na && j < nb) {
    const TokenId x = a[i];
    const TokenId y = b[j];
    common += static_cast<std::size_t>(x == y);
    i += static_cast<std::size_t>(!(y < x));
    j += static_cast<std::size_t>(!(x < y));
  }
  return common;
}

double path_similarity(const SmallVector<TokenId, 8>& a,
                       const SmallVector<TokenId, 8>& b) noexcept {
  if (a.empty() || b.empty()) return 0.0;
  const std::size_t common =
      multiset_intersection(a.data(), a.size(), b.data(), b.size());
  const std::size_t denom = std::max(a.size(), b.size());
  return static_cast<double>(common) / static_cast<double>(denom);
}

double similarity(const Signature& a, const Signature& b) noexcept {
  const std::size_t ca = a.item_count();
  const std::size_t cb = b.item_count();
  if (ca == 0 || cb == 0) return 0.0;
  double common = static_cast<double>(multiset_intersection(
      a.items.data(), a.items.size(), b.items.data(), b.items.size()));
  if (a.ipa_path && b.ipa_path)
    common += path_similarity(a.path_sorted, b.path_sorted);
  const auto denom = static_cast<double>(std::max(ca, cb));
  return common / denom;
}

double similarity(const SemanticVector& a, const SemanticVector& b,
                  AttributeMask mask, PathMode mode) {
  return similarity(build_signature(a, mask, mode),
                    build_signature(b, mask, mode));
}

}  // namespace farmer
