#include "api/runtime_config.hpp"

#include <cerrno>
#include <cstdlib>
#include <iostream>

namespace farmer {
namespace {

// One positive integer in [1, max_value]; unset/empty leaves `out` alone.
// Rejecting 0 is deliberate: every size-shaped option already uses 0 to
// mean "disabled"/"backend default", so an explicit 0 in the environment
// is a contradiction, not a setting.
void parse_size(const char* var, std::size_t& out,
                unsigned long max_value = 4096) {
  const char* s = std::getenv(var);
  if (!s || !*s) return;
  char* end = nullptr;
  errno = 0;
  const unsigned long n = std::strtoul(s, &end, 10);
  if (end == s || *end != '\0' || n == 0 || errno == ERANGE || n > max_value)
    throw ConfigError(var, s,
                      "expected an integer in [1, " +
                          std::to_string(max_value) + "]");
  out = static_cast<std::size_t>(n);
}

// One fraction in (0, 1]; unset/empty leaves `out` alone.
void parse_fraction(const char* var, double& out) {
  const char* s = std::getenv(var);
  if (!s || !*s) return;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE || !(v > 0.0) || v > 1.0)
    throw ConfigError(var, s, "expected a fraction in (0, 1]");
  out = v;
}

void parse_string(const char* var, std::string& out) {
  if (const char* s = std::getenv(var); s && *s) out = s;
}

}  // namespace

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig rc;
  parse_string("FARMER_MINER", rc.miner_backend);
  parse_size("FARMER_SHARDS", rc.miner.shards);
  parse_size("FARMER_INGEST_THREADS", rc.miner.ingest_threads);
  parse_size("FARMER_APPLY_THREADS", rc.miner.apply_threads);
  // Capacity knobs get a generous ceiling; 0 stays "disabled"/"default"
  // (parse_size rejects 0, matching the defaults already meaning that).
  parse_size("FARMER_QUERY_CACHE", rc.miner.query_cache_capacity,
             /*max_value=*/1u << 24);
  parse_size("FARMER_MAX_PENDING", rc.miner.max_pending,
             /*max_value=*/1u << 30);
  parse_size("FARMER_PUBLISH_INTERVAL", rc.miner.publish_interval_records,
             /*max_value=*/1u << 30);
  parse_size("FARMER_PUBLISH_MAX_DELAY_MS", rc.miner.publish_max_delay_ms,
             /*max_value=*/60000);
  parse_size("FARMER_ROUTER_TENANTS", rc.miner.router_tenants,
             /*max_value=*/1024);
  parse_string("FARMER_ROUTER_BACKENDS", rc.miner.router_backends);
  parse_string("FARMER_PERSIST_DIR", rc.miner.persist_dir);
  parse_size("FARMER_CHECKPOINT_INTERVAL",
             rc.miner.checkpoint_interval_records, /*max_value=*/1u << 30);
  parse_size("FARMER_WAL_GROUP_COMMIT", rc.miner.wal_group_commit,
             /*max_value=*/1u << 30);
  parse_size("FARMER_CLUSTER_SHARDS", rc.miner.cluster_shards,
             /*max_value=*/1024);
  parse_string("FARMER_CLUSTER_TRANSPORT", rc.miner.cluster_transport);
  parse_size("FARMER_CLUSTER_TIMEOUT_MS", rc.miner.cluster_timeout_ms,
             /*max_value=*/600000);
  parse_size("FARMER_CLUSTER_RETRIES", rc.miner.cluster_retries,
             /*max_value=*/100);
  parse_size("FARMER_CLUSTER_PIPELINE", rc.miner.cluster_pipeline,
             /*max_value=*/1u << 20);

  parse_string("FARMER_PREDICTOR", rc.predictor);
  // The predictor options mirror the miner selection so "fpa" built through
  // the predictor factory mines on the env-selected backend.
  rc.predictor_options.miner_backend = rc.miner_backend;
  rc.predictor_options.miner = rc.miner;

  parse_string("FARMER_SCENARIO", rc.scenario);
  parse_size("FARMER_SERVE_WINDOWS", rc.serve_windows, /*max_value=*/4096);
  parse_size("FARMER_SERVE_CACHE", rc.serve_cache, /*max_value=*/1u << 24);

  parse_fraction("FARMER_BENCH_SCALE", rc.bench_scale);
  parse_size("FARMER_BENCH_FILES", rc.bench_files, /*max_value=*/1u << 24);
  parse_string("FARMER_TRACE_DIR", rc.trace_dir);
  parse_size("FARMER_TRACE_TENANTS", rc.trace_tenants, /*max_value=*/4);
  parse_size("FARMER_TRACE_ROUNDS", rc.trace_rounds,
             /*max_value=*/1u << 20);
  return rc;
}

RuntimeConfig RuntimeConfig::from_env_or_exit() {
  try {
    return from_env();
  } catch (const ConfigError& e) {
    std::cerr << e.what() << "\n";
    std::exit(2);
  }
}

}  // namespace farmer
