// Per-window serving metrics — the third leg of the stats contract.
//
// MinerStats (api/correlation_miner.hpp) accounts the mining side and
// CacheStats (cache/metadata_cache.hpp) the cache side, both cumulatively.
// WindowStats is the *streaming* snapshot the serving harness
// (serve/harness.hpp) emits once per reporting window, so a scenario run
// reads as a time series: hit-ratio ramp after a cold start, precision
// collapse under a flash crowd, lag growth when ingest falls behind.
//
// Field contract (ServingWindowContract tests pin this down):
//
//   * Counters (`demand_*`, `prefetch_*`, `responses`, `invalidations`)
//     cover THIS window only — the difference of the underlying cumulative
//     counters between the window's close and open. Summing a counter over
//     all windows of a run reproduces the run's cumulative total exactly.
//   * Demand counters bin by *arrival* time; response-time fields bin by
//     *completion* time (a request arriving in window i whose fetch
//     completes in window i+1 counts demand in i, latency in i+1).
//     Completions after the final boundary fold into the last window.
//   * Gauges (`ingest_pending`, `ingest_epoch`, `model_footprint_bytes`)
//     are sampled at the window's CLOSE. Predictors without a mining
//     backend — and synchronous backends, per the MinerStats contract —
//     report 0 pending and epoch 0; zero *means* "never stale" there.
//   * Ratios are safe on empty windows: 0 denominator yields 0.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace farmer {

struct WindowStats {
  std::size_t index = 0;     ///< window ordinal, 0-based
  SimTime begin_us = 0;      ///< window open, simulated µs
  SimTime end_us = 0;        ///< window close (last window: run end)

  std::uint64_t demand_requests = 0;  ///< demand arrivals in the window
  std::uint64_t demand_hits = 0;      ///< of which served from cache
  std::uint64_t prefetch_inserted = 0;
  std::uint64_t prefetch_used = 0;    ///< prefetches that served a hit
  std::uint64_t prefetch_evicted_unused = 0;  ///< pure pollution
  std::uint64_t invalidations = 0;    ///< files hit by churn invalidation

  std::uint64_t responses = 0;        ///< demand completions binned here
  double mean_response_us = 0.0;
  std::uint64_t p50_response_us = 0;
  std::uint64_t p95_response_us = 0;
  std::uint64_t p99_response_us = 0;

  std::uint64_t ingest_pending = 0;  ///< miner records accepted, unpublished
  std::uint64_t ingest_epoch = 0;    ///< miner publish round at close
  std::size_t model_footprint_bytes = 0;  ///< predictor state at close

  [[nodiscard]] double hit_ratio() const noexcept {
    return demand_requests ? static_cast<double>(demand_hits) /
                                 static_cast<double>(demand_requests)
                           : 0.0;
  }
  /// Of the prefetches inserted this window, the fraction that served a
  /// demand hit — the paper's prefetch-accuracy metric, windowed.
  [[nodiscard]] double prefetch_precision() const noexcept {
    return prefetch_inserted ? static_cast<double>(prefetch_used) /
                                   static_cast<double>(prefetch_inserted)
                             : 0.0;
  }
  /// Fraction of this window's prefetches evicted without ever serving a
  /// hit (cache pollution).
  [[nodiscard]] double prefetch_waste() const noexcept {
    return prefetch_inserted
               ? static_cast<double>(prefetch_evicted_unused) /
                     static_cast<double>(prefetch_inserted)
               : 0.0;
  }
};

}  // namespace farmer
