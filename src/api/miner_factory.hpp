// Runtime-selectable mining backends.
//
// `make_miner("farmer" | "sharded" | "concurrent" | "router" | "nexus" |
// "cluster", cfg, dict, opts)` turns the backend choice into data: benches
// flip
// ablations (Table 2/3, Fig. 3/6) with a string flag instead of a
// recompiled type, and later scaling PRs (remote shards, multi-backend
// serving) register themselves via `register_miner` without touching any
// consumer. "router" is itself factory-driven: it builds one child miner
// per tenant through this registry (api/miner_router.hpp).
//
// The configuration is validated (FarmerConfig::validate) before any
// backend is constructed; a bad config or an unknown backend name throws
// std::invalid_argument naming the problem and the registered backends.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/correlation_miner.hpp"
#include "core/config.hpp"
#include "trace/record.hpp"

namespace farmer {

/// Backend knobs that are not model parameters. The README's configuration
/// table documents every field alongside its FARMER_* environment variable.
struct MinerOptions {
  std::size_t shards = 4;  ///< partitions for "sharded" and "concurrent"
  /// Producer queue slots for the "concurrent" backend: the number of
  /// ingest threads expected to call observe() concurrently (threads hash
  /// onto slots, so more threads than slots merely share queues).
  std::size_t ingest_threads = 4;
  /// Worker lanes for the shard-disjoint parallel apply behind
  /// observe_batch() on "sharded" — and on "concurrent", whose drain hands
  /// every collected batch to its inner sharded miner. 0 = auto (hardware
  /// parallelism), 1 = serial apply; more lanes than shards are capped at
  /// the shard count. Every setting produces byte-identical models: shard
  /// slices preserve per-shard record order and shards share no mutable
  /// state. Env: FARMER_APPLY_THREADS.
  std::size_t apply_threads = 0;
  /// Backpressure bound for the "concurrent" backend: producers soft-block
  /// once this many records are queued but unapplied. 0 = backend default.
  std::size_t max_pending = 0;
  /// Capacity (entries) of the "concurrent" backend's epoch-validated LRU
  /// cache of hot merged Correlator Lists, in front of the snapshot query
  /// path. 0 disables caching entirely — every query re-merges, which is
  /// the reference behavior the differential tests compare against.
  /// Ignored by synchronous backends (their snapshot() is already a
  /// zero-copy borrow or a single-merge). Env: FARMER_QUERY_CACHE.
  std::size_t query_cache_capacity = 0;
  /// Publish coalescing for the "concurrent" backend: the drain batches
  /// apply rounds and publishes a new shard table only once at least this
  /// many records have been applied since the last publication, or the
  /// staleness deadline below expires. flush() stays a strict barrier: a
  /// waiting flush forces the publish as soon as the queues run dry.
  /// 0 or 1 = publish after every apply round (the uncoalesced reference
  /// behavior). Env: FARMER_PUBLISH_INTERVAL.
  std::size_t publish_interval_records = 0;
  /// Staleness bound for coalesced publishes, in milliseconds: applied
  /// records become queryable at most this much later (plus scheduling),
  /// busy or idle, even when the record interval has not been reached.
  /// Only meaningful with publish_interval_records > 1; 0 = backend
  /// default (4 ms). Env: FARMER_PUBLISH_MAX_DELAY_MS.
  std::size_t publish_max_delay_ms = 0;
  /// Tenant partitions for the "router" backend: the FileId space is split
  /// across this many independent child miners. Env: FARMER_ROUTER_TENANTS.
  std::size_t router_tenants = 2;
  /// Per-tenant backend spec for "router": one registered name for every
  /// tenant ("concurrent") or `idx=name` pairs with an optional `*=name`
  /// default ("0=concurrent,1=sharded,*=farmer"). Empty = "farmer"
  /// everywhere; "router" cannot nest. Children inherit this MinerOptions
  /// (shards, cache, publish knobs). Env: FARMER_ROUTER_BACKENDS.
  std::string router_backends;
  /// Durable persistence directory (empty = persistence off). When set,
  /// every ingested record is WAL-appended before it is applied, the model
  /// is checkpointed into the directory on the interval below, and
  /// construction auto-recovers whatever the directory holds (newest valid
  /// checkpoint + contiguous WAL tail, torn records truncated). "router"
  /// gives each tenant its own `<dir>/tenant<t>` subdirectory. The
  /// directory is bound to the FarmerConfig and dictionary it was written
  /// with: recovery throws on a mismatch rather than mixing models.
  /// Env: FARMER_PERSIST_DIR.
  std::string persist_dir;
  /// Checkpoint every N ingested records (0 = backend default, 65536).
  /// Smaller = shorter WAL replay on recovery, more serialization work.
  /// Env: FARMER_CHECKPOINT_INTERVAL.
  std::size_t checkpoint_interval_records = 0;
  /// fsync the WAL every N records — Pomegranate-style group commit
  /// (0 = backend default, 4096; 1 = fsync every record).
  /// Env: FARMER_WAL_GROUP_COMMIT.
  std::size_t wal_group_commit = 0;
  /// Shard servers for the "cluster" backend: the record stream is
  /// partitioned by process id (ShardedFarmer::shard_of) across this many
  /// shard servers, each hosting one Farmer behind a message-passing
  /// transport. Env: FARMER_CLUSTER_SHARDS.
  std::size_t cluster_shards = 2;
  /// Transport spec for "cluster". Only "loopback" (in-process channels —
  /// CI needs no network) is registered; empty = "loopback". A socket
  /// transport extends the factory branch under the same option.
  /// Env: FARMER_CLUSTER_TRANSPORT.
  std::string cluster_transport;
  /// Per-attempt response deadline for cluster requests, in milliseconds
  /// (0 = backend default, 2000). Worst-case latency of one request is
  /// (1 + retries) * timeout. Env: FARMER_CLUSTER_TIMEOUT_MS.
  std::size_t cluster_timeout_ms = 0;
  /// Re-sends after the first attempt before a cluster request fails with
  /// std::runtime_error. Retries are idempotent: the shard server
  /// deduplicates by request id. Env: FARMER_CLUSTER_RETRIES.
  std::size_t cluster_retries = 2;
  /// Pipelining depth per shard channel: un-acked observe_batch requests
  /// in flight before ingest awaits the oldest ack (0 = backend default,
  /// 64). Env: FARMER_CLUSTER_PIPELINE.
  std::size_t cluster_pipeline = 0;
  /// Optional tenant-extraction override for "router": maps a FileId to
  /// its owning tenant; must be pure and thread-safe. Empty = contiguous
  /// FileId ranges over the dictionary's file count (hash fallback when
  /// the dictionary is empty). See MinerRouter::range_tenants /
  /// hash_tenants (api/miner_router.hpp).
  std::function<std::uint32_t(FileId)> router_tenant_of;
};

using MinerFactoryFn = std::function<std::unique_ptr<CorrelationMiner>(
    const FarmerConfig& cfg, std::shared_ptr<const TraceDictionary> dict,
    const MinerOptions& opts)>;

/// Adds (or replaces) a backend under `name`. Returns true when `name` was
/// new. Built-ins "farmer", "sharded", "concurrent", "router", "nexus" and
/// "cluster" are pre-registered. This is the extension seam for new backends (remote
/// shards, multi-backend serving, ...) — see docs/ARCHITECTURE.md.
///
/// A registered factory must return miners honoring the CorrelationMiner
/// contracts (correlation_miner.hpp): in particular flush() must be a real
/// ingest barrier on asynchronous backends, and stats() must follow the
/// MinerStats field contract (zero epoch/pending/cache counters and empty
/// shard_epochs when the concept does not apply).
///
/// Thread-safety: registration is NOT synchronized against concurrent
/// make_miner()/registered_miners() calls — register backends at startup,
/// before mining threads exist (the registry is touched from one thread in
/// every shipped consumer).
bool register_miner(const std::string& name, MinerFactoryFn factory);

/// Registered backend names, sorted.
[[nodiscard]] std::vector<std::string> registered_miners();

/// Constructs the backend registered under `name`. Throws
/// std::invalid_argument on an unknown name or an invalid `cfg`. The
/// returned miner is exclusively owned: nothing in the factory retains a
/// reference, so its lifetime and thread-affinity are entirely the
/// caller's (see the per-backend thread-safety contracts).
[[nodiscard]] std::unique_ptr<CorrelationMiner> make_miner(
    std::string_view name, const FarmerConfig& cfg,
    std::shared_ptr<const TraceDictionary> dict,
    const MinerOptions& opts = {});

}  // namespace farmer
