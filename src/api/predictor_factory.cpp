#include "api/predictor_factory.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "graph/access_window.hpp"
#include "prefetch/fpa.hpp"
#include "prefetch/nexus.hpp"
#include "prefetch/probability_graph.hpp"
#include "prefetch/sd_graph.hpp"
#include "prefetch/successor.hpp"

namespace farmer {

namespace {

using Registry = std::map<std::string, PredictorFactoryFn, std::less<>>;

Registry& registry() {
  static Registry r = [] {
    Registry built_in;
    built_in["fpa"] = [](const FarmerConfig& cfg,
                         std::shared_ptr<const TraceDictionary> dict,
                         const PredictorOptions& opts) {
      // The miner factory re-validates cfg and resolves the backend name;
      // its std::invalid_argument carries the registered-miners listing.
      const std::string_view backend =
          opts.miner_backend.empty() ? std::string_view("farmer")
                                     : std::string_view(opts.miner_backend);
      return std::make_unique<FpaPredictor>(
          make_miner(backend, cfg, std::move(dict), opts.miner));
    };
    built_in["nexus"] = [](const FarmerConfig&,
                           std::shared_ptr<const TraceDictionary>,
                           const PredictorOptions& opts) {
      NexusPredictor::Config c;
      if (opts.window != 0) c.window = opts.window;
      if (opts.min_weight >= 0.0) c.min_weight = opts.min_weight;
      return std::make_unique<NexusPredictor>(c);
    };
    built_in["probgraph"] = [](const FarmerConfig&,
                               std::shared_ptr<const TraceDictionary>,
                               const PredictorOptions& opts) {
      ProbabilityGraphPredictor::Config c;
      if (opts.window != 0) c.window = opts.window;
      if (opts.min_chance >= 0.0) c.min_chance = opts.min_chance;
      return std::make_unique<ProbabilityGraphPredictor>(c);
    };
    built_in["sdgraph"] = [](const FarmerConfig&,
                             std::shared_ptr<const TraceDictionary>,
                             const PredictorOptions& opts) {
      SdGraphPredictor::Config c;
      if (opts.window != 0) c.window = opts.window;
      if (opts.min_frequency >= 0.0) c.min_frequency = opts.min_frequency;
      return std::make_unique<SdGraphPredictor>(c);
    };
    built_in["ls"] = [](const FarmerConfig&,
                        std::shared_ptr<const TraceDictionary>,
                        const PredictorOptions&) {
      return std::make_unique<LastSuccessorPredictor>();
    };
    built_in["fs"] = [](const FarmerConfig&,
                        std::shared_ptr<const TraceDictionary>,
                        const PredictorOptions&) {
      return std::make_unique<FirstSuccessorPredictor>();
    };
    built_in["recentpop"] = [](const FarmerConfig&,
                               std::shared_ptr<const TraceDictionary>,
                               const PredictorOptions& opts) {
      RecentPopularityPredictor::Config c;
      if (opts.recent_k != 0) c.k = opts.recent_k;
      if (opts.recent_j != 0) c.j = opts.recent_j;
      return std::make_unique<RecentPopularityPredictor>(c);
    };
    built_in["pbs"] = [](const FarmerConfig&,
                         std::shared_ptr<const TraceDictionary>,
                         const PredictorOptions&) {
      return std::make_unique<ContextualLastSuccessorPredictor>(
          ContextualLastSuccessorPredictor::Mode::kProgram);
    };
    built_in["puls"] = [](const FarmerConfig&,
                          std::shared_ptr<const TraceDictionary>,
                          const PredictorOptions&) {
      return std::make_unique<ContextualLastSuccessorPredictor>(
          ContextualLastSuccessorPredictor::Mode::kProgramUser);
    };
    built_in["none"] = [](const FarmerConfig&,
                          std::shared_ptr<const TraceDictionary>,
                          const PredictorOptions&) {
      return std::make_unique<NoopPredictor>();
    };
    return built_in;
  }();
  return r;
}

}  // namespace

std::string PredictorOptions::validate() const {
  std::string errors;
  auto fail = [&errors](const std::string& msg) {
    if (!errors.empty()) errors += "; ";
    errors += msg;
  };
  if (window > AccessWindow::kMaxWindow)
    fail("window must be <= " + std::to_string(AccessWindow::kMaxWindow));
  if (min_chance > 1.0) fail("min_chance must be in [0, 1]");
  if (min_frequency > 1.0) fail("min_frequency must be in [0, 1]");
  // k and j default independently, so validate the *effective* pair: an
  // explicit j may not exceed the (defaulted) k it will run against.
  const std::size_t k = recent_k != 0 ? recent_k : 4;
  const std::size_t j = recent_j != 0 ? recent_j : 2;
  if (j > k)
    fail("recent_j (" + std::to_string(j) + ") must be <= recent_k (" +
         std::to_string(k) + ")");
  return errors;
}

bool register_predictor(const std::string& name, PredictorFactoryFn factory) {
  auto [it, inserted] = registry().insert_or_assign(name, std::move(factory));
  (void)it;
  return inserted;
}

std::vector<std::string> registered_predictors() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, fn] : registry()) names.push_back(name);
  return names;
}

std::unique_ptr<Predictor> make_predictor(
    std::string_view name, const FarmerConfig& cfg,
    std::shared_ptr<const TraceDictionary> dict,
    const PredictorOptions& opts) {
  const std::string errors = opts.validate();
  if (!errors.empty())
    throw std::invalid_argument(
        "make_predictor: invalid PredictorOptions: " + errors);
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& n : registered_predictors()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("make_predictor: unknown predictor \"" +
                                std::string(name) + "\" (registered: " +
                                known + ")");
  }
  return it->second(cfg, std::move(dict), opts);
}

}  // namespace farmer
