#include "api/miner_router.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace farmer {

namespace {

/// One `idx=name` / `*=name` item of the backend spec (the caller has
/// already rejected items without '=').
struct SpecItem {
  bool wildcard = false;
  std::size_t index = 0;
  std::string name;
};

SpecItem parse_spec_item(std::string_view item) {
  SpecItem out;
  const std::size_t eq = item.find('=');
  const std::string_view key = item.substr(0, eq);
  const std::string_view name = item.substr(eq + 1);
  if (key.empty() || name.empty())
    throw std::invalid_argument(
        "router backend spec: malformed item \"" + std::string(item) +
        "\" (expected idx=name or *=name)");
  out.name = std::string(name);
  if (key == "*") {
    out.wildcard = true;
    return out;
  }
  std::size_t idx = 0;
  const auto [ptr, ec] =
      std::from_chars(key.data(), key.data() + key.size(), idx);
  if (ec != std::errc{} || ptr != key.data() + key.size())
    throw std::invalid_argument("router backend spec: bad tenant index \"" +
                                std::string(key) + "\"");
  out.index = idx;
  return out;
}

}  // namespace

std::vector<RouterTenantSpec> parse_router_backends(
    std::string_view spec, std::size_t tenants,
    const MinerOptions& child_opts) {
  if (tenants == 0)
    throw std::invalid_argument("router: tenant count must be >= 1");
  std::vector<RouterTenantSpec> out(tenants);
  for (auto& s : out) s.options = child_opts;
  if (spec.empty()) return out;  // all-"farmer" default

  // A spec without any '=' is one backend name for every tenant.
  if (spec.find('=') == std::string_view::npos &&
      spec.find(',') == std::string_view::npos) {
    for (auto& s : out) s.backend = std::string(spec);
  } else {
    std::vector<bool> assigned(tenants, false);
    std::string wildcard;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
      const std::size_t comma = std::min(spec.find(',', pos), spec.size());
      const std::string_view item = spec.substr(pos, comma - pos);
      pos = comma + 1;
      if (item.empty())
        throw std::invalid_argument(
            "router backend spec: empty item in \"" + std::string(spec) +
            "\"");
      // Inside a list every item must be keyed: a bare name here is most
      // likely a positional-syntax mistake, and silently treating it as
      // the wildcard default would reconfigure every unlisted tenant.
      if (item.find('=') == std::string_view::npos)
        throw std::invalid_argument(
            "router backend spec: bare name \"" + std::string(item) +
            "\" inside a list (use idx=name, or *=name for the default)");
      const SpecItem parsed = parse_spec_item(item);
      if (parsed.wildcard) {
        if (!wildcard.empty())
          throw std::invalid_argument(
              "router backend spec: duplicate default in \"" +
              std::string(spec) + "\"");
        wildcard = parsed.name;
        continue;
      }
      if (parsed.index >= tenants)
        throw std::invalid_argument(
            "router backend spec: tenant index " +
            std::to_string(parsed.index) + " >= tenant count " +
            std::to_string(tenants));
      if (assigned[parsed.index])
        throw std::invalid_argument("router backend spec: tenant " +
                                    std::to_string(parsed.index) +
                                    " assigned twice");
      assigned[parsed.index] = true;
      out[parsed.index].backend = parsed.name;
    }
    if (!wildcard.empty())
      for (std::size_t t = 0; t < tenants; ++t)
        if (!assigned[t]) out[t].backend = wildcard;
  }
  for (const auto& s : out)
    if (s.backend == "router")
      throw std::invalid_argument(
          "router backend spec: tenants cannot nest \"router\"");
  return out;
}

MinerRouter::TenantFn MinerRouter::range_tenants(std::uint32_t tenant_count,
                                                 std::uint32_t file_count) {
  if (tenant_count == 0)
    throw std::invalid_argument("range_tenants: tenant count must be >= 1");
  if (file_count == 0) return hash_tenants(tenant_count);
  return [tenant_count, file_count](FileId f) -> std::uint32_t {
    // 64-bit product: FileId::kInvalid (0xFFFFFFFF) must clamp into the
    // last tenant, not wrap.
    const std::uint64_t t = static_cast<std::uint64_t>(f.value()) *
                            tenant_count / file_count;
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(t, tenant_count - 1));
  };
}

MinerRouter::TenantFn MinerRouter::hash_tenants(std::uint32_t tenant_count) {
  if (tenant_count == 0)
    throw std::invalid_argument("hash_tenants: tenant count must be >= 1");
  return [tenant_count](FileId f) -> std::uint32_t {
    // Fibonacci mix then fold the high bits, matching std::hash<TaggedId>.
    const std::uint64_t mixed =
        static_cast<std::uint64_t>(f.value()) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::uint32_t>((mixed >> 32) % tenant_count);
  };
}

MinerRouter::MinerRouter(const FarmerConfig& cfg,
                         std::shared_ptr<const TraceDictionary> dict,
                         std::vector<RouterTenantSpec> tenants,
                         TenantFn tenant_of)
    : tenant_of_(std::move(tenant_of)) {
  if (tenants.empty())
    throw std::invalid_argument("MinerRouter: at least one tenant required");
  if (!tenant_of_) {
    const auto files =
        dict ? static_cast<std::uint32_t>(dict->files.size()) : 0u;
    tenant_of_ = range_tenants(static_cast<std::uint32_t>(tenants.size()),
                               files);
  }
  children_.reserve(tenants.size());
  for (auto& spec : tenants) {
    if (spec.backend == "router")
      throw std::invalid_argument(
          "MinerRouter: tenants cannot nest \"router\"");
    children_.push_back(make_miner(spec.backend, cfg, dict, spec.options));
  }
}

void MinerRouter::observe(const TraceRecord& rec) {
  children_[tenant_of(rec.file)]->observe(rec);
}

void MinerRouter::observe_batch(std::span<const TraceRecord> records) {
  if (children_.size() == 1) {
    children_[0]->observe_batch(records);
    return;
  }
  // Partition preserving order so each tenant's sub-stream reaches its
  // child exactly as a dedicated miner would have seen it. The per-batch
  // allocation keeps the router stateless and therefore as thread-safe as
  // its children; single-tenant routing above stays zero-copy.
  std::vector<std::vector<TraceRecord>> parts(children_.size());
  for (const TraceRecord& r : records)
    parts[tenant_of(r.file)].push_back(r);
  for (std::size_t t = 0; t < parts.size(); ++t)
    if (!parts[t].empty()) children_[t]->observe_batch(parts[t]);
}

void MinerRouter::flush() {
  for (auto& child : children_) child->flush();
}

CorrelatorView MinerRouter::snapshot(FileId f) const {
  return children_[tenant_of(f)]->snapshot(f);
}

double MinerRouter::correlation_degree(FileId a, FileId b) const {
  return children_[tenant_of(a)]->correlation_degree(a, b);
}

double MinerRouter::semantic_similarity(FileId a, FileId b) const {
  return children_[tenant_of(a)]->semantic_similarity(a, b);
}

std::uint64_t MinerRouter::access_count(FileId f) const {
  return children_[tenant_of(f)]->access_count(f);
}

double MinerRouter::access_frequency(FileId pred, FileId succ) const {
  return children_[tenant_of(pred)]->access_frequency(pred, succ);
}

MinerStats MinerRouter::stats() const {
  MinerStats total;
  total.shards = 0;
  total.per_tenant.reserve(children_.size());
  for (const auto& child : children_) {
    MinerStats s = child->stats();
    total.requests += s.requests;
    total.pairs_evaluated += s.pairs_evaluated;
    total.pairs_accepted += s.pairs_accepted;
    total.pairs_filtered += s.pairs_filtered;
    total.shards += s.shards;
    total.epoch = std::max(total.epoch, s.epoch);
    total.pending += s.pending;
    total.publishes += s.publishes;
    total.files_cloned += s.files_cloned;
    total.bytes_shared += s.bytes_shared;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.per_tenant.push_back(std::move(s));
  }
  return total;
}

void MinerRouter::save(const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (std::size_t t = 0; t < children_.size(); ++t)
    children_[t]->save(dir + "/tenant" + std::to_string(t));
}

void MinerRouter::load(const std::string& dir) {
  for (std::size_t t = 0; t < children_.size(); ++t) {
    const std::string child_dir = dir + "/tenant" + std::to_string(t);
    // A missing tenant directory means that child had no durable state —
    // its load() would recover to empty anyway, so skip the call (children
    // without load() support would otherwise throw for nothing).
    std::error_code ec;
    if (!std::filesystem::exists(child_dir, ec)) continue;
    children_[t]->load(child_dir);
  }
}

std::size_t MinerRouter::footprint_bytes() const {
  std::size_t total = sizeof(*this);
  for (const auto& child : children_) total += child->footprint_bytes();
  return total;
}

}  // namespace farmer
