// Multi-tenant serving: one mining service, many independent workloads.
//
// A peta-scale deployment rarely mines a single stream: one metadata
// cluster serves many tenants (projects, namespaces, customers) whose
// correlation structure must stay isolated — cross-tenant pairs are noise
// at best and an information leak at worst. `MinerRouter` is that serving
// layer: it partitions the FileId space across N child miners, each built
// through the `MinerFactory` with its own backend name and `MinerOptions`
// (tenant 0 on "concurrent", tenant 1 on "sharded", ...), so hot tenants
// get the async pipeline while cold ones stay on the cheap synchronous
// backends — all behind the same `CorrelationMiner` interface.
//
// Routing model:
//   * Ingest routes each record by a pluggable tenant-extraction function
//     over the record's FileId (default: contiguous FileId ranges over the
//     dictionary's file count, falling back to a hash when no dictionary
//     size is known). observe_batch() partitions a batch per tenant
//     preserving order and forwards each sub-batch in one call; a
//     single-tenant router forwards the span untouched (zero-copy), which
//     is what makes its output byte-identical to the direct backend.
//   * Queries are served from the owning child: snapshot(f) /
//     access_count(f) go to tenant_of(f); pairwise queries
//     (correlation_degree, access_frequency, semantic_similarity) go to
//     the first argument's tenant — a cross-tenant pair is answered by the
//     owning tenant, which never mined the foreign file, so the answer is
//     0/empty. That is the isolation contract, not a limitation.
//   * flush() fans out as a barrier: it returns only after every child's
//     flush() returned, so a query issued afterwards sees every record
//     accepted before the call regardless of which tenant it routed to.
//   * stats() merges the children (sums; `epoch` is the max of independent
//     child clocks) and carries each child's full MinerStats in
//     `per_tenant`, in tenant order.
//
// Thread-safety is inherited, not added: the router keeps no mutable state
// after construction (children + a const routing function), so each
// method's guarantee is exactly the weakest child's. With every tenant on
// "concurrent" the router is safe for any producer/reader/flush mix (the
// RouterStress TSan tier pins this); with any synchronous tenant the
// single-threaded interface contract applies.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/correlation_miner.hpp"
#include "api/miner_factory.hpp"
#include "core/config.hpp"

namespace farmer {

/// One tenant's backend choice: a registered factory name plus the child's
/// options. The router passes these verbatim to `make_miner`.
struct RouterTenantSpec {
  std::string backend = "farmer";
  MinerOptions options;
};

/// Parses the per-tenant backend spec string (`FARMER_ROUTER_BACKENDS`):
/// either a single registered name applied to every tenant ("concurrent"),
/// or comma-separated `idx=name` pairs with an optional `*=name` default
/// ("0=concurrent,1=sharded,*=farmer"). Unlisted tenants default to
/// "farmer". Every spec inherits `child_opts`. Throws std::invalid_argument
/// on malformed items, an index >= `tenants`, a duplicate index, or a
/// nested "router". Backend names themselves are validated later by
/// make_miner (unknown names throw there, listing the registry).
[[nodiscard]] std::vector<RouterTenantSpec> parse_router_backends(
    std::string_view spec, std::size_t tenants, const MinerOptions& child_opts);

/// The "router" backend: N factory-built child miners behind one interface.
class MinerRouter final : public CorrelationMiner {
 public:
  /// Maps a file to its owning tenant. Must be pure and thread-safe: it is
  /// called concurrently from every ingest and query path with no
  /// synchronization. Out-of-range results are folded back modulo the
  /// tenant count rather than trusted.
  using TenantFn = std::function<std::uint32_t(FileId)>;

  /// Builds one child per spec through make_miner (so an invalid config or
  /// unknown backend throws std::invalid_argument before any child exists).
  /// An empty `tenant_of` selects the default map: range_tenants over the
  /// dictionary's file count, or hash_tenants when that count is zero.
  MinerRouter(const FarmerConfig& cfg,
              std::shared_ptr<const TraceDictionary> dict,
              std::vector<RouterTenantSpec> tenants, TenantFn tenant_of = {});

  /// Contiguous equal FileId ranges: tenant t owns
  /// [t * file_count / tenant_count, (t+1) * file_count / tenant_count).
  /// Matches the layout of trace::make_multi_tenant_trace when tenants are
  /// equally sized; ids past file_count clamp into the last tenant.
  [[nodiscard]] static TenantFn range_tenants(std::uint32_t tenant_count,
                                              std::uint32_t file_count);
  /// Multiplicative-mix hash of the FileId, modulo the tenant count — the
  /// no-prior-knowledge default when the file population is unknown.
  [[nodiscard]] static TenantFn hash_tenants(std::uint32_t tenant_count);

  // ---- CorrelationMiner ----

  void observe(const TraceRecord& rec) override;
  /// Partitions per tenant preserving order, one observe_batch per
  /// non-empty tenant; single-tenant routers forward the span untouched.
  void observe_batch(std::span<const TraceRecord> records) override;
  /// Barrier fan-out: returns after every child's flush() returned.
  void flush() override;

  /// Owning child's snapshot, forwarded verbatim — lifetime and ownership
  /// follow that child's CorrelatorView contract (borrowed for "farmer"
  /// tenants, owning for "sharded"/"concurrent" tenants).
  [[nodiscard]] CorrelatorView snapshot(FileId f) const override;
  [[nodiscard]] double correlation_degree(FileId a, FileId b) const override;
  [[nodiscard]] double semantic_similarity(FileId a, FileId b) const override;
  [[nodiscard]] std::uint64_t access_count(FileId f) const override;
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const override;

  /// Merged stats (see the MinerStats field contract): scalar counters are
  /// summed over children, `epoch` is the max child epoch, `shard_epochs`
  /// stays empty, and `per_tenant` carries each child's stats verbatim.
  [[nodiscard]] MinerStats stats() const override;
  [[nodiscard]] std::size_t footprint_bytes() const override;
  [[nodiscard]] const char* name() const noexcept override {
    return "router";
  }

  /// Per-tenant fan-out: child t saves into `dir`/tenant<t>. Every child
  /// must support save() (a "nexus"-like child that does not throws its own
  /// std::logic_error).
  void save(const std::string& dir) override;
  /// Per-tenant fan-out of load() over the same `dir`/tenant<t> layout.
  /// Tenant directories that do not exist recover that child to empty.
  void load(const std::string& dir) override;

  // ---- router introspection ----

  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return children_.size();
  }
  /// The tenant `f` routes to (after the modulo fold).
  [[nodiscard]] std::uint32_t tenant_of(FileId f) const {
    const std::uint32_t t = tenant_of_(f);
    return t < children_.size()
               ? t
               : static_cast<std::uint32_t>(t % children_.size());
  }
  /// Direct read access to one child (tests and stats drill-down).
  [[nodiscard]] const CorrelationMiner& tenant(std::size_t i) const {
    return *children_.at(i);
  }

 private:
  std::vector<std::unique_ptr<CorrelationMiner>> children_;
  TenantFn tenant_of_;
};

}  // namespace farmer
