// The mining API boundary.
//
// The paper's FARMER model is one *producer* of Correlator Lists; the
// downstream optimizers — metadata prefetching (Section 4.1), data layout
// (Section 4.2), policy propagation (Section 4.3) — only ever consume the
// lists plus a handful of evaluation queries. `CorrelationMiner` is that
// boundary, mirroring the `Predictor` polymorphism in prefetch/predictor.hpp:
// consumers bind to the interface and any backend (serial FARMER, sharded
// FARMER, the async "concurrent" miner, the Nexus p = 0 baseline, future
// remote miners) plugs in behind it without recompiling a single consumer.
//
// Queries go through `snapshot()`, which returns an immutable
// `CorrelatorView`: backends whose lists are stable between `observe()`
// calls hand out a zero-copy span, backends that merge on demand (sharded)
// hand out an owning snapshot — either way the caller never observes a
// Correlator List mid-resort.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/correlation_graph.hpp"
#include "trace/record.hpp"

namespace farmer {

/// Backend-agnostic counters (Table 4 / Section 3.3 accounting).
struct MinerStats {
  std::uint64_t requests = 0;         ///< observe() calls ingested
  std::uint64_t pairs_evaluated = 0;  ///< CoMiner R(x,y) evaluations
  std::uint64_t pairs_accepted = 0;   ///< R >= max_strength
  std::uint64_t pairs_filtered = 0;   ///< R <  max_strength
  std::size_t shards = 1;             ///< parallel mining partitions
  std::uint64_t epoch = 0;   ///< published apply rounds (async backends; 0 =
                             ///< synchronous, state is always current)
  std::uint64_t pending = 0; ///< records accepted but not yet applied (async
                             ///< backends; always 0 after flush())

  [[nodiscard]] double acceptance_rate() const noexcept {
    return pairs_evaluated
               ? static_cast<double>(pairs_accepted) /
                     static_cast<double>(pairs_evaluated)
               : 0.0;
  }
};

/// An immutable snapshot of one file's Correlator List.
///
/// Either *borrows* storage owned by the backend (valid until the next
/// non-const call on the miner — the usual query-then-act pattern) or *owns*
/// a merged copy (sharded backends). Move-only: copying an owning view would
/// silently re-point the span at the source's buffer.
class CorrelatorView {
 public:
  CorrelatorView() = default;
  explicit CorrelatorView(std::span<const Correlator> borrowed)
      : view_(borrowed) {}
  explicit CorrelatorView(std::vector<Correlator> owned)
      : owned_(std::move(owned)), view_(owned_), owns_(true) {}

  // std::vector's move transfers the heap buffer, so the destination's span
  // stays valid; the source is emptied so it cannot alias that buffer.
  CorrelatorView(CorrelatorView&& other) noexcept
      : owned_(std::move(other.owned_)),
        view_(other.view_),
        owns_(other.owns_) {
    other.view_ = {};
    other.owns_ = false;
  }
  CorrelatorView& operator=(CorrelatorView&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      view_ = other.view_;
      owns_ = other.owns_;
      other.view_ = {};
      other.owns_ = false;
    }
    return *this;
  }
  CorrelatorView(const CorrelatorView&) = delete;
  CorrelatorView& operator=(const CorrelatorView&) = delete;

  [[nodiscard]] std::span<const Correlator> entries() const noexcept {
    return view_;
  }
  [[nodiscard]] const Correlator* begin() const noexcept {
    return view_.data();
  }
  [[nodiscard]] const Correlator* end() const noexcept {
    return view_.data() + view_.size();
  }
  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }
  [[nodiscard]] bool empty() const noexcept { return view_.empty(); }
  [[nodiscard]] const Correlator& operator[](std::size_t i) const noexcept {
    return view_[i];
  }
  [[nodiscard]] const Correlator& front() const noexcept {
    return view_.front();
  }
  /// True when this view carries its own storage (merged snapshot) —
  /// including an empty one; borrowed views depend on the miner's lifetime.
  [[nodiscard]] bool owns_storage() const noexcept { return owns_; }

  /// Moves the owned storage out (owning views only; borrowed views copy).
  [[nodiscard]] std::vector<Correlator> take() && {
    if (owns_) {
      std::vector<Correlator> out = std::move(owned_);
      view_ = {};
      owns_ = false;
      return out;
    }
    return std::vector<Correlator>(begin(), end());
  }

 private:
  std::vector<Correlator> owned_;
  std::span<const Correlator> view_;
  bool owns_ = false;
};

/// Abstract producer of Correlator Lists.
class CorrelationMiner {
 public:
  virtual ~CorrelationMiner() = default;

  /// Ingests one file request (the full mining pipeline of the backend).
  virtual void observe(const TraceRecord& rec) = 0;

  /// Ingests a batch. Backends with internal parallelism (sharding) override
  /// this; the default is the serial loop.
  virtual void observe_batch(std::span<const TraceRecord> records) {
    for (const TraceRecord& r : records) observe(r);
  }

  /// Barrier: returns once every record accepted by observe()/observe_batch()
  /// before this call is reflected in queries. Synchronous backends apply
  /// records inside observe() and need do nothing; asynchronous backends
  /// (the "concurrent" miner) drain their ingest queues. Calling flush()
  /// while other threads keep producing is allowed but only guarantees the
  /// records accepted before the call.
  virtual void flush() {}

  /// Immutable snapshot of `f`'s Correlator List, sorted by descending
  /// degree. Every entry passed the backend's validity threshold.
  [[nodiscard]] virtual CorrelatorView snapshot(FileId f) const = 0;

  /// Materialized Correlator List (convenience over snapshot()). Owning
  /// snapshots are moved out, not re-copied.
  [[nodiscard]] std::vector<Correlator> correlators(FileId f) const {
    return snapshot(f).take();
  }

  /// R(a, b) under the current state (evaluation-only; no list updates).
  [[nodiscard]] virtual double correlation_degree(FileId a, FileId b) const = 0;

  /// Raw semantic distance sim(a, b); 0 for sequence-only backends or when
  /// either file has no recorded context yet.
  [[nodiscard]] virtual double semantic_similarity(FileId a,
                                                   FileId b) const {
    return 0.0;
  }

  /// N_f: total recorded accesses of `f` (0 if unknown).
  [[nodiscard]] virtual std::uint64_t access_count(FileId f) const = 0;

  /// F(pred, succ) = N_AB / N_A; 0 when N_A == 0.
  [[nodiscard]] virtual double access_frequency(FileId pred,
                                                FileId succ) const = 0;

  [[nodiscard]] virtual MinerStats stats() const = 0;

  /// Additional memory the miner holds (Table 4 accounting).
  [[nodiscard]] virtual std::size_t footprint_bytes() const = 0;

  /// Stable backend identifier; matches the factory name (miner_factory.hpp).
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

}  // namespace farmer
