// The mining API boundary.
//
// The paper's FARMER model is one *producer* of Correlator Lists; the
// downstream optimizers — metadata prefetching (Section 4.1), data layout
// (Section 4.2), policy propagation (Section 4.3) — only ever consume the
// lists plus a handful of evaluation queries. `CorrelationMiner` is that
// boundary, mirroring the `Predictor` polymorphism in prefetch/predictor.hpp:
// consumers bind to the interface and any backend (serial FARMER, sharded
// FARMER, the async "concurrent" miner, the Nexus p = 0 baseline, future
// remote miners) plugs in behind it without recompiling a single consumer.
//
// Queries go through `snapshot()`, which returns an immutable
// `CorrelatorView`: backends whose lists are stable between `observe()`
// calls hand out a zero-copy span, backends that merge on demand (sharded)
// hand out an owning snapshot — either way the caller never observes a
// Correlator List mid-resort.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/correlation_graph.hpp"
#include "trace/record.hpp"

namespace farmer {

/// Backend-agnostic counters (Table 4 / Section 3.3 accounting).
///
/// Field contract per backend class — every backend fills every field with
/// a defined value, never garbage:
///
///   * Synchronous backends (farmer, sharded, nexus): `epoch`, `pending`,
///     `cache_hits` and `cache_misses` are explicitly zero and
///     `shard_epochs` is empty — state is always current, nothing is ever
///     queued, no query cache exists. Zero here *means* "not applicable",
///     by contract (MinerStatsContract tests pin this down). The batch-apply
///     counters (`apply_batches`, `apply_parallel_records`) are owned by the
///     sharded apply path: "sharded" fills them, single-shard backends
///     (farmer, nexus) keep them at zero.
///   * Asynchronous backends (concurrent): `requests`/`pairs_*` count
///     *published* records (enqueued-but-unpublished records appear in
///     `pending` instead), `epoch` is the global publish round,
///     `shard_epochs[s]` is shard s's publish count, the cache counters are
///     live (all zero when the cache is disabled), and the publish counters
///     (`publishes`, `files_cloned`, `bytes_shared`) account the
///     copy-on-write snapshot pipeline.
///   * Routing backends (router): every scalar counter is the sum over the
///     child miners (except `epoch`, which is the max — child publish
///     rounds are independent clocks, so a sum would be meaningless),
///     `shard_epochs` stays empty at the top level, and `per_tenant` holds
///     each child's full MinerStats in tenant order. Leaf backends leave
///     `per_tenant` empty — "empty" *means* "not a router", by contract.
struct MinerStats {
  std::uint64_t requests = 0;         ///< observe() calls ingested
  std::uint64_t pairs_evaluated = 0;  ///< CoMiner R(x,y) evaluations
  std::uint64_t pairs_accepted = 0;   ///< R >= max_strength
  std::uint64_t pairs_filtered = 0;   ///< R <  max_strength
  std::size_t shards = 1;             ///< parallel mining partitions
  std::uint64_t epoch = 0;   ///< published apply rounds (async backends; 0 =
                             ///< synchronous, state is always current)
  std::uint64_t pending = 0; ///< records accepted but not yet published —
                             ///< invisible to queries (async backends;
                             ///< always 0 after flush())
  std::uint64_t publishes = 0;  ///< shard-table publications; with publish
                                ///< coalescing one publication can cover
                                ///< many drain rounds (== epoch on the
                                ///< concurrent backend, 0 = synchronous)
  std::uint64_t files_cloned = 0;  ///< COW blocks copied because a published
                                   ///< snapshot still shared them, cumulative
                                   ///< over all publishes (async backends).
                                   ///< A dirtied file clones up to two
                                   ///< blocks — graph node and semantic
                                   ///< state — so this bounds the dirty
                                   ///< file count from above, ≤ 2x over
  std::uint64_t bytes_shared = 0;  ///< inline block bytes publishes reused
                                   ///< structurally instead of deep-copying
                                   ///< (async backends; heap spill of shared
                                   ///< blocks is additional savings not
                                   ///< counted here)
  std::uint64_t cache_hits = 0;    ///< Correlator-List cache hits (async
                                   ///< backends with the cache enabled)
  std::uint64_t cache_misses = 0;  ///< lookups that had to re-merge: cold,
                                   ///< evicted, or epoch-stale entries
  std::uint64_t apply_batches = 0;  ///< observe_batch spans the sharded
                                    ///< apply path partitioned (sharded
                                    ///< backend live; concurrent as of the
                                    ///< published table; 0 = per-record
                                    ///< ingest only)
  std::uint64_t apply_parallel_records = 0;  ///< records applied through the
                                    ///< shard-disjoint worker pool (> 1
                                    ///< apply thread; 0 = every batch was
                                    ///< applied serially)
  /// Per-shard publish counts (async backends; empty = synchronous). A
  /// shard's entry advances exactly when an apply round touched it, which
  /// is the invalidation signal the Correlator-List cache validates
  /// against.
  std::vector<std::uint64_t> shard_epochs;
  /// Per-tenant child stats in tenant order ("router" backend only; empty
  /// everywhere else). Children are leaves, so entries never nest further.
  /// std::vector explicitly supports the incomplete element type here.
  std::vector<MinerStats> per_tenant;

  [[nodiscard]] double acceptance_rate() const noexcept {
    return pairs_evaluated
               ? static_cast<double>(pairs_accepted) /
                     static_cast<double>(pairs_evaluated)
               : 0.0;
  }
};

/// An immutable snapshot of one file's Correlator List.
///
/// Either *borrows* storage owned by the backend (valid until the next
/// non-const call on the miner — the usual query-then-act pattern) or *owns*
/// a merged copy (sharded backends). Move-only: copying an owning view would
/// silently re-point the span at the source's buffer.
///
/// Lifetime contract by backend ("is the view stable across observe()?
/// across flush()?"):
///
///   * "farmer" / "nexus" — borrowed (`owns_storage() == false`). Stable
///     only until the next observe()/observe_batch() on the miner; flush()
///     is a no-op and does not invalidate it. Query-then-act within one
///     thread is safe; holding the view across further ingest is not.
///   * "sharded" — owning merged copy. Stable forever, across any amount of
///     observe()/flush(), and independent of the miner's lifetime.
///   * "concurrent" — owning copy cut from an RCU-published immutable
///     snapshot. Stable forever; concurrent ingest on other threads never
///     mutates it (the stress tests pin this down under TSan).
///
/// When in doubt, check owns_storage(): an owning view never goes stale.
class CorrelatorView {
 public:
  CorrelatorView() = default;
  explicit CorrelatorView(std::span<const Correlator> borrowed)
      : view_(borrowed) {}
  explicit CorrelatorView(std::vector<Correlator> owned)
      : owned_(std::move(owned)), view_(owned_), owns_(true) {}

  // std::vector's move transfers the heap buffer, so the destination's span
  // stays valid; the source is emptied so it cannot alias that buffer.
  CorrelatorView(CorrelatorView&& other) noexcept
      : owned_(std::move(other.owned_)),
        view_(other.view_),
        owns_(other.owns_) {
    other.view_ = {};
    other.owns_ = false;
  }
  CorrelatorView& operator=(CorrelatorView&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      view_ = other.view_;
      owns_ = other.owns_;
      other.view_ = {};
      other.owns_ = false;
    }
    return *this;
  }
  CorrelatorView(const CorrelatorView&) = delete;
  CorrelatorView& operator=(const CorrelatorView&) = delete;

  [[nodiscard]] std::span<const Correlator> entries() const noexcept {
    return view_;
  }
  [[nodiscard]] const Correlator* begin() const noexcept {
    return view_.data();
  }
  [[nodiscard]] const Correlator* end() const noexcept {
    return view_.data() + view_.size();
  }
  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }
  [[nodiscard]] bool empty() const noexcept { return view_.empty(); }
  [[nodiscard]] const Correlator& operator[](std::size_t i) const noexcept {
    return view_[i];
  }
  [[nodiscard]] const Correlator& front() const noexcept {
    return view_.front();
  }
  /// True when this view carries its own storage (merged snapshot) —
  /// including an empty one; borrowed views depend on the miner's lifetime.
  [[nodiscard]] bool owns_storage() const noexcept { return owns_; }

  /// Moves the owned storage out (owning views only; borrowed views copy).
  [[nodiscard]] std::vector<Correlator> take() && {
    if (owns_) {
      std::vector<Correlator> out = std::move(owned_);
      view_ = {};
      owns_ = false;
      return out;
    }
    return std::vector<Correlator>(begin(), end());
  }

 private:
  std::vector<Correlator> owned_;
  std::span<const Correlator> view_;
  bool owns_ = false;
};

/// Abstract producer of Correlator Lists.
///
/// Thread-safety contract: the *interface* is single-threaded by default —
/// synchronous backends ("farmer", "sharded", "nexus") must not be called
/// concurrently from multiple threads, in any method combination. The
/// asynchronous "concurrent" backend strengthens every method's contract
/// (noted per method below): ingest is safe from any number of threads,
/// const queries are safe from any number of threads concurrently with
/// ingest, and flush() may be called from any thread. Per-method notes
/// state the stronger guarantee where one exists.
class CorrelationMiner {
 public:
  virtual ~CorrelationMiner() = default;

  /// Ingests one file request (the full mining pipeline of the backend).
  ///
  /// Thread-safety: synchronous backends — external synchronization
  /// required; "concurrent" — lock-free, callable from any thread, and
  /// never blocks on queries (soft backpressure only).
  /// Invalidates borrowed CorrelatorViews handed out by this miner
  /// (owning views are unaffected — see CorrelatorView).
  virtual void observe(const TraceRecord& rec) = 0;

  /// Ingests a batch. Backends with internal parallelism (sharding) override
  /// this; the default is the serial loop. Same thread-safety and
  /// view-invalidation contract as observe().
  virtual void observe_batch(std::span<const TraceRecord> records) {
    for (const TraceRecord& r : records) observe(r);
  }

  /// Barrier: returns once every record accepted by observe()/observe_batch()
  /// before this call is reflected in queries. Synchronous backends apply
  /// records inside observe() and need do nothing; asynchronous backends
  /// (the "concurrent" miner) drain their ingest queues *and publish the
  /// result*, so a query issued after flush() returns answers from state
  /// including every flushed record. Calling flush() while other threads
  /// keep producing is allowed but only guarantees the records accepted
  /// before the call. flush() never invalidates any CorrelatorView,
  /// borrowed or owning.
  virtual void flush() {}

  /// Immutable snapshot of `f`'s Correlator List, sorted by descending
  /// degree. Every entry passed the backend's validity threshold.
  ///
  /// Lifetime: see the CorrelatorView class comment — borrowed for
  /// "farmer"/"nexus" (stale after the next observe()), owning and
  /// permanently stable for "sharded"/"concurrent".
  /// Thread-safety: "concurrent" serves this lock-free from RCU-published
  /// state, safe from any thread at any time; synchronous backends require
  /// external synchronization against ingest.
  [[nodiscard]] virtual CorrelatorView snapshot(FileId f) const = 0;

  /// Materialized Correlator List (convenience over snapshot()). Owning
  /// snapshots are moved out, not re-copied.
  [[nodiscard]] std::vector<Correlator> correlators(FileId f) const {
    return snapshot(f).take();
  }

  /// R(a, b) under the current state (evaluation-only; no list updates).
  /// Same thread-safety contract as snapshot().
  [[nodiscard]] virtual double correlation_degree(FileId a, FileId b) const = 0;

  /// Raw semantic distance sim(a, b); 0 for sequence-only backends or when
  /// either file has no recorded context yet. Same thread-safety contract
  /// as snapshot().
  [[nodiscard]] virtual double semantic_similarity(FileId /*a*/,
                                                   FileId /*b*/) const {
    return 0.0;
  }

  /// N_f: total recorded accesses of `f` (0 if unknown). Same thread-safety
  /// contract as snapshot().
  [[nodiscard]] virtual std::uint64_t access_count(FileId f) const = 0;

  /// F(pred, succ) = N_AB / N_A; 0 when N_A == 0. Same thread-safety
  /// contract as snapshot().
  [[nodiscard]] virtual double access_frequency(FileId pred,
                                                FileId succ) const = 0;

  /// Counter snapshot; see the MinerStats field contract for which fields
  /// are meaningful per backend class. On "concurrent" this is safe from
  /// any thread and internally consistent (one published state), though
  /// `pending` is read separately and may lag by an in-flight apply round.
  [[nodiscard]] virtual MinerStats stats() const = 0;

  /// Writes a durable checkpoint of the full model state into directory
  /// `dir` (created if needed): a versioned, checksummed serialization of
  /// every shard's semantic vectors/signatures, correlation graph, Correlator
  /// Lists, CoMiner counters and the embedded trace dictionary — see
  /// docs/ARCHITECTURE.md "Durable persistence". `load(dir)` restores it.
  /// Backends without persistence support throw std::logic_error (the
  /// default). Asynchronous backends flush() first, so the checkpoint covers
  /// every record accepted before the call.
  virtual void save(const std::string& dir) {
    (void)dir;
    throw std::logic_error(std::string(name()) +
                           ": save() not supported by this backend");
  }

  /// Restores state previously written by save() — or accumulated in a
  /// `MinerOptions::persist_dir` directory (newest valid checkpoint plus the
  /// WAL tail). Only valid on a miner that has not ingested anything yet;
  /// throws std::logic_error otherwise, std::runtime_error on corrupt or
  /// configuration-incompatible state. Backends without persistence support
  /// throw std::logic_error (the default).
  virtual void load(const std::string& dir) {
    (void)dir;
    throw std::logic_error(std::string(name()) +
                           ": load() not supported by this backend");
  }

  /// Additional memory the miner holds (Table 4 accounting).
  [[nodiscard]] virtual std::size_t footprint_bytes() const = 0;

  /// Stable backend identifier; matches the factory name (miner_factory.hpp).
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

}  // namespace farmer
