#include "api/miner_factory.hpp"

#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/miner_router.hpp"
#include "core/concurrent_farmer.hpp"
#include "core/farmer.hpp"
#include "core/sharded_farmer.hpp"
#include "net/cluster_miner.hpp"
#include "net/shard_server.hpp"
#include "net/transport.hpp"
#include "persist/durable_miner.hpp"
#include "persist/persister.hpp"

namespace farmer {

namespace {

// The Nexus baseline as a miner: the paper's p = 0 reduction ("If the
// weight value is 0, FARMER is reduced to Nexus") with no validity
// threshold — successors rank purely by LDA-weighted access frequency.
class NexusMiner final : public Farmer {
 public:
  NexusMiner(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict)
      : Farmer(nexus_config(cfg), std::move(dict)) {}

  // Sequence-only: the semantic factor is weighted out, report none.
  [[nodiscard]] double semantic_similarity(FileId, FileId) const override {
    return 0.0;
  }
  [[nodiscard]] const char* name() const noexcept override { return "nexus"; }

 private:
  static FarmerConfig nexus_config(FarmerConfig cfg) {
    cfg.p = 0.0;            // sequence factor only
    cfg.max_strength = 0.0; // Nexus keeps every observed successor
    return cfg;
  }
};

persist::Options persist_options(const MinerOptions& opts) {
  persist::Options p;
  p.dir = opts.persist_dir;
  p.checkpoint_interval_records = opts.checkpoint_interval_records;
  p.wal_group_commit = opts.wal_group_commit;
  return p;
}

using Registry = std::map<std::string, MinerFactoryFn, std::less<>>;

Registry& registry() {
  static Registry r = [] {
    Registry built_in;
    // Synchronous backends become durable by decoration: the factory knows
    // the concrete types, so it hands DurableMiner the Farmer shard view
    // the checkpoint serializer needs. Recovery runs inside the decorator's
    // constructor, before the miner is returned.
    built_in["farmer"] = [](const FarmerConfig& cfg,
                            std::shared_ptr<const TraceDictionary> dict,
                            const MinerOptions& opts)
        -> std::unique_ptr<CorrelationMiner> {
      auto miner = std::make_unique<Farmer>(cfg, dict);
      if (opts.persist_dir.empty()) return miner;
      std::vector<Farmer*> view{miner.get()};
      return std::make_unique<persist::DurableMiner>(
          std::move(miner), std::move(view), cfg, std::move(dict),
          persist_options(opts));
    };
    built_in["sharded"] = [](const FarmerConfig& cfg,
                             std::shared_ptr<const TraceDictionary> dict,
                             const MinerOptions& opts)
        -> std::unique_ptr<CorrelationMiner> {
      auto miner = std::make_unique<ShardedFarmer>(cfg, dict, opts.shards,
                                                   opts.apply_threads);
      if (opts.persist_dir.empty()) return miner;
      std::vector<Farmer*> view;
      view.reserve(miner->shard_count());
      for (std::size_t s = 0; s < miner->shard_count(); ++s)
        view.push_back(&miner->shard_mut(s));
      return std::make_unique<persist::DurableMiner>(
          std::move(miner), std::move(view), cfg, std::move(dict),
          persist_options(opts));
    };
    built_in["nexus"] = [](const FarmerConfig& cfg,
                           std::shared_ptr<const TraceDictionary> dict,
                           const MinerOptions& opts)
        -> std::unique_ptr<CorrelationMiner> {
      auto miner = std::make_unique<NexusMiner>(cfg, dict);
      if (opts.persist_dir.empty()) return miner;
      std::vector<Farmer*> view{miner.get()};
      return std::make_unique<persist::DurableMiner>(
          std::move(miner), std::move(view), cfg, std::move(dict),
          persist_options(opts));
    };
    built_in["router"] = [](const FarmerConfig& cfg,
                            std::shared_ptr<const TraceDictionary> dict,
                            const MinerOptions& opts) {
      // Children inherit the full MinerOptions; the spec string only picks
      // each tenant's backend name. Spec errors surface as
      // std::invalid_argument from here, before any child is built.
      auto specs = parse_router_backends(opts.router_backends,
                                         opts.router_tenants, opts);
      // Persistence fans out per tenant: each child owns (and recovers) its
      // own subdirectory through its own factory path, so a mixed-backend
      // router persists with each tenant's native mechanism.
      if (!opts.persist_dir.empty())
        for (std::size_t t = 0; t < specs.size(); ++t)
          specs[t].options.persist_dir =
              opts.persist_dir + "/tenant" + std::to_string(t);
      return std::make_unique<MinerRouter>(cfg, std::move(dict),
                                           std::move(specs),
                                           opts.router_tenant_of);
    };
    built_in["concurrent"] = [](const FarmerConfig& cfg,
                                std::shared_ptr<const TraceDictionary> dict,
                                const MinerOptions& opts) {
      // max_pending / publish_max_delay_ms == 0 mean "backend default"; the
      // constructor resolves them so direct and factory construction cannot
      // diverge. Durability is embedded, not decorated: the WAL hooks must
      // live on the drain thread and the checkpoints off the published COW
      // snapshots (see ConcurrentFarmer).
      std::unique_ptr<persist::Persister> persister;
      if (!opts.persist_dir.empty())
        persister =
            std::make_unique<persist::Persister>(persist_options(opts));
      return std::make_unique<ConcurrentFarmer>(cfg, std::move(dict),
                                                opts.shards,
                                                opts.ingest_threads,
                                                opts.max_pending,
                                                opts.query_cache_capacity,
                                                opts.publish_interval_records,
                                                opts.publish_max_delay_ms,
                                                std::move(persister),
                                                opts.apply_threads);
    };
    built_in["cluster"] = [](const FarmerConfig& cfg,
                             std::shared_ptr<const TraceDictionary> dict,
                             const MinerOptions& opts)
        -> std::unique_ptr<CorrelationMiner> {
      // Distributed deployment shape run in-process: N shard servers, each
      // hosting one Farmer behind a message-passing transport, fronted by
      // the ClusterMiner client. Only the "loopback" transport ships; the
      // spec is validated here so a future socket transport extends this
      // branch instead of changing callers.
      if (!opts.cluster_transport.empty() &&
          opts.cluster_transport != "loopback")
        throw std::invalid_argument(
            "make_miner: unknown cluster transport \"" +
            opts.cluster_transport + "\" (known: loopback)");
      const std::size_t shards = std::max<std::size_t>(opts.cluster_shards, 1);
      std::vector<std::unique_ptr<net::Transport>> transports;
      std::vector<std::unique_ptr<net::ShardServer>> servers;
      transports.reserve(shards);
      servers.reserve(shards);
      for (std::size_t s = 0; s < shards; ++s) {
        auto [client_end, server_end] = net::make_loopback_pair();
        net::ShardServer::Options sopts;
        // Persistence fans out per shard, like the router's per-tenant
        // subdirectories: each shard server owns and recovers its own
        // durable state.
        if (!opts.persist_dir.empty()) {
          sopts.persist_dir =
              opts.persist_dir + "/shard" + std::to_string(s);
          sopts.checkpoint_interval_records = opts.checkpoint_interval_records;
          sopts.wal_group_commit = opts.wal_group_commit;
        }
        servers.push_back(std::make_unique<net::ShardServer>(
            cfg, dict, std::move(server_end), std::move(sopts)));
        transports.push_back(std::move(client_end));
      }
      net::ClusterOptions copts;
      if (opts.cluster_timeout_ms != 0)
        copts.request_timeout =
            std::chrono::milliseconds(opts.cluster_timeout_ms);
      copts.max_retries = opts.cluster_retries;
      if (opts.cluster_pipeline != 0)
        copts.max_outstanding = opts.cluster_pipeline;
      return std::make_unique<net::ClusterMiner>(cfg, std::move(dict),
                                                 std::move(transports), copts,
                                                 std::move(servers));
    };
    return built_in;
  }();
  return r;
}

}  // namespace

bool register_miner(const std::string& name, MinerFactoryFn factory) {
  auto [it, inserted] = registry().insert_or_assign(name, std::move(factory));
  (void)it;
  return inserted;
}

std::vector<std::string> registered_miners() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, fn] : registry()) names.push_back(name);
  return names;
}

std::unique_ptr<CorrelationMiner> make_miner(
    std::string_view name, const FarmerConfig& cfg,
    std::shared_ptr<const TraceDictionary> dict, const MinerOptions& opts) {
  const std::string errors = cfg.validate();
  if (!errors.empty())
    throw std::invalid_argument("make_miner: invalid FarmerConfig: " +
                                errors);
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& n : registered_miners()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("make_miner: unknown backend \"" +
                                std::string(name) + "\" (registered: " +
                                known + ")");
  }
  return it->second(cfg, std::move(dict), opts);
}

}  // namespace farmer
