#include "api/miner_factory.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "api/miner_router.hpp"
#include "core/concurrent_farmer.hpp"
#include "core/farmer.hpp"
#include "core/sharded_farmer.hpp"

namespace farmer {

namespace {

// The Nexus baseline as a miner: the paper's p = 0 reduction ("If the
// weight value is 0, FARMER is reduced to Nexus") with no validity
// threshold — successors rank purely by LDA-weighted access frequency.
class NexusMiner final : public Farmer {
 public:
  NexusMiner(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict)
      : Farmer(nexus_config(cfg), std::move(dict)) {}

  // Sequence-only: the semantic factor is weighted out, report none.
  [[nodiscard]] double semantic_similarity(FileId, FileId) const override {
    return 0.0;
  }
  [[nodiscard]] const char* name() const noexcept override { return "nexus"; }

 private:
  static FarmerConfig nexus_config(FarmerConfig cfg) {
    cfg.p = 0.0;            // sequence factor only
    cfg.max_strength = 0.0; // Nexus keeps every observed successor
    return cfg;
  }
};

using Registry = std::map<std::string, MinerFactoryFn, std::less<>>;

Registry& registry() {
  static Registry r = [] {
    Registry built_in;
    built_in["farmer"] = [](const FarmerConfig& cfg,
                            std::shared_ptr<const TraceDictionary> dict,
                            const MinerOptions&) {
      return std::make_unique<Farmer>(cfg, std::move(dict));
    };
    built_in["sharded"] = [](const FarmerConfig& cfg,
                             std::shared_ptr<const TraceDictionary> dict,
                             const MinerOptions& opts) {
      return std::make_unique<ShardedFarmer>(cfg, std::move(dict),
                                             opts.shards);
    };
    built_in["nexus"] = [](const FarmerConfig& cfg,
                           std::shared_ptr<const TraceDictionary> dict,
                           const MinerOptions&) {
      return std::make_unique<NexusMiner>(cfg, std::move(dict));
    };
    built_in["router"] = [](const FarmerConfig& cfg,
                            std::shared_ptr<const TraceDictionary> dict,
                            const MinerOptions& opts) {
      // Children inherit the full MinerOptions; the spec string only picks
      // each tenant's backend name. Spec errors surface as
      // std::invalid_argument from here, before any child is built.
      auto specs = parse_router_backends(opts.router_backends,
                                         opts.router_tenants, opts);
      return std::make_unique<MinerRouter>(cfg, std::move(dict),
                                           std::move(specs),
                                           opts.router_tenant_of);
    };
    built_in["concurrent"] = [](const FarmerConfig& cfg,
                                std::shared_ptr<const TraceDictionary> dict,
                                const MinerOptions& opts) {
      // max_pending / publish_max_delay_ms == 0 mean "backend default"; the
      // constructor resolves them so direct and factory construction cannot
      // diverge.
      return std::make_unique<ConcurrentFarmer>(cfg, std::move(dict),
                                                opts.shards,
                                                opts.ingest_threads,
                                                opts.max_pending,
                                                opts.query_cache_capacity,
                                                opts.publish_interval_records,
                                                opts.publish_max_delay_ms);
    };
    return built_in;
  }();
  return r;
}

}  // namespace

bool register_miner(const std::string& name, MinerFactoryFn factory) {
  auto [it, inserted] = registry().insert_or_assign(name, std::move(factory));
  (void)it;
  return inserted;
}

std::vector<std::string> registered_miners() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, fn] : registry()) names.push_back(name);
  return names;
}

std::unique_ptr<CorrelationMiner> make_miner(
    std::string_view name, const FarmerConfig& cfg,
    std::shared_ptr<const TraceDictionary> dict, const MinerOptions& opts) {
  const std::string errors = cfg.validate();
  if (!errors.empty())
    throw std::invalid_argument("make_miner: invalid FarmerConfig: " +
                                errors);
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& n : registered_miners()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("make_miner: unknown backend \"" +
                                std::string(name) + "\" (registered: " +
                                known + ")");
  }
  return it->second(cfg, std::move(dict), opts);
}

}  // namespace farmer
