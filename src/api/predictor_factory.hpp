// Runtime-selectable prefetch predictors.
//
// `make_predictor("fpa" | "nexus" | "probgraph" | "sdgraph" | "ls" | "fs" |
// "recentpop" | "pbs" | "puls" | "none", cfg, dict, opts)` mirrors the
// MinerFactory registry (api/miner_factory.hpp): benches, examples and the
// serving harness select the prediction policy with a string
// (`FARMER_PREDICTOR=...`) instead of hand-constructing each predictor
// class, and new policies register themselves via `register_predictor`
// without touching any consumer. The CI smoke loop iterates
// `registered_predictors()` so a registration can never miss coverage.
//
// "fpa" is the only predictor that owns a mining backend: it builds its
// CorrelationMiner through the MinerFactory from
// `PredictorOptions::miner_backend` + `PredictorOptions::miner`, so the
// full backend matrix (farmer/sharded/concurrent/router/cluster, with
// persistence, caching and publish knobs) is reachable behind the Predictor
// interface with zero predictor-specific plumbing.
//
// `PredictorOptions` is validated before any predictor is constructed: a
// bad option or an unknown name throws std::invalid_argument naming the
// problem and the registered predictors.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/miner_factory.hpp"
#include "core/config.hpp"
#include "prefetch/predictor.hpp"
#include "trace/record.hpp"

namespace farmer {

/// Predictor knobs that are not FARMER model parameters. Every field has a
/// "default" sentinel (0 / negative) so a default-constructed
/// PredictorOptions reproduces each predictor's own Config defaults
/// exactly — the factory only overrides what the caller set. The README's
/// configuration table documents the FARMER_* environment variables
/// RuntimeConfig maps onto these fields.
struct PredictorOptions {
  /// Mining backend behind "fpa" (any registered MinerFactory name).
  /// Other predictors ignore it. Empty = "farmer".
  std::string miner_backend;
  /// MinerOptions handed to the MinerFactory when building "fpa"'s backend
  /// (shards, ingest threads, persistence, cluster knobs, ...).
  MinerOptions miner;
  /// Look-ahead window for the sequence-mining baselines (nexus, probgraph,
  /// sdgraph). 0 = each predictor's own default; capped at
  /// AccessWindow::kMaxWindow.
  std::size_t window = 0;
  /// Minimum accumulated edge weight before "nexus" prefetches a
  /// successor. Negative = default.
  double min_weight = -1.0;
  /// Minimum estimated P(B|A) before "probgraph" prefetches B. Negative =
  /// default; must end up in [0, 1].
  double min_chance = -1.0;
  /// Minimum successor frequency N_AB/N_A before "sdgraph" prefetches.
  /// Negative = default; must end up in [0, 1].
  double min_frequency = -1.0;
  /// "recentpop" best-j-of-k parameters. 0 = default (k=4, j=2); j must
  /// not exceed k.
  std::size_t recent_k = 0;
  std::size_t recent_j = 0;

  /// Empty string when every constraint holds; otherwise all violations,
  /// "; "-joined (mirroring FarmerConfig::validate).
  [[nodiscard]] std::string validate() const;
};

using PredictorFactoryFn = std::function<std::unique_ptr<Predictor>(
    const FarmerConfig& cfg, std::shared_ptr<const TraceDictionary> dict,
    const PredictorOptions& opts)>;

/// Adds (or replaces) a predictor under `name`. Returns true when `name`
/// was new. Built-ins "fpa", "nexus", "probgraph", "sdgraph", "ls", "fs",
/// "recentpop", "pbs", "puls" and "none" are pre-registered.
///
/// A registered factory must return predictors honoring the Predictor
/// contracts (prefetch/predictor.hpp): predict() never proposes the
/// demanded file itself, flush() is a real ingest barrier when the
/// predictor mines asynchronously, and footprint_bytes() reports the
/// predictor's actual state so Table-4 and the serving harness's
/// per-window memory column stay honest.
///
/// Thread-safety: registration is NOT synchronized against concurrent
/// make_predictor()/registered_predictors() calls — register predictors at
/// startup, before serving threads exist.
bool register_predictor(const std::string& name, PredictorFactoryFn factory);

/// Registered predictor names, sorted.
[[nodiscard]] std::vector<std::string> registered_predictors();

/// Constructs the predictor registered under `name`. Throws
/// std::invalid_argument on an unknown name, an invalid `cfg` (validated
/// for "fpa", which mines with it) or invalid `opts`. The returned
/// predictor is exclusively owned; for "fpa" it owns its miner, reachable
/// read-only through Predictor::miner().
[[nodiscard]] std::unique_ptr<Predictor> make_predictor(
    std::string_view name, const FarmerConfig& cfg,
    std::shared_ptr<const TraceDictionary> dict,
    const PredictorOptions& opts = {});

}  // namespace farmer
