// Runtime configuration loader: the one place FARMER_* environment
// variables are parsed.
//
// Benches, examples and the serving harness all configure themselves from
// the same environment surface (README "Configuration" table). Before this
// loader each binary hand-rolled its own getenv/strtoul soup; now
// `RuntimeConfig::from_env()` produces validated `MinerOptions`,
// `PredictorOptions` and scenario knobs in one pass, and a malformed
// variable surfaces as a *typed* `ConfigError` naming the variable, the
// raw value and the constraint it violated — a typo can never silently
// select the default.
//
// Consumers that want the classic CLI behavior (print the diagnostic,
// exit 2) call `from_env_or_exit()`; programmatic consumers catch
// `ConfigError`.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "api/miner_factory.hpp"
#include "api/predictor_factory.hpp"

namespace farmer {

/// Typed failure from RuntimeConfig::from_env(): which environment
/// variable, the raw value found, and the constraint it violated.
class ConfigError : public std::runtime_error {
 public:
  ConfigError(std::string var, std::string value, std::string reason)
      : std::runtime_error("invalid " + var + " \"" + value +
                           "\": " + reason),
        var_(std::move(var)),
        value_(std::move(value)),
        reason_(std::move(reason)) {}

  [[nodiscard]] const std::string& var() const noexcept { return var_; }
  [[nodiscard]] const std::string& value() const noexcept { return value_; }
  [[nodiscard]] const std::string& reason() const noexcept { return reason_; }

 private:
  std::string var_;
  std::string value_;
  std::string reason_;
};

/// Everything the FARMER_* environment selects, validated. Field defaults
/// are the documented backend defaults, so an empty environment yields the
/// exact configuration every bench ran with before this loader existed.
struct RuntimeConfig {
  /// FARMER_MINER: mining backend name resolved through the MinerFactory.
  std::string miner_backend = "farmer";
  /// FARMER_SHARDS / FARMER_INGEST_THREADS / FARMER_APPLY_THREADS /
  /// FARMER_QUERY_CACHE / FARMER_MAX_PENDING / FARMER_PUBLISH_INTERVAL /
  /// FARMER_PUBLISH_MAX_DELAY_MS / FARMER_ROUTER_* / FARMER_PERSIST_DIR /
  /// FARMER_CHECKPOINT_INTERVAL / FARMER_WAL_GROUP_COMMIT /
  /// FARMER_CLUSTER_* — see MinerOptions field docs.
  MinerOptions miner;
  /// FARMER_PREDICTOR: prefetch policy name resolved through the
  /// PredictorFactory ("fpa", "nexus", ..., "none").
  std::string predictor = "fpa";
  /// Options handed to make_predictor(); `predictor_options.miner_backend`
  /// and `.miner` mirror `miner_backend`/`miner` above, so "fpa" built
  /// through the predictor factory mines on the env-selected backend.
  PredictorOptions predictor_options;
  /// FARMER_SCENARIO: serving-scenario name (serve/scenario.hpp); empty =
  /// the consumer's default.
  std::string scenario;
  /// FARMER_SERVE_WINDOWS: reporting windows per scenario run (0 = the
  /// scenario's own default).
  std::size_t serve_windows = 0;
  /// FARMER_SERVE_CACHE: metadata-cache capacity override for scenario
  /// runs (0 = the scenario's own default).
  std::size_t serve_cache = 0;
  /// FARMER_BENCH_SCALE: fraction of the full synthetic volume the benches
  /// replay, in (0, 1].
  double bench_scale = 0.25;
  /// FARMER_BENCH_FILES: file population for the publish-cost bench table.
  std::size_t bench_files = 100000;
  /// FARMER_TRACE_DIR / FARMER_TRACE_TENANTS / FARMER_TRACE_ROUNDS: the
  /// out-of-core trace pipeline knobs (bench_ingest_throughput).
  std::string trace_dir;
  std::size_t trace_tenants = 2;
  std::size_t trace_rounds = 1;

  /// Parses the process environment. Throws ConfigError on the first
  /// malformed variable; unset variables keep the documented defaults.
  [[nodiscard]] static RuntimeConfig from_env();

  /// from_env() with the classic CLI contract: on ConfigError, print the
  /// diagnostic to stderr and exit(2) so a typo never silently runs the
  /// default configuration.
  [[nodiscard]] static RuntimeConfig from_env_or_exit();
};

}  // namespace farmer
