// Successor-model baselines from the file-prediction literature:
//
//   * Last Successor  (LS)  — predict the file that followed A last time.
//   * First Successor (FS)  — predict the file that followed A first, ever.
//   * Recent Popularity (best-j-of-k, Amer & Long IPCCC'02) — predict the
//     most common file among A's last k successors if it appears >= j times.
//   * PBS  (Yeh, Long, Brandt ISPASS'01) — LS conditioned on the program:
//     separate successor tables per program token.
//   * PULS — LS conditioned on (program, user).
//
// The paper points out these break down in multi-user, multi-process
// environments because interleaving corrupts the notion of "successor";
// PBS/PULS partially repair that with program/user context, and FARMER
// generalises the idea to arbitrary attribute combinations.
#pragma once

#include <unordered_map>

#include "common/hash.hpp"
#include "prefetch/predictor.hpp"

namespace farmer {

class LastSuccessorPredictor final : public Predictor {
 public:
  void observe(const TraceRecord& rec) override;
  void predict(const TraceRecord& rec, std::size_t limit,
               PredictionList& out) override;
  [[nodiscard]] const char* name() const noexcept override { return "LS"; }
  [[nodiscard]] std::size_t footprint_bytes() const override;

 private:
  std::unordered_map<FileId, FileId> last_successor_;
  FileId prev_;
};

class FirstSuccessorPredictor final : public Predictor {
 public:
  void observe(const TraceRecord& rec) override;
  void predict(const TraceRecord& rec, std::size_t limit,
               PredictionList& out) override;
  [[nodiscard]] const char* name() const noexcept override { return "FS"; }
  [[nodiscard]] std::size_t footprint_bytes() const override;

 private:
  std::unordered_map<FileId, FileId> first_successor_;
  FileId prev_;
};

class RecentPopularityPredictor final : public Predictor {
 public:
  struct Config {
    std::size_t k = 4;  ///< history length per file
    std::size_t j = 2;  ///< required multiplicity to predict
  };
  RecentPopularityPredictor() : RecentPopularityPredictor(Config{}) {}
  explicit RecentPopularityPredictor(Config cfg) : cfg_(cfg) {}

  void observe(const TraceRecord& rec) override;
  void predict(const TraceRecord& rec, std::size_t limit,
               PredictionList& out) override;
  [[nodiscard]] const char* name() const noexcept override {
    return "RecentPop";
  }
  [[nodiscard]] std::size_t footprint_bytes() const override;

 private:
  Config cfg_;
  std::unordered_map<FileId, SmallVector<FileId, 4>> history_;
  FileId prev_;
};

/// LS conditioned on a context key (program for PBS; program+user for PULS).
class ContextualLastSuccessorPredictor final : public Predictor {
 public:
  enum class Mode { kProgram, kProgramUser };

  explicit ContextualLastSuccessorPredictor(Mode mode) : mode_(mode) {}

  void observe(const TraceRecord& rec) override;
  void predict(const TraceRecord& rec, std::size_t limit,
               PredictionList& out) override;
  [[nodiscard]] const char* name() const noexcept override {
    return mode_ == Mode::kProgram ? "PBS" : "PULS";
  }
  [[nodiscard]] std::size_t footprint_bytes() const override;

 private:
  [[nodiscard]] std::uint64_t context_key(const TraceRecord& rec) const;

  Mode mode_;
  // (context, file) -> last successor within that context.
  std::unordered_map<std::pair<std::uint64_t, FileId>, FileId, PairHash>
      last_successor_;
  // context -> previous file seen in that context.
  std::unordered_map<std::uint64_t, FileId> prev_in_context_;
};

}  // namespace farmer
