#include "prefetch/replay.hpp"

#include <chrono>

namespace farmer {

ReplayResult replay_trace(const Trace& trace, Predictor& predictor,
                          const ReplayConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  MetadataCache cache(cfg.cache_capacity, cfg.policy);
  const std::size_t warmup =
      static_cast<std::size_t>(static_cast<double>(trace.records.size()) *
                               cfg.warmup_fraction);

  PredictionList predictions;
  std::size_t i = 0;
  for (const TraceRecord& rec : trace.records) {
    // Warm-up keeps the resident set but discards the counters, so measured
    // ratios reflect steady state rather than the cold start.
    if (i == warmup && warmup > 0) cache.reset_stats();
    if (!cache.access(rec.file)) cache.insert_demand(rec.file);
    predictor.observe(rec);
    predictions.clear();
    predictor.predict(rec, cfg.prefetch_degree, predictions);
    for (FileId f : predictions) {
      if (f == rec.file) continue;
      cache.insert_prefetch(f);
    }
    ++i;
  }

  ReplayResult result;
  result.cache = cache.stats();
  result.predictor_footprint = predictor.footprint_bytes();
  result.requests = trace.records.size() - warmup;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace farmer
