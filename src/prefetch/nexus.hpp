// Nexus baseline (Gu, Zhu, Jiang, Wang — CCGRID 2006).
//
// Nexus builds a weighted relationship graph from the *global* access
// sequence with a look-ahead window and linear decremented edge weights —
// exactly FARMER's sequence-mining half — and prefetches the top-k
// successors by edge weight with no semantic filter and no validity
// threshold. The paper frames it as the p = 0 special case of FARMER with
// aggressive prefetching; its weakness is that interleaved streams and
// popular unrelated files earn heavy edges and pollute the cache.
#pragma once

#include "graph/access_window.hpp"
#include "graph/correlation_graph.hpp"
#include "prefetch/predictor.hpp"

namespace farmer {

class NexusPredictor final : public Predictor {
 public:
  struct Config {
    std::size_t window = 4;
    double lda_delta = 0.1;
    std::size_t max_successors = 16;
    /// Aggressiveness: Nexus prefetches a whole relationship group.
    std::size_t prefetch_group = 8;
    /// Minimum accumulated edge weight to prefetch a successor. Nexus's
    /// relationship graph prunes weak edges; requiring more than a single
    /// look-ahead observation (1.5 > max single LDA increment) is the
    /// equivalent pruning rule here.
    double min_weight = 1.5;
  };

  NexusPredictor() : NexusPredictor(Config{}) {}
  explicit NexusPredictor(Config cfg)
      : cfg_(cfg),
        graph_({cfg.max_successors, /*correlator_capacity=*/1}),
        window_(cfg.window) {}

  void observe(const TraceRecord& rec) override;
  void predict(const TraceRecord& rec, std::size_t limit,
               PredictionList& out) override;

  [[nodiscard]] const char* name() const noexcept override { return "Nexus"; }
  /// Graph plus the look-ahead window and config the predictor carries —
  /// the whole model state, so Table-4 accounting never under-reports.
  [[nodiscard]] std::size_t footprint_bytes() const override {
    return sizeof(*this) + graph_.footprint_bytes();
  }
  [[nodiscard]] const CorrelationGraph& graph() const noexcept {
    return graph_;
  }

 private:
  Config cfg_;
  CorrelationGraph graph_;
  AccessWindow window_;
};

}  // namespace farmer
