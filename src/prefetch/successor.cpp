#include "prefetch/successor.hpp"

#include <algorithm>

namespace farmer {

// ----------------------------------------------------------------- LS ----

void LastSuccessorPredictor::observe(const TraceRecord& rec) {
  if (prev_.valid() && prev_ != rec.file) last_successor_[prev_] = rec.file;
  prev_ = rec.file;
}

void LastSuccessorPredictor::predict(const TraceRecord& rec, std::size_t limit,
                                     PredictionList& out) {
  if (limit == 0) return;
  auto it = last_successor_.find(rec.file);
  if (it != last_successor_.end() && it->second != rec.file)
    out.push_back(it->second);
}

std::size_t LastSuccessorPredictor::footprint_bytes() const {
  return last_successor_.size() * (sizeof(FileId) * 2 + sizeof(void*) * 2) +
         last_successor_.bucket_count() * sizeof(void*);
}

// ----------------------------------------------------------------- FS ----

void FirstSuccessorPredictor::observe(const TraceRecord& rec) {
  if (prev_.valid() && prev_ != rec.file)
    first_successor_.try_emplace(prev_, rec.file);  // never overwritten
  prev_ = rec.file;
}

void FirstSuccessorPredictor::predict(const TraceRecord& rec,
                                      std::size_t limit,
                                      PredictionList& out) {
  if (limit == 0) return;
  auto it = first_successor_.find(rec.file);
  if (it != first_successor_.end() && it->second != rec.file)
    out.push_back(it->second);
}

std::size_t FirstSuccessorPredictor::footprint_bytes() const {
  return first_successor_.size() * (sizeof(FileId) * 2 + sizeof(void*) * 2) +
         first_successor_.bucket_count() * sizeof(void*);
}

// ---------------------------------------------------- Recent Popularity --

void RecentPopularityPredictor::observe(const TraceRecord& rec) {
  if (prev_.valid() && prev_ != rec.file) {
    auto& h = history_[prev_];
    if (h.size() >= cfg_.k) h.erase_at(0);
    h.push_back(rec.file);
  }
  prev_ = rec.file;
}

void RecentPopularityPredictor::predict(const TraceRecord& rec,
                                        std::size_t limit,
                                        PredictionList& out) {
  if (limit == 0) return;
  auto it = history_.find(rec.file);
  if (it == history_.end()) return;
  const auto& h = it->second;
  // Most common entry of the last k successors, requiring multiplicity j
  // (best-j-out-of-k); ties resolved toward the most recent.
  FileId best;
  std::size_t best_count = 0;
  for (std::size_t i = h.size(); i-- > 0;) {
    std::size_t count = 0;
    for (const FileId f : h)
      if (f == h[i]) ++count;
    if (count > best_count) {
      best = h[i];
      best_count = count;
    }
  }
  if (best_count >= cfg_.j && best.valid() && best != rec.file)
    out.push_back(best);
}

std::size_t RecentPopularityPredictor::footprint_bytes() const {
  std::size_t bytes = history_.bucket_count() * sizeof(void*);
  bytes += history_.size() *
           (sizeof(FileId) + sizeof(SmallVector<FileId, 4>) +
            sizeof(void*) * 2);
  return bytes;
}

// ----------------------------------------------------------- PBS / PULS --

std::uint64_t ContextualLastSuccessorPredictor::context_key(
    const TraceRecord& rec) const {
  std::uint64_t key = mix64(rec.program_token.value());
  if (mode_ == Mode::kProgramUser)
    key ^= mix64(static_cast<std::uint64_t>(rec.user_token.value()) + 0x517C);
  return key;
}

void ContextualLastSuccessorPredictor::observe(const TraceRecord& rec) {
  const std::uint64_t ctx = context_key(rec);
  auto it = prev_in_context_.find(ctx);
  if (it != prev_in_context_.end() && it->second != rec.file)
    last_successor_[{ctx, it->second}] = rec.file;
  prev_in_context_[ctx] = rec.file;
}

void ContextualLastSuccessorPredictor::predict(const TraceRecord& rec,
                                               std::size_t limit,
                                               PredictionList& out) {
  if (limit == 0) return;
  auto it = last_successor_.find({context_key(rec), rec.file});
  if (it != last_successor_.end() && it->second != rec.file)
    out.push_back(it->second);
}

std::size_t ContextualLastSuccessorPredictor::footprint_bytes() const {
  return last_successor_.size() *
             (sizeof(std::uint64_t) + sizeof(FileId) * 2 + sizeof(void*) * 2) +
         last_successor_.bucket_count() * sizeof(void*) +
         prev_in_context_.size() *
             (sizeof(std::uint64_t) + sizeof(FileId) + sizeof(void*) * 2);
}

}  // namespace farmer
