// Prefetch predictor interface.
//
// A predictor observes the demand request stream and, after each request,
// proposes files whose metadata should be prefetched. The paper's FPA and
// all baselines (Nexus, Probability Graph, SD graph, Last/First Successor,
// Recent Popularity, PBS, PULS) implement this interface, which keeps the
// replay engine and the MDS policy-agnostic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/small_vector.hpp"
#include "common/types.hpp"
#include "trace/record.hpp"

namespace farmer {

class CorrelationMiner;

/// Bounded candidate list, best first.
using PredictionList = SmallVector<FileId, 8>;

class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Ingests one demand request (learning step).
  virtual void observe(const TraceRecord& rec) = 0;

  /// Appends up to `limit` prefetch candidates for the state after `rec`
  /// was observed, best first. Must not propose `rec.file` itself.
  virtual void predict(const TraceRecord& rec, std::size_t limit,
                       PredictionList& out) = 0;

  /// Ingest barrier: returns once everything observe()d so far can inform
  /// predict(). Only predictors over asynchronous miners (FPA on the
  /// "concurrent" backend) do real work here; live replay deliberately does
  /// NOT call it per record — an async miner predicting from slightly stale
  /// epochs is the modelled behavior. Bulk-load-then-predict callers flush
  /// once after ingest.
  virtual void flush() {}

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Memory the predictor holds (Table 4-style accounting). Every real
  /// predictor must report its actual state — graphs, windows, successor
  /// tables, an owned miner — so the serving harness's per-window memory
  /// column and the Table-4 comparison stay honest. The default 0 is for
  /// genuinely stateless predictors (NoopPredictor) only.
  [[nodiscard]] virtual std::size_t footprint_bytes() const { return 0; }

  /// The mining backend this predictor learns through, when it has one
  /// (FPA); nullptr for self-contained baselines. The serving harness
  /// samples stats()/footprint through it for the per-window ingest-lag /
  /// epoch-staleness columns, and drives save()/load() through it for the
  /// checkpoint-restore scenarios, without knowing the concrete predictor
  /// type. The miner stays owned by the predictor; the pointer is valid
  /// for the predictor's lifetime.
  [[nodiscard]] virtual CorrelationMiner* miner() noexcept { return nullptr; }
  [[nodiscard]] const CorrelationMiner* miner() const noexcept {
    return const_cast<Predictor*>(this)->miner();
  }
};

/// The no-prefetch predictor (the "LRU" configuration of the paper: plain
/// cache replacement with no prefetching at all).
class NoopPredictor final : public Predictor {
 public:
  void observe(const TraceRecord&) override {}
  void predict(const TraceRecord&, std::size_t, PredictionList&) override {}
  [[nodiscard]] const char* name() const noexcept override { return "none"; }
};

}  // namespace farmer
