#include "prefetch/probability_graph.hpp"

#include <algorithm>

namespace farmer {

void ProbabilityGraphPredictor::observe(const TraceRecord& rec) {
  const FileId file = rec.file;
  graph_.record_access(file);
  window_.for_each_predecessor(file, [&](FileId pred, std::size_t) {
    graph_.add_transition(pred, file, 1.0);  // uniform: no distance decay
  });
  window_.push(file);
}

void ProbabilityGraphPredictor::predict(const TraceRecord& rec,
                                        std::size_t limit,
                                        PredictionList& out) {
  const auto opens = graph_.access_count(rec.file);
  if (opens == 0) return;
  struct Cand {
    FileId f;
    double p;
  };
  SmallVector<Cand, 8> cands;
  for (const auto& e : graph_.successors(rec.file)) {
    const double p = static_cast<double>(e.nab) / static_cast<double>(opens);
    if (p >= cfg_.min_chance) cands.push_back({e.successor, p});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.p != b.p) return a.p > b.p;
    return a.f < b.f;
  });
  for (std::size_t i = 0; i < cands.size() && out.size() < limit; ++i)
    out.push_back(cands[i].f);
}

}  // namespace farmer
