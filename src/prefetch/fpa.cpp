#include "prefetch/fpa.hpp"

// Header-only; TU anchors the target.
namespace farmer {}
