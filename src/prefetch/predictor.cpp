#include "prefetch/predictor.hpp"

// Interface anchor.
namespace farmer {}
