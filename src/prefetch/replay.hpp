// Cache replay engine.
//
// Replays a trace through (predictor, metadata cache) with zero-latency
// fetches: every demand miss populates the cache immediately and every
// prediction is prefetched immediately. This isolates the *policy* effects
// (hit ratio, prefetch accuracy, pollution) from queueing effects; the DES
// cluster in src/storage adds the latency dimension for the response-time
// figures.
#pragma once

#include <functional>
#include <memory>

#include "cache/metadata_cache.hpp"
#include "prefetch/predictor.hpp"
#include "trace/record.hpp"

namespace farmer {

struct ReplayConfig {
  std::size_t cache_capacity = 1024;
  CachePolicy policy = CachePolicy::kLRU;
  std::size_t prefetch_degree = 4;  ///< max candidates consumed per request
  /// Warm-up fraction of the trace during which stats are not recorded
  /// (the model still learns). 0 disables warm-up handling.
  double warmup_fraction = 0.0;
};

struct ReplayResult {
  CacheStats cache;
  std::size_t predictor_footprint = 0;
  std::uint64_t requests = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] double hit_ratio() const noexcept {
    return cache.hit_ratio();
  }
  [[nodiscard]] double prefetch_accuracy() const noexcept {
    return cache.prefetch_accuracy();
  }
};

/// Replays `trace` and returns the resulting metrics. The predictor is
/// mutated (it learns the whole trace).
[[nodiscard]] ReplayResult replay_trace(const Trace& trace,
                                        Predictor& predictor,
                                        const ReplayConfig& cfg);

}  // namespace farmer
