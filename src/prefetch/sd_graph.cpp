#include "prefetch/sd_graph.hpp"

#include <algorithm>

namespace farmer {

void SdGraphPredictor::observe(const TraceRecord& rec) {
  const FileId file = rec.file;
  graph_.record_access(file);
  window_.for_each_predecessor(file, [&](FileId pred, std::size_t distance) {
    graph_.add_transition(pred, file, 1.0 / static_cast<double>(distance));
  });
  window_.push(file);
}

void SdGraphPredictor::predict(const TraceRecord& rec, std::size_t limit,
                               PredictionList& out) {
  const auto opens = graph_.access_count(rec.file);
  if (opens == 0) return;
  struct Cand {
    FileId f;
    double w;
  };
  SmallVector<Cand, 8> cands;
  for (const auto& e : graph_.successors(rec.file)) {
    const double fr = static_cast<double>(e.nab) / static_cast<double>(opens);
    if (fr >= cfg_.min_frequency) cands.push_back({e.successor, fr});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.w != b.w) return a.w > b.w;
    return a.f < b.f;
  });
  for (std::size_t i = 0; i < cands.size() && out.size() < limit; ++i)
    out.push_back(cands[i].f);
}

}  // namespace farmer
