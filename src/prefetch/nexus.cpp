#include "prefetch/nexus.hpp"

#include <algorithm>

namespace farmer {

void NexusPredictor::observe(const TraceRecord& rec) {
  const FileId file = rec.file;
  graph_.record_access(file);
  window_.for_each_predecessor(file, [&](FileId pred, std::size_t distance) {
    const double w = AccessWindow::lda_weight(distance, cfg_.lda_delta);
    if (w > 0.0) graph_.add_transition(pred, file, w);
  });
  window_.push(file);
}

void NexusPredictor::predict(const TraceRecord& rec, std::size_t limit,
                             PredictionList& out) {
  const auto& succ = graph_.successors(rec.file);
  if (succ.empty()) return;
  // Rank successors by raw edge weight (no semantic filter).
  SmallVector<SuccessorEdge, 8> ranked;
  for (const auto& e : succ)
    if (static_cast<double>(e.nab) >= cfg_.min_weight) ranked.push_back(e);
  std::sort(ranked.begin(), ranked.end(),
            [](const SuccessorEdge& a, const SuccessorEdge& b) {
              if (a.nab != b.nab) return a.nab > b.nab;
              return a.successor < b.successor;
            });
  const std::size_t n = std::min({static_cast<std::size_t>(ranked.size()),
                                  cfg_.prefetch_group, limit});
  for (std::size_t i = 0; i < n; ++i) out.push_back(ranked[i].successor);
}

}  // namespace farmer
