// Probability Graph baseline (Griffioen & Appleton, USENIX Summer 1994).
//
// Counts, for each file, how often every other file follows it within a
// fixed look-ahead window (uniform weights — no distance decay). A successor
// is prefetched when its estimated conditional probability
// count(A,B)/opens(A) exceeds a minimum chance threshold.
#pragma once

#include "graph/access_window.hpp"
#include "graph/correlation_graph.hpp"
#include "prefetch/predictor.hpp"

namespace farmer {

class ProbabilityGraphPredictor final : public Predictor {
 public:
  struct Config {
    std::size_t window = 2;       ///< the paper's small lookahead period
    double min_chance = 0.1;      ///< minimum P(B|A) to prefetch
    std::size_t max_successors = 16;
  };

  ProbabilityGraphPredictor() : ProbabilityGraphPredictor(Config{}) {}
  explicit ProbabilityGraphPredictor(Config cfg)
      : cfg_(cfg), graph_({cfg.max_successors, 1}), window_(cfg.window) {}

  void observe(const TraceRecord& rec) override;
  void predict(const TraceRecord& rec, std::size_t limit,
               PredictionList& out) override;

  [[nodiscard]] const char* name() const noexcept override {
    return "ProbGraph";
  }
  /// Graph plus the look-ahead window and config the predictor carries.
  [[nodiscard]] std::size_t footprint_bytes() const override {
    return sizeof(*this) + graph_.footprint_bytes();
  }

 private:
  Config cfg_;
  CorrelationGraph graph_;
  AccessWindow window_;
};

}  // namespace farmer
