// SD-graph baseline (Kuenning's SEER semantic-distance clustering, 1994).
//
// SEER estimates "semantic distance" purely from access sequences: files
// observed close together repeatedly get a small distance. We model it as a
// look-ahead graph whose edge weight is the accumulated inverse distance
// (1/d for a successor at distance d) — distance-sensitive like Nexus but
// with a harmonic rather than linear profile, and ranked by normalised
// frequency. It also serves as the LDA-vs-alternative-decay ablation point.
#pragma once

#include "graph/access_window.hpp"
#include "graph/correlation_graph.hpp"
#include "prefetch/predictor.hpp"

namespace farmer {

class SdGraphPredictor final : public Predictor {
 public:
  struct Config {
    std::size_t window = 4;
    std::size_t max_successors = 16;
    double min_frequency = 0.05;  ///< N_AB/N_A floor to avoid noise edges
  };

  SdGraphPredictor() : SdGraphPredictor(Config{}) {}
  explicit SdGraphPredictor(Config cfg)
      : cfg_(cfg), graph_({cfg.max_successors, 1}), window_(cfg.window) {}

  void observe(const TraceRecord& rec) override;
  void predict(const TraceRecord& rec, std::size_t limit,
               PredictionList& out) override;

  [[nodiscard]] const char* name() const noexcept override {
    return "SDGraph";
  }
  /// Graph plus the look-ahead window and config the predictor carries.
  [[nodiscard]] std::size_t footprint_bytes() const override {
    return sizeof(*this) + graph_.footprint_bytes();
  }

 private:
  Config cfg_;
  CorrelationGraph graph_;
  AccessWindow window_;
};

}  // namespace farmer
