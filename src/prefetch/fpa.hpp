// FPA — the FARMER-enabled Prefetching Algorithm (Section 4.1 / 5).
//
// FPA consults the Correlator List of the file just accessed: every entry
// already passed the validity threshold (max_strength), so predictions are
// the strongest correlated successors in degree order. The threshold is what
// separates FPA from aggressive sequence-only prefetchers — "successors that
// are not up to the mustard will not be prefetched".
//
// FPA binds to the CorrelationMiner interface, not a concrete model: any
// factory backend (serial, sharded, nexus) drives it unchanged.
#pragma once

#include <algorithm>
#include <memory>
#include <utility>

#include "api/correlation_miner.hpp"
#include "core/farmer.hpp"
#include "prefetch/predictor.hpp"

namespace farmer {

class FpaPredictor final : public Predictor {
 public:
  /// Successor frequency below which the sequence evidence alone is too
  /// thin to justify an I/O.
  static constexpr double kMinReliableFrequency = 0.02;
  /// Current-context similarity that rehabilitates a low-frequency
  /// candidate (e.g., a per-client file matched by host/user).
  static constexpr double kMinReferenceSimilarity = 0.25;

  /// Runs FPA on any mining backend (see api/miner_factory.hpp).
  explicit FpaPredictor(std::unique_ptr<CorrelationMiner> miner)
      : miner_(std::move(miner)) {}

  /// Convenience: FPA over a serial FARMER model.
  FpaPredictor(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict)
      : FpaPredictor(std::make_unique<Farmer>(cfg, std::move(dict))) {}

  void observe(const TraceRecord& rec) override { miner_->observe(rec); }

  /// Ingest barrier of the underlying miner (no-op for synchronous
  /// backends): bulk-load-then-predict callers flush before querying.
  void flush() override { miner_->flush(); }

  void predict(const TraceRecord& rec, std::size_t limit,
               PredictionList& out) override {
    const CorrelatorView list = miner_->snapshot(rec.file);
    if (list.empty() || limit == 0) return;
    // Re-rank the (tiny) list against the *current* request context: the
    // stored degree reflects the context at mining time, but prefetching
    // serves this request — candidates whose semantic vectors match the
    // requester (same user/process/host) move up. This is the "evaluation
    // reference" part of the model: mining is historical, reference is
    // current.
    struct Ranked {
      FileId file;
      double degree;
    };
    SmallVector<Ranked, 8> ranked;
    for (const Correlator& c : list) {
      if (c.file == rec.file) continue;
      // A candidate seen only once has demonstrated no *exploitable*
      // correlation yet (Section 3.2.4's validity argument): prefetching
      // one-shot files — freshly created checkpoints, temporaries — is
      // pure pollution, so they are skipped until they recur.
      if (miner_->access_count(c.file) < 2) continue;
      // Reference validity: the mined degree reflects the context at mining
      // time; before spending an I/O the candidate must still look related
      // — either its successor *frequency* is established, or its semantic
      // vector matches the current requester. Entries failing both are
      // stale (old jobs' files whose context has moved on).
      const double freq = miner_->access_frequency(rec.file, c.file);
      const double sim_now = miner_->semantic_similarity(rec.file, c.file);
      if (freq < kMinReliableFrequency && sim_now < kMinReferenceSimilarity)
        continue;
      const double now = miner_->correlation_degree(rec.file, c.file);
      // Blend mined degree with the current-reference degree so recurring
      // pairs are not discarded merely because contexts drifted.
      ranked.push_back(
          {c.file, 0.5 * static_cast<double>(c.degree) + 0.5 * now});
    }
    std::sort(ranked.begin(), ranked.end(), [](const Ranked& a,
                                               const Ranked& b) {
      if (a.degree != b.degree) return a.degree > b.degree;
      return a.file < b.file;
    });
    for (const Ranked& r : ranked) {
      if (out.size() >= limit) break;
      out.push_back(r.file);
    }
  }

  [[nodiscard]] const char* name() const noexcept override { return "FPA"; }
  [[nodiscard]] std::size_t footprint_bytes() const override {
    return sizeof(*this) + miner_->footprint_bytes();
  }
  [[nodiscard]] const CorrelationMiner& model() const noexcept {
    return *miner_;
  }
  [[nodiscard]] CorrelationMiner* miner() noexcept override {
    return miner_.get();
  }

 private:
  std::unique_ptr<CorrelationMiner> miner_;
};

}  // namespace farmer
