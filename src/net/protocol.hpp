// Payload codecs of the shard protocol — the bytes inside a Frame.
//
// One codec, two users: the cluster client (net/cluster_miner.*) encodes
// requests and decodes responses, the shard server (net/shard_server.*)
// does the reverse. Keeping both directions in one translation unit is what
// makes the differential gate ("cluster-over-loopback is byte-identical to
// sharded") a structural property: there is no second serializer to drift.
//
// Every decoder is hardened the same way the trace readers are
// (trace/trace_io.hpp): element counts are bounded against the bytes
// actually present *before* any allocation, trailing bytes are rejected,
// and scalar reads go through the bounds-checked ByteReader — a truncated
// or bit-flipped payload throws std::runtime_error, never over-allocates
// or reads past the buffer. The corruption-fuzz suite flips every byte of
// every payload type to pin this down.
//
// Floating-point fields travel as raw IEEE-754 bit patterns (memcpy), so a
// degree or correlation computed on a shard server arrives at the client
// bit-identical — the differential tests compare with std::bit_cast, not
// with an epsilon.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/correlation_graph.hpp"
#include "trace/record.hpp"

namespace farmer::net {

/// One shard's answers to every pairwise query on (a, b), fetched in a
/// single round trip. The client folds these across shards with exactly
/// the ShardedFarmer::merged_* arithmetic: max for the degrees, summed
/// edge_weight / summed access count for the global access frequency.
struct PairQueryResult {
  double correlation_degree = 0.0;
  double semantic_similarity = 0.0;
  double edge_weight = 0.0;            ///< graph().edge_weight(pred, succ)
  std::uint64_t graph_access_count = 0;  ///< graph().access_count(pred)
};

/// One shard's mining counters + footprint (the MinerStats subset a remote
/// shard contributes; the client sums them in shard order).
struct ShardStatsResult {
  std::uint64_t requests = 0;
  std::uint64_t pairs_evaluated = 0;
  std::uint64_t pairs_accepted = 0;
  std::uint64_t pairs_filtered = 0;
  std::uint64_t footprint_bytes = 0;
};

// ---- requests -----------------------------------------------------------

/// [u32 count][count x TraceRecord raw] — the kObserveBatch request body.
[[nodiscard]] std::string encode_observe_batch(
    std::span<const TraceRecord> records);
/// Bounded decode: `count` must match the bytes present exactly. Record
/// *contents* are validated by the server against its dictionary
/// (trace_io validate_record), not here.
[[nodiscard]] std::vector<TraceRecord> decode_observe_batch(
    std::string_view payload);

/// [u32 file] — kCorrelators / kAccessCount request body.
[[nodiscard]] std::string encode_file_query(FileId f);
[[nodiscard]] FileId decode_file_query(std::string_view payload);

/// [u32 a][u32 b] — kPairQuery request body.
[[nodiscard]] std::string encode_pair_query(FileId a, FileId b);
void decode_pair_query(std::string_view payload, FileId& a, FileId& b);

// ---- responses ----------------------------------------------------------

/// [u64 value] — kObserveBatch (records applied) and kAccessCount (N_f).
[[nodiscard]] std::string encode_u64(std::uint64_t v);
[[nodiscard]] std::uint64_t decode_u64(std::string_view payload);

/// [u32 count][count x {u32 file, f32 degree}] — kCorrelators response, in
/// the shard's stored list order (already degree-sorted per shard).
[[nodiscard]] std::string encode_correlators(std::span<const Correlator> list);
[[nodiscard]] std::vector<Correlator> decode_correlators(
    std::string_view payload);

[[nodiscard]] std::string encode_pair_result(const PairQueryResult& r);
[[nodiscard]] PairQueryResult decode_pair_result(std::string_view payload);

[[nodiscard]] std::string encode_stats_result(const ShardStatsResult& r);
[[nodiscard]] ShardStatsResult decode_stats_result(std::string_view payload);

}  // namespace farmer::net
