#include "net/frame.hpp"

#include <cstring>
#include <stdexcept>

namespace farmer::net {

namespace {

template <typename T>
void append_raw(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T read_raw(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

[[nodiscard]] bool valid_op(FrameKind kind, std::uint8_t raw) noexcept {
  if (raw >= static_cast<std::uint8_t>(OpCode::kObserveBatch) &&
      raw <= static_cast<std::uint8_t>(OpCode::kExportModel))
    return true;
  // kError is a response-only status.
  return kind == FrameKind::kResponse &&
         raw == static_cast<std::uint8_t>(OpCode::kError);
}

}  // namespace

const char* op_name(OpCode op) noexcept {
  switch (op) {
    case OpCode::kObserveBatch: return "observe_batch";
    case OpCode::kCorrelators: return "correlators";
    case OpCode::kPairQuery: return "pair_query";
    case OpCode::kAccessCount: return "access_count";
    case OpCode::kFlush: return "flush";
    case OpCode::kStats: return "stats";
    case OpCode::kExportModel: return "export_model";
    case OpCode::kError: return "error";
  }
  return "unknown";
}

std::string encode_frame(FrameKind kind, OpCode op, std::uint64_t request_id,
                         std::string_view payload) {
  if (payload.size() > kMaxFramePayload)
    throw std::invalid_argument("frame payload exceeds kMaxFramePayload");
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  append_raw(out, kFrameMagic);
  append_raw(out, static_cast<std::uint8_t>(kind));
  append_raw(out, static_cast<std::uint8_t>(op));
  append_raw(out, std::uint16_t{0});  // reserved
  append_raw(out, request_id);
  append_raw(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

std::size_t announced_frame_size(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderBytes)
    throw std::runtime_error("frame header truncated");
  const char* p = bytes.data();
  if (read_raw<std::uint32_t>(p) != kFrameMagic)
    throw std::runtime_error("frame: bad magic");
  const auto kind_raw = read_raw<std::uint8_t>(p + 4);
  if (kind_raw != static_cast<std::uint8_t>(FrameKind::kRequest) &&
      kind_raw != static_cast<std::uint8_t>(FrameKind::kResponse))
    throw std::runtime_error("frame: unknown kind");
  const auto op_raw = read_raw<std::uint8_t>(p + 5);
  if (!valid_op(static_cast<FrameKind>(kind_raw), op_raw))
    throw std::runtime_error("frame: unknown op code");
  if (read_raw<std::uint16_t>(p + 6) != 0)
    throw std::runtime_error("frame: reserved bits set");
  const auto payload_len = read_raw<std::uint32_t>(p + 16);
  if (payload_len > kMaxFramePayload)
    throw std::runtime_error("frame: payload length exceeds bound");
  return kFrameHeaderBytes + payload_len;
}

Frame decode_frame(std::string_view bytes) {
  const std::size_t total = announced_frame_size(bytes);
  if (bytes.size() < total) throw std::runtime_error("frame truncated");
  if (bytes.size() > total)
    throw std::runtime_error("frame: trailing bytes after payload");
  Frame f;
  f.kind = static_cast<FrameKind>(read_raw<std::uint8_t>(bytes.data() + 4));
  f.op = static_cast<OpCode>(read_raw<std::uint8_t>(bytes.data() + 5));
  f.request_id = read_raw<std::uint64_t>(bytes.data() + 8);
  f.payload.assign(bytes.substr(kFrameHeaderBytes));
  return f;
}

void FrameAssembler::feed(std::string_view bytes) {
  if (poisoned_)
    throw std::runtime_error("frame stream poisoned by earlier error");
  buf_.append(bytes);
  // Validate the header eagerly: a corrupt prefix fails here, before the
  // buffer can grow toward a bogus announced length.
  if (buf_.size() >= kFrameHeaderBytes) {
    try {
      (void)announced_frame_size(buf_);
    } catch (...) {
      poisoned_ = true;
      throw;
    }
  }
}

std::optional<Frame> FrameAssembler::poll() {
  if (poisoned_)
    throw std::runtime_error("frame stream poisoned by earlier error");
  if (buf_.size() < kFrameHeaderBytes) return std::nullopt;
  std::size_t total = 0;
  try {
    total = announced_frame_size(buf_);
  } catch (...) {
    poisoned_ = true;
    throw;
  }
  if (buf_.size() < total) return std::nullopt;
  Frame f = decode_frame(std::string_view(buf_).substr(0, total));
  buf_.erase(0, total);
  // The next frame's header (if buffered) must validate too: a poisoned
  // tail surfaces now rather than on the next feed().
  if (buf_.size() >= kFrameHeaderBytes) {
    try {
      (void)announced_frame_size(buf_);
    } catch (...) {
      poisoned_ = true;
      throw;
    }
  }
  return f;
}

}  // namespace farmer::net
