#include "net/cluster_miner.hpp"

#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/hash.hpp"
#include "core/sharded_farmer.hpp"
#include "net/protocol.hpp"
#include "persist/checkpoint.hpp"

namespace farmer::net {

namespace {

[[nodiscard]] std::string shard_tag(std::size_t shard, OpCode op) {
  return "cluster: shard " + std::to_string(shard) + " " + op_name(op);
}

}  // namespace

ClusterMiner::ClusterMiner(
    FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict,
    std::vector<std::unique_ptr<Transport>> transports, ClusterOptions opts,
    std::vector<std::unique_ptr<ShardServer>> local_servers)
    : cfg_(cfg),
      dict_(std::move(dict)),
      opts_(opts),
      local_servers_(std::move(local_servers)) {
  if (transports.empty())
    throw std::invalid_argument("ClusterMiner: needs at least one shard");
  channels_.reserve(transports.size());
  for (auto& t : transports) {
    auto ch = std::make_unique<Channel>();
    ch->transport = std::move(t);
    channels_.push_back(std::move(ch));
  }
}

ClusterMiner::~ClusterMiner() {
  // Close every channel first so owned loopback servers stop serving and
  // their threads join promptly in local_servers_'s destructor.
  for (auto& ch : channels_) ch->transport->close();
}

std::size_t ClusterMiner::shard_of(const TraceRecord& rec) const noexcept {
  return static_cast<std::size_t>(mix64(rec.process.value())) %
         channels_.size();
}

std::uint64_t ClusterMiner::send_locked(Channel& ch, std::size_t shard,
                                        OpCode op,
                                        std::string_view payload) const {
  const std::uint64_t id = ch.next_id++;
  auto [it, inserted] = ch.outstanding.emplace(
      id, encode_frame(FrameKind::kRequest, op, id, payload));
  if (!ch.transport->send(it->second))
    throw std::runtime_error(shard_tag(shard, op) + ": connection closed");
  return id;
}

std::string ClusterMiner::await_locked(Channel& ch, std::size_t shard,
                                       std::uint64_t id) const {
  std::size_t attempts = 0;
  auto deadline = std::chrono::steady_clock::now() + opts_.request_timeout;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // The request or its response was lost. Re-send the identical frame
      // (same request id: the server deduplicates, so a batch is never
      // applied twice even when the original was merely slow).
      if (attempts >= opts_.max_retries)
        throw std::runtime_error(
            "cluster: shard " + std::to_string(shard) + ": no response after " +
            std::to_string(attempts + 1) + " attempts (timeout " +
            std::to_string(opts_.request_timeout.count()) + " ms)");
      ++attempts;
      if (!ch.transport->send(ch.outstanding.at(id)))
        throw std::runtime_error("cluster: shard " + std::to_string(shard) +
                                 ": connection closed");
      deadline = std::chrono::steady_clock::now() + opts_.request_timeout;
      continue;
    }
    auto msg = ch.transport->receive(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!msg) {
      if (ch.transport->closed())
        throw std::runtime_error("cluster: shard " + std::to_string(shard) +
                                 ": connection closed");
      continue;  // timed out waiting; the deadline branch decides next
    }
    Frame resp;
    try {
      resp = decode_frame(*msg);
    } catch (const std::exception& e) {
      throw std::runtime_error("cluster: shard " + std::to_string(shard) +
                               ": corrupt response: " + e.what());
    }
    if (resp.kind != FrameKind::kResponse) continue;  // stray request: drop
    const auto found = ch.outstanding.find(resp.request_id);
    if (found == ch.outstanding.end()) continue;  // duplicate/stale response
    ch.outstanding.erase(found);
    if (resp.request_id == id) {
      if (resp.op == OpCode::kError)
        throw std::runtime_error("cluster: shard " + std::to_string(shard) +
                                 ": " + resp.payload);
      return std::move(resp.payload);
    }
    // Retired the ack of an earlier pipelined request. A failure there is
    // data loss, not a failure of the op being awaited — remember it for
    // the flush() barrier.
    if (resp.op == OpCode::kError && ch.deferred_error.empty())
      ch.deferred_error = "cluster: shard " + std::to_string(shard) +
                          ": deferred: " + resp.payload;
  }
}

std::string ClusterMiner::request(std::size_t s, OpCode op,
                                  std::string payload) const {
  Channel& ch = *channels_[s];
  std::lock_guard<std::mutex> lock(ch.mu);
  const std::uint64_t id = send_locked(ch, s, op, payload);
  return await_locked(ch, s, id);
}

void ClusterMiner::observe(const TraceRecord& rec) {
  observe_batch({&rec, 1});
}

void ClusterMiner::observe_batch(std::span<const TraceRecord> records) {
  const std::size_t n = channels_.size();
  // Partition preserving each stream's order — the same bucketing
  // ShardedFarmer::observe_batch performs.
  std::vector<std::vector<TraceRecord>> parts(n);
  for (const TraceRecord& r : records) parts[shard_of(r)].push_back(r);
  for (std::size_t s = 0; s < n; ++s) {
    if (parts[s].empty()) continue;
    Channel& ch = *channels_[s];
    std::lock_guard<std::mutex> lock(ch.mu);
    // Pipelining bound: retire the oldest ack once the window is full.
    while (ch.outstanding.size() >= opts_.max_outstanding)
      (void)await_locked(ch, s, ch.outstanding.begin()->first);
    (void)send_locked(ch, s, OpCode::kObserveBatch,
                      encode_observe_batch(parts[s]));
  }
}

void ClusterMiner::flush() {
  for (std::size_t s = 0; s < channels_.size(); ++s) {
    Channel& ch = *channels_[s];
    std::lock_guard<std::mutex> lock(ch.mu);
    (void)send_locked(ch, s, OpCode::kFlush, {});
    // FIFO per connection: awaiting oldest-first retires every pipelined
    // observe ack and finally the flush ack itself.
    while (!ch.outstanding.empty())
      (void)await_locked(ch, s, ch.outstanding.begin()->first);
    if (!ch.deferred_error.empty()) {
      std::string err = std::move(ch.deferred_error);
      ch.deferred_error.clear();
      throw std::runtime_error(err);
    }
  }
}

CorrelatorView ClusterMiner::snapshot(FileId f) const {
  // Concatenate per-shard lists in shard order, then run the exact
  // ShardedFarmer merge kernel — byte-identical fold by construction.
  std::vector<Correlator> merged;
  for (std::size_t s = 0; s < channels_.size(); ++s) {
    const std::vector<Correlator> list = decode_correlators(
        request(s, OpCode::kCorrelators, encode_file_query(f)));
    merged.insert(merged.end(), list.begin(), list.end());
  }
  return CorrelatorView(ShardedFarmer::merge_concatenated(
      std::move(merged), cfg_.correlator_capacity));
}

double ClusterMiner::correlation_degree(FileId a, FileId b) const {
  double best = 0.0;
  for (std::size_t s = 0; s < channels_.size(); ++s) {
    const PairQueryResult r = decode_pair_result(
        request(s, OpCode::kPairQuery, encode_pair_query(a, b)));
    best = std::max(best, r.correlation_degree);
  }
  return best;
}

double ClusterMiner::semantic_similarity(FileId a, FileId b) const {
  double best = 0.0;
  for (std::size_t s = 0; s < channels_.size(); ++s) {
    const PairQueryResult r = decode_pair_result(
        request(s, OpCode::kPairQuery, encode_pair_query(a, b)));
    best = std::max(best, r.semantic_similarity);
  }
  return best;
}

std::uint64_t ClusterMiner::access_count(FileId f) const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < channels_.size(); ++s)
    total += decode_u64(request(s, OpCode::kAccessCount,
                                encode_file_query(f)));
  return total;
}

double ClusterMiner::access_frequency(FileId pred, FileId succ) const {
  // Global F = sum_s N_AB,s / sum_s N_A,s — same accumulation order and
  // arithmetic as ShardedFarmer::merged_access_frequency.
  double nab = 0.0;
  std::uint64_t na = 0;
  for (std::size_t s = 0; s < channels_.size(); ++s) {
    const PairQueryResult r = decode_pair_result(
        request(s, OpCode::kPairQuery, encode_pair_query(pred, succ)));
    nab += r.edge_weight;
    na += r.graph_access_count;
  }
  return na == 0 ? 0.0 : nab / static_cast<double>(na);
}

MinerStats ClusterMiner::stats() const {
  MinerStats total;
  for (std::size_t s = 0; s < channels_.size(); ++s) {
    const ShardStatsResult r =
        decode_stats_result(request(s, OpCode::kStats, {}));
    total.requests += r.requests;
    total.pairs_evaluated += r.pairs_evaluated;
    total.pairs_accepted += r.pairs_accepted;
    total.pairs_filtered += r.pairs_filtered;
  }
  total.shards = channels_.size();
  // Synchronous from the client's perspective once flush() returned:
  // epoch/pending/cache counters stay at their zero defaults.
  return total;
}

std::size_t ClusterMiner::footprint_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (std::size_t s = 0; s < channels_.size(); ++s)
    bytes += decode_stats_result(request(s, OpCode::kStats, {}))
                 .footprint_bytes;
  return bytes;
}

std::string ClusterMiner::export_shard_model(std::size_t s) const {
  return request(s, OpCode::kExportModel, {});
}

void ClusterMiner::save(const std::string& dir) {
  std::vector<std::string> blobs;
  blobs.reserve(channels_.size());
  std::uint64_t seq = 0;
  for (std::size_t s = 0; s < channels_.size(); ++s) {
    seq += decode_stats_result(request(s, OpCode::kStats, {})).requests;
    blobs.push_back(export_shard_model(s));
  }
  std::filesystem::create_directories(dir);
  persist::write_checkpoint_file(dir + "/CHECKPOINT." + std::to_string(seq),
                                 seq, cfg_, dict_.get(), blobs);
}

}  // namespace farmer::net
