// The "cluster" backend: a CorrelationMiner whose model state lives in N
// remote shard servers reached over message-passing transports.
//
// Partitioning is ShardedFarmer's, bit for bit: a record routes to shard
// `mix64(process) % N`, each shard server hosts one Farmer, and every
// query fetches per-shard raw data and folds it with the same merged_*
// arithmetic in the same shard order. "cluster over loopback answers
// byte-identically to sharded on the same trace" is therefore a structural
// property; the differential tests compare IEEE-754 bit patterns and
// serialized model blobs, not epsilons.
//
// Pipelining: observe_batch partitions the batch (preserving each stream's
// order), encodes one kObserveBatch request per touched shard and sends it
// WITHOUT waiting for the ack — up to `max_outstanding` requests ride the
// wire per shard. Because a shard server processes its connection FIFO, a
// query sent after those observes sees them applied; acks are retired
// opportunistically while awaiting any later response. flush() is the
// barrier: it retires every outstanding ack (and surfaces any deferred
// observe error) before returning.
//
// Failure contract: every await is bounded by `request_timeout`; on expiry
// the request frame is re-sent (same request id) up to `max_retries`
// times, then a std::runtime_error naming the shard and op is thrown. The
// server deduplicates by request id, so a retry that crosses a late ack
// never double-applies a batch — the fault-injection suite drives drops,
// duplicates, reorders, delays and severed connections against exactly
// this loop.
//
// Thread-safety: per-shard channel state is mutex-guarded, so concurrent
// producers and queriers are safe (they serialize per shard, like the
// sharded backend's ingest contract, but cross-shard operations proceed in
// parallel).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/correlation_miner.hpp"
#include "core/config.hpp"
#include "net/frame.hpp"
#include "net/shard_server.hpp"
#include "net/transport.hpp"

namespace farmer::net {

struct ClusterOptions {
  /// Per-attempt response deadline. Total worst-case latency of one
  /// request is (1 + max_retries) * request_timeout — bounded by design.
  std::chrono::milliseconds request_timeout{2000};
  /// Re-sends after the first attempt before giving up with an error.
  std::size_t max_retries = 2;
  /// Pipelining depth: un-acked requests allowed per shard channel before
  /// observe_batch awaits the oldest ack (bounds client memory).
  std::size_t max_outstanding = 64;
};

class ClusterMiner final : public CorrelationMiner {
 public:
  /// One transport per shard, in shard order. `local_servers` optionally
  /// transfers ownership of in-process ShardServers (the loopback factory
  /// path) so the backend is self-contained; a socket deployment passes
  /// only transports. Destruction closes every channel first, so owned
  /// servers drain and join promptly.
  ClusterMiner(FarmerConfig cfg,
               std::shared_ptr<const TraceDictionary> dict,
               std::vector<std::unique_ptr<Transport>> transports,
               ClusterOptions opts,
               std::vector<std::unique_ptr<ShardServer>> local_servers = {});
  ~ClusterMiner() override;

  void observe(const TraceRecord& rec) override;
  void observe_batch(std::span<const TraceRecord> records) override;
  /// Ingest barrier: every outstanding request on every shard is retired
  /// (retrying per the failure contract) and the shards' flush() has run.
  /// Throws the first deferred observe error, if any ack came back kError.
  void flush() override;

  [[nodiscard]] CorrelatorView snapshot(FileId f) const override;
  [[nodiscard]] double correlation_degree(FileId a, FileId b) const override;
  [[nodiscard]] double semantic_similarity(FileId a, FileId b) const override;
  [[nodiscard]] std::uint64_t access_count(FileId f) const override;
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const override;

  [[nodiscard]] MinerStats stats() const override;
  [[nodiscard]] std::size_t footprint_bytes() const override;
  [[nodiscard]] const char* name() const noexcept override {
    return "cluster";
  }

  /// Checkpoints the remote model into `dir` by fetching every shard's
  /// serialized blob (kExportModel) and writing a standard checkpoint
  /// file — the same format ShardedFarmer::save produces, so a sharded
  /// miner can load() what a cluster saved. load() is not supported on the
  /// client (recovery belongs to the shard servers' persist directories).
  void save(const std::string& dir) override;

  /// Serialized model blob of shard `s` (persist::serialize_shard over the
  /// remote Farmer). The differential gate compares this byte-for-byte
  /// with serialize_shard(sharded.shard(s)).
  [[nodiscard]] std::string export_shard_model(std::size_t s) const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return channels_.size();
  }

  /// Shard a record routes to — identical to ShardedFarmer::shard_of.
  [[nodiscard]] std::size_t shard_of(const TraceRecord& rec) const noexcept;

 private:
  struct Channel {
    std::mutex mu;
    std::unique_ptr<Transport> transport;
    std::uint64_t next_id = 1;  ///< monotone per connection — the server's
                                ///< duplicate detection relies on this
    /// Un-acked requests, id -> encoded frame (kept for retry re-sends).
    std::map<std::uint64_t, std::string> outstanding;
    /// First kError that came back for a pipelined request; thrown at the
    /// next flush() barrier.
    std::string deferred_error;
  };

  /// Encodes, registers and sends one request. Channel mutex held.
  std::uint64_t send_locked(Channel& ch, std::size_t shard, OpCode op,
                            std::string_view payload) const;
  /// Waits for the response to `id`, retiring any earlier pipelined acks
  /// that arrive first, re-sending on timeout per the failure contract.
  /// Channel mutex held. Returns the response payload.
  std::string await_locked(Channel& ch, std::size_t shard,
                           std::uint64_t id) const;
  /// One full round trip on shard `s`.
  std::string request(std::size_t s, OpCode op, std::string payload) const;

  FarmerConfig cfg_;
  std::shared_ptr<const TraceDictionary> dict_;
  ClusterOptions opts_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<ShardServer>> local_servers_;
};

}  // namespace farmer::net
