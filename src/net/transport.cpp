#include "net/transport.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>

namespace farmer::net {

namespace {

/// The shared state of one loopback channel: two FIFO queues (one per
/// direction) behind one mutex. Both endpoints hold a shared_ptr, so the
/// channel lives until the last endpoint is destroyed.
struct LoopbackChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> to_a;  ///< frames b sent toward a
  std::deque<std::string> to_b;  ///< frames a sent toward b
  bool closed = false;
};

class LoopbackEndpoint final : public Transport {
 public:
  LoopbackEndpoint(std::shared_ptr<LoopbackChannel> ch, bool is_a)
      : ch_(std::move(ch)), is_a_(is_a) {}
  ~LoopbackEndpoint() override { close(); }

  bool send(std::string frame) override {
    std::lock_guard<std::mutex> lock(ch_->mu);
    if (ch_->closed) return false;
    (is_a_ ? ch_->to_b : ch_->to_a).push_back(std::move(frame));
    ch_->cv.notify_all();
    return true;
  }

  std::optional<std::string> receive(
      std::chrono::milliseconds timeout) override {
    std::unique_lock<std::mutex> lock(ch_->mu);
    auto& inbox = is_a_ ? ch_->to_a : ch_->to_b;
    // Drain-after-close: frames delivered before the close still arrive.
    ch_->cv.wait_for(lock, timeout,
                     [&] { return !inbox.empty() || ch_->closed; });
    if (inbox.empty()) return std::nullopt;
    std::string frame = std::move(inbox.front());
    inbox.pop_front();
    return frame;
  }

  void close() override {
    std::lock_guard<std::mutex> lock(ch_->mu);
    ch_->closed = true;
    ch_->cv.notify_all();
  }

  bool closed() const override {
    std::lock_guard<std::mutex> lock(ch_->mu);
    return ch_->closed;
  }

 private:
  std::shared_ptr<LoopbackChannel> ch_;
  bool is_a_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair() {
  auto ch = std::make_shared<LoopbackChannel>();
  return {std::make_unique<LoopbackEndpoint>(ch, /*is_a=*/true),
          std::make_unique<LoopbackEndpoint>(ch, /*is_a=*/false)};
}

// ---------------------------------------------------- FaultyTransport ----

struct FaultyTransport::Impl {
  std::unique_ptr<Transport> inner;
  mutable std::mutex mu;
  std::size_t drop_sends = 0;
  std::size_t drop_receives = 0;
  std::size_t duplicate_receives = 0;
  bool reorder = false;
  std::size_t delay_receives = 0;
  std::chrono::milliseconds delay{0};
  /// Locally queued frames: duplicated copies and reorder-swapped frames
  /// are delivered from here before touching the wrapped endpoint.
  std::deque<std::string> staged;
};

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner)
    : impl_(std::make_unique<Impl>()) {
  impl_->inner = std::move(inner);
}

FaultyTransport::~FaultyTransport() = default;

void FaultyTransport::drop_next_sends(std::size_t n) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->drop_sends += n;
}

void FaultyTransport::drop_next_receives(std::size_t n) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->drop_receives += n;
}

void FaultyTransport::duplicate_next_receive() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ++impl_->duplicate_receives;
}

void FaultyTransport::reorder_next_receives() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->reorder = true;
}

void FaultyTransport::delay_next_receives(std::size_t n,
                                          std::chrono::milliseconds delay) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->delay_receives += n;
  impl_->delay = delay;
}

void FaultyTransport::sever() { impl_->inner->close(); }

bool FaultyTransport::send(std::string frame) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->drop_sends > 0) {
      --impl_->drop_sends;
      // Pretend the wire ate it: report success, deliver nothing.
      return !impl_->inner->closed();
    }
  }
  return impl_->inner->send(std::move(frame));
}

std::optional<std::string> FaultyTransport::receive(
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    // Staged frames (duplicates, reordered seconds) deliver first.
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      if (!impl_->staged.empty()) {
        std::string f = std::move(impl_->staged.front());
        impl_->staged.pop_front();
        return f;
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return std::nullopt;
    auto frame = impl_->inner->receive(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              now));
    if (!frame) return std::nullopt;

    std::unique_lock<std::mutex> lock(impl_->mu);
    if (impl_->drop_receives > 0) {
      --impl_->drop_receives;
      continue;  // the response evaporates; keep waiting
    }
    if (impl_->delay_receives > 0) {
      --impl_->delay_receives;
      const auto delay = impl_->delay;
      lock.unlock();
      std::this_thread::sleep_for(delay);
      lock.lock();
    }
    if (impl_->reorder) {
      impl_->reorder = false;
      // Hold this frame back; deliver the next one first, then this one.
      auto next = [&]() -> std::optional<std::string> {
        lock.unlock();
        auto n = impl_->inner->receive(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::max(deadline - std::chrono::steady_clock::now(),
                         std::chrono::steady_clock::duration::zero())));
        lock.lock();
        return n;
      }();
      if (next) {
        impl_->staged.push_back(std::move(*frame));
        return next;
      }
      // Nothing followed in time: deliver in order after all.
      return frame;
    }
    if (impl_->duplicate_receives > 0) {
      --impl_->duplicate_receives;
      impl_->staged.push_back(*frame);
    }
    return frame;
  }
}

void FaultyTransport::close() { impl_->inner->close(); }

bool FaultyTransport::closed() const { return impl_->inner->closed(); }

}  // namespace farmer::net
