// Shard server: one Farmer partition behind a Transport.
//
// A ShardServer owns one Farmer (the model state of one cluster shard) and
// a serve thread that pulls request frames off its transport, dispatches
// them by op code, and sends one response frame per request — in arrival
// order, so a query sent after an observe on the same connection always
// sees that observe applied (the ordering guarantee the cluster client's
// pipelining relies on).
//
// Idempotent retries: the client allocates request ids monotonically per
// connection and only ever re-sends an id it already sent, so the server
// can tell a retry of an already-processed request (response was lost)
// from a late first delivery of a dropped request: it tracks the exact
// processed-id set as a contiguous watermark plus a sparse overflow (a
// high-water mark alone would be wrong — a dropped observe retried after
// a later request went through must still be APPLIED, not re-acked).
// Retried observe_batch requests are acknowledged from a bounded cache of
// recent responses — never re-applied — which is what makes "timeout,
// retry, succeed" safe for mutating ops. Pure queries are re-answered.
//
// Durability: with Options::persist_dir set the Farmer is wrapped in a
// persist::DurableMiner (WAL-append-then-apply + periodic checkpoints +
// recovery on construction), exactly like the factory wraps the local
// synchronous backends — so killing a shard server process and
// reconstructing it replays the shard's durable prefix.
//
// Failure contract: a malformed frame poisons the connection (the server
// closes it — framing is trusted transport state, not request data); a
// malformed *payload* or a validation failure inside a well-framed request
// yields a kError response carrying the message, and the server keeps
// serving.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "core/farmer.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"

namespace farmer::net {

class ShardServer {
 public:
  struct Options {
    /// Durable persistence directory for this shard (empty = off). The
    /// cluster factory passes `<persist_dir>/shard<i>`.
    std::string persist_dir;
    std::size_t checkpoint_interval_records = 0;  ///< 0 = persist default
    std::size_t wal_group_commit = 0;             ///< 0 = persist default
  };

  /// Builds the shard model (recovering from `opts.persist_dir` when set)
  /// and starts the serve thread. The server owns the transport end it is
  /// given and serves until the peer closes or stop() is called.
  ShardServer(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict,
              std::unique_ptr<Transport> transport, Options opts);

  /// Stops and joins the serve thread.
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Closes the transport and joins the serve thread. Idempotent.
  void stop();

  /// The shard's Farmer. Only safe once the serve thread cannot be
  /// processing requests anymore (after stop(), or when the test owns the
  /// only client end and is not sending) — tests use this for the
  /// byte-identity comparison against ShardedFarmer::shard(i).
  [[nodiscard]] const Farmer& shard() const noexcept { return *farmer_; }

 private:
  void serve();
  /// Duplicate detection + idempotency shell around process().
  [[nodiscard]] std::string handle(const Frame& req);
  /// Dispatches one fresh request; never throws (errors become kError
  /// responses).
  [[nodiscard]] std::string process(const Frame& req);
  void remember(std::uint64_t id, const std::string& response);
  [[nodiscard]] bool already_processed(std::uint64_t id) const;
  void mark_processed(std::uint64_t id);

  std::shared_ptr<const TraceDictionary> dict_;
  /// The model behind the ingest interface: the Farmer itself, or the
  /// DurableMiner wrapping it when persistence is on. Query and export ops
  /// go straight to `farmer_` (the concrete surface), mutating ops through
  /// `miner_` (so the WAL hook runs).
  std::unique_ptr<CorrelationMiner> miner_;
  Farmer* farmer_ = nullptr;
  std::unique_ptr<Transport> transport_;

  /// Processed-id set: every id <= watermark_ plus the sparse ids above
  /// it. Holes above the watermark are requests lost in flight (bounded by
  /// the client's pipeline depth), so the overflow set stays tiny; a
  /// safety valve force-advances the watermark if a permanent hole would
  /// otherwise let it grow.
  std::uint64_t watermark_ = 0;
  std::set<std::uint64_t> processed_;
  static constexpr std::size_t kProcessedOverflowCap = 4096;
  /// Recent observe_batch responses for retry acks, oldest first, bounded.
  std::deque<std::pair<std::uint64_t, std::string>> recent_acks_;
  static constexpr std::size_t kRecentAckCapacity = 256;

  std::thread thread_;
};

}  // namespace farmer::net
