// Message-passing transport under the shard protocol.
//
// A `Transport` is one endpoint of a bidirectional, ordered,
// message-oriented channel: send() enqueues one encoded frame toward the
// peer, receive() dequeues the next frame the peer sent (blocking up to a
// timeout). Delivery is at-most-once and FIFO per direction — exactly the
// contract a TCP connection carrying length-prefixed frames provides —
// so everything built on top (the shard server loop, the cluster client's
// pipelining and retry) ports to a socket transport unchanged.
//
// Two implementations ship:
//
//   * `make_loopback_pair()` — an in-process channel (mutex + condvar +
//     deque per direction). CI needs no network: the "cluster" backend
//     runs its shard servers on threads of the same process, which also
//     makes the fork+SIGKILL crash tests meaningful (killing the process
//     kills every shard server mid-request).
//   * `FaultyTransport` — a chaos decorator over any endpoint: it drops,
//     duplicates, reorders, or delays *received* messages and can drop
//     *sent* messages or sever the connection mid-request, on a scripted
//     deterministic plan. The fault-injection suite drives it to pin down
//     the cluster backend's failure contract (bounded-time errors, capped
//     idempotent retries — never a hang).
//
// Close semantics: close() wakes every blocked receive() on both ends.
// After the peer closed, receive() drains whatever was already delivered,
// then returns std::nullopt with closed() == true — the reader can always
// distinguish "timed out" (closed() false) from "connection gone".
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace farmer::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueues one frame toward the peer. Returns false when the channel is
  /// closed (either end); the frame is then dropped.
  virtual bool send(std::string frame) = 0;

  /// Next frame from the peer, waiting up to `timeout`. std::nullopt on
  /// timeout or when the channel is closed and drained — check closed().
  [[nodiscard]] virtual std::optional<std::string> receive(
      std::chrono::milliseconds timeout) = 0;

  /// Closes this end: pending receives on both ends wake up. Idempotent.
  virtual void close() = 0;

  /// True once either end closed. A closed transport still drains frames
  /// delivered before the close.
  [[nodiscard]] virtual bool closed() const = 0;
};

/// Creates a connected in-process channel; `.first` is conventionally the
/// client end and `.second` the server end. Both endpoints are thread-safe
/// and share ownership of the underlying queues, so either may outlive the
/// other.
[[nodiscard]] std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
make_loopback_pair();

/// Scripted chaos decorator (fault-injection tests and chaos drills).
///
/// Faults are *scripted*, not probabilistic: the test enqueues explicit
/// fault actions and the decorator applies them to the next matching
/// messages, so every failure scenario is deterministic and replayable.
/// All fault state is internally synchronized — the decorator is as
/// thread-safe as the wrapped endpoint.
class FaultyTransport final : public Transport {
 public:
  explicit FaultyTransport(std::unique_ptr<Transport> inner);
  ~FaultyTransport() override;

  // ---- fault plan (call from the test thread at any time) ----

  /// Drops the next `n` frames passed to send() (requests vanish on the
  /// wire; the peer never sees them).
  void drop_next_sends(std::size_t n);
  /// Drops the next `n` frames receive() would have returned (responses
  /// vanish; the peer already processed the request).
  void drop_next_receives(std::size_t n);
  /// Delivers the next received frame twice (duplicate response).
  void duplicate_next_receive();
  /// Swaps the delivery order of the next two received frames.
  void reorder_next_receives();
  /// Delays each of the next `n` received frames by `delay` before
  /// delivery (still within the caller's timeout budget or not — the
  /// caller's deadline decides).
  void delay_next_receives(std::size_t n, std::chrono::milliseconds delay);
  /// Severs the connection as a crashed peer would: closes the underlying
  /// channel. Everything in flight is lost; future sends fail.
  void sever();

  // ---- Transport ----

  bool send(std::string frame) override;
  [[nodiscard]] std::optional<std::string> receive(
      std::chrono::milliseconds timeout) override;
  void close() override;
  [[nodiscard]] bool closed() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace farmer::net
