#include "net/protocol.hpp"

#include <cstring>
#include <stdexcept>

#include "trace/trace_io.hpp"

namespace farmer::net {

namespace {

template <typename T>
void append_raw(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Reads the element count of a fixed-stride array and bounds it against
/// the bytes remaining: the payload must hold exactly `count` elements.
/// Runs before any allocation, so a corrupt count cannot over-allocate.
std::size_t bounded_exact_count(ByteReader& in, std::size_t stride,
                                const char* what) {
  const auto count = in.get<std::uint32_t>();
  if (in.remaining() != static_cast<std::size_t>(count) * stride)
    throw std::runtime_error(std::string(what) +
                             ": count disagrees with payload size");
  return count;
}

void expect_done(const ByteReader& in, const char* what) {
  if (!in.done())
    throw std::runtime_error(std::string(what) + ": trailing bytes");
}

}  // namespace

std::string encode_observe_batch(std::span<const TraceRecord> records) {
  std::string out;
  out.reserve(sizeof(std::uint32_t) + records.size() * kTraceRecordBytes);
  append_raw(out, static_cast<std::uint32_t>(records.size()));
  for (const TraceRecord& r : records) encode_record(r, out);
  return out;
}

std::vector<TraceRecord> decode_observe_batch(std::string_view payload) {
  ByteReader in(payload, "observe_batch payload");
  const std::size_t count =
      bounded_exact_count(in, kTraceRecordBytes, "observe_batch payload");
  std::vector<TraceRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    records.push_back(decode_record(in.view(kTraceRecordBytes)));
  expect_done(in, "observe_batch payload");
  return records;
}

std::string encode_file_query(FileId f) {
  std::string out;
  append_raw(out, f.value());
  return out;
}

FileId decode_file_query(std::string_view payload) {
  ByteReader in(payload, "file query payload");
  const FileId f(in.get<std::uint32_t>());
  expect_done(in, "file query payload");
  return f;
}

std::string encode_pair_query(FileId a, FileId b) {
  std::string out;
  append_raw(out, a.value());
  append_raw(out, b.value());
  return out;
}

void decode_pair_query(std::string_view payload, FileId& a, FileId& b) {
  ByteReader in(payload, "pair query payload");
  a = FileId(in.get<std::uint32_t>());
  b = FileId(in.get<std::uint32_t>());
  expect_done(in, "pair query payload");
}

std::string encode_u64(std::uint64_t v) {
  std::string out;
  append_raw(out, v);
  return out;
}

std::uint64_t decode_u64(std::string_view payload) {
  ByteReader in(payload, "u64 payload");
  const auto v = in.get<std::uint64_t>();
  expect_done(in, "u64 payload");
  return v;
}

std::string encode_correlators(std::span<const Correlator> list) {
  static_assert(std::is_trivially_copyable_v<Correlator>);
  std::string out;
  out.reserve(sizeof(std::uint32_t) +
              list.size() * (sizeof(std::uint32_t) + sizeof(float)));
  append_raw(out, static_cast<std::uint32_t>(list.size()));
  for (const Correlator& c : list) {
    append_raw(out, c.file.value());
    append_raw(out, c.degree);
  }
  return out;
}

std::vector<Correlator> decode_correlators(std::string_view payload) {
  constexpr std::size_t kStride = sizeof(std::uint32_t) + sizeof(float);
  ByteReader in(payload, "correlators payload");
  const std::size_t count =
      bounded_exact_count(in, kStride, "correlators payload");
  std::vector<Correlator> list;
  list.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Correlator c;
    c.file = FileId(in.get<std::uint32_t>());
    c.degree = in.get<float>();
    list.push_back(c);
  }
  expect_done(in, "correlators payload");
  return list;
}

std::string encode_pair_result(const PairQueryResult& r) {
  std::string out;
  append_raw(out, r.correlation_degree);
  append_raw(out, r.semantic_similarity);
  append_raw(out, r.edge_weight);
  append_raw(out, r.graph_access_count);
  return out;
}

PairQueryResult decode_pair_result(std::string_view payload) {
  ByteReader in(payload, "pair result payload");
  PairQueryResult r;
  r.correlation_degree = in.get<double>();
  r.semantic_similarity = in.get<double>();
  r.edge_weight = in.get<double>();
  r.graph_access_count = in.get<std::uint64_t>();
  expect_done(in, "pair result payload");
  return r;
}

std::string encode_stats_result(const ShardStatsResult& r) {
  std::string out;
  append_raw(out, r.requests);
  append_raw(out, r.pairs_evaluated);
  append_raw(out, r.pairs_accepted);
  append_raw(out, r.pairs_filtered);
  append_raw(out, r.footprint_bytes);
  return out;
}

ShardStatsResult decode_stats_result(std::string_view payload) {
  ByteReader in(payload, "stats result payload");
  ShardStatsResult r;
  r.requests = in.get<std::uint64_t>();
  r.pairs_evaluated = in.get<std::uint64_t>();
  r.pairs_accepted = in.get<std::uint64_t>();
  r.pairs_filtered = in.get<std::uint64_t>();
  r.footprint_bytes = in.get<std::uint64_t>();
  expect_done(in, "stats result payload");
  return r;
}

}  // namespace farmer::net
