#include "net/shard_server.hpp"

#include <utility>

#include "net/protocol.hpp"
#include "persist/checkpoint.hpp"
#include "persist/durable_miner.hpp"
#include "trace/trace_io.hpp"

namespace farmer::net {

namespace {

/// Poll interval while idle: short enough that stop() is prompt, long
/// enough that an idle shard server costs nothing measurable.
constexpr std::chrono::milliseconds kIdlePoll{50};

}  // namespace

ShardServer::ShardServer(FarmerConfig cfg,
                         std::shared_ptr<const TraceDictionary> dict,
                         std::unique_ptr<Transport> transport, Options opts)
    : dict_(std::move(dict)), transport_(std::move(transport)) {
  auto farmer = std::make_unique<Farmer>(cfg, dict_);
  farmer_ = farmer.get();
  if (opts.persist_dir.empty()) {
    miner_ = std::move(farmer);
  } else {
    persist::Options popts;
    popts.dir = opts.persist_dir;
    popts.checkpoint_interval_records = opts.checkpoint_interval_records;
    popts.wal_group_commit = opts.wal_group_commit;
    miner_ = std::make_unique<persist::DurableMiner>(
        std::move(farmer), std::vector<Farmer*>{farmer_}, cfg, dict_,
        std::move(popts));
  }
  thread_ = std::thread([this] { serve(); });
}

ShardServer::~ShardServer() { stop(); }

void ShardServer::stop() {
  transport_->close();
  if (thread_.joinable()) thread_.join();
}

void ShardServer::serve() {
  for (;;) {
    auto msg = transport_->receive(kIdlePoll);
    if (!msg) {
      if (transport_->closed()) return;
      continue;  // idle poll; check for close and wait again
    }
    Frame req;
    try {
      req = decode_frame(*msg);
    } catch (const std::exception&) {
      // Corrupt framing is transport state, not request data: sever the
      // connection rather than guess at recovery.
      transport_->close();
      return;
    }
    if (req.kind != FrameKind::kRequest) continue;  // stray response: drop
    if (!transport_->send(handle(req))) return;
  }
}

void ShardServer::remember(std::uint64_t id, const std::string& response) {
  recent_acks_.emplace_back(id, response);
  if (recent_acks_.size() > kRecentAckCapacity) recent_acks_.pop_front();
}

bool ShardServer::already_processed(std::uint64_t id) const {
  return id <= watermark_ || processed_.count(id) != 0;
}

void ShardServer::mark_processed(std::uint64_t id) {
  if (id <= watermark_) return;
  processed_.insert(id);
  while (processed_.erase(watermark_ + 1) != 0) ++watermark_;
  // Safety valve: a request the client gave up on leaves a permanent hole
  // under the overflow ids. Swallow the hole rather than grow unboundedly
  // (the client already surfaced that request as an error).
  while (processed_.size() > kProcessedOverflowCap) {
    watermark_ = *processed_.begin();
    processed_.erase(processed_.begin());
    while (processed_.erase(watermark_ + 1) != 0) ++watermark_;
  }
}

std::string ShardServer::handle(const Frame& req) {
  const bool duplicate = already_processed(req.request_id);
  if (duplicate && req.op == OpCode::kObserveBatch) {
    // A retry of a batch this server already processed (the response was
    // lost, not the request). Re-send the recorded response without
    // re-applying — that is the idempotency guarantee.
    for (const auto& [id, resp] : recent_acks_)
      if (id == req.request_id) return resp;
    // Evicted from the ack cache (can only happen far outside the
    // client's retry window): rebuild the ack from the payload.
    try {
      return encode_frame(
          FrameKind::kResponse, OpCode::kObserveBatch, req.request_id,
          encode_u64(decode_observe_batch(req.payload).size()));
    } catch (const std::exception& e) {
      return encode_frame(FrameKind::kResponse, OpCode::kError,
                          req.request_id,
                          std::string(op_name(req.op)) + ": " + e.what());
    }
  }
  // Fresh request — or a duplicate pure query / idempotent flush, which is
  // simply re-answered. Mark BEFORE the response can be lost: processing
  // happens exactly once either way.
  std::string resp = process(req);
  if (!duplicate) mark_processed(req.request_id);
  if (req.op == OpCode::kObserveBatch) remember(req.request_id, resp);
  return resp;
}

std::string ShardServer::process(const Frame& req) {
  const auto respond = [&](OpCode op, std::string payload) {
    return encode_frame(FrameKind::kResponse, op, req.request_id,
                        std::move(payload));
  };
  try {
    switch (req.op) {
      case OpCode::kObserveBatch: {
        const std::vector<TraceRecord> records =
            decode_observe_batch(req.payload);
        for (const TraceRecord& r : records) validate_record(r, *dict_);
        miner_->observe_batch(records);
        return respond(OpCode::kObserveBatch, encode_u64(records.size()));
      }
      case OpCode::kCorrelators: {
        const FileId f = decode_file_query(req.payload);
        const auto& list = farmer_->correlator_list(f);
        return respond(OpCode::kCorrelators,
                       encode_correlators({list.data(), list.size()}));
      }
      case OpCode::kPairQuery: {
        FileId a, b;
        decode_pair_query(req.payload, a, b);
        PairQueryResult r;
        r.correlation_degree = farmer_->correlation_degree(a, b);
        r.semantic_similarity = farmer_->semantic_similarity(a, b);
        r.edge_weight = farmer_->graph().edge_weight(a, b);
        r.graph_access_count = farmer_->graph().access_count(a);
        return respond(OpCode::kPairQuery, encode_pair_result(r));
      }
      case OpCode::kAccessCount: {
        const FileId f = decode_file_query(req.payload);
        return respond(OpCode::kAccessCount,
                       encode_u64(farmer_->access_count(f)));
      }
      case OpCode::kFlush: {
        miner_->flush();
        return respond(OpCode::kFlush, std::string());
      }
      case OpCode::kStats: {
        const MinerStats s = miner_->stats();
        ShardStatsResult r;
        r.requests = s.requests;
        r.pairs_evaluated = s.pairs_evaluated;
        r.pairs_accepted = s.pairs_accepted;
        r.pairs_filtered = s.pairs_filtered;
        r.footprint_bytes = miner_->footprint_bytes();
        return respond(OpCode::kStats, encode_stats_result(r));
      }
      case OpCode::kExportModel:
        return respond(OpCode::kExportModel,
                       persist::serialize_shard(*farmer_));
      case OpCode::kError:
        throw std::runtime_error("kError is response-only");
    }
    throw std::runtime_error("unhandled op code");
  } catch (const std::exception& e) {
    return respond(OpCode::kError,
                   std::string(op_name(req.op)) + ": " + e.what());
  }
}

}  // namespace farmer::net
