// Wire framing for the message-passing shard transport.
//
// Every message between a cluster client and a shard server is one frame:
//
//   [u32 magic][u8 kind][u8 op][u16 reserved][u64 request_id]
//   [u32 payload_len][payload bytes...]                (little-endian)
//
// The header is fixed at 20 bytes; `payload_len` is bounded by
// `kMaxFramePayload` *before* any allocation happens, so a corrupt or
// hostile length prefix can never over-allocate — the same hardening
// discipline as the v3 trace readers (trace/trace_io.hpp). `request_id` is
// a per-connection monotone counter: responses echo the id of the request
// they answer, which is what lets the client pipeline many requests per
// connection and match responses arriving out of order (reordered,
// duplicated or retried by a faulty network).
//
// Two decode surfaces exist on purpose:
//
//   * `decode_frame` consumes exactly one complete frame (the loopback
//     transport is message-oriented and delivers whole frames);
//   * `FrameAssembler` re-frames a byte *stream* incrementally (feed
//     arbitrary chunks, poll complete frames) for stream transports —
//     sockets deliver bytes, not messages.
//
// Both throw std::runtime_error on any malformed input — bad magic, an
// unknown kind or op code, a set reserved field, an oversized length, a
// length that disagrees with the bytes present. The corruption-fuzz suite
// in tests/test_storage.cpp pins down that truncation at every prefix
// length and a byte flip at every offset either decodes to a well-formed
// frame or throws — never crashes, hangs, or allocates unboundedly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace farmer::net {

inline constexpr std::uint32_t kFrameMagic = 0xFA12F7A9;

/// Hard ceiling on one frame's payload (64 MiB). Anything larger is a
/// protocol error: observe batches are capped far below this by the client,
/// and model-export blobs that outgrow it must move to a chunked op rather
/// than silently raising the bound every reader trusts.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;

enum class FrameKind : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

/// Typed operations of the shard protocol. Requests carry one of the
/// operation codes; a response echoes its request's op on success and
/// carries `kError` (payload = human-readable reason) on failure.
enum class OpCode : std::uint8_t {
  kObserveBatch = 1,  ///< req: record array; resp: u64 records applied
  kCorrelators = 2,   ///< req: FileId; resp: Correlator array (stored order)
  kPairQuery = 3,     ///< req: FileId a, b; resp: PairQueryResult
  kAccessCount = 4,   ///< req: FileId; resp: u64 N_f
  kFlush = 5,         ///< req: empty; resp: empty (barrier ack)
  kStats = 6,         ///< req: empty; resp: ShardStatsResult
  kExportModel = 7,   ///< req: empty; resp: persist::serialize_shard blob
  kError = 0x3F,      ///< responses only: payload names the failure
};

[[nodiscard]] const char* op_name(OpCode op) noexcept;

/// One decoded frame. `payload` owns its bytes (decode copies out of the
/// transport buffer, so a frame outlives the buffer it was parsed from).
struct Frame {
  FrameKind kind = FrameKind::kRequest;
  OpCode op = OpCode::kFlush;
  std::uint64_t request_id = 0;
  std::string payload;
};

inline constexpr std::size_t kFrameHeaderBytes = 20;

/// Serializes one frame (header + payload). Throws std::invalid_argument
/// when `payload` exceeds kMaxFramePayload — the writer side enforces the
/// same bound readers do.
[[nodiscard]] std::string encode_frame(FrameKind kind, OpCode op,
                                       std::uint64_t request_id,
                                       std::string_view payload);

/// Validates a frame header prefix (`bytes.size() >= kFrameHeaderBytes`)
/// and returns the total encoded size of the frame it announces. Throws
/// std::runtime_error on bad magic, unknown kind/op, nonzero reserved
/// bits, or a payload length above kMaxFramePayload — header validation
/// happens *before* anyone allocates for the payload.
[[nodiscard]] std::size_t announced_frame_size(std::string_view bytes);

/// Decodes exactly one frame from `bytes`. Throws std::runtime_error when
/// the buffer is shorter than the header, fails header validation, is
/// shorter than the announced payload, or carries trailing bytes after it.
[[nodiscard]] Frame decode_frame(std::string_view bytes);

/// Incremental re-framing of a byte stream. Feed chunks of any size; poll
/// complete frames. The internal buffer never grows beyond one maximal
/// frame plus the chunk that completed it, because the header (and thus the
/// frame's announced size) is validated as soon as 20 bytes exist — a
/// corrupt header throws from feed() before any payload accumulates.
class FrameAssembler {
 public:
  /// Appends raw bytes. Throws std::runtime_error as soon as the buffered
  /// prefix is provably not a frame (the stream is then poisoned and every
  /// later call throws too — a framing error is not recoverable).
  void feed(std::string_view bytes);

  /// Returns the next complete frame, or std::nullopt when more bytes are
  /// needed.
  [[nodiscard]] std::optional<Frame> poll();

  /// Bytes buffered but not yet returned as frames.
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size(); }

 private:
  std::string buf_;
  bool poisoned_ = false;
};

}  // namespace farmer::net
