// Sliding look-ahead window over the access stream (Constructing stage).
//
// The paper's Linear Decremented Assignment (Section 3.2.2): when file B is
// accessed, every file A at distance d in the preceding window receives a
// successor-count contribution of `1 - (d-1) * delta` toward N_AB (paper
// example: 1.0, 0.9, 0.8 for d = 1, 2, 3). The window also suppresses the
// degenerate self-edge produced by repeated accesses to the same file.
#pragma once

#include <cstddef>

#include "common/small_vector.hpp"
#include "common/types.hpp"

namespace farmer {

class AccessWindow {
 public:
  /// Successor-count contribution of a predecessor at `distance` >= 1.
  /// Clamped at zero so very long windows cannot produce negative weight.
  [[nodiscard]] static double lda_weight(std::size_t distance,
                                         double delta) noexcept {
    const double w = 1.0 - static_cast<double>(distance - 1) * delta;
    return w > 0.0 ? w : 0.0;
  }

  explicit AccessWindow(std::size_t capacity) : capacity_(capacity) {}

  /// Predecessor visible at slot i, i = 0 the most recent. Valid for
  /// i < size().
  [[nodiscard]] FileId at(std::size_t i) const noexcept {
    return ring_[(head_ + size_ - 1 - i) % kMaxWindow];
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Pushes a newly accessed file; the oldest entry falls out when full.
  void push(FileId f) noexcept {
    ring_[(head_ + size_) % kMaxWindow] = f;
    if (size_ < capacity_)
      ++size_;
    else
      head_ = (head_ + 1) % kMaxWindow;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

  /// Iterates predecessors of a new access, most recent first, invoking
  /// fn(predecessor, distance) with distance starting at 1. Skips
  /// self-references to `current` and deduplicates repeated predecessors
  /// (only the nearest occurrence counts), so each access of B contributes
  /// at most one LDA increment per predecessor and F(A,B) = N_AB / N_A
  /// stays a frequency.
  template <typename Fn>
  void for_each_predecessor(FileId current, Fn&& fn) const {
    FileId seen[kMaxWindow];
    std::size_t nseen = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      const FileId p = at(i);
      if (p == current) continue;
      bool dup = false;
      for (std::size_t s = 0; s < nseen; ++s)
        if (seen[s] == p) {
          dup = true;
          break;
        }
      if (dup) continue;
      seen[nseen++] = p;
      fn(p, i + 1);
    }
  }

  static constexpr std::size_t kMaxWindow = 16;
  static_assert(kMaxWindow >= 8, "paper experiments use windows up to 8");

 private:
  FileId ring_[kMaxWindow];
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t capacity_;
};

}  // namespace farmer
