#include "graph/access_window.hpp"

// AccessWindow is header-only; this translation unit anchors the library
// target and provides a home for future out-of-line additions.
namespace farmer {
static_assert(AccessWindow::kMaxWindow >= 8,
              "paper experiments use windows up to 8");
}  // namespace farmer
