#include "graph/correlation_graph.hpp"

#include <algorithm>
#include <cassert>

namespace farmer {

namespace {
const SmallVector<SuccessorEdge, 8> kNoSuccessors{};
const SmallVector<Correlator, 4> kNoCorrelators{};
}  // namespace

CorrelationGraph::CorrelationGraph() : CorrelationGraph(Config{}) {}

void CorrelationGraph::touch(FileId f) {
  assert(f.valid());
  nodes_.grow_to(static_cast<std::size_t>(f.value()) + 1);
}

void CorrelationGraph::record_access(FileId f) { ++at(f).access_count; }

bool CorrelationGraph::add_transition(FileId pred, FileId succ,
                                      double weight) {
  if (weight <= 0.0 || pred == succ) return false;
  // Register succ in the dense index before mutating pred's node (block
  // addresses are stable, but the historical order is kept — and touch()
  // is what gives node_count() its dense-table meaning).
  touch(succ);
  Node& node = at(pred);
  for (auto& e : node.successors) {
    if (e.successor == succ) {
      e.nab += static_cast<float>(weight);
      return true;
    }
  }
  if (node.successors.size() < cfg_.max_successors) {
    node.successors.push_back({succ, static_cast<float>(weight)});
    ++edges_;
    return true;
  }
  // Successor set full: evict the weakest edge if the newcomer beats it.
  // This is the filtering that keeps the graph's footprint bounded.
  std::size_t weakest = 0;
  for (std::size_t i = 1; i < node.successors.size(); ++i)
    if (node.successors[i].nab < node.successors[weakest].nab) weakest = i;
  if (static_cast<double>(node.successors[weakest].nab) < weight) {
    node.successors[weakest] = {succ, static_cast<float>(weight)};
    return true;
  }
  return false;
}

std::uint64_t CorrelationGraph::access_count(FileId f) const noexcept {
  const Node* n = find(f);
  return n ? n->access_count : 0;
}

double CorrelationGraph::edge_weight(FileId pred, FileId succ) const noexcept {
  const Node* n = find(pred);
  return n ? edge_weight_in(n->successors, succ) : 0.0;
}

double CorrelationGraph::access_frequency(FileId pred,
                                          FileId succ) const noexcept {
  const Node* n = find(pred);
  if (!n || n->access_count == 0) return 0.0;
  return edge_weight(pred, succ) / static_cast<double>(n->access_count);
}

const SmallVector<SuccessorEdge, 8>& CorrelationGraph::successors(
    FileId f) const noexcept {
  const Node* n = find(f);
  return n ? n->successors : kNoSuccessors;
}

SmallVector<Correlator, 4>& CorrelationGraph::correlators(FileId f) {
  return at(f).correlator_list;
}

const SmallVector<Correlator, 4>& CorrelationGraph::correlators(
    FileId f) const noexcept {
  const Node* n = find(f);
  return n ? n->correlator_list : kNoCorrelators;
}

void CorrelationGraph::upsert_correlator(FileId f, Correlator c) {
  auto& list = at(f).correlator_list;
  // Remove any stale entry for the same successor, then insert in sorted
  // position (descending degree). Lists are tiny (<= correlator_capacity),
  // so linear work beats any clever structure.
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].file == c.file) {
      list.erase_at(i);
      break;
    }
  }
  std::size_t pos = 0;
  while (pos < list.size() && list[pos].degree >= c.degree) ++pos;
  if (pos >= cfg_.correlator_capacity) return;  // too weak for a full list
  list.push_back(c);  // grow by one, then shift into place
  for (std::size_t i = list.size() - 1; i > pos; --i) list[i] = list[i - 1];
  list[pos] = c;
  while (list.size() > cfg_.correlator_capacity) list.pop_back();
}

void CorrelationGraph::restore_node(FileId f, std::uint64_t access_count,
                                    std::span<const SuccessorEdge> succs,
                                    std::span<const Correlator> correlators) {
  assert(!has_node(f));
  Node& node = at(f);
  node.access_count = access_count;
  node.successors.reserve(succs.size());
  for (const SuccessorEdge& e : succs) node.successors.push_back(e);
  node.correlator_list.reserve(correlators.size());
  for (const Correlator& c : correlators) node.correlator_list.push_back(c);
  edges_ += succs.size();
}

void CorrelationGraph::remove_correlator(FileId f, FileId succ) {
  auto& list = at(f).correlator_list;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].file == succ) {
      list.erase_at(i);
      return;
    }
  }
}

std::size_t CorrelationGraph::footprint_bytes() const noexcept {
  return sizeof(*this) - sizeof(NodeStore) +
         nodes_.footprint_bytes([](const Node& n) {
           return n.successors.heap_bytes() + n.correlator_list.heap_bytes();
         });
}

}  // namespace farmer
