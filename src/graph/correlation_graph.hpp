// The directed, weighted correlation graph (Constructing stage).
//
// Nodes are files; a directed edge A -> B accumulates N_AB, the LDA-weighted
// count of B following A within the look-ahead window. Each node also counts
// N_A, the total accesses of A, so the access frequency of the paper is
//
//   F(A, B) = N_AB / N_A.
//
// The successor set per node is bounded (`max_successors`): when full, a new
// successor evicts the currently weakest edge if the newcomer's initial
// weight exceeds it. Bounding is what gives FARMER (and Nexus) their small
// memory footprint; `footprint_bytes()` implements the Table-4 accounting.
//
// Per-file node state lives in refcounted copy-on-write blocks
// (`common/cow_store.hpp`): a snapshot of the graph (`CowShare` constructor)
// structurally shares every node and costs O(pages), and subsequent writes
// clone exactly the nodes they touch. This is what makes the concurrent
// backend's per-publish cost proportional to the dirty set instead of the
// shard size. Copying a graph the ordinary way remains a full deep copy.
//
// The same structure serves as the sequence-mining substrate for both
// FARMER's CoMiner and the Nexus baseline (which ranks successors purely by
// N_AB).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/cow_store.hpp"
#include "common/small_vector.hpp"
#include "common/types.hpp"

namespace farmer {

/// One outgoing edge of the correlation graph.
struct SuccessorEdge {
  FileId successor;
  float nab = 0.0f;  ///< LDA-weighted successor count N_AB
};

/// One entry of a file's Correlator List (Sorting stage output).
struct Correlator {
  FileId file;
  float degree = 0.0f;  ///< file correlation degree R(A, B)
};

class CorrelationGraph {
 public:
  struct Config {
    std::size_t max_successors = 16;  ///< bounded successor set per node
    std::size_t correlator_capacity = 8;  ///< max Correlator List length
  };

  CorrelationGraph();  // default Config
  explicit CorrelationGraph(Config cfg) : cfg_(cfg) {}

  /// Deep copy: every node block duplicated, nothing shared (the defaulted
  /// members do exactly that — CowBlockStore's copy constructor is deep).
  CorrelationGraph(const CorrelationGraph&) = default;
  CorrelationGraph& operator=(const CorrelationGraph&) = default;

  /// Structurally sharing snapshot copy: O(pages) pointer copies; `other`
  /// stays live and clones the nodes it touches from here on. The new graph
  /// answers every const query exactly as `other` would have at copy time.
  CorrelationGraph(CowShare, CorrelationGraph& other)
      : cfg_(other.cfg_), nodes_(other.nodes_.share()), edges_(other.edges_) {}

  /// Ensures a node slot exists for `f`; grows the dense index as needed.
  void touch(FileId f);

  /// Records one access of `f` (increments N_f). Creates the node if new.
  void record_access(FileId f);

  /// Adds LDA weight to edge pred -> succ, creating it if absent. If the
  /// successor set is full, the weakest edge is evicted when its weight is
  /// below `weight`. Returns false if the edge was not inserted.
  bool add_transition(FileId pred, FileId succ, double weight);

  /// N_A: total recorded accesses of `f` (0 if unknown).
  [[nodiscard]] std::uint64_t access_count(FileId f) const noexcept;

  /// N_AB for the edge, 0 if absent.
  [[nodiscard]] double edge_weight(FileId pred, FileId succ) const noexcept;

  /// N_AB looked up in an already-fetched successor set. The ingest kernel
  /// refreshes every Correlator-List entry of one node per request; fetching
  /// the node once and scanning its edges here removes the per-entry node
  /// find that edge_weight()/access_frequency() would repeat.
  [[nodiscard]] static double edge_weight_in(
      const SmallVector<SuccessorEdge, 8>& succs, FileId succ) noexcept {
    for (const auto& e : succs)
      if (e.successor == succ) return static_cast<double>(e.nab);
    return 0.0;
  }

  /// F(A,B) = N_AB / N_A; 0 when N_A == 0.
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const noexcept;

  /// Successor edges of `f` (unordered). Empty span for unknown files.
  [[nodiscard]] const SmallVector<SuccessorEdge, 8>& successors(
      FileId f) const noexcept;

  /// Mutable Correlator List of `f` (maintained sorted by CoMiner). Goes
  /// through the COW write gate: the node is cloned first when a snapshot
  /// still shares it.
  [[nodiscard]] SmallVector<Correlator, 4>& correlators(FileId f);
  [[nodiscard]] const SmallVector<Correlator, 4>& correlators(
      FileId f) const noexcept;

  /// Replaces/inserts `c` in f's Correlator List keeping it sorted by
  /// descending degree and capped at `correlator_capacity`. An existing
  /// entry for the same file is updated in place (and re-sorted).
  void upsert_correlator(FileId f, Correlator c);

  /// Removes the entry for `succ` from f's list if present.
  void remove_correlator(FileId f, FileId succ);

  /// True when `f` has a populated node block (an access or an incoming
  /// transition created one); slots grown only by `touch()` read as absent.
  [[nodiscard]] bool has_node(FileId f) const noexcept {
    return find(f) != nullptr;
  }

  /// Recovery seam (src/persist): recreates f's node exactly as checkpointed
  /// — access count, successor edges, and the Correlator List, both in their
  /// stored order (edge order decides eviction ties; list order is the query
  /// output). Only valid on a node not yet populated; the edge counter grows
  /// by `succs.size()`.
  void restore_node(FileId f, std::uint64_t access_count,
                    std::span<const SuccessorEdge> succs,
                    std::span<const Correlator> correlators);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// COW write-path counters: populated nodes, creates, clones (the clones
  /// since the last snapshot are exactly the publish-round dirty set).
  [[nodiscard]] const CowStoreStats& cow_stats() const noexcept {
    return nodes_.stats();
  }
  /// Bytes of one node block as allocated (inline part, without heap spill).
  [[nodiscard]] static constexpr std::size_t node_block_bytes() noexcept {
    return NodeStore::block_inline_bytes();
  }
  /// Stable block identity for COW-invariant tests: equal pointers across
  /// two graphs certify the node is structurally shared.
  [[nodiscard]] const void* node_identity(FileId f) const noexcept {
    return nodes_.block_identity(static_cast<std::size_t>(f.value()));
  }

  /// Approximate heap + table footprint in bytes (Table 4 accounting):
  /// node index, blocks, successor sets, correlator lists. Counts shared
  /// blocks in full (an upper bound when snapshots are live).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept;

 private:
  struct Node {
    std::uint64_t access_count = 0;
    SmallVector<SuccessorEdge, 8> successors;
    SmallVector<Correlator, 4> correlator_list;
  };
  using NodeStore = CowBlockStore<Node>;

  [[nodiscard]] const Node* find(FileId f) const noexcept {
    return nodes_.find(static_cast<std::size_t>(f.value()));
  }
  [[nodiscard]] Node& at(FileId f) {
    return nodes_.mutate(static_cast<std::size_t>(f.value()));
  }

  Config cfg_;
  NodeStore nodes_;  // dense by FileId, COW blocks
  std::size_t edges_ = 0;
};

}  // namespace farmer
