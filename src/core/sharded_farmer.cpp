#include "core/sharded_farmer.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "common/parallel.hpp"

namespace farmer {

ShardedFarmer::ShardedFarmer(FarmerConfig cfg,
                             std::shared_ptr<const TraceDictionary> dict,
                             std::size_t shards)
    : cfg_(cfg) {
  shards_.reserve(shards == 0 ? 1 : shards);
  for (std::size_t i = 0; i < std::max<std::size_t>(shards, 1); ++i)
    shards_.push_back(std::make_unique<Farmer>(cfg, dict));
}

std::size_t ShardedFarmer::shard_of(const TraceRecord& rec) const noexcept {
  return static_cast<std::size_t>(mix64(rec.process.value())) %
         shards_.size();
}

void ShardedFarmer::observe(const TraceRecord& rec) {
  shards_[shard_of(rec)]->observe(rec);
}

void ShardedFarmer::observe_batch(std::span<const TraceRecord> records) {
  // Partition indices per shard, preserving stream order within each shard.
  std::vector<std::vector<std::uint32_t>> buckets(shards_.size());
  for (std::uint32_t i = 0; i < records.size(); ++i)
    buckets[shard_of(records[i])].push_back(i);
  parallel_for(shards_.size(), [&](std::size_t s) {
    for (std::uint32_t idx : buckets[s]) shards_[s]->observe(records[idx]);
  });
}

std::vector<Correlator> ShardedFarmer::correlators(FileId f) const {
  std::vector<Correlator> merged;
  for (const auto& shard : shards_)
    for (const Correlator& c : shard->correlator_list(f)) merged.push_back(c);
  std::sort(merged.begin(), merged.end(),
            [](const Correlator& a, const Correlator& b) {
              if (a.degree != b.degree) return a.degree > b.degree;
              return a.file < b.file;
            });
  // Deduplicate successors: the strongest shard wins.
  std::vector<Correlator> out;
  for (const Correlator& c : merged) {
    const bool seen = std::any_of(
        out.begin(), out.end(),
        [&](const Correlator& o) { return o.file == c.file; });
    if (!seen) out.push_back(c);
    if (out.size() >= cfg_.correlator_capacity) break;
  }
  return out;
}

double ShardedFarmer::correlation_degree(FileId a, FileId b) const {
  double best = 0.0;
  for (const auto& shard : shards_)
    best = std::max(best, shard->correlation_degree(a, b));
  return best;
}

double ShardedFarmer::semantic_similarity(FileId a, FileId b) const {
  double best = 0.0;
  for (const auto& shard : shards_)
    best = std::max(best, shard->semantic_similarity(a, b));
  return best;
}

std::uint64_t ShardedFarmer::access_count(FileId f) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->access_count(f);
  return total;
}

double ShardedFarmer::access_frequency(FileId pred, FileId succ) const {
  double nab = 0.0;
  std::uint64_t na = 0;
  for (const auto& shard : shards_) {
    nab += shard->graph().edge_weight(pred, succ);
    na += shard->graph().access_count(pred);
  }
  return na == 0 ? 0.0 : nab / static_cast<double>(na);
}

MinerStats ShardedFarmer::stats() const {
  MinerStats total;
  total.shards = shards_.size();
  for (const auto& shard : shards_) {
    const MinerStats s = shard->stats();
    total.requests += s.requests;
    total.pairs_evaluated += s.pairs_evaluated;
    total.pairs_accepted += s.pairs_accepted;
    total.pairs_filtered += s.pairs_filtered;
  }
  return total;
}

std::size_t ShardedFarmer::footprint_bytes() const noexcept {
  std::size_t bytes = sizeof(*this);
  for (const auto& s : shards_) bytes += s->footprint_bytes();
  return bytes;
}

}  // namespace farmer
