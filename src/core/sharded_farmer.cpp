#include "core/sharded_farmer.hpp"

#include <stdexcept>

#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "persist/checkpoint.hpp"
#include "persist/persister.hpp"

namespace farmer {

ShardedFarmer::ShardedFarmer(FarmerConfig cfg,
                             std::shared_ptr<const TraceDictionary> dict,
                             std::size_t shards)
    : cfg_(cfg) {
  shards_.reserve(shards == 0 ? 1 : shards);
  for (std::size_t i = 0; i < std::max<std::size_t>(shards, 1); ++i)
    shards_.push_back(std::make_unique<Farmer>(cfg, dict));
}

std::size_t ShardedFarmer::shard_of(const TraceRecord& rec) const noexcept {
  return static_cast<std::size_t>(mix64(rec.process.value())) %
         shards_.size();
}

void ShardedFarmer::observe(const TraceRecord& rec) {
  shards_[shard_of(rec)]->observe(rec);
}

void ShardedFarmer::observe_batch(std::span<const TraceRecord> records) {
  // Partition indices per shard, preserving stream order within each shard.
  std::vector<std::vector<std::uint32_t>> buckets(shards_.size());
  for (std::uint32_t i = 0; i < records.size(); ++i)
    buckets[shard_of(records[i])].push_back(i);
  parallel_for(shards_.size(), [&](std::size_t s) {
    for (std::uint32_t idx : buckets[s]) shards_[s]->observe(records[idx]);
  });
}

std::vector<Correlator> ShardedFarmer::correlators(FileId f) const {
  return merged_correlators(shards_, f, cfg_.correlator_capacity);
}

double ShardedFarmer::correlation_degree(FileId a, FileId b) const {
  return merged_correlation_degree(shards_, a, b);
}

double ShardedFarmer::semantic_similarity(FileId a, FileId b) const {
  return merged_semantic_similarity(shards_, a, b);
}

std::uint64_t ShardedFarmer::access_count(FileId f) const {
  return merged_access_count(shards_, f);
}

double ShardedFarmer::access_frequency(FileId pred, FileId succ) const {
  return merged_access_frequency(shards_, pred, succ);
}

MinerStats ShardedFarmer::stats() const {
  MinerStats total = merged_stats(shards_);
  total.shards = shards_.size();
  // Synchronous backend: state is always current, nothing is ever queued.
  // epoch/pending/cache counters stay at their explicit zero defaults and
  // shard_epochs stays empty (see the MinerStats field contract).
  return total;
}

void ShardedFarmer::save(const std::string& dir) {
  std::vector<const Farmer*> view;
  view.reserve(shards_.size());
  for (const auto& s : shards_) view.push_back(s.get());
  persist::write_checkpoint_dir(dir, stats().requests, cfg_,
                                shards_.front()->dictionary(), view);
}

void ShardedFarmer::load(const std::string& dir) {
  if (stats().requests != 0)
    throw std::logic_error("ShardedFarmer::load: miner has already ingested");
  persist::Recovery rec =
      persist::recover_dir(dir, cfg_, shards_.front()->dictionary());
  if (!rec.shard_blobs.empty()) {
    if (rec.shard_blobs.size() != shards_.size())
      throw std::runtime_error(
          "ShardedFarmer::load: checkpoint shard count mismatch");
    for (std::size_t s = 0; s < shards_.size(); ++s)
      persist::deserialize_shard(rec.shard_blobs[s], *shards_[s]);
  }
  observe_batch(rec.tail);
}

std::size_t ShardedFarmer::footprint_bytes() const noexcept {
  std::size_t bytes = sizeof(*this);
  for (const auto& s : shards_) bytes += s->footprint_bytes();
  return bytes;
}

}  // namespace farmer
