#include "core/sharded_farmer.hpp"

#include <stdexcept>

#include "common/hash.hpp"
#include "common/parallel.hpp"
#include "persist/checkpoint.hpp"
#include "persist/persister.hpp"

namespace farmer {

ShardedFarmer::ShardedFarmer(FarmerConfig cfg,
                             std::shared_ptr<const TraceDictionary> dict,
                             std::size_t shards, std::size_t apply_threads)
    : cfg_(cfg) {
  shards_.reserve(shards == 0 ? 1 : shards);
  for (std::size_t i = 0; i < std::max<std::size_t>(shards, 1); ++i)
    shards_.push_back(std::make_unique<Farmer>(cfg, dict));
  slices_.resize(shards_.size());
  // 0 = auto. More lanes than shards cannot be used: the shard slice is the
  // parallelism unit (splitting one slice would reorder a shard's stream).
  std::size_t lanes = apply_threads == 0 ? hardware_parallelism()
                                         : apply_threads;
  lanes = std::min(lanes, shards_.size());
  if (lanes > 1) pool_ = std::make_unique<WorkerPool>(lanes);
}

ShardedFarmer::~ShardedFarmer() = default;

std::size_t ShardedFarmer::apply_thread_count() const noexcept {
  return pool_ ? pool_->thread_count() : 1;
}

std::size_t ShardedFarmer::shard_of(const TraceRecord& rec) const noexcept {
  return static_cast<std::size_t>(mix64(rec.process.value())) %
         shards_.size();
}

void ShardedFarmer::observe(const TraceRecord& rec) {
  shards_[shard_of(rec)]->observe(rec);
}

void ShardedFarmer::observe_batch(std::span<const TraceRecord> records) {
  if (records.empty()) return;
  ++apply_batches_;
  // Single shard: the whole span is one ordered slice — skip partitioning.
  if (shards_.size() == 1) {
    shards_[0]->observe_batch(records);
    return;
  }
  // Partition into contiguous per-shard slices, preserving stream order
  // within each shard (routing order == serial apply order). Copying the
  // records gives each shard a dense span for Farmer::observe_batch's
  // bulk-bookkeeping path; the buffers keep their capacity across batches.
  for (auto& s : slices_) s.clear();
  for (const TraceRecord& r : records) slices_[shard_of(r)].push_back(r);
  const auto apply_slice = [&](std::size_t s) {
    if (!slices_[s].empty()) shards_[s]->observe_batch(slices_[s]);
  };
  if (pool_) {
    // Shard state is task-disjoint, so concurrent slice applies touch no
    // shared mutable state; per-shard record order is unchanged, so the
    // result is byte-identical to the serial loop below.
    apply_parallel_records_ += records.size();
    pool_->run(shards_.size(), apply_slice);
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) apply_slice(s);
  }
}

std::vector<Correlator> ShardedFarmer::correlators(FileId f) const {
  return merged_correlators(shards_, f, cfg_.correlator_capacity);
}

double ShardedFarmer::correlation_degree(FileId a, FileId b) const {
  return merged_correlation_degree(shards_, a, b);
}

double ShardedFarmer::semantic_similarity(FileId a, FileId b) const {
  return merged_semantic_similarity(shards_, a, b);
}

std::uint64_t ShardedFarmer::access_count(FileId f) const {
  return merged_access_count(shards_, f);
}

double ShardedFarmer::access_frequency(FileId pred, FileId succ) const {
  return merged_access_frequency(shards_, pred, succ);
}

MinerStats ShardedFarmer::stats() const {
  MinerStats total = merged_stats(shards_);
  total.shards = shards_.size();
  // Synchronous backend: state is always current, nothing is ever queued.
  // epoch/pending/cache counters stay at their explicit zero defaults and
  // shard_epochs stays empty (see the MinerStats field contract). The batch
  // apply path is the one async-looking thing this backend does own.
  total.apply_batches = apply_batches_;
  total.apply_parallel_records = apply_parallel_records_;
  return total;
}

void ShardedFarmer::save(const std::string& dir) {
  std::vector<const Farmer*> view;
  view.reserve(shards_.size());
  for (const auto& s : shards_) view.push_back(s.get());
  persist::write_checkpoint_dir(dir, stats().requests, cfg_,
                                shards_.front()->dictionary(), view);
}

void ShardedFarmer::load(const std::string& dir) {
  if (stats().requests != 0)
    throw std::logic_error("ShardedFarmer::load: miner has already ingested");
  persist::Recovery rec =
      persist::recover_dir(dir, cfg_, shards_.front()->dictionary());
  if (!rec.shard_blobs.empty()) {
    if (rec.shard_blobs.size() != shards_.size())
      throw std::runtime_error(
          "ShardedFarmer::load: checkpoint shard count mismatch");
    for (std::size_t s = 0; s < shards_.size(); ++s)
      persist::deserialize_shard(rec.shard_blobs[s], *shards_[s]);
  }
  observe_batch(rec.tail);
}

std::size_t ShardedFarmer::footprint_bytes() const noexcept {
  std::size_t bytes = sizeof(*this);
  for (const auto& s : shards_) bytes += s->footprint_bytes();
  return bytes;
}

}  // namespace farmer
