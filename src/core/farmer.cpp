#include "core/farmer.hpp"

#include <algorithm>
#include <stdexcept>

#include "persist/checkpoint.hpp"
#include "persist/persister.hpp"

namespace farmer {

Farmer::Farmer(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict)
    : cfg_(cfg),
      extractor_(std::move(dict)),
      graph_({cfg.max_successors, cfg.correlator_capacity}),
      miner_(cfg_, graph_),
      window_(cfg.window) {}

Farmer::Farmer(const Farmer& other)
    : cfg_(other.cfg_),
      extractor_(other.extractor_),
      graph_(other.graph_),  // deep: CowBlockStore's copy duplicates blocks
      // Rebind the miner to *this* copy's config and graph; a defaulted
      // member copy would keep referencing the source's.
      miner_(cfg_, graph_, other.miner_.stats()),
      window_(other.window_),
      state_(other.state_),
      requests_(other.requests_) {
  // Not carried over: the deep copy's containers are allocated exact-size,
  // so the source's memoized footprint (which includes capacity slack)
  // would misreport this object. First call recomputes.
}

Farmer::Farmer(CowShare, Farmer& other)
    : cfg_(other.cfg_),
      extractor_(other.extractor_),
      graph_(CowShare{}, other.graph_),
      miner_(cfg_, graph_, other.miner_.stats()),
      window_(other.window_),
      state_(other.state_.share()),
      requests_(other.requests_) {
  // The snapshot answers queries identically to the live side right now, so
  // a memoized footprint carries over; kFootprintDirty just defers the walk
  // to the snapshot's first footprint_bytes() call.
  footprint_cache_.store(
      other.footprint_cache_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

void Farmer::observe(const TraceRecord& rec) {
  ++requests_;
  footprint_cache_.store(kFootprintDirty, std::memory_order_relaxed);
  observe_impl(rec);
}

void Farmer::observe_batch(std::span<const TraceRecord> records) {
  if (records.empty()) return;
  // One bookkeeping update for the whole span; the pipeline itself is the
  // same per-record code, so batch == serial byte-for-byte.
  requests_ += records.size();
  footprint_cache_.store(kFootprintDirty, std::memory_order_relaxed);
  for (const TraceRecord& r : records) observe_impl(r);
}

namespace {

/// Two extracted contexts are interchangeable when every token matches —
/// the signature built from them is bit-identical, so rebuilding it would
/// only reproduce the stored one.
bool same_context(const SemanticVector& a, const SemanticVector& b) noexcept {
  if (a.user != b.user || a.process != b.process || a.host != b.host ||
      a.dev != b.dev || a.fid != b.fid ||
      a.path_components.size() != b.path_components.size())
    return false;
  for (std::size_t i = 0; i < a.path_components.size(); ++i)
    if (a.path_components[i] != b.path_components[i]) return false;
  return true;
}

/// The Correlator-List order: degree descending, FileId ascending on ties.
/// Over unique FileIds this is a strict total order, so the sorted
/// permutation is unique — any correct sort produces the same bytes.
bool correlator_before(const Correlator& a, const Correlator& b) noexcept {
  if (a.degree != b.degree) return a.degree > b.degree;
  return a.file < b.file;
}

}  // namespace

void Farmer::observe_impl(const TraceRecord& rec) {
  const FileId file = rec.file;

  // Stage 1 — Extracting. The stored vector/signature always reflect the
  // most recent request context of the file. mutate() is the COW write
  // gate: the file's block is cloned here iff a snapshot still shares it
  // (always taken, so the clone accounting is independent of the
  // memoization below). Extraction lands in a reusable scratch vector;
  // when the context tokens are unchanged since the file's last access —
  // the common case for a file hammered by one process — the stored
  // signature is already exactly what build_signature would produce, so
  // the gather-and-sort is skipped. A fresh block must always build: its
  // default-constructed vector could coincidentally equal the extraction
  // (all-invalid tokens under an empty dictionary) while its default
  // signature does not match.
  const bool fresh =
      state_.find(static_cast<std::size_t>(file.value())) == nullptr;
  FileState& st = state_.mutate(static_cast<std::size_t>(file.value()));
  extractor_.extract(rec, scratch_vec_);
  if (fresh || !same_context(scratch_vec_, st.vec)) {
    st.vec = scratch_vec_;
    st.sig = build_signature(st.vec, cfg_.attributes, cfg_.path_mode);
  }

  // Stage 2 — Constructing: N_file and LDA-weighted N_{pred,file} updates.
  graph_.record_access(file);
  const Signature& file_sig = st.sig;

  // Refresh the *frequency* component of `file`'s Correlator List: N_file
  // just grew, so F(file, succ) = N_AB / N_file shrank for every listed
  // successor. The semantic component is NOT re-evaluated here — per the
  // paper, semantic distance is only recomputed when the pair is observed
  // again — so stable context matches survive across sessions while
  // one-shot successors (fresh checkpoint files and the like) decay with
  // 1/N and eventually fall below the validity threshold.
  //
  // N_file, the N/(N-1) rescale and the frequency weight are invariant
  // across the loop, and the successor set is fetched once — the per-entry
  // work is one edge scan and a handful of flops.
  auto& list = graph_.correlators(file);
  if (!list.empty()) {
    const auto& succs = graph_.successors(file);
    const double n = static_cast<double>(graph_.access_count(file));
    const double rescale = n / std::max(1.0, n - 1.0);
    const double freq_w = 1.0 - cfg_.p;
    for (std::size_t i = list.size(); i-- > 0;) {
      const FileId succ = list[i].file;
      const double freq = CorrelationGraph::edge_weight_in(succs, succ) / n;
      // Recover the semantic part from the stored degree under the
      // *previous* N (freq scaled by N/(N-1)); algebraically equivalent to
      // caching sim.
      const double prev_freq = freq * rescale;
      const double sem = static_cast<double>(list[i].degree) - freq_w * prev_freq;
      const double degree = sem + freq_w * freq;
      if (degree < cfg_.max_strength)
        graph_.remove_correlator(file, succ);
      else
        list[i].degree = static_cast<float>(degree);
    }
    // Order repair instead of a full std::sort: the uniform 1/N rescale
    // mostly preserves relative order, so the list is nearly sorted and the
    // insertion pass is O(k) in the common case. The comparator is a strict
    // total order over unique FileIds (degree desc, FileId asc), so the
    // repaired order is the unique sorted permutation — identical bytes to
    // what std::sort produced.
    for (std::size_t i = 1; i < list.size(); ++i) {
      const Correlator key = list[i];
      std::size_t j = i;
      while (j > 0 && correlator_before(key, list[j - 1])) {
        list[j] = list[j - 1];
        --j;
      }
      list[j] = key;
    }
  }
  window_.for_each_predecessor(file, [&](FileId pred, std::size_t distance) {
    const double w = AccessWindow::lda_weight(distance, cfg_.lda_delta);
    if (w <= 0.0) return;
    graph_.add_transition(pred, file, w);
    // Stages 3 + 4 — Mining & Evaluating, then Sorting: only pairs touched
    // by this request are (re-)evaluated; the Correlator List insert keeps
    // the list ordered.
    if (const FileState* ps = state_of(pred))
      miner_.evaluate_pair(pred, ps->sig, file, file_sig);
  });
  window_.push(file);
}

double Farmer::semantic_similarity(FileId a, FileId b) const {
  const FileState* sa = state_of(a);
  const FileState* sb = state_of(b);
  if (!sa || !sb) return 0.0;
  return similarity(sa->sig, sb->sig);
}

double Farmer::correlation_degree(FileId a, FileId b) const {
  const FileState* sa = state_of(a);
  const FileState* sb = state_of(b);
  if (!sa || !sb) return 0.0;
  return miner_.correlation_degree(a, sa->sig, b, sb->sig);
}

std::size_t Farmer::footprint_bytes() const noexcept {
  const std::size_t cached = footprint_cache_.load(std::memory_order_relaxed);
  if (cached != kFootprintDirty) return cached;
  std::size_t bytes = graph_.footprint_bytes();
  bytes += state_.footprint_bytes([](const FileState& st) {
    return st.vec.path_components.heap_bytes() + st.sig.items.heap_bytes() +
           st.sig.path_sorted.heap_bytes();
  });
  footprint_cache_.store(bytes, std::memory_order_relaxed);
  return bytes;
}

void Farmer::save(const std::string& dir) {
  const Farmer* self = this;
  persist::write_checkpoint_dir(dir, requests_, cfg_, extractor_.dictionary(),
                                std::span<const Farmer* const>(&self, 1));
}

void Farmer::load(const std::string& dir) {
  if (requests_ != 0)
    throw std::logic_error("Farmer::load: miner has already ingested");
  persist::Recovery rec =
      persist::recover_dir(dir, cfg_, extractor_.dictionary());
  if (!rec.shard_blobs.empty()) {
    if (rec.shard_blobs.size() != 1)
      throw std::runtime_error(
          "Farmer::load: checkpoint has more than one shard");
    persist::deserialize_shard(rec.shard_blobs[0], *this);
  }
  for (const TraceRecord& r : rec.tail) observe(r);
}

void Farmer::restore_counters(std::uint64_t requests, CoMinerStats stats) {
  requests_ = requests;
  miner_.set_stats(stats);
  footprint_cache_.store(kFootprintDirty, std::memory_order_relaxed);
}

void Farmer::restore_sizes(std::size_t state_size, std::size_t graph_nodes) {
  state_.grow_to(state_size);
  if (graph_nodes > 0)
    graph_.touch(FileId(static_cast<std::uint32_t>(graph_nodes - 1)));
  footprint_cache_.store(kFootprintDirty, std::memory_order_relaxed);
}

void Farmer::restore_file_state(FileId f, const SemanticVector& vec,
                                const Signature& sig) {
  FileState& st = state_.mutate(static_cast<std::size_t>(f.value()));
  st.vec = vec;
  st.sig = sig;
  footprint_cache_.store(kFootprintDirty, std::memory_order_relaxed);
}

void Farmer::restore_window_push(FileId f) { window_.push(f); }

void Farmer::restore_graph_node(FileId f, std::uint64_t access_count,
                                std::span<const SuccessorEdge> succs,
                                std::span<const Correlator> correlators) {
  graph_.restore_node(f, access_count, succs, correlators);
  footprint_cache_.store(kFootprintDirty, std::memory_order_relaxed);
}

std::array<CowStoreAccounting, 2> Farmer::cow_accounting() const noexcept {
  const CowStoreStats& g = graph_.cow_stats();
  const CowStoreStats& s = state_.stats();
  return {CowStoreAccounting{g.blocks, g.mutations(), g.clones,
                             CorrelationGraph::node_block_bytes()},
          CowStoreAccounting{s.blocks, s.mutations(), s.clones,
                             StateStore::block_inline_bytes()}};
}

}  // namespace farmer
