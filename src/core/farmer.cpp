#include "core/farmer.hpp"

#include <algorithm>

namespace farmer {

Farmer::Farmer(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict)
    : cfg_(cfg),
      extractor_(std::move(dict)),
      graph_({cfg.max_successors, cfg.correlator_capacity}),
      miner_(cfg_, graph_),
      window_(cfg.window) {}

Farmer::Farmer(const Farmer& other)
    : cfg_(other.cfg_),
      extractor_(other.extractor_),
      graph_(other.graph_),
      // Rebind the miner to *this* copy's config and graph; a defaulted
      // member copy would keep referencing the source's.
      miner_(cfg_, graph_, other.miner_.stats()),
      window_(other.window_),
      vectors_(other.vectors_),
      signatures_(other.signatures_),
      has_state_(other.has_state_),
      requests_(other.requests_) {}

void Farmer::ensure_file_state(FileId f) {
  const auto i = static_cast<std::size_t>(f.value());
  if (i >= vectors_.size()) {
    vectors_.resize(i + 1);
    signatures_.resize(i + 1);
    has_state_.resize(i + 1, 0);
  }
}

void Farmer::observe(const TraceRecord& rec) {
  ++requests_;
  const FileId file = rec.file;
  ensure_file_state(file);

  // Stage 1 — Extracting. The stored vector/signature always reflect the
  // most recent request context of the file.
  SemanticVector& sv = vectors_[file.value()];
  extractor_.extract(rec, sv);
  signatures_[file.value()] =
      build_signature(sv, cfg_.attributes, cfg_.path_mode);
  has_state_[file.value()] = 1;

  // Stage 2 — Constructing: N_file and LDA-weighted N_{pred,file} updates.
  graph_.record_access(file);
  const Signature& file_sig = signatures_[file.value()];

  // Refresh the *frequency* component of `file`'s Correlator List: N_file
  // just grew, so F(file, succ) = N_AB / N_file shrank for every listed
  // successor. The semantic component is NOT re-evaluated here — per the
  // paper, semantic distance is only recomputed when the pair is observed
  // again — so stable context matches survive across sessions while
  // one-shot successors (fresh checkpoint files and the like) decay with
  // 1/N and eventually fall below the validity threshold.
  auto& list = graph_.correlators(file);
  for (std::size_t i = list.size(); i-- > 0;) {
    const FileId succ = list[i].file;
    const double freq = graph_.access_frequency(file, succ);
    // Recover the semantic part from the stored degree under the *previous*
    // N (freq scaled by N/(N-1)); algebraically equivalent to caching sim.
    const double prev_freq =
        freq * static_cast<double>(graph_.access_count(file)) /
        std::max<double>(1.0,
                         static_cast<double>(graph_.access_count(file)) - 1.0);
    const double sem =
        static_cast<double>(list[i].degree) - (1.0 - cfg_.p) * prev_freq;
    const double degree = sem + (1.0 - cfg_.p) * freq;
    if (degree < cfg_.max_strength)
      graph_.remove_correlator(file, succ);
    else
      list[i].degree = static_cast<float>(degree);
  }
  std::sort(list.begin(), list.end(),
            [](const Correlator& a, const Correlator& b) {
              if (a.degree != b.degree) return a.degree > b.degree;
              return a.file < b.file;
            });
  window_.for_each_predecessor(file, [&](FileId pred, std::size_t distance) {
    const double w = AccessWindow::lda_weight(distance, cfg_.lda_delta);
    if (w <= 0.0) return;
    graph_.add_transition(pred, file, w);
    // Stages 3 + 4 — Mining & Evaluating, then Sorting: only pairs touched
    // by this request are (re-)evaluated; the Correlator List insert keeps
    // the list ordered.
    if (has_state_[pred.value()])
      miner_.evaluate_pair(pred, signatures_[pred.value()], file, file_sig);
  });
  window_.push(file);
}

double Farmer::semantic_similarity(FileId a, FileId b) const {
  const auto ia = static_cast<std::size_t>(a.value());
  const auto ib = static_cast<std::size_t>(b.value());
  if (ia >= has_state_.size() || ib >= has_state_.size() || !has_state_[ia] ||
      !has_state_[ib])
    return 0.0;
  return similarity(signatures_[ia], signatures_[ib]);
}

double Farmer::correlation_degree(FileId a, FileId b) const {
  const auto ia = static_cast<std::size_t>(a.value());
  const auto ib = static_cast<std::size_t>(b.value());
  if (ia >= has_state_.size() || ib >= has_state_.size() || !has_state_[ia] ||
      !has_state_[ib])
    return 0.0;
  return miner_.correlation_degree(a, signatures_[ia], b, signatures_[ib]);
}

std::size_t Farmer::footprint_bytes() const noexcept {
  std::size_t bytes = graph_.footprint_bytes();
  bytes += vectors_.capacity() * sizeof(SemanticVector);
  bytes += signatures_.capacity() * sizeof(Signature);
  bytes += has_state_.capacity();
  for (const auto& v : vectors_) bytes += v.path_components.heap_bytes();
  for (const auto& s : signatures_)
    bytes += s.items.heap_bytes() + s.path_sorted.heap_bytes();
  return bytes;
}

}  // namespace farmer
