// The FARMER model: the four-stage pipeline of Section 3.1.
//
//   Stage 1  Extracting    — request -> semantic vector (Extractor)
//   Stage 2  Constructing  — sliding window -> weighted correlation graph
//   Stage 3  Mining & Evaluating — CoMiner computes R(x,y) per touched pair
//   Stage 4  Sorting       — Correlator Lists kept sorted by degree
//
// `observe()` runs all four stages for one request; the model is fully
// incremental ("iterative process that repeats itself for each incoming
// request"). Correlator Lists are the public product, consumed by the
// prefetcher (Section 4.1) and the layout optimizer (Section 4.2).
#pragma once

#include <memory>
#include <vector>

#include "core/cominer.hpp"
#include "core/config.hpp"
#include "core/extractor.hpp"
#include "graph/access_window.hpp"
#include "graph/correlation_graph.hpp"
#include "trace/record.hpp"

namespace farmer {

/// Aggregate counters + memory accounting for Table 4.
struct FarmerStats {
  std::uint64_t requests = 0;
  CoMinerStats mining;
};

class Farmer {
 public:
  Farmer(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict);

  /// Ingests one file request (all four stages).
  void observe(const TraceRecord& rec);

  /// Sorted Correlator List of `f` (may be empty). Entries all satisfy
  /// degree >= max_strength at their last evaluation.
  [[nodiscard]] const SmallVector<Correlator, 4>& correlators(
      FileId f) const noexcept {
    return graph_.correlators(f);
  }

  /// Correlation degree between two files under the current state
  /// (evaluation-only; does not modify any list).
  [[nodiscard]] double correlation_degree(FileId a, FileId b) const;

  /// Raw semantic distance sim(a, b) under the current state (no frequency
  /// component); 0 when either file has no recorded context yet.
  [[nodiscard]] double semantic_similarity(FileId a, FileId b) const;

  [[nodiscard]] const CorrelationGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const FarmerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] FarmerStats stats() const noexcept {
    FarmerStats s;
    s.requests = requests_;
    s.mining = miner_.stats();
    return s;
  }

  /// Total additional memory FARMER holds: graph + correlator lists +
  /// per-active-file semantic state (Table 4 accounting).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept;

 private:
  void ensure_file_state(FileId f);

  FarmerConfig cfg_;
  Extractor extractor_;
  CorrelationGraph graph_;
  CoMiner miner_;
  AccessWindow window_;

  // Per-file semantic state, dense by FileId: the vector as of the most
  // recent access and its prebuilt signature under (attributes, path_mode).
  std::vector<SemanticVector> vectors_;
  std::vector<Signature> signatures_;
  std::vector<std::uint8_t> has_state_;
  std::uint64_t requests_ = 0;
};

}  // namespace farmer
