// The FARMER model: the four-stage pipeline of Section 3.1.
//
//   Stage 1  Extracting    — request -> semantic vector (Extractor)
//   Stage 2  Constructing  — sliding window -> weighted correlation graph
//   Stage 3  Mining & Evaluating — CoMiner computes R(x,y) per touched pair
//   Stage 4  Sorting       — Correlator Lists kept sorted by degree
//
// `observe()` runs all four stages for one request; the model is fully
// incremental ("iterative process that repeats itself for each incoming
// request"). Correlator Lists are the public product, consumed through the
// `CorrelationMiner` interface by the prefetcher (Section 4.1), the layout
// optimizer (Section 4.2) and policy propagation (Section 4.3).
//
// All per-file state — graph node (successors, Correlator List, N_f) and
// semantic state (vector + signature) — lives in copy-on-write blocks
// (`common/cow_store.hpp`). Snapshot publication (`CowShare` constructor)
// therefore costs O(pages) + O(files touched since the last snapshot), not
// O(shard size); the plain copy constructor keeps full deep-copy semantics
// for explicit-copy callers.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include "api/correlation_miner.hpp"
#include "common/cow_store.hpp"
#include "core/cominer.hpp"
#include "core/config.hpp"
#include "core/extractor.hpp"
#include "graph/access_window.hpp"
#include "graph/correlation_graph.hpp"
#include "trace/record.hpp"

namespace farmer {

/// Publish-side accounting of one COW store: how many blocks exist, how
/// many write-path mutations (creates + clones) have ever happened, and the
/// inline bytes of one block. A publisher that remembers `mutations` from
/// the previous publish knows exactly how many blocks the round cloned and
/// how many it structurally shared.
struct CowStoreAccounting {
  std::uint64_t blocks = 0;
  std::uint64_t mutations = 0;
  std::uint64_t clones = 0;
  std::size_t block_bytes = 0;
};

class Farmer : public CorrelationMiner {
 public:
  Farmer(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict);

  /// Deep copy: duplicates the graph, window and per-file semantic state
  /// (every COW block) and rebinds the internal CoMiner to the copy's own
  /// members. Nothing is shared with the source, so both sides may keep
  /// mutating freely — the explicit-copy semantics synchronous callers
  /// expect. The trace dictionary is shared (immutable by construction).
  Farmer(const Farmer& other);
  Farmer& operator=(const Farmer&) = delete;

  /// Structurally sharing snapshot copy (RCU publication path): costs
  /// O(pages) + nothing per untouched file. Every const query on the copy
  /// answers exactly as `other` would have at copy time; `other` stays the
  /// live side and lazily clones the blocks it touches from here on. The
  /// copy is meant to be frozen behind `shared_ptr<const Farmer>` — see
  /// ShardedFarmer::export_shard_snapshot.
  Farmer(CowShare, Farmer& other);

  /// Ingests one file request (all four stages).
  void observe(const TraceRecord& rec) override;

  /// Batch ingest without per-record bookkeeping: one requests_ update and
  /// one footprint invalidation for the whole span, with the same per-record
  /// pipeline (so batch and serial ingest stay byte-identical).
  void observe_batch(std::span<const TraceRecord> records) override;

  /// Sorted Correlator List of `f` (may be empty). Entries all satisfy
  /// degree >= max_strength at their last evaluation. Zero-copy fast path
  /// for concrete-`Farmer` callers; interface callers use snapshot().
  [[nodiscard]] const SmallVector<Correlator, 4>& correlator_list(
      FileId f) const noexcept {
    return graph_.correlators(f);
  }

  /// Borrowed view over the live list: the list only changes inside
  /// observe(), so the snapshot is stable for the whole query-then-act
  /// step of any consumer.
  [[nodiscard]] CorrelatorView snapshot(FileId f) const override {
    const auto& list = graph_.correlators(f);
    return CorrelatorView(std::span<const Correlator>(list.data(),
                                                      list.size()));
  }

  /// Correlation degree between two files under the current state
  /// (evaluation-only; does not modify any list).
  [[nodiscard]] double correlation_degree(FileId a, FileId b) const override;

  /// Raw semantic distance sim(a, b) under the current state (no frequency
  /// component); 0 when either file has no recorded context yet.
  [[nodiscard]] double semantic_similarity(FileId a, FileId b) const override;

  [[nodiscard]] std::uint64_t access_count(FileId f) const override {
    return graph_.access_count(f);
  }
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const override {
    return graph_.access_frequency(pred, succ);
  }

  [[nodiscard]] const CorrelationGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const FarmerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] MinerStats stats() const override {
    MinerStats s;
    s.requests = requests_;
    s.pairs_evaluated = miner_.stats().pairs_evaluated;
    s.pairs_accepted = miner_.stats().pairs_accepted;
    s.pairs_filtered = miner_.stats().pairs_filtered;
    s.shards = 1;
    return s;
  }

  [[nodiscard]] const char* name() const noexcept override { return "farmer"; }

  /// Total additional memory FARMER holds: graph + correlator lists +
  /// per-active-file semantic state (Table 4 accounting). Memoized: the
  /// walk over every block reruns only after ingest dirtied the state, so
  /// repeated calls — and every call on an immutable snapshot — are O(1).
  /// Shared COW blocks are counted in full (an upper bound while snapshots
  /// are live).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept override;

  /// Per-store COW accounting ([0] = graph nodes, [1] = semantic state) for
  /// publish-side stats: blocks, cumulative mutations, inline block bytes.
  [[nodiscard]] std::array<CowStoreAccounting, 2> cow_accounting()
      const noexcept;
  /// Cumulative COW block clones across both stores — the total dirty-file
  /// copies all snapshot publications have cost so far.
  [[nodiscard]] std::uint64_t cow_clones() const noexcept {
    return graph_.cow_stats().clones + state_.stats().clones;
  }
  /// Stable identity of f's semantic-state block (tests; see
  /// CorrelationGraph::node_identity for the graph-side counterpart).
  [[nodiscard]] const void* semantic_state_identity(FileId f) const noexcept {
    return state_.block_identity(static_cast<std::size_t>(f.value()));
  }

  // ---- persistence (src/persist) ----------------------------------------

  /// Checkpoints the full model into directory `dir`.
  void save(const std::string& dir) override;
  /// Restores from `dir` (newest valid checkpoint + WAL tail replay). Only
  /// valid before any ingest; throws std::logic_error otherwise.
  void load(const std::string& dir) override;

  /// Requests observed so far — the WAL sequence domain.
  [[nodiscard]] std::uint64_t request_count() const noexcept {
    return requests_;
  }
  /// The trace dictionary this miner extracts from (may be null in tests).
  [[nodiscard]] const TraceDictionary* dictionary() const noexcept {
    return extractor_.dictionary();
  }
  [[nodiscard]] const CoMinerStats& miner_stats() const noexcept {
    return miner_.stats();
  }
  [[nodiscard]] const AccessWindow& access_window() const noexcept {
    return window_;
  }
  /// Logical size of the dense per-file semantic-state index (not the count
  /// of populated entries).
  [[nodiscard]] std::size_t state_size() const noexcept {
    return state_.size();
  }

  /// Enumerates populated per-file semantic state in FileId order:
  /// fn(FileId, const SemanticVector&, const Signature&).
  template <typename Fn>
  void for_each_file_state(Fn&& fn) const {
    for (std::size_t i = 0; i < state_.size(); ++i)
      if (const FileState* st = state_.find(i))
        fn(FileId(static_cast<std::uint32_t>(i)), st->vec, st->sig);
  }

  /// Restore seams — persist::deserialize_shard is the only intended caller;
  /// each call dirties the footprint memo. Byte-identical recovery depends
  /// on these reproducing internal state exactly (window order, successor
  /// order, Correlator-List order, dense-index logical sizes).
  void restore_counters(std::uint64_t requests, CoMinerStats stats);
  void restore_sizes(std::size_t state_size, std::size_t graph_nodes);
  void restore_file_state(FileId f, const SemanticVector& vec,
                          const Signature& sig);
  void restore_window_push(FileId f);
  void restore_graph_node(FileId f, std::uint64_t access_count,
                          std::span<const SuccessorEdge> succs,
                          std::span<const Correlator> correlators);

 private:
  /// Semantic state of one file as of its most recent access: the raw
  /// vector and its prebuilt signature under (attributes, path_mode). Block
  /// existence doubles as the has-state flag.
  struct FileState {
    SemanticVector vec;
    Signature sig;
  };
  using StateStore = CowBlockStore<FileState>;

  void observe_impl(const TraceRecord& rec);
  [[nodiscard]] const FileState* state_of(FileId f) const noexcept {
    return state_.find(static_cast<std::size_t>(f.value()));
  }

  static constexpr std::size_t kFootprintDirty = ~std::size_t{0};

  FarmerConfig cfg_;
  Extractor extractor_;
  CorrelationGraph graph_;
  CoMiner miner_;
  AccessWindow window_;

  /// Per-file semantic state, dense by FileId, in COW blocks.
  StateStore state_;
  std::uint64_t requests_ = 0;

  /// Extraction scratch for observe_impl: reused across records so the
  /// unchanged-context fast path allocates nothing. Transient — both copy
  /// constructors deliberately leave it default-constructed (it carries no
  /// model state and is rewritten before every use).
  SemanticVector scratch_vec_;

  /// Memoized footprint_bytes(); kFootprintDirty = recompute. Atomic so
  /// concurrent readers of one immutable snapshot may race to fill it (they
  /// all compute the same value); the live side is single-writer by the
  /// miner threading contract.
  mutable std::atomic<std::size_t> footprint_cache_{kFootprintDirty};
};

}  // namespace farmer
