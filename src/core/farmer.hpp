// The FARMER model: the four-stage pipeline of Section 3.1.
//
//   Stage 1  Extracting    — request -> semantic vector (Extractor)
//   Stage 2  Constructing  — sliding window -> weighted correlation graph
//   Stage 3  Mining & Evaluating — CoMiner computes R(x,y) per touched pair
//   Stage 4  Sorting       — Correlator Lists kept sorted by degree
//
// `observe()` runs all four stages for one request; the model is fully
// incremental ("iterative process that repeats itself for each incoming
// request"). Correlator Lists are the public product, consumed through the
// `CorrelationMiner` interface by the prefetcher (Section 4.1), the layout
// optimizer (Section 4.2) and policy propagation (Section 4.3).
#pragma once

#include <memory>
#include <vector>

#include "api/correlation_miner.hpp"
#include "core/cominer.hpp"
#include "core/config.hpp"
#include "core/extractor.hpp"
#include "graph/access_window.hpp"
#include "graph/correlation_graph.hpp"
#include "trace/record.hpp"

namespace farmer {

class Farmer : public CorrelationMiner {
 public:
  Farmer(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict);

  /// Deep copy: duplicates the graph, window and per-file semantic state and
  /// rebinds the internal CoMiner to the copy's own members. This is what
  /// makes a Farmer usable as an immutable *shard snapshot*: the sharded
  /// backend exports copies of its shards, the concurrent backend publishes
  /// them RCU-style, and every const query on the copy answers exactly as
  /// the source would have at copy time. The trace dictionary is shared
  /// (immutable by construction).
  Farmer(const Farmer& other);
  Farmer& operator=(const Farmer&) = delete;

  /// Ingests one file request (all four stages).
  void observe(const TraceRecord& rec) override;

  /// Sorted Correlator List of `f` (may be empty). Entries all satisfy
  /// degree >= max_strength at their last evaluation. Zero-copy fast path
  /// for concrete-`Farmer` callers; interface callers use snapshot().
  [[nodiscard]] const SmallVector<Correlator, 4>& correlator_list(
      FileId f) const noexcept {
    return graph_.correlators(f);
  }

  /// Borrowed view over the live list: the list only changes inside
  /// observe(), so the snapshot is stable for the whole query-then-act
  /// step of any consumer.
  [[nodiscard]] CorrelatorView snapshot(FileId f) const override {
    const auto& list = graph_.correlators(f);
    return CorrelatorView(std::span<const Correlator>(list.data(),
                                                      list.size()));
  }

  /// Correlation degree between two files under the current state
  /// (evaluation-only; does not modify any list).
  [[nodiscard]] double correlation_degree(FileId a, FileId b) const override;

  /// Raw semantic distance sim(a, b) under the current state (no frequency
  /// component); 0 when either file has no recorded context yet.
  [[nodiscard]] double semantic_similarity(FileId a, FileId b) const override;

  [[nodiscard]] std::uint64_t access_count(FileId f) const override {
    return graph_.access_count(f);
  }
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const override {
    return graph_.access_frequency(pred, succ);
  }

  [[nodiscard]] const CorrelationGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const FarmerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] MinerStats stats() const override {
    MinerStats s;
    s.requests = requests_;
    s.pairs_evaluated = miner_.stats().pairs_evaluated;
    s.pairs_accepted = miner_.stats().pairs_accepted;
    s.pairs_filtered = miner_.stats().pairs_filtered;
    s.shards = 1;
    return s;
  }

  [[nodiscard]] const char* name() const noexcept override { return "farmer"; }

  /// Total additional memory FARMER holds: graph + correlator lists +
  /// per-active-file semantic state (Table 4 accounting).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept override;

 private:
  void ensure_file_state(FileId f);

  FarmerConfig cfg_;
  Extractor extractor_;
  CorrelationGraph graph_;
  CoMiner miner_;
  AccessWindow window_;

  // Per-file semantic state, dense by FileId: the vector as of the most
  // recent access and its prebuilt signature under (attributes, path_mode).
  std::vector<SemanticVector> vectors_;
  std::vector<Signature> signatures_;
  std::vector<std::uint8_t> has_state_;
  std::uint64_t requests_ = 0;
};

}  // namespace farmer
