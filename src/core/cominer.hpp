// Stage 3 — Mining & Evaluating: the CoMiner algorithm (Section 3.2).
//
// CoMiner combines the two factors into the file correlation degree
//
//   R(x, y) = p * sim(x, y) + (1 - p) * F(x, y)        (Function 2)
//
// where sim is the VSM Semantic Distance between the files' signatures and
// F(x, y) = N_xy / N_x is the LDA-weighted access frequency maintained in
// the correlation graph. Pairs whose degree falls below `max_strength` are
// filtered out of the Correlator List (Section 3.2.4).
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "graph/correlation_graph.hpp"
#include "vsm/similarity.hpp"

namespace farmer {

/// Counters exposed for the efficiency analysis (Section 3.3).
struct CoMinerStats {
  std::uint64_t pairs_evaluated = 0;
  std::uint64_t pairs_accepted = 0;   ///< R >= max_strength
  std::uint64_t pairs_filtered = 0;   ///< R <  max_strength

  [[nodiscard]] double acceptance_rate() const noexcept {
    return pairs_evaluated
               ? static_cast<double>(pairs_accepted) /
                     static_cast<double>(pairs_evaluated)
               : 0.0;
  }
};

class CoMiner {
 public:
  CoMiner(const FarmerConfig& cfg, CorrelationGraph& graph)
      : cfg_(cfg), graph_(graph) {}

  /// Rebinding copy: same counters, *different* config/graph. Used by
  /// Farmer's copy constructor, which must point the copied miner at the
  /// copy's own members (a defaulted copy would silently keep mining the
  /// source Farmer's graph).
  CoMiner(const FarmerConfig& cfg, CorrelationGraph& graph, CoMinerStats stats)
      : cfg_(cfg), graph_(graph), stats_(stats) {}

  /// Evaluates R(pred, succ) from the given signatures and the graph's
  /// current frequency state, then updates pred's Correlator List: the pair
  /// is inserted/updated when valid, removed when it has fallen below the
  /// threshold. Returns the degree.
  double evaluate_pair(FileId pred, const Signature& pred_sig, FileId succ,
                       const Signature& succ_sig);

  /// Pure evaluation without list maintenance (analysis/tests).
  [[nodiscard]] double correlation_degree(FileId pred,
                                          const Signature& pred_sig,
                                          FileId succ,
                                          const Signature& succ_sig) const;

  [[nodiscard]] const CoMinerStats& stats() const noexcept { return stats_; }

  /// Recovery seam (src/persist): overwrites the counters with checkpointed
  /// values so a restored miner reports the same efficiency stats it would
  /// after replaying the full history.
  void set_stats(CoMinerStats stats) noexcept { stats_ = stats; }

 private:
  const FarmerConfig& cfg_;
  CorrelationGraph& graph_;
  CoMinerStats stats_;
};

}  // namespace farmer
