// Stage 1 — Extracting: turn a file request into a semantic vector.
//
// The extractor is "file-type specific" in the paper's HUSt integration; in
// this library the trace dictionary already interned every attribute, so
// extraction assembles tokens and resolves path components without touching
// strings.
#pragma once

#include "trace/record.hpp"
#include "vsm/semantic_vector.hpp"

namespace farmer {

class Extractor {
 public:
  explicit Extractor(std::shared_ptr<const TraceDictionary> dict)
      : dict_(std::move(dict)) {}

  /// Builds the semantic vector of the file addressed by `rec` as of this
  /// request. Cheap: copies interned tokens only.
  void extract(const TraceRecord& rec, SemanticVector& out) const {
    out.user = rec.user_token;
    out.process = rec.process_token;
    out.host = rec.host_token;
    out.dev = rec.dev_token;
    out.fid = rec.fid_token;
    out.path_components.clear();
    if (rec.path.valid() && dict_) {
      for (TokenId t : dict_->path_components(rec.path))
        out.path_components.push_back(t);
    }
  }

  [[nodiscard]] const TraceDictionary* dictionary() const noexcept {
    return dict_.get();
  }

 private:
  std::shared_ptr<const TraceDictionary> dict_;
};

}  // namespace farmer
