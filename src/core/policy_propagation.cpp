#include "core/policy_propagation.hpp"

#include <deque>

namespace farmer {

PropagationResult propagate_rule(const CorrelationMiner& model, FileId seed,
                                 const PropagationConfig& cfg) {
  PropagationResult result;
  std::unordered_map<FileId, std::uint8_t> seen;
  std::deque<std::pair<FileId, std::uint8_t>> queue;
  queue.emplace_back(seed, 0);
  seen.emplace(seed, 0);
  while (!queue.empty() && result.files.size() < cfg.max_files) {
    const auto [f, hops] = queue.front();
    queue.pop_front();
    result.files.push_back(f);
    result.hop.push_back(hops);
    if (hops >= cfg.max_hops) continue;
    for (const Correlator& c : model.snapshot(f)) {
      if (static_cast<double>(c.degree) < cfg.min_degree) continue;
      if (seen.count(c.file)) continue;
      seen.emplace(c.file, static_cast<std::uint8_t>(hops + 1));
      queue.emplace_back(c.file, static_cast<std::uint8_t>(hops + 1));
    }
  }
  return result;
}

std::vector<ReplicaGroup> build_replica_groups(
    const CorrelationMiner& model, std::size_t file_count,
    const ReplicaGroupingConfig& cfg) {
  // Union-find over the thresholded correlation edges with a size cap, then
  // collect multi-file components.
  std::vector<std::uint32_t> parent(file_count), size(file_count, 1);
  std::vector<float> weakest(file_count, 1.0f);
  for (std::uint32_t i = 0; i < file_count; ++i) parent[i] = i;
  auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (std::uint32_t f = 0; f < file_count; ++f) {
    for (const Correlator& c : model.snapshot(FileId(f))) {
      if (static_cast<double>(c.degree) < cfg.min_degree) continue;
      if (c.file.value() >= file_count) continue;
      std::uint32_t a = find(f), b = find(c.file.value());
      if (a == b) continue;
      if (size[a] + size[b] > cfg.max_group_files) continue;
      if (size[a] < size[b]) std::swap(a, b);
      parent[b] = a;
      size[a] += size[b];
      weakest[a] = std::min({weakest[a], weakest[b], c.degree});
    }
  }

  std::unordered_map<std::uint32_t, ReplicaGroup> by_rep;
  for (std::uint32_t f = 0; f < file_count; ++f) {
    const std::uint32_t rep = find(f);
    if (size[rep] < 2) continue;
    auto& g = by_rep[rep];
    g.members.push_back(FileId(f));
    g.min_internal_degree = static_cast<double>(weakest[rep]);
  }
  std::vector<ReplicaGroup> groups;
  groups.reserve(by_rep.size());
  for (auto& [rep, g] : by_rep) groups.push_back(std::move(g));
  return groups;
}

const PropagationResult& RuleRegistry::attach(FileId seed, AccessRule rule,
                                              const PropagationConfig& cfg) {
  entries_.push_back({std::move(rule), propagate_rule(model_, seed, cfg)});
  return entries_.back().coverage;
}

std::vector<AccessRule> RuleRegistry::rules_for(FileId f) const {
  std::vector<AccessRule> rules;
  for (const Entry& e : entries_)
    if (e.coverage.covers(f)) rules.push_back(e.rule);
  return rules;
}

}  // namespace farmer
