// Asynchronous ingest: the "concurrent" mining backend.
//
// A peta-scale metadata cluster cannot stop the request stream to mine it.
// `ConcurrentFarmer` decouples the two halves of that problem:
//
//   producers ──push──▶ per-slot MpscQueues ──drain thread──▶ ShardedFarmer
//                                                 │
//   readers ◀─── epoch-numbered owning snapshots ─┘
//
// * Ingest is lock-free for callers: `observe()`/`observe_batch()` route to
//   one of `ingest_queues` MPSC queues (slot = hash of the calling thread)
//   with a single atomic exchange, so N producer threads never contend on a
//   mutex and never wait for queries. Per-thread FIFO order is preserved;
//   cross-thread interleaving is whatever the drain observes — the standard
//   relaxed guarantee of a concurrent ingest path.
// * A dedicated drain thread pops whole batches, concatenates them and
//   applies them to an inner `ShardedFarmer` under the write side of a
//   shared_mutex, bumping the published epoch after every apply round.
// * Queries take the read side, materialize an *owning* CorrelatorView and
//   stamp it with the epoch it was cut from: readers never observe a list
//   mid-update (no torn degrees) and successive reads see monotonically
//   non-decreasing epochs.
//
// `flush()` is the barrier between the two worlds: it returns once every
// record accepted before the call has been applied, which is what makes the
// backend differentially testable — a single-threaded replay followed by
// flush() is byte-identical to the synchronous "sharded" backend, because
// each queue preserves FIFO order and shard state only depends on the
// per-shard record order.
//
// Memory is bounded by `max_pending`: producers soft-block (yield-spin) once
// that many records are queued but unapplied, so a stalled drain cannot
// balloon the process. A single batch larger than the bound is admitted
// once the drain has caught up (refusing it could never unblock), so the
// effective bound is max(max_pending, largest single batch).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <vector>

#include "api/correlation_miner.hpp"
#include "common/mpsc_queue.hpp"
#include "core/sharded_farmer.hpp"

namespace farmer {

/// A query result plus the epoch of the published state it was cut from.
struct EpochSnapshot {
  CorrelatorView view;
  std::uint64_t epoch = 0;
};

class ConcurrentFarmer final : public CorrelationMiner {
 public:
  /// Producers blocked beyond this many queued-but-unapplied records.
  static constexpr std::size_t kDefaultMaxPending = std::size_t{1} << 20;

  ConcurrentFarmer(FarmerConfig cfg,
                   std::shared_ptr<const TraceDictionary> dict,
                   std::size_t shards, std::size_t ingest_queues,
                   std::size_t max_pending = kDefaultMaxPending);
  ~ConcurrentFarmer() override;

  ConcurrentFarmer(const ConcurrentFarmer&) = delete;
  ConcurrentFarmer& operator=(const ConcurrentFarmer&) = delete;

  /// Lock-free enqueue of one record (one MPSC push); applied
  /// asynchronously. Pays a one-element batch + queue-node allocation per
  /// record — throughput-sensitive producers should use observe_batch();
  /// coalescing in a thread-local buffer here would break the flush()
  /// contract (records parked in another thread's buffer would be accepted
  /// yet invisible to the barrier).
  void observe(const TraceRecord& rec) override;

  /// Lock-free enqueue of a batch copy; the batch is applied as one unit so
  /// its internal order survives into the shards.
  void observe_batch(std::span<const TraceRecord> records) override;

  /// Blocks until everything accepted before the call has been applied.
  void flush() override;

  /// Owning snapshot of `f`'s merged Correlator List at the current epoch.
  [[nodiscard]] CorrelatorView snapshot(FileId f) const override;

  /// snapshot() plus the epoch stamp, for readers that track progression.
  [[nodiscard]] EpochSnapshot epoch_snapshot(FileId f) const;

  [[nodiscard]] double correlation_degree(FileId a, FileId b) const override;
  [[nodiscard]] double semantic_similarity(FileId a, FileId b) const override;
  [[nodiscard]] std::uint64_t access_count(FileId f) const override;
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const override;

  /// Inner sharded stats plus `epoch` and `pending`. `requests` counts
  /// *applied* records; enqueued-but-unapplied records are `pending`.
  [[nodiscard]] MinerStats stats() const override;
  [[nodiscard]] std::size_t footprint_bytes() const noexcept override;
  [[nodiscard]] const char* name() const noexcept override {
    return "concurrent";
  }

  /// Number of apply rounds published so far (monotone).
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t ingest_queue_count() const noexcept {
    return queues_.size();
  }

 private:
  using Batch = std::vector<TraceRecord>;

  [[nodiscard]] std::size_t slot_of_this_thread() const noexcept;
  void enqueue(Batch batch);
  void drain_loop();
  /// Pops every visible batch from every queue into one apply buffer,
  /// preserving per-queue order. Returns the number of records collected.
  std::size_t collect(Batch& into);
  void apply(const Batch& batch);

  std::unique_ptr<ShardedFarmer> inner_;
  std::vector<std::unique_ptr<MpscQueue<Batch>>> queues_;
  const std::size_t max_pending_;

  /// Records enqueued but not yet applied. Incremented before the queue push
  /// so `pending_ == 0` proves the drain has caught up with every accepted
  /// record (the MPSC visibility window cannot under-count).
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint64_t> enqueued_total_{0};
  std::atomic<std::uint64_t> applied_total_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_idle_{false};

  /// Write side: drain thread while applying. Read side: every query.
  mutable std::shared_mutex state_mu_;

  /// Wakes the drain thread (producers) and flush() waiters (drain thread).
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable drained_cv_;

  std::thread drain_thread_;
};

}  // namespace farmer
