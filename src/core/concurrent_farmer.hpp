// Asynchronous ingest: the "concurrent" mining backend.
//
// A peta-scale metadata cluster cannot stop the request stream to mine it.
// `ConcurrentFarmer` decouples the two halves of that problem:
//
//   producers ──push──▶ per-slot MpscQueues ──drain thread──▶ ShardedFarmer
//                                                 │ COW shard snapshot export
//   readers ◀── RCU shard-table (atomic shared_ptr swap) ◀── publish
//        │                                        (coalesced across rounds)
//        └── epoch-validated Correlator-List cache (hot queries)
//
// * Ingest is lock-free for callers: `observe()`/`observe_batch()` route to
//   one of `ingest_queues` MPSC queues (slot = hash of the calling thread)
//   with a single atomic exchange, so N producer threads never contend on a
//   mutex and never wait for queries. Per-thread FIFO order is preserved;
//   cross-thread interleaving is whatever the drain observes — the standard
//   relaxed guarantee of a concurrent ingest path.
// * The live ShardedFarmer is owned *exclusively* by the drain thread —
//   no query ever touches it. After applying batches the drain exports an
//   immutable *copy-on-write* snapshot of every shard touched since the
//   last publication (Farmer's CowShare constructor: per-file blocks are
//   structurally shared; only files the round dirtied were cloned, by the
//   live side, at write time) and publishes a new `ShardTable` — the
//   shared_ptr array of current shard snapshots plus per-shard publish
//   epochs — with one atomic shared_ptr swap. This is RCU: readers load
//   the table pointer (acquire), query immutable state, and drop their
//   reference; reclamation is shared_ptr reference counting. Readers never
//   take a lock and never retry; writers never wait for readers. Publish
//   cost is O(dirty files) + O(pages), not O(shard state).
// * Publication is *coalesced* under load: with
//   `publish_interval_records` > 1 the drain batches apply rounds and swaps
//   a new table only when that many records have been applied since the
//   last swap or the `publish_max_delay` staleness deadline expires —
//   including while idle, where the timed idle wait doubles as the
//   deadline poll, so applied state is never stale past the deadline.
//   Between publishes queries simply read the previous table. flush() is
//   unaffected: a waiting flush overrides the interval and forces the
//   publish as soon as the queues run dry, so it still returns only after
//   a publish covering every accepted record.
// * Queries merge the per-shard snapshot lists with the *same* static
//   helpers ShardedFarmer uses live (merged_correlators & friends), which
//   is what keeps flush()-then-query byte-identical to the "sharded"
//   backend. An optional epoch-validated cache (cache/correlator_cache.hpp)
//   memoizes hot merged lists; entries are invalidated lazily when a
//   contributing shard's epoch advances (`query_cache_capacity` knob,
//   0 = disabled).
//
// `flush()` is the barrier between the two worlds: it returns once every
// record accepted before the call has been applied *and published*, which
// is what makes the backend differentially testable — a single-threaded
// replay followed by flush() is byte-identical to the synchronous "sharded"
// backend, because each queue preserves FIFO order and shard state only
// depends on the per-shard record order (coalescing changes when tables
// appear, never what the final table contains).
//
// Memory is bounded by `max_pending`: producers soft-block (yield-spin) once
// that many records are queued but not yet applied, so a stalled drain
// cannot balloon the process. A single batch larger than the bound is
// admitted once the drain has caught up (refusing it could never unblock),
// so the effective bound is max(max_pending, largest single batch). The
// published snapshots structurally share all non-dirty per-file state with
// the drain's live mirror, so steady-state memory is roughly one live state
// plus the dirty deltas readers still hold (see footprint_bytes()).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "api/correlation_miner.hpp"
#include "cache/correlator_cache.hpp"
#include "common/atomic_shared_ptr.hpp"
#include "common/mpsc_queue.hpp"
#include "core/sharded_farmer.hpp"
#include "persist/persister.hpp"

namespace farmer {

/// A query result plus the epoch of the published state it was cut from.
struct EpochSnapshot {
  CorrelatorView view;
  std::uint64_t epoch = 0;
};

class ConcurrentFarmer final : public CorrelationMiner {
 public:
  /// Producers blocked beyond this many queued-but-unapplied records.
  static constexpr std::size_t kDefaultMaxPending = std::size_t{1} << 20;
  /// Staleness deadline for coalesced publishes when none is configured.
  static constexpr std::chrono::milliseconds kDefaultPublishMaxDelay{4};

  /// `persister`, when non-null, makes the backend durable: construction
  /// recovers the persist directory into the live miner before the epoch-0
  /// publish, every drained batch is WAL-appended (on the drain thread,
  /// before it is applied, so WAL order == apply order), and checkpoints
  /// are serialized off published COW snapshots on a background worker —
  /// ingest never stops for a checkpoint. Records still queued but not yet
  /// drained at a crash are lost; the durable prefix is always a prefix of
  /// the applied history.
  ///
  /// `apply_threads` sizes the inner ShardedFarmer's parallel apply: each
  /// batch the drain collects is partitioned into shard-disjoint slices and
  /// applied on that many lanes (0 = auto, 1 = serial). The drain thread is
  /// one of the lanes, so the single extra thread this backend used to pay
  /// per record stream becomes apply_threads-wide without changing what the
  /// published tables contain (shard slices preserve per-shard order).
  ConcurrentFarmer(FarmerConfig cfg,
                   std::shared_ptr<const TraceDictionary> dict,
                   std::size_t shards, std::size_t ingest_queues,
                   std::size_t max_pending = kDefaultMaxPending,
                   std::size_t query_cache_capacity = 0,
                   std::size_t publish_interval_records = 0,
                   std::size_t publish_max_delay_ms = 0,
                   std::unique_ptr<persist::Persister> persister = nullptr,
                   std::size_t apply_threads = 0);
  ~ConcurrentFarmer() override;

  ConcurrentFarmer(const ConcurrentFarmer&) = delete;
  ConcurrentFarmer& operator=(const ConcurrentFarmer&) = delete;

  /// Lock-free enqueue of one record (one MPSC push); applied
  /// asynchronously. Pays a one-element batch + queue-node allocation per
  /// record — throughput-sensitive producers should use observe_batch();
  /// coalescing in a thread-local buffer here would break the flush()
  /// contract (records parked in another thread's buffer would be accepted
  /// yet invisible to the barrier).
  void observe(const TraceRecord& rec) override;

  /// Lock-free enqueue of a batch copy; the batch is applied as one unit so
  /// its internal order survives into the shards.
  void observe_batch(std::span<const TraceRecord> records) override;

  /// Blocks until everything accepted before the call has been applied and
  /// published; afterwards every query answers from state that includes it.
  /// Coalescing never weakens this barrier: while a flush() waits, the
  /// drain publishes after every apply round and again the moment the
  /// queues run dry, interval or not.
  void flush() override;

  /// Owning snapshot of `f`'s merged Correlator List at the current epoch.
  /// Lock-free: loads the published shard table, consults the cache, merges
  /// on miss. The view stays valid and immutable for as long as the caller
  /// holds it, across any amount of further ingest.
  [[nodiscard]] CorrelatorView snapshot(FileId f) const override;

  /// snapshot() plus the epoch stamp, for readers that track progression.
  [[nodiscard]] EpochSnapshot epoch_snapshot(FileId f) const;

  [[nodiscard]] double correlation_degree(FileId a, FileId b) const override;
  [[nodiscard]] double semantic_similarity(FileId a, FileId b) const override;
  [[nodiscard]] std::uint64_t access_count(FileId f) const override;
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const override;

  /// Published sharded stats plus `epoch`, `pending`, per-shard
  /// `shard_epochs`, the cache hit/miss counters and the COW publish
  /// counters (`publishes`, `files_cloned`, `bytes_shared`). `requests`
  /// counts *published* records; enqueued-but-unpublished records are
  /// `pending`.
  [[nodiscard]] MinerStats stats() const override;
  [[nodiscard]] std::size_t footprint_bytes() const noexcept override;
  [[nodiscard]] const char* name() const noexcept override {
    return "concurrent";
  }

  /// Checkpoints the *published* state into `dir` (flush() first, so the
  /// checkpoint covers every record accepted before the call).
  void save(const std::string& dir) override;

  /// Loads a persist directory into a freshly constructed miner (throws
  /// std::logic_error after any ingest). Pauses the drain thread for the
  /// model surgery, republishes, and — when this backend has its own
  /// persister — re-bases the WAL on the loaded sequence and commits a
  /// covering checkpoint.
  void load(const std::string& dir) override;

  /// Number of publish rounds so far (monotone).
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return table_.load()->epoch;
  }
  [[nodiscard]] std::size_t ingest_queue_count() const noexcept {
    return queues_.size();
  }
  /// Correlator-List cache counters (all zero when the cache is disabled).
  [[nodiscard]] CorrelatorCacheStats cache_stats() const {
    return cache_.stats();
  }

 private:
  using Batch = std::vector<TraceRecord>;

  /// The RCU-published immutable view of mined state: one snapshot per
  /// shard plus that shard's publish count. A table is never mutated after
  /// the atomic swap; shard snapshots are shared between consecutive tables
  /// when the shard was not touched since the previous publish — and the
  /// snapshots themselves structurally share every untouched per-file block
  /// with the live shard (COW export).
  struct ShardTable {
    std::vector<std::shared_ptr<const Farmer>> shards;
    std::vector<std::uint64_t> shard_epochs;
    std::uint64_t epoch = 0;
    MinerStats stats;  ///< inner sharded counters as of this publish
  };

  [[nodiscard]] std::size_t slot_of_this_thread() const noexcept;
  void enqueue(Batch batch);
  void drain_loop();
  /// Pops every visible batch from every queue into one apply buffer,
  /// preserving per-queue order. Returns the number of records collected.
  std::size_t collect(Batch& into);
  void apply(const Batch& batch);
  /// True when the coalescing policy says the applied-but-unpublished
  /// backlog must be published now (interval reached or deadline expired).
  [[nodiscard]] bool publish_due() const;
  /// Publishes the backlog: exports COW snapshots of every shard touched
  /// since the last publish, swaps the table, releases flush() waiters.
  /// No-op when nothing is unpublished.
  void publish_pending();
  /// Drain-side checkpoint initiation: when the persister says one is due
  /// and the worker is idle, rotate the WAL (cheap, synchronous — at this
  /// point appended == applied == published) and hand the current table's
  /// snapshot shared_ptrs to the worker for serialization. Skipped while a
  /// previous checkpoint is still being written — the WAL simply grows
  /// until the worker catches up.
  void maybe_begin_checkpoint();
  /// Background worker: serializes handed-off snapshots and commits the
  /// checkpoint file; never touches live state.
  void checkpoint_loop();
  /// Replaces the published table with fresh COW exports of every shard
  /// (construction and load()); resets the COW accounting baselines.
  void republish_all_shards();

  /// Borrow the current table (one atomic shared_ptr load, acquire).
  [[nodiscard]] std::shared_ptr<const ShardTable> table() const {
    return table_.load();
  }
  /// Merged list through the cache (lookup, else merge + memoize).
  [[nodiscard]] std::vector<Correlator> cached_correlators(
      FileId f, const ShardTable& t) const;

  /// Retained for checkpoint writing and load(); set before inner_ so
  /// construction-time recovery can use them.
  const FarmerConfig cfg_;
  std::shared_ptr<const TraceDictionary> dict_;

  /// Live mining state; owned exclusively by the drain thread after
  /// construction. Queries only ever read published snapshots.
  std::unique_ptr<ShardedFarmer> inner_;
  const std::size_t correlator_capacity_;
  std::vector<std::unique_ptr<MpscQueue<Batch>>> queues_;
  const std::size_t max_pending_;
  const std::size_t publish_interval_;
  const std::chrono::steady_clock::duration publish_max_delay_;

  /// RCU head: swapped (release) by the drain at every publish,
  /// loaded (acquire) by every query.
  AtomicSharedPtr<const ShardTable> table_;

  mutable CorrelatorCache cache_;

  /// Records enqueued but not yet *published* (visible to queries); the
  /// stats() `pending` field. Shrinks only at the table swap so a reader
  /// can never observe "caught up" state that is not yet queryable.
  std::atomic<std::size_t> pending_{0};
  /// Records enqueued but not yet *applied* to the live miner — the queue
  /// memory the backpressure bound protects. Incremented before the queue
  /// push so `queued_ == 0` proves the drain has drained every accepted
  /// record out of the queues (the MPSC visibility window cannot
  /// under-count).
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::uint64_t> enqueued_total_{0};
  std::atomic<std::uint64_t> published_total_{0};
  /// Threads currently inside flush(): a nonzero count makes the drain
  /// publish after every apply round and on dry queues, interval or not —
  /// flush() is a strict barrier, coalescing only shapes steady state.
  std::atomic<std::uint32_t> flush_waiters_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_idle_{false};

  // Drain-thread-local publish state (touched only by the drain after
  // construction): the coalescing backlog and the COW accounting baseline.
  std::vector<std::uint8_t> touched_since_publish_;
  std::size_t unpublished_ = 0;
  std::chrono::steady_clock::time_point last_publish_;
  /// Per shard, per store ([0] graph nodes, [1] semantic state): cumulative
  /// COW mutations at this shard's previous publish — the delta is the
  /// blocks the round actually copied, everything else was shared.
  std::vector<std::array<std::uint64_t, 2>> publish_baseline_;
  std::uint64_t bytes_shared_total_ = 0;
  std::uint64_t publishes_total_ = 0;

  /// Wakes the drain thread (producers) and flush() waiters (drain thread).
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable drained_cv_;

  std::thread drain_thread_;

  /// Durability (null = persistence disabled). The drain thread appends to
  /// the WAL and initiates checkpoints; the worker thread serializes and
  /// commits them off immutable published snapshots.
  std::unique_ptr<persist::Persister> persister_;
  std::atomic<bool> ckpt_busy_{false};
  std::mutex ckpt_mu_;
  std::condition_variable ckpt_cv_;
  bool ckpt_stop_ = false;       // guarded by ckpt_mu_
  bool ckpt_job_ready_ = false;  // guarded by ckpt_mu_
  std::uint64_t ckpt_seq_ = 0;   // guarded by ckpt_mu_
  std::vector<std::shared_ptr<const Farmer>> ckpt_shards_;  // guarded
  std::thread ckpt_thread_;
};

}  // namespace farmer
