// Sharded concurrent mining.
//
// A peta-scale deployment runs many metadata servers, each mining the
// request streams of the clients it serves. `ShardedFarmer` models that:
// requests are partitioned by process id (stream affinity) across S
// independent Farmer shards that can ingest in parallel without sharing
// mutable state (Core Guidelines CP.3: minimize sharing). Queries merge the
// per-shard Correlator Lists by degree.
//
// Sharding by process also removes cross-process interleaving noise from
// each shard's window — the same effect the paper attributes to semantic
// filtering — so shard results are a strict-quality variant, not an
// approximation; the equivalence test pins down the exact relationship.
//
// The cross-shard merge rules live in the static `merged_*` helpers, which
// operate on any span of Farmer shards — this class's live shards or the
// immutable shard snapshots the concurrent backend publishes RCU-style
// (export_shard_snapshot). Every consumer of shard state runs the same
// arithmetic in the same order, which is what makes "concurrent after
// flush() is byte-identical to sharded" a structural property instead of a
// test-enforced coincidence.
#pragma once

#include <algorithm>
#include <array>
#include <memory>
#include <span>
#include <vector>

#include "api/correlation_miner.hpp"
#include "core/farmer.hpp"

namespace farmer {

class WorkerPool;

class ShardedFarmer final : public CorrelationMiner {
 public:
  /// `apply_threads` sizes the persistent worker pool behind
  /// observe_batch(): 0 = auto (hardware parallelism), 1 = serial apply, and
  /// anything higher caps at the shard count (a shard slice is the unit of
  /// parallelism). The pool only exists when the resolved count and the
  /// shard count both exceed one.
  ShardedFarmer(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict,
                std::size_t shards, std::size_t apply_threads = 0);
  ~ShardedFarmer() override;

  /// Routes one request to its shard (serial ingest path).
  void observe(const TraceRecord& rec) override;

  /// Ingests a batch: the span is partitioned into contiguous per-shard
  /// slices preserving each stream's order, then the slices are applied
  /// concurrently on the worker pool (serially without one). Shards share
  /// no mutable state and per-shard record order is exactly the serial
  /// routing order, so the result is byte-identical to per-record observe()
  /// at every apply-thread count.
  void observe_batch(std::span<const TraceRecord> records) override;

  /// Apply threads the batch path actually uses (1 = serial).
  [[nodiscard]] std::size_t apply_thread_count() const noexcept;

  /// Merged Correlator List across shards, sorted by degree, deduplicated
  /// (highest degree wins), capped at the configured capacity.
  [[nodiscard]] std::vector<Correlator> correlators(FileId f) const;

  /// Owning snapshot: the merge materializes a fresh list, so the view is
  /// immutable by construction.
  [[nodiscard]] CorrelatorView snapshot(FileId f) const override {
    return CorrelatorView(correlators(f));
  }

  /// Strongest per-shard evaluation — consistent with the merge rule
  /// (the strongest shard wins a duplicated pair).
  [[nodiscard]] double correlation_degree(FileId a, FileId b) const override;
  [[nodiscard]] double semantic_similarity(FileId a, FileId b) const override;

  /// Global N_f: accesses of `f` summed over shards.
  [[nodiscard]] std::uint64_t access_count(FileId f) const override;
  /// Global F(pred, succ) = sum_s N_AB,s / sum_s N_A,s.
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const override;

  [[nodiscard]] MinerStats stats() const override;
  [[nodiscard]] const char* name() const noexcept override {
    return "sharded";
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const Farmer& shard(std::size_t i) const {
    return *shards_.at(i);
  }
  /// Mutable shard access — the recovery path (src/persist) deserializes
  /// checkpoint blobs straight into the shards; nothing else should mutate
  /// a shard from outside.
  [[nodiscard]] Farmer& shard_mut(std::size_t i) { return *shards_.at(i); }

  /// Checkpoints every shard into directory `dir`.
  void save(const std::string& dir) override;
  /// Restores from `dir`; shard count must match the checkpoint's. Only
  /// valid before any ingest; throws std::logic_error otherwise.
  void load(const std::string& dir) override;
  [[nodiscard]] std::size_t footprint_bytes() const noexcept override;

  /// Shard a record routes to (mix64 of the process id). Exposed so the
  /// concurrent backend can tell which shards an apply round will touch and
  /// republish only those snapshots.
  [[nodiscard]] std::size_t shard_of(const TraceRecord& rec) const noexcept;

  /// Immutable copy-on-write snapshot of shard `i` for RCU publication:
  /// every const query on the returned Farmer answers exactly as the live
  /// shard would have at export time, and nothing can mutate it afterwards
  /// (it is frozen behind the const). The export structurally shares every
  /// per-file block with the live shard — O(pages) pointer copies — and the
  /// live shard clones exactly the blocks later ingest touches, so publish
  /// cost is proportional to the dirty set, not the shard size. Non-const
  /// because it advances the live shard's COW generation.
  [[nodiscard]] std::shared_ptr<const Farmer> export_shard_snapshot(
      std::size_t i) {
    return std::make_shared<const Farmer>(CowShare{}, *shards_.at(i));
  }

  /// Per-store COW accounting of shard `i` (see Farmer::cow_accounting).
  [[nodiscard]] std::array<CowStoreAccounting, 2> shard_cow_accounting(
      std::size_t i) const {
    return shards_.at(i)->cow_accounting();
  }
  /// Cumulative COW block clones across every shard.
  [[nodiscard]] std::uint64_t cow_clones() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->cow_clones();
    return total;
  }

  // Cross-shard merge rules over any shard set — templated on the range so
  // the live shards (vector<unique_ptr<Farmer>>) and the concurrent
  // backend's published snapshots (vector<shared_ptr<const Farmer>>) both
  // query without materializing a pointer array per call (the query paths
  // are allocation-free apart from the returned list). `*element` must
  // dereference to `const Farmer&`.

  /// The merge-rule kernel over an already-concatenated list (per-shard
  /// lists appended in shard order): sort by descending degree (file id
  /// breaks ties), deduplicate keeping the strongest shard's entry, cap at
  /// `capacity`. Split out from merged_correlators so consumers that fetch
  /// shard lists remotely (the "cluster" client, net/cluster_miner.*) run
  /// the exact same arithmetic on the exact same input order — which is
  /// what keeps cluster queries byte-identical to sharded ones.
  [[nodiscard]] static std::vector<Correlator> merge_concatenated(
      std::vector<Correlator> merged, std::size_t capacity) {
    std::sort(merged.begin(), merged.end(),
              [](const Correlator& a, const Correlator& b) {
                if (a.degree != b.degree) return a.degree > b.degree;
                return a.file < b.file;
              });
    // Deduplicate successors: the strongest shard wins.
    std::vector<Correlator> out;
    for (const Correlator& c : merged) {
      const bool seen = std::any_of(
          out.begin(), out.end(),
          [&](const Correlator& o) { return o.file == c.file; });
      if (!seen) out.push_back(c);
      if (out.size() >= capacity) break;
    }
    return out;
  }

  /// Merged Correlator List: concatenate per-shard lists in shard order,
  /// then apply merge_concatenated.
  template <typename ShardRange>
  [[nodiscard]] static std::vector<Correlator> merged_correlators(
      const ShardRange& shards, FileId f, std::size_t capacity) {
    std::vector<Correlator> merged;
    for (const auto& shard : shards)
      for (const Correlator& c : shard->correlator_list(f))
        merged.push_back(c);
    return merge_concatenated(std::move(merged), capacity);
  }

  /// Strongest per-shard R(a, b) — consistent with the merge rule.
  template <typename ShardRange>
  [[nodiscard]] static double merged_correlation_degree(
      const ShardRange& shards, FileId a, FileId b) {
    double best = 0.0;
    for (const auto& shard : shards)
      best = std::max(best, shard->correlation_degree(a, b));
    return best;
  }

  template <typename ShardRange>
  [[nodiscard]] static double merged_semantic_similarity(
      const ShardRange& shards, FileId a, FileId b) {
    double best = 0.0;
    for (const auto& shard : shards)
      best = std::max(best, shard->semantic_similarity(a, b));
    return best;
  }

  /// Global N_f: accesses summed over shards.
  template <typename ShardRange>
  [[nodiscard]] static std::uint64_t merged_access_count(
      const ShardRange& shards, FileId f) {
    std::uint64_t total = 0;
    for (const auto& shard : shards) total += shard->access_count(f);
    return total;
  }

  /// Global F(pred, succ) = sum_s N_AB,s / sum_s N_A,s.
  template <typename ShardRange>
  [[nodiscard]] static double merged_access_frequency(
      const ShardRange& shards, FileId pred, FileId succ) {
    double nab = 0.0;
    std::uint64_t na = 0;
    for (const auto& shard : shards) {
      nab += shard->graph().edge_weight(pred, succ);
      na += shard->graph().access_count(pred);
    }
    return na == 0 ? 0.0 : nab / static_cast<double>(na);
  }

  /// Sums the four mining counters over shards; shards/epoch/pending are
  /// left at their zero defaults for the caller to fill in.
  template <typename ShardRange>
  [[nodiscard]] static MinerStats merged_stats(const ShardRange& shards) {
    MinerStats total;
    for (const auto& shard : shards) {
      const MinerStats s = shard->stats();
      total.requests += s.requests;
      total.pairs_evaluated += s.pairs_evaluated;
      total.pairs_accepted += s.pairs_accepted;
      total.pairs_filtered += s.pairs_filtered;
    }
    return total;
  }

 private:
  FarmerConfig cfg_;
  std::vector<std::unique_ptr<Farmer>> shards_;
  /// Persistent apply workers (null = serial apply). Out-of-line dtor keeps
  /// WorkerPool an incomplete type here.
  std::unique_ptr<WorkerPool> pool_;
  /// Reusable per-shard slice buffers for observe_batch — capacity survives
  /// across batches so steady-state partitioning allocates nothing.
  std::vector<std::vector<TraceRecord>> slices_;
  /// Batch-apply counters surfaced through stats() (MinerStats contract:
  /// apply_batches / apply_parallel_records).
  std::uint64_t apply_batches_ = 0;
  std::uint64_t apply_parallel_records_ = 0;
};

}  // namespace farmer
