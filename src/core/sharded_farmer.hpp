// Sharded concurrent mining.
//
// A peta-scale deployment runs many metadata servers, each mining the
// request streams of the clients it serves. `ShardedFarmer` models that:
// requests are partitioned by process id (stream affinity) across S
// independent Farmer shards that can ingest in parallel without sharing
// mutable state (Core Guidelines CP.3: minimize sharing). Queries merge the
// per-shard Correlator Lists by degree.
//
// Sharding by process also removes cross-process interleaving noise from
// each shard's window — the same effect the paper attributes to semantic
// filtering — so shard results are a strict-quality variant, not an
// approximation; the equivalence test pins down the exact relationship.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "api/correlation_miner.hpp"
#include "core/farmer.hpp"

namespace farmer {

class ShardedFarmer final : public CorrelationMiner {
 public:
  ShardedFarmer(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict,
                std::size_t shards);

  /// Routes one request to its shard (serial ingest path).
  void observe(const TraceRecord& rec) override;

  /// Ingests a batch: requests are partitioned per shard preserving each
  /// stream's order, then shards run in parallel.
  void observe_batch(std::span<const TraceRecord> records) override;

  /// Merged Correlator List across shards, sorted by degree, deduplicated
  /// (highest degree wins), capped at the configured capacity.
  [[nodiscard]] std::vector<Correlator> correlators(FileId f) const;

  /// Owning snapshot: the merge materializes a fresh list, so the view is
  /// immutable by construction.
  [[nodiscard]] CorrelatorView snapshot(FileId f) const override {
    return CorrelatorView(correlators(f));
  }

  /// Strongest per-shard evaluation — consistent with the merge rule
  /// (the strongest shard wins a duplicated pair).
  [[nodiscard]] double correlation_degree(FileId a, FileId b) const override;
  [[nodiscard]] double semantic_similarity(FileId a, FileId b) const override;

  /// Global N_f: accesses of `f` summed over shards.
  [[nodiscard]] std::uint64_t access_count(FileId f) const override;
  /// Global F(pred, succ) = sum_s N_AB,s / sum_s N_A,s.
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const override;

  [[nodiscard]] MinerStats stats() const override;
  [[nodiscard]] const char* name() const noexcept override {
    return "sharded";
  }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const Farmer& shard(std::size_t i) const {
    return *shards_.at(i);
  }
  [[nodiscard]] std::size_t footprint_bytes() const noexcept override;

 private:
  [[nodiscard]] std::size_t shard_of(const TraceRecord& rec) const noexcept;

  FarmerConfig cfg_;
  std::vector<std::unique_ptr<Farmer>> shards_;
};

}  // namespace farmer
