// Sharded concurrent mining.
//
// A peta-scale deployment runs many metadata servers, each mining the
// request streams of the clients it serves. `ShardedFarmer` models that:
// requests are partitioned by process id (stream affinity) across S
// independent Farmer shards that can ingest in parallel without sharing
// mutable state (Core Guidelines CP.3: minimize sharing). Queries merge the
// per-shard Correlator Lists by degree.
//
// Sharding by process also removes cross-process interleaving noise from
// each shard's window — the same effect the paper attributes to semantic
// filtering — so shard results are a strict-quality variant, not an
// approximation; the equivalence test pins down the exact relationship.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/farmer.hpp"

namespace farmer {

class ShardedFarmer {
 public:
  ShardedFarmer(FarmerConfig cfg, std::shared_ptr<const TraceDictionary> dict,
                std::size_t shards);

  /// Routes one request to its shard (serial ingest path).
  void observe(const TraceRecord& rec);

  /// Ingests a batch: requests are partitioned per shard preserving each
  /// stream's order, then shards run in parallel.
  void observe_batch(std::span<const TraceRecord> records);

  /// Merged Correlator List across shards, sorted by degree, deduplicated
  /// (highest degree wins), capped at the configured capacity.
  [[nodiscard]] std::vector<Correlator> correlators(FileId f) const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const Farmer& shard(std::size_t i) const {
    return *shards_.at(i);
  }
  [[nodiscard]] std::size_t footprint_bytes() const noexcept;

 private:
  [[nodiscard]] std::size_t shard_of(const TraceRecord& rec) const noexcept;

  FarmerConfig cfg_;
  std::vector<std::unique_ptr<Farmer>> shards_;
};

}  // namespace farmer
