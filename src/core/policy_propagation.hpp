// FARMER-enabled security and reliability (paper Section 4.3).
//
// Two consumers of the mined correlations beyond prefetching:
//
//  * **Rule propagation** — "once a user configures rule-based accesses for
//    a file or directory, this rule may be applied to other files that have
//    strong file correlations with this file automatically." Rules spread
//    transitively along Correlator List edges whose degree meets a
//    propagation threshold, up to a bounded hop count.
//
//  * **Replica grouping** — "file replication ... can take advantage of
//    file correlations by grouping files with strong inter-file
//    correlations in the same logical replica group. Each backup and
//    recovery task on a replica group can be an atomic operation." Groups
//    are connected components of the thresholded correlation graph with a
//    size cap, so one group = one atomic backup unit.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/correlation_miner.hpp"

namespace farmer {

/// A named access rule (the content is opaque to the propagation engine).
struct AccessRule {
  std::string name;
  bool deny = false;  ///< e.g., secured-delete / denial of malicious access
};

struct PropagationConfig {
  double min_degree = 0.6;   ///< correlation strength required to propagate
  std::size_t max_hops = 2;  ///< bounded transitive spread
  std::size_t max_files = 64;  ///< safety cap per rule
};

/// Result of propagating one rule from a seed file.
struct PropagationResult {
  std::vector<FileId> files;  ///< seed first, then BFS order
  std::vector<std::uint8_t> hop;  ///< distance from the seed, per file

  [[nodiscard]] bool covers(FileId f) const noexcept {
    for (const FileId g : files)
      if (g == f) return true;
    return false;
  }
};

/// Spreads a rule from `seed` along strong correlations (BFS over the
/// Correlator Lists). The seed is always included.
[[nodiscard]] PropagationResult propagate_rule(const CorrelationMiner& model,
                                               FileId seed,
                                               const PropagationConfig& cfg);

/// A replica group: files backed up / recovered atomically together.
struct ReplicaGroup {
  std::vector<FileId> members;
  double min_internal_degree = 0.0;  ///< weakest edge that formed the group
};

struct ReplicaGroupingConfig {
  double min_degree = 0.6;
  std::size_t max_group_files = 8;  ///< atomic-operation size bound
};

/// Partitions all files with correlations into replica groups (connected
/// components of the thresholded graph, capped). Singleton files are not
/// reported — they replicate independently.
[[nodiscard]] std::vector<ReplicaGroup> build_replica_groups(
    const CorrelationMiner& model, std::size_t file_count,
    const ReplicaGroupingConfig& cfg);

/// Registry binding rules to files with FARMER-backed propagation; models
/// the paper's "intelligent secure storage" rule store.
class RuleRegistry {
 public:
  explicit RuleRegistry(const CorrelationMiner& model) : model_(model) {}

  /// Attaches `rule` to `seed` and propagates it. Returns files covered.
  const PropagationResult& attach(FileId seed, AccessRule rule,
                                  const PropagationConfig& cfg);

  /// All rules effective for `f` (direct or propagated).
  [[nodiscard]] std::vector<AccessRule> rules_for(FileId f) const;

  [[nodiscard]] std::size_t rule_count() const noexcept {
    return entries_.size();
  }

 private:
  struct Entry {
    AccessRule rule;
    PropagationResult coverage;
  };
  const CorrelationMiner& model_;
  std::vector<Entry> entries_;
};

}  // namespace farmer
