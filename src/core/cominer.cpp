#include "core/cominer.hpp"

namespace farmer {

double CoMiner::correlation_degree(FileId pred, const Signature& pred_sig,
                                   FileId succ,
                                   const Signature& succ_sig) const {
  const double sim = similarity(pred_sig, succ_sig);
  const double freq = graph_.access_frequency(pred, succ);
  return cfg_.p * sim + (1.0 - cfg_.p) * freq;
}

double CoMiner::evaluate_pair(FileId pred, const Signature& pred_sig,
                              FileId succ, const Signature& succ_sig) {
  const double degree = correlation_degree(pred, pred_sig, succ, succ_sig);
  ++stats_.pairs_evaluated;
  if (degree >= cfg_.max_strength) {
    ++stats_.pairs_accepted;
    graph_.upsert_correlator(pred,
                             {succ, static_cast<float>(degree)});
  } else {
    ++stats_.pairs_filtered;
    // Correlations decay: a pair once valid can fall below the threshold as
    // N_pred grows; keep the list honest.
    graph_.remove_correlator(pred, succ);
  }
  return degree;
}

}  // namespace farmer
