#include "core/concurrent_farmer.hpp"

#include <algorithm>
#include <functional>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>

#include "persist/checkpoint.hpp"

namespace farmer {

ConcurrentFarmer::ConcurrentFarmer(FarmerConfig cfg,
                                   std::shared_ptr<const TraceDictionary> dict,
                                   std::size_t shards,
                                   std::size_t ingest_queues,
                                   std::size_t max_pending,
                                   std::size_t query_cache_capacity,
                                   std::size_t publish_interval_records,
                                   std::size_t publish_max_delay_ms,
                                   std::unique_ptr<persist::Persister> persister,
                                   std::size_t apply_threads)
    : cfg_(cfg),
      dict_(std::move(dict)),
      inner_(std::make_unique<ShardedFarmer>(cfg_, dict_, shards,
                                             apply_threads)),
      correlator_capacity_(cfg_.correlator_capacity),
      max_pending_(max_pending == 0 ? kDefaultMaxPending : max_pending),
      publish_interval_(publish_interval_records),
      publish_max_delay_(publish_max_delay_ms == 0
                             ? std::chrono::steady_clock::duration(
                                   kDefaultPublishMaxDelay)
                             : std::chrono::milliseconds(
                                   publish_max_delay_ms)),
      cache_(query_cache_capacity),
      persister_(std::move(persister)) {
  const std::size_t slots = ingest_queues == 0 ? 1 : ingest_queues;
  queues_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i)
    queues_.push_back(std::make_unique<MpscQueue<Batch>>());

  touched_since_publish_.assign(inner_->shard_count(), 0);
  publish_baseline_.assign(inner_->shard_count(), {0, 0});
  last_publish_ = std::chrono::steady_clock::now();

  if (persister_) {
    // Recover the persist directory into the live miner before the epoch-0
    // publish, so the recovered model is queryable from the first table a
    // reader can load.
    persist::Recovery rec = persister_->open(cfg_, dict_);
    if (!rec.shard_blobs.empty()) {
      if (rec.shard_blobs.size() != inner_->shard_count())
        throw std::runtime_error(
            "ConcurrentFarmer: checkpoint shard count mismatch (got " +
            std::to_string(rec.shard_blobs.size()) + ", want " +
            std::to_string(inner_->shard_count()) + ")");
      for (std::size_t s = 0; s < inner_->shard_count(); ++s)
        persist::deserialize_shard(rec.shard_blobs[s], inner_->shard_mut(s));
    }
    if (!rec.tail.empty()) inner_->observe_batch(rec.tail);
    ckpt_thread_ = std::thread([this] { checkpoint_loop(); });
  }

  // Publish the epoch-0 table (snapshots of the empty or recovered shards)
  // before the drain starts, so a query can never observe a null table.
  republish_all_shards();

  drain_thread_ = std::thread([this] { drain_loop(); });
}

ConcurrentFarmer::~ConcurrentFarmer() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_all();
  }
  if (drain_thread_.joinable()) drain_thread_.join();
  // The drain's final publish may have handed the worker one last job; the
  // worker finishes any pending job before honoring the stop flag, and the
  // Persister destructor then syncs whatever the WAL still buffers.
  if (ckpt_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(ckpt_mu_);
      ckpt_stop_ = true;
    }
    ckpt_cv_.notify_one();
    ckpt_thread_.join();
  }
}

void ConcurrentFarmer::republish_all_shards() {
  const std::shared_ptr<const ShardTable> cur = table_.load();
  auto next = std::make_shared<ShardTable>();
  next->shards.reserve(inner_->shard_count());
  std::uint64_t files_cloned = 0;
  for (std::size_t s = 0; s < inner_->shard_count(); ++s) {
    next->shards.push_back(inner_->export_shard_snapshot(s));
    files_cloned += inner_->shard(s).cow_clones();
    const auto acct = inner_->shard_cow_accounting(s);
    publish_baseline_[s] = {acct[0].mutations, acct[1].mutations};
  }
  if (cur) {
    next->shard_epochs = cur->shard_epochs;
    for (std::uint64_t& e : next->shard_epochs) ++e;
    next->epoch = cur->epoch + 1;
  } else {
    next->shard_epochs.assign(inner_->shard_count(), 0);
  }
  next->stats = inner_->stats();
  next->stats.publishes = publishes_total_;
  next->stats.files_cloned = files_cloned;
  next->stats.bytes_shared = bytes_shared_total_;
  std::fill(touched_since_publish_.begin(), touched_since_publish_.end(),
            std::uint8_t{0});
  table_.store(std::move(next));
  last_publish_ = std::chrono::steady_clock::now();
}

std::size_t ConcurrentFarmer::slot_of_this_thread() const noexcept {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
         queues_.size();
}

void ConcurrentFarmer::enqueue(Batch batch) {
  const std::size_t n = batch.size();
  if (n == 0) return;
  // Soft backpressure: a stalled drain must not let queued records balloon.
  // Yield-spin rather than lock so the fast path stays lock-free. A batch
  // larger than max_pending_ is admitted once the drain has fully caught up
  // (queued_ == 0) — blocking it outright could never unblock — so the
  // bound is max(max_pending_, largest single batch). The bound covers
  // queue memory only: records the drain already applied but has not yet
  // published (coalescing backlog) live inside the miner, not the queues.
  while (true) {
    const std::size_t queued = queued_.load(std::memory_order_acquire);
    if (queued == 0 || queued + n <= max_pending_ ||
        stop_.load(std::memory_order_acquire))
      break;
    std::this_thread::yield();
  }
  // Both counters grow before the push: queued_ == 0 therefore proves every
  // accepted record has been applied, even inside the MPSC visibility
  // window, and pending_ == 0 proves it has also been published.
  pending_.fetch_add(n, std::memory_order_release);
  queued_.fetch_add(n, std::memory_order_release);
  enqueued_total_.fetch_add(n, std::memory_order_release);
  queues_[slot_of_this_thread()]->push(std::move(batch));
  if (drain_idle_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_one();
  }
}

void ConcurrentFarmer::observe(const TraceRecord& rec) {
  enqueue(Batch{rec});
}

void ConcurrentFarmer::observe_batch(std::span<const TraceRecord> records) {
  enqueue(Batch(records.begin(), records.end()));
}

void ConcurrentFarmer::flush() {
  const std::uint64_t target = enqueued_total_.load(std::memory_order_acquire);
  // Announce the waiter first: a drain holding a coalesced backlog must
  // publish for us even when the record interval has not been reached.
  flush_waiters_.fetch_add(1, std::memory_order_release);
  {
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.notify_one();
    // published_total_ is bumped only *after* the table swap, so reaching
    // the target proves the published table reflects every accepted record.
    drained_cv_.wait(lk, [&] {
      return published_total_.load(std::memory_order_acquire) >= target;
    });
  }
  flush_waiters_.fetch_sub(1, std::memory_order_release);
}

std::size_t ConcurrentFarmer::collect(Batch& into) {
  std::size_t total = 0;
  Batch batch;
  for (auto& q : queues_) {
    while (q->pop(batch)) {
      total += batch.size();
      into.insert(into.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
    }
  }
  return total;
}

bool ConcurrentFarmer::publish_due() const {
  if (publish_interval_ <= 1 || unpublished_ >= publish_interval_)
    return true;
  return std::chrono::steady_clock::now() - last_publish_ >=
         publish_max_delay_;
}

void ConcurrentFarmer::publish_pending() {
  if (unpublished_ == 0) return;

  const std::shared_ptr<const ShardTable> cur = table_.load();
  auto next = std::make_shared<ShardTable>();
  next->shards = cur->shards;
  next->shard_epochs = cur->shard_epochs;
  std::uint64_t files_cloned = 0;
  for (std::size_t s = 0; s < touched_since_publish_.size(); ++s) {
    // files_cloned is cumulative over every shard whether or not it is
    // republished this round (clones happen at write time, publishes only
    // harvest the count).
    files_cloned += inner_->shard(s).cow_clones();
    if (!touched_since_publish_[s]) continue;
    // COW export: O(pages) pointer copies; the blocks this window dirtied
    // were already cloned by the live side at write time. Everything the
    // mutation deltas did NOT touch is structurally shared — account it.
    const auto acct = inner_->shard_cow_accounting(s);
    for (std::size_t st = 0; st < acct.size(); ++st) {
      const std::uint64_t mutated =
          acct[st].mutations - publish_baseline_[s][st];
      const std::uint64_t shared_blocks =
          acct[st].blocks > mutated ? acct[st].blocks - mutated : 0;
      bytes_shared_total_ +=
          shared_blocks * static_cast<std::uint64_t>(acct[st].block_bytes);
      publish_baseline_[s][st] = acct[st].mutations;
    }
    next->shards[s] = inner_->export_shard_snapshot(s);
    ++next->shard_epochs[s];
    touched_since_publish_[s] = 0;
  }
  next->epoch = cur->epoch + 1;
  next->stats = inner_->stats();  // includes shards = shard_count()
  next->stats.publishes = ++publishes_total_;
  next->stats.files_cloned = files_cloned;
  next->stats.bytes_shared = bytes_shared_total_;
  table_.store(std::move(next));
  last_publish_ = std::chrono::steady_clock::now();

  // Counter order matters: published_total_ (the flush() predicate) and
  // pending_ shrink only after the swap, so neither flush() nor stats()
  // can observe "published" records that are not yet queryable.
  pending_.fetch_sub(unpublished_, std::memory_order_release);
  published_total_.fetch_add(unpublished_, std::memory_order_release);
  unpublished_ = 0;
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    drained_cv_.notify_all();
  }
  // Right after a publish is the one point where appended == applied ==
  // published, which is exactly the cut a checkpoint must capture.
  maybe_begin_checkpoint();
}

void ConcurrentFarmer::maybe_begin_checkpoint() {
  if (!persister_ || !persister_->checkpoint_due()) return;
  // One checkpoint in flight at a time: while the worker is still writing,
  // the WAL simply keeps growing and the next publish retries.
  if (ckpt_busy_.load(std::memory_order_acquire)) return;
  const std::uint64_t seq = persister_->begin_checkpoint();
  const std::shared_ptr<const ShardTable> t = table_.load();
  {
    std::lock_guard<std::mutex> lk(ckpt_mu_);
    ckpt_seq_ = seq;
    ckpt_shards_ = t->shards;
    ckpt_job_ready_ = true;
    ckpt_busy_.store(true, std::memory_order_release);
  }
  ckpt_cv_.notify_one();
}

void ConcurrentFarmer::checkpoint_loop() {
  for (;;) {
    std::uint64_t seq = 0;
    std::vector<std::shared_ptr<const Farmer>> shards;
    {
      std::unique_lock<std::mutex> lk(ckpt_mu_);
      ckpt_cv_.wait(lk, [&] { return ckpt_job_ready_ || ckpt_stop_; });
      if (!ckpt_job_ready_) break;  // stop requested with no pending job
      seq = ckpt_seq_;
      shards = std::move(ckpt_shards_);
      ckpt_job_ready_ = false;
    }
    // Serialization reads only the immutable published snapshots the job
    // captured — the heavy part of a checkpoint never stalls the drain, the
    // producers or the queries.
    std::vector<std::string> blobs;
    blobs.reserve(shards.size());
    for (const std::shared_ptr<const Farmer>& s : shards)
      blobs.push_back(persist::serialize_shard(*s));
    persister_->commit_checkpoint(seq, blobs);
    ckpt_busy_.store(false, std::memory_order_release);
  }
}

void ConcurrentFarmer::apply(const Batch& batch) {
  // WAL before apply, on the drain thread: WAL order is exactly apply order,
  // so the durable prefix is always a prefix of the applied history.
  // Records still queued (accepted but not yet drained) at a crash were
  // never appended — the documented loss window of this backend.
  if (persister_) persister_->append(std::span<const TraceRecord>(batch));
  // The drain owns inner_ exclusively: no lock is needed to mutate it, and
  // readers only ever see the immutable table published by
  // publish_pending(). observe_batch is the shard-disjoint parallel apply:
  // with apply_threads > 1 the drain thread becomes one lane of the inner
  // miner's worker pool and the batch is applied shard-concurrently —
  // byte-identical to the old serial replay because per-shard record order
  // is preserved and shards share no mutable state.
  inner_->observe_batch(batch);
  for (const TraceRecord& r : batch)
    touched_since_publish_[inner_->shard_of(r)] = 1;
  unpublished_ += batch.size();
  // Queue memory is released as soon as the records are applied; visibility
  // (pending_) waits for the publish.
  queued_.fetch_sub(batch.size(), std::memory_order_release);
  // A waiting flush() overrides the coalescing interval here too — under
  // sustained ingest the queues may never run dry, and the barrier must
  // not stall until the staleness deadline when its records are already
  // applied.
  if (publish_due() || flush_waiters_.load(std::memory_order_acquire) > 0)
    publish_pending();
}

void ConcurrentFarmer::drain_loop() {
  using namespace std::chrono_literals;
  Batch buf;
  for (;;) {
    buf.clear();
    if (collect(buf) > 0) {
      apply(buf);
      continue;
    }
    // Queues are dry. A coalesced backlog is held back until the record
    // interval fills, but never past the staleness deadline — and a
    // waiting flush() overrides the interval entirely, so the barrier
    // completes as soon as the queues empty.
    if (unpublished_ > 0 &&
        (publish_due() ||
         flush_waiters_.load(std::memory_order_acquire) > 0))
      publish_pending();
    if (stop_.load(std::memory_order_acquire)) break;
    if (queued_.load(std::memory_order_acquire) > 0) {
      // A push is mid-flight in the MPSC visibility window; retry shortly.
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    drain_idle_.store(true, std::memory_order_release);
    // Timed wait: the idle-flag handshake has a benign race (a producer can
    // read drain_idle_ == false just before we set it); the predicate plus
    // the timeout make a lost notify cost at most one period, never a hang
    // — and the period doubles as the backlog's deadline-poll granularity.
    wake_cv_.wait_for(lk, 1ms, [&] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0 ||
             (unpublished_ > 0 &&
              flush_waiters_.load(std::memory_order_acquire) > 0);
    });
    drain_idle_.store(false, std::memory_order_release);
  }
  // Apply whatever is still queued so destruction never drops records.
  for (;;) {
    buf.clear();
    if (collect(buf) == 0) break;
    apply(buf);
  }
  publish_pending();
}

std::vector<Correlator> ConcurrentFarmer::cached_correlators(
    FileId f, const ShardTable& t) const {
  if (!cache_.enabled())
    return ShardedFarmer::merged_correlators(t.shards, f,
                                             correlator_capacity_);
  // A shard with no recorded access of f cannot hold (and can never have
  // held) a Correlator List for it, so "still absent" certifies the shard
  // is still a non-contributor. The probe reads the published snapshot's
  // COW node index — O(1) regardless of sharing.
  const auto still_absent = [&](std::size_t s) {
    return t.shards[s]->access_count(f) == 0;
  };
  if (auto hit = cache_.lookup(f, t.shard_epochs, still_absent))
    return std::move(*hit);
  std::vector<Correlator> merged = ShardedFarmer::merged_correlators(
      t.shards, f, correlator_capacity_);
  std::vector<std::uint8_t> contained(t.shards.size(), 0);
  for (std::size_t s = 0; s < t.shards.size(); ++s)
    contained[s] = t.shards[s]->access_count(f) > 0 ? 1 : 0;
  cache_.insert(f, t.shard_epochs, std::move(contained), merged);
  return merged;
}

CorrelatorView ConcurrentFarmer::snapshot(FileId f) const {
  const auto t = table();
  return CorrelatorView(cached_correlators(f, *t));
}

EpochSnapshot ConcurrentFarmer::epoch_snapshot(FileId f) const {
  // One table load serves both members, so the stamp always matches the
  // state the view was cut from.
  const auto t = table();
  EpochSnapshot snap;
  snap.view = CorrelatorView(cached_correlators(f, *t));
  snap.epoch = t->epoch;
  return snap;
}

double ConcurrentFarmer::correlation_degree(FileId a, FileId b) const {
  const auto t = table();
  return ShardedFarmer::merged_correlation_degree(t->shards, a, b);
}

double ConcurrentFarmer::semantic_similarity(FileId a, FileId b) const {
  const auto t = table();
  return ShardedFarmer::merged_semantic_similarity(t->shards, a, b);
}

std::uint64_t ConcurrentFarmer::access_count(FileId f) const {
  const auto t = table();
  return ShardedFarmer::merged_access_count(t->shards, f);
}

double ConcurrentFarmer::access_frequency(FileId pred, FileId succ) const {
  const auto t = table();
  return ShardedFarmer::merged_access_frequency(t->shards, pred, succ);
}

void ConcurrentFarmer::save(const std::string& dir) {
  flush();
  // After flush() the published table covers every accepted record, and it
  // is immutable — the checkpoint can be cut from it while ingest resumes.
  // stats.requests is the absolute record sequence (recovered records
  // included), which is what the checkpoint seq must be.
  const std::shared_ptr<const ShardTable> t = table_.load();
  std::vector<const Farmer*> view;
  view.reserve(t->shards.size());
  for (const std::shared_ptr<const Farmer>& s : t->shards)
    view.push_back(s.get());
  persist::write_checkpoint_dir(dir, t->stats.requests, cfg_, dict_.get(),
                                std::span<const Farmer* const>(view));
}

void ConcurrentFarmer::load(const std::string& dir) {
  if (enqueued_total_.load(std::memory_order_acquire) != 0 ||
      table_.load()->stats.requests != 0)
    throw std::logic_error(
        "ConcurrentFarmer::load: miner has already ingested");
  // Pause the drain for the model surgery; queries keep answering from the
  // published (empty) table meanwhile.
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_all();
  }
  if (drain_thread_.joinable()) drain_thread_.join();
  stop_.store(false, std::memory_order_release);

  persist::Recovery rec = persist::recover_dir(dir, cfg_, dict_.get());
  if (!rec.shard_blobs.empty()) {
    if (rec.shard_blobs.size() != inner_->shard_count())
      throw std::runtime_error(
          "ConcurrentFarmer::load: checkpoint shard count mismatch (got " +
          std::to_string(rec.shard_blobs.size()) + ", want " +
          std::to_string(inner_->shard_count()) + ")");
    for (std::size_t s = 0; s < inner_->shard_count(); ++s)
      persist::deserialize_shard(rec.shard_blobs[s], inner_->shard_mut(s));
  }
  if (!rec.tail.empty()) inner_->observe_batch(rec.tail);
  republish_all_shards();

  if (persister_) {
    // Re-base the persist directory on the loaded sequence: the WAL rotates
    // to it and a covering checkpoint is committed synchronously, so crash
    // recovery reproduces the loaded model plus later ingest.
    const std::uint64_t seq = rec.durable_records();
    persister_->rebase(seq);
    std::vector<std::string> blobs;
    blobs.reserve(inner_->shard_count());
    for (std::size_t s = 0; s < inner_->shard_count(); ++s)
      blobs.push_back(persist::serialize_shard(inner_->shard(s)));
    persister_->commit_checkpoint(seq, blobs);
  }

  drain_thread_ = std::thread([this] { drain_loop(); });
}

MinerStats ConcurrentFarmer::stats() const {
  const auto t = table();
  MinerStats s = t->stats;
  s.epoch = t->epoch;
  s.shard_epochs = t->shard_epochs;
  s.pending = pending_.load(std::memory_order_acquire);
  const CorrelatorCacheStats cs = cache_.stats();
  s.cache_hits = cs.hits;
  // Every lookup that had to fall through to a merge counts as a miss,
  // whether the entry was absent or epoch-stale.
  s.cache_misses = cs.misses + cs.invalidations;
  return s;
}

std::size_t ConcurrentFarmer::footprint_bytes() const noexcept {
  // Readers may not touch inner_ (drain-owned); account the published
  // snapshots, which structurally share every untouched per-file block with
  // the live state, and double them to cover the live mirror. With COW that
  // is an upper bound — real residency is one copy of shared blocks plus
  // the cloned dirty deltas — but it stays the honest worst case a reader
  // can compute without touching drain-owned state.
  const auto t = table();
  std::size_t snapshots = 0;
  for (const auto& s : t->shards) snapshots += s->footprint_bytes();
  return sizeof(*this) + 2 * snapshots +
         queues_.size() * sizeof(MpscQueue<Batch>) + cache_.footprint_bytes() +
         queued_.load(std::memory_order_acquire) * sizeof(TraceRecord);
}

}  // namespace farmer
