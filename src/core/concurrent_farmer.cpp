#include "core/concurrent_farmer.hpp"

#include <chrono>
#include <functional>
#include <iterator>

namespace farmer {

ConcurrentFarmer::ConcurrentFarmer(FarmerConfig cfg,
                                   std::shared_ptr<const TraceDictionary> dict,
                                   std::size_t shards,
                                   std::size_t ingest_queues,
                                   std::size_t max_pending)
    : inner_(std::make_unique<ShardedFarmer>(cfg, std::move(dict), shards)),
      max_pending_(max_pending == 0 ? kDefaultMaxPending : max_pending) {
  const std::size_t slots = ingest_queues == 0 ? 1 : ingest_queues;
  queues_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i)
    queues_.push_back(std::make_unique<MpscQueue<Batch>>());
  drain_thread_ = std::thread([this] { drain_loop(); });
}

ConcurrentFarmer::~ConcurrentFarmer() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_all();
  }
  if (drain_thread_.joinable()) drain_thread_.join();
}

std::size_t ConcurrentFarmer::slot_of_this_thread() const noexcept {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
         queues_.size();
}

void ConcurrentFarmer::enqueue(Batch batch) {
  const std::size_t n = batch.size();
  if (n == 0) return;
  // Soft backpressure: a stalled drain must not let queued records balloon.
  // Yield-spin rather than lock so the fast path stays lock-free. A batch
  // larger than max_pending_ is admitted once the drain has fully caught up
  // (pending_ == 0) — blocking it outright could never unblock — so the
  // bound is max(max_pending_, largest single batch).
  while (true) {
    const std::size_t pending = pending_.load(std::memory_order_acquire);
    if (pending == 0 || pending + n <= max_pending_ ||
        stop_.load(std::memory_order_acquire))
      break;
    std::this_thread::yield();
  }
  // pending_ grows before the push: pending_ == 0 therefore proves every
  // accepted record has been applied, even inside the MPSC visibility window.
  pending_.fetch_add(n, std::memory_order_release);
  enqueued_total_.fetch_add(n, std::memory_order_release);
  queues_[slot_of_this_thread()]->push(std::move(batch));
  if (drain_idle_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_one();
  }
}

void ConcurrentFarmer::observe(const TraceRecord& rec) {
  enqueue(Batch{rec});
}

void ConcurrentFarmer::observe_batch(std::span<const TraceRecord> records) {
  enqueue(Batch(records.begin(), records.end()));
}

void ConcurrentFarmer::flush() {
  const std::uint64_t target = enqueued_total_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lk(wake_mu_);
  wake_cv_.notify_one();
  drained_cv_.wait(lk, [&] {
    return applied_total_.load(std::memory_order_acquire) >= target;
  });
}

std::size_t ConcurrentFarmer::collect(Batch& into) {
  std::size_t total = 0;
  Batch batch;
  for (auto& q : queues_) {
    while (q->pop(batch)) {
      total += batch.size();
      into.insert(into.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
    }
  }
  return total;
}

void ConcurrentFarmer::apply(const Batch& batch) {
  {
    std::unique_lock<std::shared_mutex> lk(state_mu_);
    inner_->observe_batch(batch);
    epoch_.fetch_add(1, std::memory_order_release);
    // Counter updates stay inside the lock so stats() never observes a
    // batch counted in both the inner requests and pending.
    pending_.fetch_sub(batch.size(), std::memory_order_release);
    applied_total_.fetch_add(batch.size(), std::memory_order_release);
  }
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    drained_cv_.notify_all();
  }
}

void ConcurrentFarmer::drain_loop() {
  using namespace std::chrono_literals;
  Batch buf;
  for (;;) {
    buf.clear();
    if (collect(buf) > 0) {
      apply(buf);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (pending_.load(std::memory_order_acquire) > 0) {
      // A push is mid-flight in the MPSC visibility window; retry shortly.
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    drain_idle_.store(true, std::memory_order_release);
    // Timed wait: the idle-flag handshake has a benign race (a producer can
    // read drain_idle_ == false just before we set it); the predicate plus
    // the timeout make a lost notify cost at most one period, never a hang.
    wake_cv_.wait_for(lk, 1ms, [&] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    drain_idle_.store(false, std::memory_order_release);
  }
  // Apply whatever is still queued so destruction never drops records.
  for (;;) {
    buf.clear();
    if (collect(buf) == 0) break;
    apply(buf);
  }
}

CorrelatorView ConcurrentFarmer::snapshot(FileId f) const {
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  return CorrelatorView(inner_->correlators(f));
}

EpochSnapshot ConcurrentFarmer::epoch_snapshot(FileId f) const {
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  EpochSnapshot snap;
  snap.view = CorrelatorView(inner_->correlators(f));
  snap.epoch = epoch_.load(std::memory_order_acquire);
  return snap;
}

double ConcurrentFarmer::correlation_degree(FileId a, FileId b) const {
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  return inner_->correlation_degree(a, b);
}

double ConcurrentFarmer::semantic_similarity(FileId a, FileId b) const {
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  return inner_->semantic_similarity(a, b);
}

std::uint64_t ConcurrentFarmer::access_count(FileId f) const {
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  return inner_->access_count(f);
}

double ConcurrentFarmer::access_frequency(FileId pred, FileId succ) const {
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  return inner_->access_frequency(pred, succ);
}

MinerStats ConcurrentFarmer::stats() const {
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  MinerStats s = inner_->stats();
  s.epoch = epoch_.load(std::memory_order_acquire);
  s.pending = pending_.load(std::memory_order_acquire);
  return s;
}

std::size_t ConcurrentFarmer::footprint_bytes() const noexcept {
  std::shared_lock<std::shared_mutex> lk(state_mu_);
  return sizeof(*this) + inner_->footprint_bytes() +
         queues_.size() * sizeof(MpscQueue<Batch>) +
         pending_.load(std::memory_order_acquire) * sizeof(TraceRecord);
}

}  // namespace farmer
