#include "core/concurrent_farmer.hpp"

#include <chrono>
#include <functional>
#include <iterator>
#include <utility>

namespace farmer {

ConcurrentFarmer::ConcurrentFarmer(FarmerConfig cfg,
                                   std::shared_ptr<const TraceDictionary> dict,
                                   std::size_t shards,
                                   std::size_t ingest_queues,
                                   std::size_t max_pending,
                                   std::size_t query_cache_capacity)
    : inner_(std::make_unique<ShardedFarmer>(cfg, std::move(dict), shards)),
      correlator_capacity_(cfg.correlator_capacity),
      max_pending_(max_pending == 0 ? kDefaultMaxPending : max_pending),
      cache_(query_cache_capacity) {
  const std::size_t slots = ingest_queues == 0 ? 1 : ingest_queues;
  queues_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i)
    queues_.push_back(std::make_unique<MpscQueue<Batch>>());

  // Publish the epoch-0 table (snapshots of the empty shards) before the
  // drain starts, so a query can never observe a null table.
  auto initial = std::make_shared<ShardTable>();
  initial->shards.reserve(inner_->shard_count());
  for (std::size_t s = 0; s < inner_->shard_count(); ++s)
    initial->shards.push_back(inner_->export_shard_snapshot(s));
  initial->shard_epochs.assign(inner_->shard_count(), 0);
  initial->stats.shards = inner_->shard_count();
  table_.store(std::move(initial));

  drain_thread_ = std::thread([this] { drain_loop(); });
}

ConcurrentFarmer::~ConcurrentFarmer() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_all();
  }
  if (drain_thread_.joinable()) drain_thread_.join();
}

std::size_t ConcurrentFarmer::slot_of_this_thread() const noexcept {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
         queues_.size();
}

void ConcurrentFarmer::enqueue(Batch batch) {
  const std::size_t n = batch.size();
  if (n == 0) return;
  // Soft backpressure: a stalled drain must not let queued records balloon.
  // Yield-spin rather than lock so the fast path stays lock-free. A batch
  // larger than max_pending_ is admitted once the drain has fully caught up
  // (pending_ == 0) — blocking it outright could never unblock — so the
  // bound is max(max_pending_, largest single batch).
  while (true) {
    const std::size_t pending = pending_.load(std::memory_order_acquire);
    if (pending == 0 || pending + n <= max_pending_ ||
        stop_.load(std::memory_order_acquire))
      break;
    std::this_thread::yield();
  }
  // pending_ grows before the push: pending_ == 0 therefore proves every
  // accepted record has been applied, even inside the MPSC visibility window.
  pending_.fetch_add(n, std::memory_order_release);
  enqueued_total_.fetch_add(n, std::memory_order_release);
  queues_[slot_of_this_thread()]->push(std::move(batch));
  if (drain_idle_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lk(wake_mu_);
    wake_cv_.notify_one();
  }
}

void ConcurrentFarmer::observe(const TraceRecord& rec) {
  enqueue(Batch{rec});
}

void ConcurrentFarmer::observe_batch(std::span<const TraceRecord> records) {
  enqueue(Batch(records.begin(), records.end()));
}

void ConcurrentFarmer::flush() {
  const std::uint64_t target = enqueued_total_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lk(wake_mu_);
  wake_cv_.notify_one();
  // applied_total_ is bumped only *after* the table swap, so reaching the
  // target proves the published table reflects every accepted record.
  drained_cv_.wait(lk, [&] {
    return applied_total_.load(std::memory_order_acquire) >= target;
  });
}

std::size_t ConcurrentFarmer::collect(Batch& into) {
  std::size_t total = 0;
  Batch batch;
  for (auto& q : queues_) {
    while (q->pop(batch)) {
      total += batch.size();
      into.insert(into.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
    }
  }
  return total;
}

void ConcurrentFarmer::publish(const Batch& batch) {
  // Which shards did this round touch? Only those need fresh snapshots;
  // untouched shards share their snapshot with the previous table.
  std::vector<std::uint8_t> touched(inner_->shard_count(), 0);
  for (const TraceRecord& r : batch) touched[inner_->shard_of(r)] = 1;

  const std::shared_ptr<const ShardTable> cur = table_.load();
  auto next = std::make_shared<ShardTable>();
  next->shards = cur->shards;
  next->shard_epochs = cur->shard_epochs;
  for (std::size_t s = 0; s < touched.size(); ++s) {
    if (!touched[s]) continue;
    next->shards[s] = inner_->export_shard_snapshot(s);
    ++next->shard_epochs[s];
  }
  next->epoch = cur->epoch + 1;
  next->stats = inner_->stats();  // includes shards = shard_count()
  table_.store(std::move(next));
}

void ConcurrentFarmer::apply(const Batch& batch) {
  // The drain owns inner_ exclusively: no lock is needed to mutate it, and
  // readers only ever see the immutable table published below.
  inner_->observe_batch(batch);
  publish(batch);
  // Counter order matters: applied_total_ (the flush() predicate) and
  // pending_ shrink only after the swap, so neither flush() nor stats()
  // can observe "applied" records that are not yet queryable.
  pending_.fetch_sub(batch.size(), std::memory_order_release);
  applied_total_.fetch_add(batch.size(), std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    drained_cv_.notify_all();
  }
}

void ConcurrentFarmer::drain_loop() {
  using namespace std::chrono_literals;
  Batch buf;
  for (;;) {
    buf.clear();
    if (collect(buf) > 0) {
      apply(buf);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (pending_.load(std::memory_order_acquire) > 0) {
      // A push is mid-flight in the MPSC visibility window; retry shortly.
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    drain_idle_.store(true, std::memory_order_release);
    // Timed wait: the idle-flag handshake has a benign race (a producer can
    // read drain_idle_ == false just before we set it); the predicate plus
    // the timeout make a lost notify cost at most one period, never a hang.
    wake_cv_.wait_for(lk, 1ms, [&] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    drain_idle_.store(false, std::memory_order_release);
  }
  // Apply whatever is still queued so destruction never drops records.
  for (;;) {
    buf.clear();
    if (collect(buf) == 0) break;
    apply(buf);
  }
}

std::vector<Correlator> ConcurrentFarmer::cached_correlators(
    FileId f, const ShardTable& t) const {
  if (!cache_.enabled())
    return ShardedFarmer::merged_correlators(t.shards, f,
                                             correlator_capacity_);
  // A shard with no recorded access of f cannot hold (and can never have
  // held) a Correlator List for it, so "still absent" certifies the shard
  // is still a non-contributor.
  const auto still_absent = [&](std::size_t s) {
    return t.shards[s]->access_count(f) == 0;
  };
  if (auto hit = cache_.lookup(f, t.shard_epochs, still_absent))
    return std::move(*hit);
  std::vector<Correlator> merged = ShardedFarmer::merged_correlators(
      t.shards, f, correlator_capacity_);
  std::vector<std::uint8_t> contained(t.shards.size(), 0);
  for (std::size_t s = 0; s < t.shards.size(); ++s)
    contained[s] = t.shards[s]->access_count(f) > 0 ? 1 : 0;
  cache_.insert(f, t.shard_epochs, std::move(contained), merged);
  return merged;
}

CorrelatorView ConcurrentFarmer::snapshot(FileId f) const {
  const auto t = table();
  return CorrelatorView(cached_correlators(f, *t));
}

EpochSnapshot ConcurrentFarmer::epoch_snapshot(FileId f) const {
  // One table load serves both members, so the stamp always matches the
  // state the view was cut from.
  const auto t = table();
  EpochSnapshot snap;
  snap.view = CorrelatorView(cached_correlators(f, *t));
  snap.epoch = t->epoch;
  return snap;
}

double ConcurrentFarmer::correlation_degree(FileId a, FileId b) const {
  const auto t = table();
  return ShardedFarmer::merged_correlation_degree(t->shards, a, b);
}

double ConcurrentFarmer::semantic_similarity(FileId a, FileId b) const {
  const auto t = table();
  return ShardedFarmer::merged_semantic_similarity(t->shards, a, b);
}

std::uint64_t ConcurrentFarmer::access_count(FileId f) const {
  const auto t = table();
  return ShardedFarmer::merged_access_count(t->shards, f);
}

double ConcurrentFarmer::access_frequency(FileId pred, FileId succ) const {
  const auto t = table();
  return ShardedFarmer::merged_access_frequency(t->shards, pred, succ);
}

MinerStats ConcurrentFarmer::stats() const {
  const auto t = table();
  MinerStats s = t->stats;
  s.epoch = t->epoch;
  s.shard_epochs = t->shard_epochs;
  s.pending = pending_.load(std::memory_order_acquire);
  const CorrelatorCacheStats cs = cache_.stats();
  s.cache_hits = cs.hits;
  // Every lookup that had to fall through to a merge counts as a miss,
  // whether the entry was absent or epoch-stale.
  s.cache_misses = cs.misses + cs.invalidations;
  return s;
}

std::size_t ConcurrentFarmer::footprint_bytes() const noexcept {
  // Readers may not touch inner_ (drain-owned); account the published
  // snapshots, which mirror the live state one-to-one, and double them to
  // cover the drain's mutable copy. Between publishes the two sides differ
  // by at most the pending records, which are counted separately.
  const auto t = table();
  std::size_t snapshots = 0;
  for (const auto& s : t->shards) snapshots += s->footprint_bytes();
  return sizeof(*this) + 2 * snapshots +
         queues_.size() * sizeof(MpscQueue<Batch>) + cache_.footprint_bytes() +
         pending_.load(std::memory_order_acquire) * sizeof(TraceRecord);
}

}  // namespace farmer
