// FARMER model configuration (Section 3 parameters) plus a validating
// builder: `FarmerConfig::builder().p(0.7).window(4).build()` returns a
// `FarmerConfigResult` carrying either the config or a diagnostic listing
// every violated constraint — miners never silently accept garbage.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "vsm/attribute.hpp"
#include "vsm/semantic_vector.hpp"

namespace farmer {

struct FarmerConfig {
  /// Weight of the semantic factor in R(x,y) = p*sim + (1-p)*F.
  /// The paper finds p = 0.7 best (Fig. 3); p = 0 reduces FARMER to Nexus.
  double p = 0.7;

  /// Validity threshold for the correlation degree ("max_strength",
  /// Section 3.2.4). Pairs with R below it are filtered from the
  /// Correlator List. The paper settles on 0.4 (Fig. 6).
  double max_strength = 0.4;

  /// Look-ahead window length for access-sequence mining.
  std::size_t window = 4;

  /// Linear Decremented Assignment step: a successor at distance d
  /// contributes 1 - (d-1)*lda_delta to N_AB (1.0, 0.9, 0.8, ... in the
  /// paper's example).
  double lda_delta = 0.1;

  /// Semantic attributes participating in similarity (Table 5 rows).
  AttributeMask attributes = AttributeMask::all_with_path();

  /// File-path handling; the paper selects IPA (Section 3.2.1).
  PathMode path_mode = PathMode::kIntegrated;

  /// Bounded successor set per graph node (memory/accuracy trade-off).
  std::size_t max_successors = 16;

  /// Maximum Correlator List length per file.
  std::size_t correlator_capacity = 8;

  class Builder;
  [[nodiscard]] static Builder builder();

  /// Empty string when every constraint holds; otherwise all violations,
  /// "; "-joined.
  [[nodiscard]] std::string validate() const;
};

/// Result of Builder::build(): the config or the validation diagnostic.
class FarmerConfigResult {
 public:
  static FarmerConfigResult success(FarmerConfig cfg) {
    FarmerConfigResult r;
    r.cfg_ = cfg;
    r.ok_ = true;
    return r;
  }
  static FarmerConfigResult failure(std::string error) {
    FarmerConfigResult r;
    r.error_ = std::move(error);
    return r;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }

  /// The validated config; throws std::logic_error when !ok() so skipping
  /// the check cannot silently mine with default parameters.
  [[nodiscard]] const FarmerConfig& value() const {
    if (!ok_)
      throw std::logic_error("FarmerConfigResult::value() on failed result: " +
                             error_);
    return cfg_;
  }
  /// Empty when ok().
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  FarmerConfigResult() = default;
  FarmerConfig cfg_;
  std::string error_;
  bool ok_ = false;
};

class FarmerConfig::Builder {
 public:
  Builder() = default;
  explicit Builder(FarmerConfig base) : cfg_(base) {}

  Builder& p(double v) { cfg_.p = v; return *this; }
  Builder& max_strength(double v) { cfg_.max_strength = v; return *this; }
  Builder& window(std::size_t v) { cfg_.window = v; return *this; }
  Builder& lda_delta(double v) { cfg_.lda_delta = v; return *this; }
  Builder& attributes(AttributeMask v) { cfg_.attributes = v; return *this; }
  Builder& path_mode(PathMode v) { cfg_.path_mode = v; return *this; }
  Builder& max_successors(std::size_t v) {
    cfg_.max_successors = v;
    return *this;
  }
  Builder& correlator_capacity(std::size_t v) {
    cfg_.correlator_capacity = v;
    return *this;
  }

  [[nodiscard]] FarmerConfigResult build() const {
    std::string err = cfg_.validate();
    if (!err.empty()) return FarmerConfigResult::failure(std::move(err));
    return FarmerConfigResult::success(cfg_);
  }

 private:
  FarmerConfig cfg_;
};

inline FarmerConfig::Builder FarmerConfig::builder() { return Builder(); }

inline std::string FarmerConfig::validate() const {
  std::string errors;
  auto fail = [&errors](const char* msg) {
    if (!errors.empty()) errors += "; ";
    errors += msg;
  };
  if (!(p >= 0.0 && p <= 1.0)) fail("p must be in [0, 1]");
  if (!(max_strength >= 0.0 && max_strength <= 1.0))
    fail("max_strength must be in [0, 1]");
  if (window == 0) fail("window must be >= 1");
  if (lda_delta < 0.0) fail("lda_delta must be >= 0");
  // Every distance inside the window must keep a nonnegative LDA
  // contribution: 1 - (window-1)*lda_delta >= 0, i.e. the configured window
  // may not contain dead slots.
  else if (window > 0 &&
           lda_delta * static_cast<double>(window - 1) > 1.0)
    fail("lda_delta * (window - 1) must be <= 1 "
         "(window slots would contribute negative weight)");
  if (max_successors == 0) fail("max_successors must be >= 1");
  if (correlator_capacity == 0) fail("correlator_capacity must be >= 1");
  return errors;
}

}  // namespace farmer
