// FARMER model configuration (Section 3 parameters).
#pragma once

#include <cstddef>

#include "vsm/attribute.hpp"
#include "vsm/semantic_vector.hpp"

namespace farmer {

struct FarmerConfig {
  /// Weight of the semantic factor in R(x,y) = p*sim + (1-p)*F.
  /// The paper finds p = 0.7 best (Fig. 3); p = 0 reduces FARMER to Nexus.
  double p = 0.7;

  /// Validity threshold for the correlation degree ("max_strength",
  /// Section 3.2.4). Pairs with R below it are filtered from the
  /// Correlator List. The paper settles on 0.4 (Fig. 6).
  double max_strength = 0.4;

  /// Look-ahead window length for access-sequence mining.
  std::size_t window = 4;

  /// Linear Decremented Assignment step: a successor at distance d
  /// contributes 1 - (d-1)*lda_delta to N_AB (1.0, 0.9, 0.8, ... in the
  /// paper's example).
  double lda_delta = 0.1;

  /// Semantic attributes participating in similarity (Table 5 rows).
  AttributeMask attributes = AttributeMask::all_with_path();

  /// File-path handling; the paper selects IPA (Section 3.2.1).
  PathMode path_mode = PathMode::kIntegrated;

  /// Bounded successor set per graph node (memory/accuracy trade-off).
  std::size_t max_successors = 16;

  /// Maximum Correlator List length per file.
  std::size_t correlator_capacity = 8;
};

}  // namespace farmer
