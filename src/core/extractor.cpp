#include "core/extractor.hpp"

// Extractor is header-only; this TU anchors the symbol for the library.
namespace farmer {}
