#include "persist/persister.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <stdexcept>

#include "persist/checkpoint.hpp"
#include "trace/trace_io.hpp"

namespace farmer::persist {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kCheckpointPrefix = "CHECKPOINT.";
constexpr std::string_view kWalPrefix = "wal.";

/// Parses the numeric suffix of "CHECKPOINT.<n>" / "wal.<n>" file names.
/// Returns false for foreign files (including the ".tmp" spares), which
/// recovery and pruning both ignore.
bool parse_suffix(std::string_view name, std::string_view prefix,
                  std::uint64_t& out) {
  if (name.size() <= prefix.size() || name.substr(0, prefix.size()) != prefix)
    return false;
  const std::string_view digits = name.substr(prefix.size());
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), out);
  return ec == std::errc() && ptr == digits.data() + digits.size();
}

/// All (sequence, path) pairs for one file family in the directory.
std::vector<std::pair<std::uint64_t, std::string>> list_family(
    const std::string& dir, std::string_view prefix) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    std::uint64_t seq = 0;
    if (parse_suffix(e.path().filename().string(), prefix, seq))
      out.emplace_back(seq, e.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Recovery recover_dir(const std::string& dir, const FarmerConfig& cfg,
                     const TraceDictionary* dict) {
  Recovery out;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return out;

  // The manifest binds the directory to its config + dictionary from the
  // first open. Checkpoints carry the same binding, but a directory that
  // never committed one holds only WAL segments — without this check a
  // reopen under a different trace would replay foreign records straight
  // into a mismatched model.
  check_manifest(dir, cfg, dict);

  // Newest checksum-valid checkpoint wins; torn/corrupt ones fall back to
  // older (config or dictionary mismatch throws from read_checkpoint_file).
  auto checkpoints = list_family(dir, kCheckpointPrefix);
  for (std::size_t i = checkpoints.size(); i-- > 0;) {
    if (auto ckpt = read_checkpoint_file(checkpoints[i].second, cfg, dict)) {
      out.checkpoint_seq = ckpt->seq;
      out.shard_blobs = std::move(ckpt->shard_blobs);
      break;
    }
  }

  // Replay the contiguous WAL tail above the checkpoint. Segments are keyed
  // by absolute record sequence; opening a LogStore truncates its torn tail,
  // and the first sequence gap ends the durable prefix (a gap can only mean
  // a lost segment — appends are strictly sequential).
  std::uint64_t expected = out.checkpoint_seq + 1;
  bool gap = false;
  for (const auto& [base, path] : list_family(dir, kWalPrefix)) {
    if (gap) break;
    LogStore segment(path);
    segment.scan(0, UINT64_MAX,
                 [&](std::uint64_t key, std::string_view value) {
                   if (key <= out.checkpoint_seq) return true;
                   if (key != expected) {
                     gap = true;
                     return false;
                   }
                   out.tail.push_back(decode_record(value));
                   ++expected;
                   return true;
                 });
  }
  return out;
}

Persister::Persister(Options opts) : opts_(std::move(opts)) {
  if (opts_.dir.empty())
    throw std::invalid_argument("Persister: empty persist directory");
  if (opts_.checkpoint_interval_records == 0)
    opts_.checkpoint_interval_records = kDefaultCheckpointInterval;
  if (opts_.wal_group_commit == 0)
    opts_.wal_group_commit = kDefaultWalGroupCommit;
  fs::create_directories(opts_.dir);
}

Persister::~Persister() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    sync_stop_ = true;
  }
  sync_cv_.notify_one();
  if (sync_thread_.joinable()) sync_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_) wal_->sync();
}

Recovery Persister::open(const FarmerConfig& cfg,
                         std::shared_ptr<const TraceDictionary> dict) {
  std::lock_guard<std::mutex> lock(mu_);
  if (opened_) throw std::logic_error("Persister::open called twice");
  opened_ = true;
  cfg_ = cfg;
  dict_ = std::move(dict);
  Recovery rec = recover_dir(opts_.dir, cfg_, dict_.get());
  write_manifest(opts_.dir, cfg_, dict_.get());
  appended_ = rec.durable_records();
  last_ckpt_ = appended_;
  open_segment_locked(appended_);
  sync_thread_ = std::thread(&Persister::sync_loop, this);
  return rec;
}

std::uint64_t Persister::append(std::span<const TraceRecord> records) {
  bool group_closed = false;
  std::uint64_t last;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string value;
    for (const TraceRecord& rec : records) {
      value.clear();
      encode_record(rec, value);
      wal_->put(++appended_, value);
      ++unsynced_;
    }
    if (unsynced_ >= opts_.wal_group_commit) {
      sync_goal_ = appended_;
      unsynced_ = 0;
      group_closed = true;
    }
    last = appended_;
  }
  if (group_closed) sync_cv_.notify_one();
  return last;
}

void Persister::sync_loop() {
  std::uint64_t synced = 0;
  for (;;) {
    std::shared_ptr<LogStore> wal;
    std::uint64_t goal = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      sync_cv_.wait(lk, [&] { return sync_stop_ || sync_goal_ > synced; });
      if (sync_goal_ <= synced) break;  // stop requested, nothing pending
      goal = sync_goal_;
      wal = wal_;
    }
    // Outside the lock: appends continue into the open group while this
    // group hits the disk. If the segment rotated since the goal was set,
    // the rotation already synced the old segment inline — syncing the
    // current one is at worst extra durability.
    if (wal) wal->sync();
    synced = goal;
  }
}

std::uint64_t Persister::appended_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

bool Persister::checkpoint_due() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_ - last_ckpt_ >= opts_.checkpoint_interval_records;
}

std::uint64_t Persister::begin_checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  wal_->sync();
  unsynced_ = 0;
  last_ckpt_ = appended_;
  open_segment_locked(appended_);
  return appended_;
}

void Persister::commit_checkpoint(std::uint64_t seq,
                                  std::span<const std::string> shard_blobs) {
  // The file write happens outside the lock — it is a fresh file nothing
  // else touches, and serialization-heavy checkpoints must not stall the
  // appender. Only the prune walks shared directory state.
  write_checkpoint_file(
      opts_.dir + "/CHECKPOINT." + std::to_string(seq), seq, cfg_,
      dict_.get(), shard_blobs);
  std::lock_guard<std::mutex> lock(mu_);
  prune_locked(seq);
}

void Persister::rebase(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  appended_ = seq;
  last_ckpt_ = seq;
  unsynced_ = 0;
  open_segment_locked(seq);
}

std::uint64_t Persister::last_checkpoint_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_ckpt_;
}

void Persister::open_segment_locked(std::uint64_t base) {
  if (wal_) wal_->sync();
  wal_base_ = base;
  // Append-only: the writing process never reads a live segment back (the
  // readable index is rebuilt by recover_dir's own indexed open), so the
  // segment skips the per-record index copy on the append path.
  wal_ = std::make_shared<LogStore>(
      opts_.dir + "/wal." + std::to_string(base), opts_.durability,
      LogStore::IndexMode::kAppendOnly);
}

void Persister::prune_locked(std::uint64_t committed_seq) {
  // Keep the two newest committed checkpoints: the new one and one
  // predecessor, so a crash mid-prune (or a latent corruption in the new
  // file) still has a fallback with its WAL tail intact.
  auto checkpoints = list_family(opts_.dir, kCheckpointPrefix);
  std::uint64_t oldest_retained = committed_seq;
  if (checkpoints.size() > 2) {
    for (std::size_t i = 0; i + 2 < checkpoints.size(); ++i)
      fs::remove(checkpoints[i].second);
    oldest_retained = checkpoints[checkpoints.size() - 2].first;
  } else if (!checkpoints.empty()) {
    oldest_retained = checkpoints.front().first;
  }

  // A WAL segment based at b covers records (b, next_base]; it is deletable
  // once some other segment starts at or below the oldest retained
  // checkpoint but after b — everything it holds is then covered. The
  // current segment is never deleted.
  auto segments = list_family(opts_.dir, kWalPrefix);
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    const std::uint64_t next_base = segments[i + 1].first;
    if (segments[i].first < wal_base_ && next_base <= oldest_retained)
      fs::remove(segments[i].second);
  }
}

}  // namespace farmer::persist
