#include "persist/durable_miner.hpp"

#include <stdexcept>

#include "core/farmer.hpp"
#include "persist/checkpoint.hpp"

namespace farmer::persist {

DurableMiner::DurableMiner(std::unique_ptr<CorrelationMiner> inner,
                           std::vector<Farmer*> shard_view, FarmerConfig cfg,
                           std::shared_ptr<const TraceDictionary> dict,
                           Options opts)
    : inner_(std::move(inner)),
      shard_view_(std::move(shard_view)),
      persister_(std::move(opts)) {
  if (shard_view_.empty())
    throw std::invalid_argument("DurableMiner: empty shard view");
  Recovery rec = persister_.open(cfg, std::move(dict));
  if (!rec.shard_blobs.empty()) {
    if (rec.shard_blobs.size() != shard_view_.size())
      throw std::runtime_error(
          "DurableMiner: checkpoint shard count mismatch (got " +
          std::to_string(rec.shard_blobs.size()) + ", want " +
          std::to_string(shard_view_.size()) + ")");
    for (std::size_t s = 0; s < shard_view_.size(); ++s)
      deserialize_shard(rec.shard_blobs[s], *shard_view_[s]);
  }
  if (!rec.tail.empty()) inner_->observe_batch(rec.tail);
}

void DurableMiner::observe(const TraceRecord& rec) {
  persister_.append(std::span<const TraceRecord>(&rec, 1));
  inner_->observe(rec);
  maybe_checkpoint();
}

void DurableMiner::observe_batch(std::span<const TraceRecord> records) {
  persister_.append(records);
  inner_->observe_batch(records);
  maybe_checkpoint();
}

void DurableMiner::load(const std::string& dir) {
  inner_->load(dir);
  const std::uint64_t seq = inner_->stats().requests;
  persister_.rebase(seq);
  checkpoint_now(seq);
}

void DurableMiner::maybe_checkpoint() {
  if (!persister_.checkpoint_due()) return;
  checkpoint_now(persister_.begin_checkpoint());
}

void DurableMiner::checkpoint_now(std::uint64_t seq) {
  std::vector<std::string> blobs;
  blobs.reserve(shard_view_.size());
  for (const Farmer* shard : shard_view_)
    blobs.push_back(serialize_shard(*shard));
  persister_.commit_checkpoint(seq, blobs);
}

}  // namespace farmer::persist
