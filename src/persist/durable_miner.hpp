// Durability decorator for synchronous backends ("farmer", "sharded",
// "nexus"): WAL-append every record before applying it, checkpoint inline
// when the interval elapses, auto-recover from the persist directory on
// construction.
//
// The decorator preserves the synchronous single-threaded contract — the
// WAL append, the apply and the occasional inline checkpoint all run on the
// caller's thread, so WAL order is apply order by construction and the
// durable prefix is always a prefix of the applied history. The concurrent
// backend does NOT use this decorator: its WAL hooks live on the drain
// thread and its checkpoints run off published COW snapshots on a worker
// (see ConcurrentFarmer).
#pragma once

#include <memory>
#include <vector>

#include "api/correlation_miner.hpp"
#include "persist/persister.hpp"

namespace farmer {

class Farmer;

namespace persist {

class DurableMiner final : public CorrelationMiner {
 public:
  /// `shard_view` lists the Farmer shards inside `inner` in shard order
  /// (one entry for an unsharded backend) — the factory knows the concrete
  /// types and builds the view; this class only needs the serialization
  /// surface. Construction runs recovery: the newest valid checkpoint is
  /// deserialized into the shards and the WAL tail replayed through
  /// `inner`, so the miner resumes exactly where the durable prefix ended.
  DurableMiner(std::unique_ptr<CorrelationMiner> inner,
               std::vector<Farmer*> shard_view, FarmerConfig cfg,
               std::shared_ptr<const TraceDictionary> dict, Options opts);

  void observe(const TraceRecord& rec) override;
  void observe_batch(std::span<const TraceRecord> records) override;
  void flush() override { inner_->flush(); }

  [[nodiscard]] CorrelatorView snapshot(FileId f) const override {
    return inner_->snapshot(f);
  }
  [[nodiscard]] double correlation_degree(FileId a, FileId b) const override {
    return inner_->correlation_degree(a, b);
  }
  [[nodiscard]] double semantic_similarity(FileId a, FileId b) const override {
    return inner_->semantic_similarity(a, b);
  }
  [[nodiscard]] std::uint64_t access_count(FileId f) const override {
    return inner_->access_count(f);
  }
  [[nodiscard]] double access_frequency(FileId pred,
                                        FileId succ) const override {
    return inner_->access_frequency(pred, succ);
  }
  [[nodiscard]] MinerStats stats() const override { return inner_->stats(); }
  [[nodiscard]] std::size_t footprint_bytes() const override {
    return inner_->footprint_bytes();
  }
  /// Keeps the factory-name contract: a persist-enabled "sharded" miner
  /// still reports "sharded".
  [[nodiscard]] const char* name() const noexcept override {
    return inner_->name();
  }

  /// Checkpoints into an arbitrary directory (independent of the persist
  /// directory) by delegating to the wrapped backend.
  void save(const std::string& dir) override { inner_->save(dir); }

  /// Loads external state, then re-bases the persist directory on it: the
  /// WAL rotates to the loaded sequence and a covering checkpoint is
  /// committed, so subsequent crash recovery reproduces the loaded model
  /// plus whatever was ingested after.
  void load(const std::string& dir) override;

  /// The wrapped backend (tests).
  [[nodiscard]] const CorrelationMiner& inner() const noexcept {
    return *inner_;
  }

 private:
  void maybe_checkpoint();
  void checkpoint_now(std::uint64_t seq);

  std::unique_ptr<CorrelationMiner> inner_;
  std::vector<Farmer*> shard_view_;
  Persister persister_;
};

}  // namespace persist
}  // namespace farmer
