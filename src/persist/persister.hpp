// The durable persistence driver: record WAL with group commit, checkpoint
// lifecycle, and bounded-time recovery.
//
// Directory layout (one directory per miner, `MinerOptions::persist_dir`):
//
//   MANIFEST           config + dictionary binding, written at first open
//   CHECKPOINT.<seq>   checkpoint covering records [1, seq] (checkpoint.hpp)
//   wal.<base>         LogStore segment holding records base+1, base+2, ...
//
// WAL keys are absolute 1-based record sequence numbers; values are the raw
// TraceRecord encoding (trace_io). Appends batch through one LogStore;
// every `wal_group_commit` records close a commit group whose fsync runs on
// a dedicated group-sync thread (Pomegranate-style transaction groups: the
// appender opens the next group while the previous one syncs), so the
// ingest path never blocks on the disk and the crash-loss window stays
// bounded to the groups still in flight. Checkpoint rotation, rebase and
// shutdown sync inline — those are the points that need a durable cut.
//
// Checkpoints rotate the WAL first (begin_checkpoint, cheap and synchronous
// at a point where appended == applied), then the serialized state is
// written atomically by whoever owns the shard snapshots — inline for
// synchronous backends, on a background worker off the published COW
// snapshot for the concurrent backend — and commit_checkpoint prunes
// superseded checkpoints and fully-covered WAL segments.
//
// Recovery (recover_dir): newest checksum-valid checkpoint + the contiguous
// WAL tail above its sequence number, torn records truncated. Recovery time
// is bounded by checkpoint size + one checkpoint interval of WAL replay.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "kvstore/log_store.hpp"
#include "trace/record.hpp"

namespace farmer::persist {

/// Defaults applied when MinerOptions leaves the knobs at 0.
inline constexpr std::size_t kDefaultCheckpointInterval = 1u << 16;
inline constexpr std::size_t kDefaultWalGroupCommit = 4096;

struct Options {
  std::string dir;  ///< persist directory (created if needed)
  /// Checkpoint every N appended records (0 = kDefaultCheckpointInterval).
  std::size_t checkpoint_interval_records = 0;
  /// fsync the WAL every N appended records (0 = kDefaultWalGroupCommit;
  /// 1 = every record).
  std::size_t wal_group_commit = 0;
  /// kFsync for real durability; kBuffered keeps tests fast.
  LogStore::Durability durability = LogStore::Durability::kFsync;
};

/// Everything recovery found in a persist directory.
struct Recovery {
  std::uint64_t checkpoint_seq = 0;      ///< 0 when no valid checkpoint
  std::vector<std::string> shard_blobs;  ///< empty when no valid checkpoint
  std::vector<TraceRecord> tail;         ///< WAL records after checkpoint_seq

  /// Records the directory durably holds: checkpoint + contiguous tail.
  [[nodiscard]] std::uint64_t durable_records() const noexcept {
    return checkpoint_seq + tail.size();
  }
};

/// Reads a persist directory: validates the MANIFEST binding, then the
/// newest checksum-valid checkpoint (corrupt ones fall back to older) plus
/// the contiguous WAL tail above it, truncating torn records. A manifest or
/// checkpoint recording a different config/dictionary throws — see
/// checkpoint.hpp. Safe on a directory no Persister has open. An absent or
/// empty directory recovers to the empty model.
[[nodiscard]] Recovery recover_dir(const std::string& dir,
                                   const FarmerConfig& cfg,
                                   const TraceDictionary* dict);

class Persister {
 public:
  explicit Persister(Options opts);
  ~Persister();
  Persister(const Persister&) = delete;
  Persister& operator=(const Persister&) = delete;

  [[nodiscard]] const Options& options() const noexcept { return opts_; }

  /// Opens the directory: runs recovery, positions the append cursor at the
  /// durable end, and starts a fresh WAL segment. Must be called exactly
  /// once, before any append. `cfg`/`dict` are retained for checkpoint
  /// writing (`dict` may be null — the dictionary check is then skipped).
  [[nodiscard]] Recovery open(const FarmerConfig& cfg,
                              std::shared_ptr<const TraceDictionary> dict);

  /// Appends records to the WAL in ingest order; crossing a group-commit
  /// boundary hands the group to the background sync thread (the appender
  /// does not wait for the fsync). Returns the sequence number of the last
  /// record appended. Single appender at a time (the drain thread / the
  /// synchronous caller); safe against a concurrent commit_checkpoint.
  std::uint64_t append(std::span<const TraceRecord> records);

  /// Sequence number of the last appended record.
  [[nodiscard]] std::uint64_t appended_seq() const;

  /// True once a checkpoint interval of records accumulated since the last
  /// initiated checkpoint.
  [[nodiscard]] bool checkpoint_due() const;

  /// Initiates a checkpoint at the current appended sequence: syncs and
  /// rotates the WAL (new segment based at the returned seq). Call at a
  /// point where every appended record is also applied to the model, then
  /// serialize the shards and finish with commit_checkpoint. Cheap —
  /// serialization happens outside.
  std::uint64_t begin_checkpoint();

  /// Writes CHECKPOINT.<seq> atomically from pre-serialized shard blobs,
  /// then prunes: keeps the two newest checkpoints and deletes WAL segments
  /// fully covered by the older retained one. Callable from a background
  /// thread concurrently with append().
  void commit_checkpoint(std::uint64_t seq,
                         std::span<const std::string> shard_blobs);

  /// Re-bases the WAL after the model was replaced externally (load()):
  /// the append cursor jumps to `seq` and a fresh segment starts there.
  /// Follow with commit_checkpoint(seq, ...) so the directory covers the
  /// loaded state.
  void rebase(std::uint64_t seq);

  /// Sequence covered by the last *initiated* checkpoint (or rebase).
  [[nodiscard]] std::uint64_t last_checkpoint_seq() const;

 private:
  void open_segment_locked(std::uint64_t base);
  void prune_locked(std::uint64_t committed_seq);
  void sync_loop();

  Options opts_;
  FarmerConfig cfg_;
  std::shared_ptr<const TraceDictionary> dict_;
  bool opened_ = false;

  mutable std::mutex mu_;
  // shared_ptr: the group-sync thread syncs outside the lock while a
  // checkpoint rotation may concurrently swap in a fresh segment (the old
  // one stays alive until the in-flight sync drops its reference).
  std::shared_ptr<LogStore> wal_;  // current segment
  std::uint64_t wal_base_ = 0;
  std::uint64_t appended_ = 0;      // absolute seq of the last append
  std::size_t unsynced_ = 0;        // records since the last group boundary
  std::uint64_t last_ckpt_ = 0;     // last initiated checkpoint seq
  std::uint64_t sync_goal_ = 0;     // newest group boundary to fsync
  bool sync_stop_ = false;
  std::condition_variable sync_cv_;
  std::thread sync_thread_;
};

}  // namespace farmer::persist
