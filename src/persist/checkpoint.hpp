// Checkpoint serialization for the durable persistence subsystem.
//
// A checkpoint is a versioned, checksummed, self-describing snapshot of the
// full miner model: per-shard semantic vectors/signatures, correlation-graph
// nodes (successor edges and Correlator Lists in stored order), CoMiner
// counters, the access window, and the embedded trace dictionary. It is
// written atomically (tmp file + flush + fsync + rename), so a crash during
// a checkpoint leaves the previous one intact, and it captures enough state
// that checkpoint-load followed by WAL-tail replay is byte-identical to
// replaying the full record history (the kill-and-recover differential test
// pins this down).
//
// File layout (little-endian):
//
//   [u32 magic][u32 version][u64 body_len][body...][u64 checksum]
//
//   body := u64 seq            records covered by this checkpoint
//           u64 config_hash    canonical FarmerConfig fingerprint
//           u64 dict_len       embedded dictionary (0 = none; the shared
//                              v3 codec, trace_io encode_dictionary)
//           dict bytes
//           u32 shard_count
//           shard_count x (u64 blob_len, blob bytes)
//
// The checksum is a mix64 chain over the body, so torn or bit-flipped
// checkpoints are detected on load and recovery falls back to the previous
// checkpoint (see persist::recover_dir).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/config.hpp"
#include "trace/record.hpp"

namespace farmer {

class Farmer;

namespace persist {

inline constexpr std::uint32_t kCheckpointMagic = 0xFA12C4E7;
/// v2: the embedded dictionary moved from the legacy v2 stream codec to the
/// shared v3 codec (u32 path-component counts). v1 files are rejected.
inline constexpr std::uint32_t kCheckpointVersion = 2;
inline constexpr std::uint32_t kManifestMagic = 0xFA12B14D;
inline constexpr std::uint32_t kManifestVersion = 2;

/// Canonical fingerprint over every FarmerConfig field. Stored in the
/// checkpoint and verified on load: restoring a model mined under different
/// parameters would silently corrupt query results, so a mismatch throws.
[[nodiscard]] std::uint64_t config_hash(const FarmerConfig& cfg);

/// Serializes one Farmer shard's full model state. Safe on a live shard
/// (single-threaded contract) or on an immutable published COW snapshot —
/// the concurrent backend checkpoints the latter without stopping ingest.
[[nodiscard]] std::string serialize_shard(const Farmer& shard);

/// Restores a blob produced by serialize_shard into `shard`, which must be
/// freshly constructed with the same config. Throws std::runtime_error on
/// truncated or malformed blobs.
void deserialize_shard(std::string_view blob, Farmer& shard);

/// Writes `dir + "/MANIFEST"` atomically if it does not exist yet: the
/// config hash plus a hash of the serialized dictionary. The manifest binds
/// a persist directory to its config + dictionary from the *first* open —
/// checkpoints carry the same binding, but a directory killed before its
/// first checkpoint holds only WAL segments, and without the manifest a
/// reopen under a different trace would replay foreign records into a
/// mismatched model. A present manifest is left untouched.
void write_manifest(const std::string& dir, const FarmerConfig& cfg,
                    const TraceDictionary* dict);

/// Validates `dir + "/MANIFEST"` against `cfg`/`dict`. An absent manifest
/// passes (empty directory, or one populated only by save()). Throws
/// std::runtime_error when the manifest is unreadable or records a
/// different config hash / dictionary hash. `dict == nullptr` skips the
/// dictionary comparison, as does a manifest written without a dictionary.
void check_manifest(const std::string& dir, const FarmerConfig& cfg,
                    const TraceDictionary* dict);

/// A checksum-validated checkpoint as read back from disk.
struct LoadedCheckpoint {
  std::uint64_t seq = 0;                 ///< records the checkpoint covers
  std::vector<std::string> shard_blobs;  ///< one blob per shard, in order
};

/// Writes the checkpoint file at `path` atomically: the bytes land in
/// `path + ".tmp"`, are flushed and fsync'd, and the tmp is renamed over
/// `path` (with a directory fsync so the rename itself is durable). Throws
/// std::runtime_error on I/O failure.
void write_checkpoint_file(const std::string& path, std::uint64_t seq,
                           const FarmerConfig& cfg,
                           const TraceDictionary* dict,
                           std::span<const std::string> shard_blobs);

/// save()-path convenience: creates `dir` if needed, serializes the given
/// live shards and writes `dir + "/CHECKPOINT.<seq>"` atomically.
void write_checkpoint_dir(const std::string& dir, std::uint64_t seq,
                          const FarmerConfig& cfg, const TraceDictionary* dict,
                          std::span<const Farmer* const> shards);

/// Reads and validates one checkpoint file. Returns std::nullopt when the
/// file is torn, truncated, or fails its checksum (recovery then falls back
/// to an older checkpoint). Throws std::runtime_error when the checkpoint is
/// *valid but incompatible* — config hash mismatch, or an embedded
/// dictionary that differs from `dict` — because silently ignoring those
/// would corrupt the restored model. `dict == nullptr` skips the dictionary
/// comparison.
[[nodiscard]] std::optional<LoadedCheckpoint> read_checkpoint_file(
    const std::string& path, const FarmerConfig& cfg,
    const TraceDictionary* dict);

}  // namespace persist
}  // namespace farmer
