#include "persist/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/hash.hpp"
#include "core/farmer.hpp"
#include "trace/trace_io.hpp"

namespace farmer::persist {

namespace {

template <typename T>
void put_raw(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

/// Bounds-checked forward reader over a serialized blob; any overrun means
/// the blob is torn or malformed, which surfaces as std::runtime_error.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (static_cast<std::size_t>(end_ - p_) < sizeof(T))
      throw std::runtime_error("checkpoint blob truncated");
    T v;
    std::memcpy(&v, p_, sizeof v);
    p_ += sizeof v;
    return v;
  }

  void get_bytes(char* dst, std::size_t len) {
    if (static_cast<std::size_t>(end_ - p_) < len)
      throw std::runtime_error("checkpoint blob truncated");
    std::memcpy(dst, p_, len);
    p_ += len;
  }

  [[nodiscard]] bool done() const noexcept { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

/// mix64 chain over arbitrary bytes, folding whole words then the tail.
std::uint64_t checksum_bytes(std::string_view bytes) {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= sizeof(std::uint64_t)) {
    std::uint64_t word;
    std::memcpy(&word, p, sizeof word);
    h = mix64(h ^ word);
    p += sizeof word;
    n -= sizeof word;
  }
  std::uint64_t tail = 0;
  if (n > 0) std::memcpy(&tail, p, n);
  return mix64(h ^ tail ^ bytes.size());
}

void put_file(std::FILE* f, const void* data, std::size_t len,
              const std::string& path) {
  if (len > 0 && std::fwrite(data, 1, len, f) != len)
    throw std::runtime_error("checkpoint: short write to " + path);
}

/// fsync the directory containing `path` so a rename inside it is durable.
void fsync_parent_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

/// Checkpoints embed the dictionary through the shared v3 codec
/// (encode_dictionary) since checkpoint v2 — the legacy v2 stream codec
/// could not represent >255-component paths.
std::string serialize_dictionary(const TraceDictionary* dict) {
  if (dict == nullptr) return {};
  std::string out;
  encode_dictionary(out, *dict);
  return out;
}

/// Writes `[magic][version][u64 body_len][body][u64 checksum]` to `path`
/// atomically: bytes land in `path + ".tmp"`, are flushed and fsync'd, and
/// the tmp is renamed over `path` (with a parent-directory fsync). The
/// shared framing behind checkpoints and the manifest.
void write_framed_atomic(const std::string& path, std::uint32_t magic,
                         std::uint32_t version, std::string_view body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("checkpoint: cannot open " + tmp);
  try {
    put_file(f, &magic, sizeof magic, tmp);
    put_file(f, &version, sizeof version, tmp);
    const std::uint64_t body_len = body.size();
    put_file(f, &body_len, sizeof body_len, tmp);
    put_file(f, body.data(), body.size(), tmp);
    const std::uint64_t csum = checksum_bytes(body);
    put_file(f, &csum, sizeof csum, tmp);
  } catch (...) {
    std::fclose(f);
    std::remove(tmp.c_str());
    throw;
  }
  std::fflush(f);
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(::fileno(f));
#endif
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: rename failed for " + path);
  }
  fsync_parent_dir(path);
}

/// Reads a file written by write_framed_atomic. Returns std::nullopt when
/// the file is absent, torn, truncated, or fails its checksum.
std::optional<std::string> read_framed(const std::string& path,
                                       std::uint32_t want_magic,
                                       std::uint32_t want_version) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  const auto read_or = [f](void* dst, std::size_t len) {
    return std::fread(dst, 1, len, f) == len;
  };
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::uint32_t magic = 0, version = 0;
  std::uint64_t body_len = 0;
  if (!read_or(&magic, sizeof magic) || magic != want_magic ||
      !read_or(&version, sizeof version) || version != want_version ||
      !read_or(&body_len, sizeof body_len) || file_size < 0 ||
      body_len > static_cast<std::uint64_t>(file_size)) {
    std::fclose(f);
    return std::nullopt;
  }
  std::string body(body_len, '\0');
  std::uint64_t stored_csum = 0;
  if (!read_or(body.data(), body.size()) ||
      !read_or(&stored_csum, sizeof stored_csum)) {
    std::fclose(f);
    return std::nullopt;
  }
  std::fclose(f);
  if (checksum_bytes(body) != stored_csum) return std::nullopt;
  return body;
}

}  // namespace

std::uint64_t config_hash(const FarmerConfig& cfg) {
  std::uint64_t h = kCheckpointMagic;
  const auto fold = [&h](std::uint64_t v) { h = mix64(h ^ v); };
  std::uint64_t bits;
  std::memcpy(&bits, &cfg.p, sizeof bits);
  fold(bits);
  std::memcpy(&bits, &cfg.max_strength, sizeof bits);
  fold(bits);
  fold(cfg.window);
  std::memcpy(&bits, &cfg.lda_delta, sizeof bits);
  fold(bits);
  fold(cfg.attributes.bits());
  fold(static_cast<std::uint64_t>(cfg.path_mode));
  fold(cfg.max_successors);
  fold(cfg.correlator_capacity);
  return h;
}

std::string serialize_shard(const Farmer& shard) {
  std::string out;

  put_raw<std::uint64_t>(out, shard.request_count());
  const CoMinerStats& ms = shard.miner_stats();
  put_raw<std::uint64_t>(out, ms.pairs_evaluated);
  put_raw<std::uint64_t>(out, ms.pairs_accepted);
  put_raw<std::uint64_t>(out, ms.pairs_filtered);

  // Access window, oldest -> newest (push order on restore).
  const AccessWindow& w = shard.access_window();
  put_raw<std::uint32_t>(out, static_cast<std::uint32_t>(w.size()));
  for (std::size_t i = w.size(); i-- > 0;)
    put_raw<std::uint32_t>(out, w.at(i).value());

  // Per-file semantic state: logical index size, then populated entries.
  put_raw<std::uint64_t>(out, shard.state_size());
  std::uint64_t populated = 0;
  shard.for_each_file_state(
      [&](FileId, const SemanticVector&, const Signature&) { ++populated; });
  put_raw<std::uint64_t>(out, populated);
  shard.for_each_file_state([&](FileId f, const SemanticVector& vec,
                                const Signature& sig) {
    put_raw<std::uint32_t>(out, f.value());
    put_raw<std::uint32_t>(out, vec.user.value());
    put_raw<std::uint32_t>(out, vec.process.value());
    put_raw<std::uint32_t>(out, vec.host.value());
    put_raw<std::uint32_t>(out, vec.dev.value());
    put_raw<std::uint32_t>(out, vec.fid.value());
    put_raw<std::uint32_t>(out, static_cast<std::uint32_t>(
                                    vec.path_components.size()));
    for (TokenId t : vec.path_components)
      put_raw<std::uint32_t>(out, t.value());
    put_raw<std::uint32_t>(out, static_cast<std::uint32_t>(sig.items.size()));
    for (TokenId t : sig.items) put_raw<std::uint32_t>(out, t.value());
    put_raw<std::uint32_t>(out,
                           static_cast<std::uint32_t>(sig.path_sorted.size()));
    for (TokenId t : sig.path_sorted) put_raw<std::uint32_t>(out, t.value());
    put_raw<std::uint8_t>(out, sig.ipa_path ? 1 : 0);
  });

  // Correlation graph: logical node-index size, then populated nodes with
  // successor edges and Correlator Lists in stored order (edge order decides
  // eviction ties; list order is the query output).
  const CorrelationGraph& g = shard.graph();
  put_raw<std::uint64_t>(out, g.node_count());
  std::uint64_t nodes = 0;
  for (std::size_t i = 0; i < g.node_count(); ++i)
    if (g.has_node(FileId(static_cast<std::uint32_t>(i)))) ++nodes;
  put_raw<std::uint64_t>(out, nodes);
  for (std::size_t i = 0; i < g.node_count(); ++i) {
    const FileId f(static_cast<std::uint32_t>(i));
    if (!g.has_node(f)) continue;
    put_raw<std::uint32_t>(out, f.value());
    put_raw<std::uint64_t>(out, g.access_count(f));
    const auto& succs = g.successors(f);
    put_raw<std::uint32_t>(out, static_cast<std::uint32_t>(succs.size()));
    for (const SuccessorEdge& e : succs) {
      put_raw<std::uint32_t>(out, e.successor.value());
      put_raw<float>(out, e.nab);
    }
    const auto& corr = g.correlators(f);
    put_raw<std::uint32_t>(out, static_cast<std::uint32_t>(corr.size()));
    for (const Correlator& c : corr) {
      put_raw<std::uint32_t>(out, c.file.value());
      put_raw<float>(out, c.degree);
    }
  }
  return out;
}

void deserialize_shard(std::string_view blob, Farmer& shard) {
  Cursor in(blob);

  const auto requests = in.get<std::uint64_t>();
  CoMinerStats stats;
  stats.pairs_evaluated = in.get<std::uint64_t>();
  stats.pairs_accepted = in.get<std::uint64_t>();
  stats.pairs_filtered = in.get<std::uint64_t>();
  shard.restore_counters(requests, stats);

  const auto window_count = in.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < window_count; ++i)
    shard.restore_window_push(FileId(in.get<std::uint32_t>()));

  const auto state_size = in.get<std::uint64_t>();
  const auto populated = in.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < populated; ++i) {
    const FileId f(in.get<std::uint32_t>());
    SemanticVector vec;
    vec.user = TokenId(in.get<std::uint32_t>());
    vec.process = TokenId(in.get<std::uint32_t>());
    vec.host = TokenId(in.get<std::uint32_t>());
    vec.dev = TokenId(in.get<std::uint32_t>());
    vec.fid = TokenId(in.get<std::uint32_t>());
    const auto npath = in.get<std::uint32_t>();
    for (std::uint32_t c = 0; c < npath; ++c)
      vec.path_components.push_back(TokenId(in.get<std::uint32_t>()));
    Signature sig;
    const auto nitems = in.get<std::uint32_t>();
    for (std::uint32_t c = 0; c < nitems; ++c)
      sig.items.push_back(TokenId(in.get<std::uint32_t>()));
    const auto nsorted = in.get<std::uint32_t>();
    for (std::uint32_t c = 0; c < nsorted; ++c)
      sig.path_sorted.push_back(TokenId(in.get<std::uint32_t>()));
    sig.ipa_path = in.get<std::uint8_t>() != 0;
    shard.restore_file_state(f, vec, sig);
  }

  const auto node_index = in.get<std::uint64_t>();
  const auto nodes = in.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < nodes; ++i) {
    const FileId f(in.get<std::uint32_t>());
    const auto access_count = in.get<std::uint64_t>();
    std::vector<SuccessorEdge> succs(in.get<std::uint32_t>());
    for (SuccessorEdge& e : succs) {
      e.successor = FileId(in.get<std::uint32_t>());
      e.nab = in.get<float>();
    }
    std::vector<Correlator> corr(in.get<std::uint32_t>());
    for (Correlator& c : corr) {
      c.file = FileId(in.get<std::uint32_t>());
      c.degree = in.get<float>();
    }
    shard.restore_graph_node(f, access_count, succs, corr);
  }

  // Restore the dense-index logical sizes last: restore_* calls above grew
  // both stores to the highest populated id; this grows them the rest of
  // the way to the checkpointed logical sizes (touch()-only slots).
  shard.restore_sizes(state_size, node_index);

  if (!in.done())
    throw std::runtime_error("checkpoint shard blob has trailing bytes");
}

void write_checkpoint_file(const std::string& path, std::uint64_t seq,
                           const FarmerConfig& cfg,
                           const TraceDictionary* dict,
                           std::span<const std::string> shard_blobs) {
  std::string body;
  put_raw<std::uint64_t>(body, seq);
  put_raw<std::uint64_t>(body, config_hash(cfg));
  const std::string dict_bytes = serialize_dictionary(dict);
  put_raw<std::uint64_t>(body, dict_bytes.size());
  body += dict_bytes;
  put_raw<std::uint32_t>(body, static_cast<std::uint32_t>(shard_blobs.size()));
  for (const std::string& blob : shard_blobs) {
    put_raw<std::uint64_t>(body, blob.size());
    body += blob;
  }
  write_framed_atomic(path, kCheckpointMagic, kCheckpointVersion, body);
}

void write_manifest(const std::string& dir, const FarmerConfig& cfg,
                    const TraceDictionary* dict) {
  const std::string path = dir + "/MANIFEST";
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) return;
  std::string body;
  put_raw<std::uint64_t>(body, config_hash(cfg));
  put_raw<std::uint8_t>(body, dict != nullptr ? 1 : 0);
  put_raw<std::uint64_t>(
      body, dict != nullptr ? checksum_bytes(serialize_dictionary(dict)) : 0);
  write_framed_atomic(path, kManifestMagic, kManifestVersion, body);
}

void check_manifest(const std::string& dir, const FarmerConfig& cfg,
                    const TraceDictionary* dict) {
  const std::string path = dir + "/MANIFEST";
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return;
  // The manifest is written atomically, so an unreadable one is damage, not
  // a torn write — there is no older manifest to fall back to, and replaying
  // the directory unchecked could corrupt the model, so it throws.
  const std::optional<std::string> body =
      read_framed(path, kManifestMagic, kManifestVersion);
  if (!body)
    throw std::runtime_error("persist manifest " + path + " is unreadable");
  Cursor in(*body);
  const auto stored_cfg_hash = in.get<std::uint64_t>();
  const auto has_dict = in.get<std::uint8_t>();
  const auto stored_dict_hash = in.get<std::uint64_t>();
  if (!in.done())
    throw std::runtime_error("persist manifest " + path + " is unreadable");
  if (stored_cfg_hash != config_hash(cfg))
    throw std::runtime_error(
        "persist directory " + dir +
        " was created under a different mining configuration");
  if (has_dict != 0 && dict != nullptr &&
      stored_dict_hash != checksum_bytes(serialize_dictionary(dict)))
    throw std::runtime_error("persist directory " + dir +
                             " is bound to a different trace dictionary");
}

void write_checkpoint_dir(const std::string& dir, std::uint64_t seq,
                          const FarmerConfig& cfg, const TraceDictionary* dict,
                          std::span<const Farmer* const> shards) {
  std::filesystem::create_directories(dir);
  std::vector<std::string> blobs;
  blobs.reserve(shards.size());
  for (const Farmer* shard : shards) blobs.push_back(serialize_shard(*shard));
  write_checkpoint_file(dir + "/CHECKPOINT." + std::to_string(seq), seq, cfg,
                        dict, blobs);
}

std::optional<LoadedCheckpoint> read_checkpoint_file(
    const std::string& path, const FarmerConfig& cfg,
    const TraceDictionary* dict) {
  const std::optional<std::string> body =
      read_framed(path, kCheckpointMagic, kCheckpointVersion);
  if (!body) return std::nullopt;

  // The body verified: from here on mismatches are deliberate incompat, not
  // torn writes, so they throw instead of falling back.
  Cursor in(*body);
  LoadedCheckpoint out;
  out.seq = in.get<std::uint64_t>();
  const auto stored_cfg_hash = in.get<std::uint64_t>();
  if (stored_cfg_hash != config_hash(cfg))
    throw std::runtime_error(
        "checkpoint " + path +
        " was written under a different mining configuration");
  const auto dict_len = in.get<std::uint64_t>();
  std::string dict_bytes(dict_len, '\0');
  in.get_bytes(dict_bytes.data(), dict_bytes.size());
  if (dict != nullptr && dict_len > 0 &&
      dict_bytes != serialize_dictionary(dict))
    throw std::runtime_error("checkpoint " + path +
                             " embeds a different trace dictionary");
  const auto shard_count = in.get<std::uint32_t>();
  out.shard_blobs.reserve(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    const auto blob_len = in.get<std::uint64_t>();
    std::string blob(blob_len, '\0');
    in.get_bytes(blob.data(), blob.size());
    out.shard_blobs.push_back(std::move(blob));
  }
  return out;
}

}  // namespace farmer::persist
