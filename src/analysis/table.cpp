#include "analysis/table.hpp"

#include <algorithm>
#include <ostream>

namespace farmer {

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& caption,
                             const std::string& expectation) {
  os << '\n'
     << "================================================================\n"
     << id << ": " << caption << '\n';
  if (!expectation.empty()) os << "paper expectation: " << expectation << '\n';
  os << "================================================================\n";
}

}  // namespace farmer
