#include "analysis/table.hpp"

#include <algorithm>
#include <ostream>

namespace farmer {

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Table::print_json(std::ostream& os, const std::string& name) const {
  os << "{\"name\": " << json_quote(name) << ", \"columns\": [";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ", ";
    os << json_quote(headers_[c]);
  }
  os << "], \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) os << ", ";
    os << '[';
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c) os << ", ";
      os << json_quote(rows_[r][c]);
    }
    os << ']';
  }
  os << "]}";
}

void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& caption,
                             const std::string& expectation) {
  os << '\n'
     << "================================================================\n"
     << id << ": " << caption << '\n';
  if (!expectation.empty()) os << "paper expectation: " << expectation << '\n';
  os << "================================================================\n";
}

}  // namespace farmer
