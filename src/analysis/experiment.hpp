// Shared experiment parameters.
//
// The paper does not publish its MDS cache size; what matters for shape
// reproduction is the cache-to-working-set ratio per trace. These defaults
// are calibrated so the *LRU baseline* lands in each trace's published
// hit-ratio band (INS very high, HP mid, RES low-mid, LLNL low), which the
// prefetchers then improve on.
#pragma once

#include <algorithm>
#include <cstddef>

#include "trace/record.hpp"

namespace farmer {

/// Metadata-cache capacity (entries) for a trace in the paper experiments.
[[nodiscard]] inline std::size_t default_cache_capacity(const Trace& trace) {
  const std::size_t files = trace.file_count();
  double fraction;
  switch (trace.kind) {
    case TraceKind::kINS:
      fraction = 0.50;  // tiny instructional namespace, generous cache
      break;
    case TraceKind::kRES:
      fraction = 0.06;
      break;
    case TraceKind::kHP:
      fraction = 0.05;
      break;
    case TraceKind::kLLNL:
      fraction = 0.008;  // checkpoint/slice churn dwarfs any real cache
      break;
    default:
      fraction = 0.05;
  }
  return std::max<std::size_t>(
      16, static_cast<std::size_t>(static_cast<double>(files) * fraction));
}

/// Prefetch degree used across the paper experiments.
inline constexpr std::size_t kDefaultPrefetchDegree = 4;

/// Experiment seed (all benches share it so tables are cross-consistent).
inline constexpr std::uint64_t kExperimentSeed = 20080122;  // paper date

}  // namespace farmer
