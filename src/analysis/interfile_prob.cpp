#include "analysis/interfile_prob.hpp"

#include <unordered_map>

#include "common/hash.hpp"

namespace farmer {

namespace {

/// Key identifying the attribute-value substream a record belongs to.
std::uint64_t substream_key(const TraceRecord& rec, AttributeMask mask,
                            const TraceDictionary& dict) {
  std::uint64_t key = 0x9E3779B97F4A7C15ull;
  if (mask.has(Attribute::kUser))
    key = mix64(key ^ rec.user_token.value());
  if (mask.has(Attribute::kProcess))
    key = mix64(key ^ rec.process_token.value());
  if (mask.has(Attribute::kHost))
    key = mix64(key ^ rec.host_token.value());
  // Path / FileId partition by directory/device *locality*, not by the file
  // itself (a per-file substream would be degenerate: every transition a
  // self-transition). Paths hash their parent-directory components; file
  // ids use the device token.
  if (mask.has(Attribute::kPath) && rec.path.valid()) {
    const auto& comps = dict.path_components(rec.path);
    for (std::size_t i = 0; i + 1 < comps.size(); ++i)
      key = mix64(key ^ comps[i].value());
  }
  if (mask.has(Attribute::kFileId)) key = mix64(key ^ rec.dev_token.value());
  return key;
}

}  // namespace

std::vector<InterfileProbRow> interfile_access_probability(
    const Trace& trace, const std::vector<AttributeCombination>& masks) {
  std::vector<InterfileProbRow> rows;
  rows.reserve(masks.size());

  for (const auto& combo : masks) {
    // First pass: per-substream successor counts c(A,B) and c(A).
    std::unordered_map<std::uint64_t, FileId> prev_in_stream;
    std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, double,
                       PairHash>
        pair_count;  // ((stream, A<<32|B)) -> count
    std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, double,
                       PairHash>
        pred_count;  // ((stream, A)) -> count
    std::uint64_t transitions = 0;

    for (const TraceRecord& rec : trace.records) {
      const std::uint64_t stream =
          combo.mask.empty() ? 0
                             : substream_key(rec, combo.mask, *trace.dict);
      auto it = prev_in_stream.find(stream);
      if (it != prev_in_stream.end() && it->second != rec.file) {
        const std::uint64_t a = it->second.value();
        const std::uint64_t b = rec.file.value();
        pair_count[{stream, (a << 32) | b}] += 1.0;
        pred_count[{stream, a}] += 1.0;
        ++transitions;
      }
      prev_in_stream[stream] = rec.file;
    }

    // Second pass over the aggregates: expected conditional probability of
    // the observed transition = sum c(A,B)^2 / c(A) / #transitions.
    double numer = 0.0;
    for (const auto& [key, cab] : pair_count) {
      const auto a = key.second >> 32;
      const double ca = pred_count[{key.first, a}];
      numer += cab * cab / ca;
    }
    InterfileProbRow row;
    row.label = combo.label;
    row.mask = combo.mask;
    row.transitions = transitions;
    row.probability =
        transitions > 0 ? numer / static_cast<double>(transitions) : 0.0;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<AttributeCombination> figure1_combinations(bool use_path) {
  const Attribute loc = use_path ? Attribute::kPath : Attribute::kFileId;
  const std::string loc_name = attribute_name(loc);
  using A = Attribute;
  std::vector<AttributeCombination> rows;
  rows.push_back({"none", AttributeMask{}});
  rows.push_back({"{uid}", AttributeMask{A::kUser}});
  rows.push_back({"{pid}", AttributeMask{A::kProcess}});
  rows.push_back({"{host}", AttributeMask{A::kHost}});
  rows.push_back({"{" + loc_name + "}", AttributeMask{} | loc});
  rows.push_back({"{uid, pid}", AttributeMask{A::kUser, A::kProcess}});
  rows.push_back(
      {"{uid, " + loc_name + "}", AttributeMask{A::kUser} | loc});
  rows.push_back({"{uid, pid, host, " + loc_name + "}",
                  AttributeMask{A::kUser, A::kProcess, A::kHost} | loc});
  return rows;
}

}  // namespace farmer
