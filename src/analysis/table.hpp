// Console table formatting shared by the bench harnesses, so every
// reproduced table/figure prints in a uniform, diff-friendly layout — plus
// a machine-readable JSON rendering for the per-PR bench baselines
// (`--json`, scripts/bench_to_json.py).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace farmer {

/// JSON string literal for `s`: quotes plus the standard escapes (used by
/// the benches' --json output; numbers are emitted as strings so one
/// rendering rule serves every cell).
[[nodiscard]] std::string json_quote(std::string_view s);

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds a row; cells beyond the header count are dropped, missing cells
  /// render empty.
  void add_row(std::vector<std::string> cells);

  /// Renders with column auto-sizing, a header rule, and 2-space padding.
  void print(std::ostream& os) const;

  /// Emits {"name": ..., "columns": [...], "rows": [[...]]} with every cell
  /// as a JSON string (cells keep the exact text `print` would show, so the
  /// human and machine renderings can never drift apart).
  void print_json(std::ostream& os, const std::string& name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a figure/table banner: id, caption, and the paper's expectation.
void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& caption,
                             const std::string& expectation);

}  // namespace farmer
