// Console table formatting shared by the bench harnesses, so every
// reproduced table/figure prints in a uniform, diff-friendly layout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace farmer {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds a row; cells beyond the header count are dropped, missing cells
  /// render empty.
  void add_row(std::vector<std::string> cells);

  /// Renders with column auto-sizing, a header rule, and 2-space padding.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a figure/table banner: id, caption, and the paper's expectation.
void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& caption,
                             const std::string& expectation);

}  // namespace farmer
