// Inter-file access probability analysis (Section 2.2, Figure 1).
//
// "The probability of inter-file access of a file A to another file B refers
// to the likelihood of file B being accessed given that file A has been
// accessed." We measure, per attribute combination, the expected conditional
// probability of the observed transitions when the stream is partitioned by
// the attributes' values:
//
//   P = sum over transitions (A -> B) of  c(A,B) / c(A)  weighted by
//       transition frequency  =  sum_{A,B} c(A,B)^2 / c(A)  /  #transitions
//
// computed within each attribute-value substream and weighted by substream
// size. Filtering by an informative attribute removes interleaving noise and
// raises the probability; the unfiltered stream ("none") scores lowest —
// the paper's third observation.
#pragma once

#include <string>
#include <vector>

#include "trace/record.hpp"
#include "vsm/attribute.hpp"

namespace farmer {

struct InterfileProbRow {
  std::string label;
  AttributeMask mask;   ///< empty mask = unfiltered stream
  double probability = 0.0;
  std::uint64_t transitions = 0;
};

/// Computes the inter-file access probability of `trace` partitioned by
/// each mask in `masks`. An empty mask means no partitioning.
[[nodiscard]] std::vector<InterfileProbRow> interfile_access_probability(
    const Trace& trace, const std::vector<AttributeCombination>& masks);

/// The Figure-1 attribute set: none, uid, pid, host, path-or-fid, and the
/// pairwise combinations the paper plots.
[[nodiscard]] std::vector<AttributeCombination> figure1_combinations(
    bool use_path);

}  // namespace farmer
