// Out-of-core trace streaming: the v3 mmap-able binary trace format.
//
// v2 put the dictionary first and the records last, so replaying a trace
// meant deserializing every record through an istream — fine at 100k
// records, hopeless at billions. v3 inverts the layout so the record
// section sits at a fixed offset with a fixed stride and replay needs no
// decode pass at all: the file is mapped and the section *is* a
// std::span<const TraceRecord>.
//
// File layout (little-endian, 64-byte header):
//
//   [0]  u32 magic (kTraceMagic)     [4]  u32 version (3)
//   [8]  u64 record_count            [16] u64 record_offset (== 64)
//   [24] u64 meta_offset             [32] u64 file_size
//   [40] u64 checksum                [48] u8 kind, u8 has_paths,
//                                         14 reserved zero bytes
//   [64] record section: record_count x sizeof(TraceRecord) raw records,
//        padding bytes canonicalized to zero by the writer
//   [meta_offset] metadata footer: u32 name_len, name bytes, dictionary
//        (trace_io encode_dictionary), ending exactly at file_size
//
// The footer comes last so a TraceWriter can stream records with bounded
// memory and patch the header on finish(); meta_offset always equals
// record_offset + record_count * sizeof(TraceRecord).
//
// The checksum is a word-wise mix64 chain over the record section, then
// the metadata footer, then the header fields (record_count, meta_offset,
// file_size, kind, has_paths), so truncations and bit flips anywhere in
// the file are detected at open time — TraceReader validates the header
// against the actual file size, verifies the checksum, decodes the
// dictionary with bounds/id validation, and only then exposes the record
// span. Records themselves are validated lazily: materialize() checks
// every record, while records() trusts the checksum (replay at billions of
// records cannot afford a per-field pass).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.hpp"

namespace farmer {

inline constexpr std::size_t kTraceV3HeaderBytes = 64;

/// Streams a v3 trace file with bounded memory: records are appended
/// incrementally (checksummed on the fly), the dictionary footer and the
/// header are written by finish(). A writer that is destroyed without
/// finish() leaves a file with a zeroed header, which every reader
/// rejects — there are no partially-valid v3 files.
///
/// Not thread-safe. Throws std::runtime_error on I/O failure.
class TraceWriter {
 public:
  TraceWriter(const std::string& path, TraceKind kind, bool has_paths);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one record / a batch of records to the record section.
  /// Padding bytes are canonicalized to zero so files are byte-stable for
  /// a given record stream.
  void append(const TraceRecord& rec);
  void append(std::span<const TraceRecord> records);

  /// Writes the metadata footer (`name` + `dict`), patches the header and
  /// closes the file. Must be called exactly once; append() is invalid
  /// afterwards. The dictionary may keep growing until this call — the
  /// multi-tenant streaming generator holds several writers open against
  /// one shared dictionary and finishes them all at the end.
  void finish(std::string_view name, const TraceDictionary& dict);

  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return count_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void put_bytes(const void* data, std::size_t len);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t count_ = 0;
  std::uint64_t hash_ = 0;
  TraceKind kind_;
  bool has_paths_;
  bool finished_ = false;
};

/// Maps a v3 trace file and exposes its record section as a zero-copy
/// span. Construction validates the header against the real file size,
/// verifies the whole-file checksum and decodes the dictionary (see the
/// format notes above); any corruption throws std::runtime_error and
/// nothing is allocated beyond the dictionary itself.
///
/// The span returned by records() points into the mapping and is valid
/// only while the reader is alive. Const methods are safe to call from
/// multiple threads (the mapping is read-only).
class TraceReader {
 public:
  explicit TraceReader(const std::string& path);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  /// The record section, straight off the mapping — no decode pass.
  [[nodiscard]] std::span<const TraceRecord> records() const noexcept {
    return {records_, count_};
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] TraceKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool has_paths() const noexcept { return has_paths_; }
  [[nodiscard]] const std::shared_ptr<TraceDictionary>& dict()
      const noexcept {
    return dict_;
  }

  /// The raw dictionary bytes inside the footer (name excluded) — used by
  /// merge_trace_streams to check inputs share one dictionary without
  /// re-encoding it.
  [[nodiscard]] std::string_view dict_bytes() const noexcept {
    return dict_bytes_;
  }

  /// Copies the file into an in-memory Trace, validating every record
  /// against the dictionary (trace_io validate_record). This is the slow,
  /// paranoid path read_trace_binary takes; replay benches use records().
  [[nodiscard]] Trace materialize() const;

 private:
  [[nodiscard]] const char* base() const noexcept;

  std::string path_;
  void* map_ = nullptr;            ///< mmap on POSIX…
  std::size_t map_len_ = 0;
  std::unique_ptr<std::uint64_t[]> buffer_;  ///< …aligned buffer elsewhere
  const TraceRecord* records_ = nullptr;
  std::uint64_t count_ = 0;
  std::string name_;
  TraceKind kind_ = TraceKind::kCustom;
  bool has_paths_ = false;
  std::shared_ptr<TraceDictionary> dict_;
  std::string_view dict_bytes_;
};

/// External k-way merge: interleaves the (time-ordered) record streams of
/// `inputs` into one v3 file at `out_path`, ordered by (timestamp, input
/// index) — byte-for-byte the order std::stable_sort gives the in-memory
/// multi-tenant merge, so the streamed pipeline and make_multi_tenant_trace
/// produce identical record streams. Memory is O(inputs), independent of
/// record counts.
///
/// All inputs must share one dictionary (identical dict_bytes(), as the
/// streaming generator guarantees) and be internally time-ordered; the
/// output kind is the common input kind (kCustom when mixed) and has_paths
/// is the conjunction. Returns the merged record count. Throws
/// std::runtime_error on corrupt/mismatched inputs, std::invalid_argument
/// when `inputs` is empty.
std::uint64_t merge_trace_streams(std::span<const std::string> inputs,
                                  const std::string& out_path,
                                  std::string_view out_name);

}  // namespace farmer
