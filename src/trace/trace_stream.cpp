#include "trace/trace_stream.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "common/hash.hpp"
#include "trace/trace_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FARMER_TRACE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace farmer {

namespace {

// The record section is reinterpreted in place from the mapping, so the
// stride baked into files is sizeof(TraceRecord); the u64 checksum words
// below additionally require the stride to stay word-aligned.
static_assert(sizeof(TraceRecord) % 8 == 0,
              "v3 trace format requires a word-aligned record stride");

constexpr std::uint64_t kChecksumSeed = 0x9E3779B97F4A7C15ull;

// v3 header field offsets (bytes); layout documented in trace_stream.hpp.
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffRecordCount = 8;
constexpr std::size_t kOffRecordOffset = 16;
constexpr std::size_t kOffMetaOffset = 24;
constexpr std::size_t kOffFileSize = 32;
constexpr std::size_t kOffChecksum = 40;
constexpr std::size_t kOffKind = 48;
constexpr std::size_t kOffHasPaths = 49;
constexpr std::size_t kOffReserved = 50;

std::uint64_t mix_word(std::uint64_t h, std::uint64_t w) noexcept {
  return mix64(h ^ w);
}

/// Folds `len` bytes into the chain, 8 at a time; the trailing partial
/// word (only the metadata footer can have one) is zero-padded. The total
/// byte length is folded separately by finish_checksum, so zero padding
/// cannot alias a genuinely longer stream.
std::uint64_t mix_bytes(std::uint64_t h, const void* data,
                        std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  while (len >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = mix_word(h, w);
    p += 8;
    len -= 8;
  }
  if (len > 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, p, len);
    h = mix_word(h, w);
  }
  return h;
}

/// Finishes the chain over a file's payload: the total payload length plus
/// every header field the payload does not already pin down. A flip in any
/// header byte (or any payload byte, via the chain in `h`) changes the
/// result.
std::uint64_t finish_checksum(std::uint64_t h, std::uint64_t payload_bytes,
                              std::uint64_t record_count,
                              std::uint64_t meta_offset,
                              std::uint64_t file_size, std::uint8_t kind,
                              std::uint8_t has_paths) noexcept {
  h = mix_word(h, payload_bytes);
  h = mix_word(h, record_count);
  h = mix_word(h, meta_offset);
  h = mix_word(h, file_size);
  h = mix_word(h, static_cast<std::uint64_t>(kind) |
                      (static_cast<std::uint64_t>(has_paths) << 8));
  return h;
}

template <typename T>
void store(char* header, std::size_t off, T v) noexcept {
  std::memcpy(header + off, &v, sizeof v);
}

template <typename T>
T load(const char* base, std::size_t off) noexcept {
  T v;
  std::memcpy(&v, base + off, sizeof v);
  return v;
}

/// Serializes one record into `out` (sizeof(TraceRecord) bytes) with its
/// padding bytes canonicalized to zero. Padding is indeterminate in
/// in-memory records, but files must be byte-stable (the checksum covers
/// every byte, and the differential tests compare whole files). This must
/// go through raw byte writes: zeroing a TraceRecord and assigning members
/// looks equivalent, but the compiler may fuse that into a whole-struct
/// copy (destination padding is indeterminate after member assignment) and
/// drag the source's padding along — memset + per-field memcpy into a byte
/// buffer has no such latitude.
void canonical_bytes(const TraceRecord& r, unsigned char* out) noexcept {
  std::memset(out, 0, sizeof(TraceRecord));
  const auto put = [out](std::size_t off, const auto& v) {
    std::memcpy(out + off, &v, sizeof v);
  };
  put(offsetof(TraceRecord, timestamp), r.timestamp);
  put(offsetof(TraceRecord, file), r.file);
  put(offsetof(TraceRecord, user), r.user);
  put(offsetof(TraceRecord, process), r.process);
  put(offsetof(TraceRecord, host), r.host);
  put(offsetof(TraceRecord, job), r.job);
  put(offsetof(TraceRecord, path), r.path);
  put(offsetof(TraceRecord, user_token), r.user_token);
  put(offsetof(TraceRecord, process_token), r.process_token);
  put(offsetof(TraceRecord, host_token), r.host_token);
  put(offsetof(TraceRecord, dev_token), r.dev_token);
  put(offsetof(TraceRecord, fid_token), r.fid_token);
  put(offsetof(TraceRecord, program_token), r.program_token);
  put(offsetof(TraceRecord, size_bytes), r.size_bytes);
  put(offsetof(TraceRecord, op), r.op);
}

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error(std::string(what) + ": " + path);
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceWriter

TraceWriter::TraceWriter(const std::string& path, TraceKind kind,
                         bool has_paths)
    : path_(path), hash_(kChecksumSeed), kind_(kind), has_paths_(has_paths) {
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) fail(path_, "cannot open trace for write");
  std::setvbuf(file_, nullptr, _IOFBF, 1u << 20);
  // Placeholder header: all zeroes, rejected by every reader. finish()
  // patches it, so a crashed writer never leaves a valid-looking file.
  const char zeros[kTraceV3HeaderBytes] = {};
  put_bytes(zeros, sizeof zeros);
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceWriter::put_bytes(const void* data, std::size_t len) {
  if (std::fwrite(data, 1, len, file_) != len)
    fail(path_, "short write to trace");
}

void TraceWriter::append(const TraceRecord& rec) {
  append(std::span<const TraceRecord>(&rec, 1));
}

void TraceWriter::append(std::span<const TraceRecord> records) {
  if (finished_) fail(path_, "append after finish");
  alignas(8) unsigned char chunk[128 * sizeof(TraceRecord)];
  while (!records.empty()) {
    const std::size_t n = std::min(records.size(), std::size_t{128});
    for (std::size_t i = 0; i < n; ++i)
      canonical_bytes(records[i], chunk + i * sizeof(TraceRecord));
    const std::size_t bytes = n * sizeof(TraceRecord);
    put_bytes(chunk, bytes);
    hash_ = mix_bytes(hash_, chunk, bytes);
    count_ += n;
    records = records.subspan(n);
  }
}

void TraceWriter::finish(std::string_view name,
                         const TraceDictionary& dict) {
  if (finished_) fail(path_, "finish called twice");
  finished_ = true;

  std::string meta;
  const auto name_len = static_cast<std::uint32_t>(name.size());
  meta.append(reinterpret_cast<const char*>(&name_len), sizeof name_len);
  meta.append(name);
  encode_dictionary(meta, dict);
  put_bytes(meta.data(), meta.size());

  const std::uint64_t record_bytes = count_ * sizeof(TraceRecord);
  const std::uint64_t meta_offset = kTraceV3HeaderBytes + record_bytes;
  const std::uint64_t file_size = meta_offset + meta.size();
  std::uint64_t h = mix_bytes(hash_, meta.data(), meta.size());
  h = finish_checksum(h, record_bytes + meta.size(), count_, meta_offset,
                      file_size, static_cast<std::uint8_t>(kind_),
                      has_paths_ ? 1 : 0);

  char header[kTraceV3HeaderBytes] = {};
  store(header, kOffMagic, kTraceMagic);
  store(header, kOffVersion, kTraceVersion3);
  store(header, kOffRecordCount, count_);
  store(header, kOffRecordOffset,
        static_cast<std::uint64_t>(kTraceV3HeaderBytes));
  store(header, kOffMetaOffset, meta_offset);
  store(header, kOffFileSize, file_size);
  store(header, kOffChecksum, h);
  store(header, kOffKind, static_cast<std::uint8_t>(kind_));
  store(header, kOffHasPaths, static_cast<std::uint8_t>(has_paths_ ? 1 : 0));

  if (std::fseek(file_, 0, SEEK_SET) != 0) fail(path_, "seek failed");
  put_bytes(header, sizeof header);
  const bool ok = std::fflush(file_) == 0 && std::ferror(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (!ok) fail(path_, "flush failed for trace");
}

// ---------------------------------------------------------------------------
// TraceReader

TraceReader::TraceReader(const std::string& path) : path_(path) {
  std::uint64_t actual_size = 0;

#ifdef FARMER_TRACE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path_, "cannot open trace for read");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path_, "cannot stat trace");
  }
  actual_size = static_cast<std::uint64_t>(st.st_size);
  if (actual_size < kTraceV3HeaderBytes) {
    ::close(fd);
    fail(path_, "trace file truncated (no header)");
  }
  void* map = ::mmap(nullptr, actual_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) fail(path_, "cannot map trace");
  map_ = map;
  map_len_ = actual_size;
  ::madvise(map_, map_len_, MADV_SEQUENTIAL);
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) fail(path_, "cannot open trace for read");
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (end < static_cast<long>(kTraceV3HeaderBytes)) {
    std::fclose(f);
    fail(path_, "trace file truncated (no header)");
  }
  actual_size = static_cast<std::uint64_t>(end);
  // u64 backing keeps the record section 8-byte aligned, matching mmap's
  // page alignment guarantee.
  buffer_ = std::make_unique<std::uint64_t[]>((actual_size + 7) / 8);
  const std::size_t got =
      std::fread(buffer_.get(), 1, actual_size, f);
  std::fclose(f);
  if (got != actual_size) fail(path_, "short read from trace");
  map_len_ = actual_size;
#endif

  const char* b = base();
  if (load<std::uint32_t>(b, kOffMagic) != kTraceMagic)
    fail(path_, "not a farmer trace");
  if (load<std::uint32_t>(b, kOffVersion) != kTraceVersion3)
    fail(path_, "unsupported trace version");

  const auto record_count = load<std::uint64_t>(b, kOffRecordCount);
  const auto record_offset = load<std::uint64_t>(b, kOffRecordOffset);
  const auto meta_offset = load<std::uint64_t>(b, kOffMetaOffset);
  const auto file_size = load<std::uint64_t>(b, kOffFileSize);
  const auto checksum = load<std::uint64_t>(b, kOffChecksum);
  const auto kind_raw = load<std::uint8_t>(b, kOffKind);
  const auto has_paths_raw = load<std::uint8_t>(b, kOffHasPaths);

  // Header consistency before touching any payload: every count is pinned
  // to the size the file actually has, so a corrupt header cannot drive
  // an allocation or an out-of-bounds scan.
  if (record_offset != kTraceV3HeaderBytes)
    fail(path_, "trace record section offset corrupt");
  if (file_size != actual_size)
    fail(path_, "trace header size disagrees with file size");
  if (record_count > (file_size - kTraceV3HeaderBytes) / sizeof(TraceRecord))
    fail(path_, "trace record count exceeds file size");
  if (meta_offset !=
      kTraceV3HeaderBytes + record_count * sizeof(TraceRecord))
    fail(path_, "trace metadata offset corrupt");
  if (meta_offset > file_size)
    fail(path_, "trace metadata offset exceeds file size");
  for (std::size_t i = kOffReserved; i < kTraceV3HeaderBytes; ++i)
    if (b[i] != 0) fail(path_, "trace header reserved bytes corrupt");
  if (has_paths_raw > 1) fail(path_, "trace has_paths flag corrupt");
  kind_ = validate_trace_kind(kind_raw);
  has_paths_ = has_paths_raw != 0;

  const std::uint64_t payload_bytes = file_size - kTraceV3HeaderBytes;
  std::uint64_t h = mix_bytes(kChecksumSeed, b + kTraceV3HeaderBytes,
                              meta_offset - kTraceV3HeaderBytes);
  h = mix_bytes(h, b + meta_offset, file_size - meta_offset);
  h = finish_checksum(h, payload_bytes, record_count, meta_offset, file_size,
                      kind_raw, has_paths_raw);
  if (h != checksum) fail(path_, "trace file checksum mismatch");

  records_ = reinterpret_cast<const TraceRecord*>(b + kTraceV3HeaderBytes);
  count_ = record_count;

  ByteReader meta(std::string_view(b + meta_offset, file_size - meta_offset),
                  "trace metadata");
  const auto name_len = meta.get<std::uint32_t>();
  name_ = std::string(meta.view(name_len));
  dict_bytes_ = std::string_view(b + meta_offset + 4 + name_len,
                                 meta.remaining());
  dict_ = std::make_shared<TraceDictionary>();
  ByteReader dict_reader(dict_bytes_, "trace dictionary");
  decode_dictionary(dict_reader, *dict_);
  if (!dict_reader.done())
    fail(path_, "trailing bytes after trace dictionary");
}

TraceReader::~TraceReader() {
#ifdef FARMER_TRACE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
}

const char* TraceReader::base() const noexcept {
#ifdef FARMER_TRACE_MMAP
  return static_cast<const char*>(map_);
#else
  return reinterpret_cast<const char*>(buffer_.get());
#endif
}

Trace TraceReader::materialize() const {
  Trace t;
  t.name = name_;
  t.kind = kind_;
  t.has_paths = has_paths_;
  // Deep-copy the dictionary: the returned Trace outlives this reader and
  // callers are free to mutate theirs.
  t.dict = std::make_shared<TraceDictionary>(*dict_);
  t.records.reserve(count_);
  for (const TraceRecord& r : records()) {
    validate_record(r, *t.dict);
    t.records.push_back(r);
  }
  return t;
}

// ---------------------------------------------------------------------------
// External k-way merge

std::uint64_t merge_trace_streams(std::span<const std::string> inputs,
                                  const std::string& out_path,
                                  std::string_view out_name) {
  if (inputs.empty())
    throw std::invalid_argument("merge_trace_streams: no inputs");

  std::vector<std::unique_ptr<TraceReader>> readers;
  readers.reserve(inputs.size());
  for (const std::string& p : inputs)
    readers.push_back(std::make_unique<TraceReader>(p));

  TraceKind kind = readers.front()->kind();
  bool has_paths = readers.front()->has_paths();
  for (std::size_t i = 1; i < readers.size(); ++i) {
    if (readers[i]->dict_bytes() != readers.front()->dict_bytes())
      throw std::runtime_error(
          "merge_trace_streams: inputs disagree on dictionary: " + inputs[i]);
    if (readers[i]->kind() != kind) kind = TraceKind::kCustom;
    has_paths = has_paths && readers[i]->has_paths();
  }

  std::vector<const TraceRecord*> cur(readers.size());
  std::vector<const TraceRecord*> end(readers.size());
  for (std::size_t i = 0; i < readers.size(); ++i) {
    const auto span = readers[i]->records();
    cur[i] = span.data();
    end[i] = span.data() + span.size();
  }

  // Min-heap on (timestamp, input index). The index tie-break reproduces
  // std::stable_sort's order on the concatenated per-tenant streams, which
  // is what makes the streamed pipeline byte-identical to
  // make_multi_tenant_trace (see trace_stream.hpp).
  struct Head {
    SimTime t;
    std::uint32_t src;
  };
  const auto later = [](const Head& a, const Head& b) {
    return a.t != b.t ? a.t > b.t : a.src > b.src;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(later)> heap(later);
  for (std::size_t i = 0; i < readers.size(); ++i)
    if (cur[i] != end[i])
      heap.push({cur[i]->timestamp, static_cast<std::uint32_t>(i)});

  TraceWriter writer(out_path, kind, has_paths);
  while (!heap.empty()) {
    const Head head = heap.top();
    heap.pop();
    writer.append(*cur[head.src]);
    if (++cur[head.src] != end[head.src]) {
      if (cur[head.src]->timestamp < head.t)
        throw std::runtime_error(
            "merge_trace_streams: input not time-ordered: " +
            inputs[head.src]);
      heap.push({cur[head.src]->timestamp, head.src});
    }
  }
  writer.finish(out_name, *readers.front()->dict());
  return writer.records_written();
}

}  // namespace farmer
