// Synthetic trace generation.
//
// The generator reproduces the *structure* of the four studied traces rather
// than their bytes (see DESIGN.md): a namespace of correlated file groups
// owned by users, accessed by process sessions that sweep their group in a
// canonical order with skip/swap jitter and injected noise, all interleaved
// by overlapping session arrivals. LLNL-style profiles instead run parallel
// jobs whose ranks hammer shared input sets and private checkpoint files.
//
// Generation is deterministic for a given (profile, seed): session event
// streams are produced in parallel from split RNG streams and merged with a
// stable order.
#pragma once

#include <cstdint>

#include "trace/profile.hpp"
#include "trace/record.hpp"

namespace farmer {

/// Generates a complete trace. Thread-safe w.r.t. other generator calls.
[[nodiscard]] Trace generate_trace(const WorkloadProfile& profile,
                                   std::uint64_t seed);

/// Convenience: the four paper traces at the default experiment scale.
[[nodiscard]] Trace make_paper_trace(TraceKind kind, std::uint64_t seed,
                                     double scale = 1.0);

}  // namespace farmer
