// Synthetic trace generation.
//
// The generator reproduces the *structure* of the four studied traces rather
// than their bytes (see DESIGN.md): a namespace of correlated file groups
// owned by users, accessed by process sessions that sweep their group in a
// canonical order with skip/swap jitter and injected noise, all interleaved
// by overlapping session arrivals. LLNL-style profiles instead run parallel
// jobs whose ranks hammer shared input sets and private checkpoint files.
//
// Generation is deterministic for a given (profile, seed): session event
// streams are produced in parallel from split RNG streams and merged with a
// stable order.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "trace/profile.hpp"
#include "trace/record.hpp"

namespace farmer {

/// Ground-truth owning tenant of `f` under contiguous FileId ranges:
/// tenant `t` owns [begins[t], begins[t+1]); ids past the last range clamp
/// into the final tenant, mirroring MinerRouter::range_tenants. Shared by
/// the in-memory and streamed multi-tenant generators so router wirings
/// built from either cannot drift.
[[nodiscard]] inline std::uint32_t tenant_of_ranges(
    const std::vector<std::uint32_t>& begins, FileId f) noexcept {
  std::uint32_t t = 0;
  while (t + 2 < begins.size() && f.value() >= begins[t + 1]) ++t;
  return t;
}

/// Generates a complete trace. Thread-safe w.r.t. other generator calls.
[[nodiscard]] Trace generate_trace(const WorkloadProfile& profile,
                                   std::uint64_t seed);

/// Convenience: the four paper traces at the default experiment scale.
[[nodiscard]] Trace make_paper_trace(TraceKind kind, std::uint64_t seed,
                                     double scale = 1.0);

/// A merged multi-tenant request stream, as one mining service observing
/// several independent workloads at once would see it (the serving scenario
/// the "router" backend partitions — api/miner_router.hpp).
///
/// Tenant `t`'s files occupy the contiguous FileId range
/// [file_begin[t], file_begin[t+1]); records of all tenants interleave by
/// timestamp. Tenants share *nothing*: users, processes, hosts, jobs,
/// ground-truth groups and every interned token (each tenant's strings are
/// prefixed "t<t>~") are disjoint by construction, so any cross-tenant
/// correlation a miner reports is a mining artifact, not workload signal.
struct MultiTenantTrace {
  Trace trace;
  /// Per-tenant FileId range starts plus one final end marker
  /// (size == tenant_count() + 1, file_begin.front() == 0,
  /// file_begin.back() == trace.file_count()).
  std::vector<std::uint32_t> file_begin;

  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return file_begin.empty() ? 0 : file_begin.size() - 1;
  }
  /// Ground-truth owning tenant of `f` (ids past the last range clamp into
  /// the final tenant, mirroring MinerRouter::range_tenants).
  [[nodiscard]] std::uint32_t tenant_of(FileId f) const noexcept {
    return tenant_of_ranges(file_begin, f);
  }
  /// Self-contained FileId→tenant function over these ranges (captures
  /// them by value, so it may outlive this object) — the ground-truth map
  /// to hand to MinerOptions::router_tenant_of.
  [[nodiscard]] std::function<std::uint32_t(FileId)> tenant_map() const {
    return [begins = file_begin](FileId f) {
      return tenant_of_ranges(begins, f);
    };
  }
};

/// Generates one paper trace per entry of `tenants` (seeds split from
/// `seed`) and splices them into a single dictionary and time-interleaved
/// record stream. Deterministic for a given (tenants, seed, scale);
/// `trace.has_paths` is the conjunction over tenants.
[[nodiscard]] MultiTenantTrace make_multi_tenant_trace(
    std::span<const TraceKind> tenants, std::uint64_t seed,
    double scale = 1.0);

/// Parameters for the streamed (out-of-core) multi-tenant generator.
struct StreamedTraceSpec {
  std::vector<TraceKind> tenants;
  std::uint64_t seed = 42;
  double scale = 1.0;
  /// Workload repetitions per tenant. Each round re-generates the tenant's
  /// profile from a split seed and splices it after the previous round on
  /// the time axis, so record volume scales linearly in `rounds` while
  /// generator memory stays bounded by a single round — this is how multi-GB
  /// traces are produced without a multi-GB Trace.
  std::size_t rounds = 1;
};

/// The on-disk result of stream_multi_tenant_trace: one time-ordered v3
/// part file per tenant, all embedding the identical merged dictionary, so
/// merge_trace_streams can interleave them into one stream. With
/// rounds == 1 that merged stream is byte-identical to
/// make_multi_tenant_trace(tenants, seed, scale) written via
/// write_trace_binary — the differential the tests pin down.
struct StreamedMultiTenantTrace {
  std::vector<std::string> part_paths;  ///< one per tenant, merge inputs
  /// Per-tenant FileId range starts plus one final end marker (see
  /// MultiTenantTrace::file_begin).
  std::vector<std::uint32_t> file_begin;
  std::string name;  ///< merged trace name; pass as merge out_name
  bool has_paths = false;
  std::uint64_t records_written = 0;  ///< total across all parts

  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return file_begin.empty() ? 0 : file_begin.size() - 1;
  }
  [[nodiscard]] std::function<std::uint32_t(FileId)> tenant_map() const {
    return [begins = file_begin](FileId f) {
      return tenant_of_ranges(begins, f);
    };
  }
};

/// Streamed counterpart of make_multi_tenant_trace: generates each tenant
/// round by round and appends remapped records straight to a per-tenant
/// TraceWriter under `dir`, holding at most one round's records in memory.
/// All writers stay open until every tenant is spliced, then finish with
/// the shared dictionary. Deterministic for a given (spec, dir); throws
/// std::invalid_argument when spec.tenants is empty or spec.rounds is 0.
StreamedMultiTenantTrace stream_multi_tenant_trace(
    const StreamedTraceSpec& spec, const std::string& dir);

}  // namespace farmer
