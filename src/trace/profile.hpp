// Workload profiles for the four paper traces.
//
// The original LLNL / INS / RES / HP traces are not publicly available, so
// the generator synthesises streams with the structure each trace is
// documented to have (see DESIGN.md, substitution table). Every knob that
// shapes the correlation structure is explicit here so experiments can
// ablate it.
#pragma once

#include <cstdint>
#include <string>

#include "trace/record.hpp"

namespace farmer {

struct WorkloadProfile {
  std::string name;
  TraceKind kind = TraceKind::kCustom;

  // ---- population ----
  std::uint32_t users = 32;
  std::uint32_t hosts = 16;
  std::uint32_t programs = 12;    ///< distinct program names
  std::uint32_t volumes = 16;     ///< devices files are spread over

  // ---- namespace / correlation groups ----
  std::uint32_t groups = 200;          ///< ground-truth correlated file sets
  std::uint32_t files_per_group_min = 4;
  std::uint32_t files_per_group_max = 16;
  std::uint32_t scratch_files = 500;   ///< uncorrelated singleton files
  bool has_paths = true;               ///< HP/LLNL expose full paths
  double group_zipf_s = 0.9;           ///< group popularity skew
  std::uint32_t groups_per_user = 8;   ///< user's affinity set size

  // ---- session behaviour ----
  std::uint32_t sessions = 2000;       ///< number of process sessions
  std::uint32_t passes_min = 1;        ///< passes over the group per session
  std::uint32_t passes_max = 3;
  double skip_probability = 0.08;      ///< member skipped in a pass
  double swap_probability = 0.08;      ///< adjacent-order jitter
  double noise_probability = 0.06;     ///< random unrelated access injected
  double mean_think_time_us = 20'000;  ///< gap between a session's accesses
  double session_arrival_rate = 20.0;  ///< sessions per simulated second;
                                       ///< higher => more interleaving noise

  // ---- LLNL-style parallel jobs (used when kind == kLLNL) ----
  std::uint32_t jobs = 0;              ///< 0 disables job mode
  std::uint32_t ranks_per_job = 32;
  std::uint32_t shared_inputs_per_app = 12;
  std::uint32_t checkpoint_cycles = 3;
  std::uint32_t slices_per_rank = 2;   ///< private N-N input slices per rank

  // ---- file properties ----
  double file_size_mu = 11.5;   ///< lognormal ln-mean  (~100 KB median)
  double file_size_sigma = 1.2;
  double read_only_fraction = 0.7;

  /// Scales event-volume knobs (sessions/jobs/groups) by `f`, keeping the
  /// population fixed. Tests run tiny scales; benches run scale 1.
  [[nodiscard]] WorkloadProfile scaled(double f) const;

  // ---- the four paper presets ----
  [[nodiscard]] static WorkloadProfile llnl();
  [[nodiscard]] static WorkloadProfile ins();
  [[nodiscard]] static WorkloadProfile res();
  [[nodiscard]] static WorkloadProfile hp();
};

}  // namespace farmer
