// Trace persistence.
//
// Binary format (little-endian, versioned): dictionary (tokens, paths, file
// metadata) followed by the record stream. A text (TSV) exporter is provided
// for eyeballing traces and for interoperability with external tooling.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/record.hpp"

namespace farmer {

/// Writes just the dictionary section (token table, path components, file
/// metadata) in the binary format. Shared between trace files and the
/// persistence subsystem's checkpoints, which embed the dictionary so a
/// checkpoint is self-describing. Throws std::runtime_error on I/O failure.
void write_dictionary(std::ostream& os, const TraceDictionary& dict);

/// Reads a dictionary previously written by `write_dictionary` into `dict`
/// (which must be empty). Throws std::runtime_error on truncation or a
/// corrupt token table.
void read_dictionary(std::istream& is, TraceDictionary& dict);

/// Fixed-size raw encoding of one TraceRecord — the same layout
/// `write_trace_binary` streams and the layout WAL values use.
inline constexpr std::size_t kTraceRecordBytes = sizeof(TraceRecord);

/// Appends the raw encoding of `rec` to `out`.
void encode_record(const TraceRecord& rec, std::string& out);

/// Decodes a record encoded by `encode_record`. Throws std::runtime_error
/// when `bytes` is not exactly `kTraceRecordBytes` long.
[[nodiscard]] TraceRecord decode_record(std::string_view bytes);

/// Writes `trace` in the binary format. Throws std::runtime_error on I/O
/// failure.
void write_trace_binary(const Trace& trace, const std::string& path);

/// Reads a trace previously written by `write_trace_binary`. Throws
/// std::runtime_error on I/O failure or format mismatch.
[[nodiscard]] Trace read_trace_binary(const std::string& path);

/// Streams a human-readable TSV rendering (header + one row per record).
void write_trace_tsv(const Trace& trace, std::ostream& os,
                     std::size_t max_records = SIZE_MAX);

}  // namespace farmer
