// Trace persistence.
//
// Binary format (little-endian, versioned): dictionary (tokens, paths, file
// metadata) followed by the record stream. A text (TSV) exporter is provided
// for eyeballing traces and for interoperability with external tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/record.hpp"

namespace farmer {

/// Writes `trace` in the binary format. Throws std::runtime_error on I/O
/// failure.
void write_trace_binary(const Trace& trace, const std::string& path);

/// Reads a trace previously written by `write_trace_binary`. Throws
/// std::runtime_error on I/O failure or format mismatch.
[[nodiscard]] Trace read_trace_binary(const std::string& path);

/// Streams a human-readable TSV rendering (header + one row per record).
void write_trace_tsv(const Trace& trace, std::ostream& os,
                     std::size_t max_records = SIZE_MAX);

}  // namespace farmer
