// Trace persistence.
//
// Two on-disk trace formats share this header:
//
//  * v2 — the legacy stream format (dictionary first, then records), kept
//    readable forever. Its writer survives for compatibility tests and
//    refuses data it cannot represent (a path with more than 255
//    components used to have its count truncated to uint8_t while every
//    component was still written — an unreadable stream; it now throws).
//  * v3 — the mmap-able out-of-core format (fixed-offset record section
//    first, metadata footer last), implemented by trace_stream.hpp.
//    `write_trace_binary` produces v3; `read_trace_binary` reads both by
//    version sniff.
//
// Every reader here is hardened against corrupt input: counts are bounded
// by the bytes actually present before anything is allocated, and decoded
// ids (TraceKind, FileMeta.path, token ids) are validated against the
// tables just read, so a truncated or bit-flipped file throws
// std::runtime_error instead of OOMing or deferring the crash to first use.
//
// The v3 dictionary codec (`encode_dictionary`/`decode_dictionary`) is also
// the persistence substrate: checkpoints embed dictionaries through it.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

#include "trace/record.hpp"

namespace farmer {

inline constexpr std::uint32_t kTraceMagic = 0xFA12ACE5;
inline constexpr std::uint32_t kTraceVersion2 = 2;
inline constexpr std::uint32_t kTraceVersion3 = 3;

/// Bounds-checked forward reader over a serialized blob. Any overrun means
/// the blob is torn or malformed and surfaces as std::runtime_error tagged
/// with `what`. Shared by the v3 trace codec and the persistence
/// checkpoints.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes, const char* what = "blob")
      : p_(bytes.data()), end_(bytes.data() + bytes.size()), what_(what) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) throw truncated();
    T v;
    std::memcpy(&v, p_, sizeof v);
    p_ += sizeof v;
    return v;
  }

  void get_bytes(char* dst, std::size_t len) {
    if (remaining() < len) throw truncated();
    std::memcpy(dst, p_, len);
    p_ += len;
  }

  /// Zero-copy sub-view of the next `len` bytes (advances the cursor).
  [[nodiscard]] std::string_view view(std::size_t len) {
    if (remaining() < len) throw truncated();
    const std::string_view v(p_, len);
    p_ += len;
    return v;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }
  [[nodiscard]] bool done() const noexcept { return p_ == end_; }

 private:
  [[nodiscard]] std::runtime_error truncated() const {
    return std::runtime_error(std::string(what_) + " truncated");
  }

  const char* p_;
  const char* end_;
  const char* what_;
};

/// Writes just the dictionary section in the *v2* stream format (uint8_t
/// path-component counts). Kept for v2 compatibility only; throws
/// std::runtime_error on I/O failure or when a path has more than 255
/// components (which v2 cannot represent — new code uses the v3 codec).
void write_dictionary(std::ostream& os, const TraceDictionary& dict);

/// Reads a v2 dictionary previously written by `write_dictionary` into
/// `dict` (which must be empty). Counts are bounded against the remaining
/// stream size and decoded ids are validated; throws std::runtime_error on
/// truncation or corruption.
void read_dictionary(std::istream& is, TraceDictionary& dict);

/// Appends the v3 dictionary encoding (token table, path components with
/// uint32 counts, file metadata) to `out`. Shared between v3 trace files
/// and the persistence subsystem's checkpoints, which embed the dictionary
/// so a checkpoint is self-describing.
void encode_dictionary(std::string& out, const TraceDictionary& dict);

/// Decodes a dictionary encoded by `encode_dictionary` into `dict` (which
/// must be empty), consuming from `in`. Counts are bounded against the
/// bytes remaining and every decoded id (path-component tokens,
/// FileMeta.path/dev/fid) is validated against the tables just read;
/// corruption throws std::runtime_error.
void decode_dictionary(ByteReader& in, TraceDictionary& dict);

/// Validates a raw on-disk TraceKind byte; throws std::runtime_error on an
/// out-of-range value.
[[nodiscard]] TraceKind validate_trace_kind(std::uint8_t raw);

/// Validates one record against `dict`: the file id must index the file
/// table, op must be a known OpType, and path/token ids must be invalid or
/// in range. Throws std::runtime_error naming the offending field.
void validate_record(const TraceRecord& rec, const TraceDictionary& dict);

/// Fixed-size raw encoding of one TraceRecord — the same layout
/// `write_trace_binary` streams and the layout WAL values use.
inline constexpr std::size_t kTraceRecordBytes = sizeof(TraceRecord);

/// Appends the raw encoding of `rec` to `out`.
void encode_record(const TraceRecord& rec, std::string& out);

/// Decodes a record encoded by `encode_record`. Throws std::runtime_error
/// when `bytes` is not exactly `kTraceRecordBytes` long.
[[nodiscard]] TraceRecord decode_record(std::string_view bytes);

/// Writes `trace` in the v3 binary format (see trace_stream.hpp). Throws
/// std::runtime_error on I/O failure.
void write_trace_binary(const Trace& trace, const std::string& path);

/// Writes `trace` in the legacy v2 stream format. Throws std::runtime_error
/// on I/O failure or when the trace cannot be represented in v2 (a path
/// with more than 255 components).
void write_trace_binary_v2(const Trace& trace, const std::string& path);

/// Reads a trace previously written by `write_trace_binary` (v3) or
/// `write_trace_binary_v2`, dispatching on the version field. Throws
/// std::runtime_error on I/O failure, format mismatch, or corruption.
[[nodiscard]] Trace read_trace_binary(const std::string& path);

/// Streams a human-readable TSV rendering (header + one row per record).
void write_trace_tsv(const Trace& trace, std::ostream& os,
                     std::size_t max_records = SIZE_MAX);

}  // namespace farmer
