#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace farmer {

namespace {

constexpr std::uint32_t kMagic = 0xFA12ACE5;
constexpr std::uint32_t kVersion = 2;

template <typename T>
void put(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("trace file truncated");
  return v;
}

void put_string(std::ostream& os, std::string_view s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const auto n = get<std::uint32_t>(is);
  std::string s(n, '\0');
  is.read(s.data(), n);
  if (!is) throw std::runtime_error("trace file truncated");
  return s;
}

}  // namespace

void write_dictionary(std::ostream& os, const TraceDictionary& d) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(d.tokens.size()));
  for (std::uint32_t i = 0; i < d.tokens.size(); ++i)
    put_string(os, d.tokens.resolve(TokenId(i)));

  put<std::uint32_t>(os, static_cast<std::uint32_t>(d.paths.size()));
  for (const auto& comps : d.paths) {
    put<std::uint8_t>(os, static_cast<std::uint8_t>(comps.size()));
    for (TokenId t : comps) put<std::uint32_t>(os, t.value());
  }

  put<std::uint32_t>(os, static_cast<std::uint32_t>(d.files.size()));
  for (const FileMeta& f : d.files) {
    put<std::uint32_t>(os, f.path.value());
    put<std::uint32_t>(os, f.dev.value());
    put<std::uint32_t>(os, f.fid.value());
    put<std::uint32_t>(os, f.group);
    put<std::uint32_t>(os, f.size_bytes);
    put<std::uint8_t>(os, f.read_only ? 1 : 0);
  }
}

void read_dictionary(std::istream& is, TraceDictionary& d) {
  const auto ntokens = get<std::uint32_t>(is);
  for (std::uint32_t i = 0; i < ntokens; ++i) {
    const TokenId id = d.tokens.intern(get_string(is));
    if (id.value() != i)
      throw std::runtime_error("token table corrupt (duplicate strings)");
  }

  const auto npaths = get<std::uint32_t>(is);
  d.paths.reserve(npaths);
  for (std::uint32_t i = 0; i < npaths; ++i) {
    const auto ncomp = get<std::uint8_t>(is);
    SmallVector<TokenId, 8> comps;
    for (std::uint8_t c = 0; c < ncomp; ++c)
      comps.push_back(TokenId(get<std::uint32_t>(is)));
    (void)d.add_path(std::move(comps));
  }

  const auto nfiles = get<std::uint32_t>(is);
  d.files.reserve(nfiles);
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    FileMeta f;
    f.path = PathId(get<std::uint32_t>(is));
    f.dev = TokenId(get<std::uint32_t>(is));
    f.fid = TokenId(get<std::uint32_t>(is));
    f.group = get<std::uint32_t>(is);
    f.size_bytes = get<std::uint32_t>(is);
    f.read_only = get<std::uint8_t>(is) != 0;
    d.files.push_back(f);
  }
}

void encode_record(const TraceRecord& rec, std::string& out) {
  static_assert(std::is_trivially_copyable_v<TraceRecord>);
  out.append(reinterpret_cast<const char*>(&rec), sizeof rec);
}

TraceRecord decode_record(std::string_view bytes) {
  if (bytes.size() != kTraceRecordBytes)
    throw std::runtime_error("trace record blob has wrong size");
  TraceRecord rec;
  std::memcpy(&rec, bytes.data(), sizeof rec);
  return rec;
}

void write_trace_binary(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  put(os, kMagic);
  put(os, kVersion);
  put_string(os, trace.name);
  put<std::uint8_t>(os, static_cast<std::uint8_t>(trace.kind));
  put<std::uint8_t>(os, trace.has_paths ? 1 : 0);

  write_dictionary(os, *trace.dict);

  put<std::uint64_t>(os, trace.records.size());
  for (const TraceRecord& r : trace.records) put(os, r);
  if (!os) throw std::runtime_error("short write: " + path);
}

Trace read_trace_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  if (get<std::uint32_t>(is) != kMagic)
    throw std::runtime_error("not a farmer trace: " + path);
  if (get<std::uint32_t>(is) != kVersion)
    throw std::runtime_error("unsupported trace version: " + path);

  Trace trace;
  trace.name = get_string(is);
  trace.kind = static_cast<TraceKind>(get<std::uint8_t>(is));
  trace.has_paths = get<std::uint8_t>(is) != 0;
  trace.dict = std::make_shared<TraceDictionary>();
  read_dictionary(is, *trace.dict);

  const auto nrecords = get<std::uint64_t>(is);
  trace.records.reserve(nrecords);
  for (std::uint64_t i = 0; i < nrecords; ++i)
    trace.records.push_back(get<TraceRecord>(is));
  return trace;
}

void write_trace_tsv(const Trace& trace, std::ostream& os,
                     std::size_t max_records) {
  const TraceDictionary& d = *trace.dict;
  os << "timestamp_us\tfile\tuser\tpid\thost\tprogram\tpath\top\n";
  std::size_t n = 0;
  for (const TraceRecord& r : trace.records) {
    if (n++ >= max_records) break;
    os << r.timestamp << '\t' << r.file.value() << '\t'
       << d.tokens.resolve(r.user_token) << '\t'
       << d.tokens.resolve(r.process_token) << '\t'
       << d.tokens.resolve(r.host_token) << '\t'
       << d.tokens.resolve(r.program_token) << '\t'
       << (r.path.valid() ? d.path_string(r.path) : std::string("-")) << '\t'
       << static_cast<int>(r.op) << '\n';
  }
}

}  // namespace farmer
