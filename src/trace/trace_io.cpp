#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <span>
#include <stdexcept>

#include "trace/trace_stream.hpp"

namespace farmer {

namespace {

template <typename T>
void put(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("trace file truncated");
  return v;
}

void put_string(std::ostream& os, std::string_view s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Bytes between the stream cursor and end-of-stream. Every count decoded
/// from a file is bounded against this before any allocation happens, so a
/// corrupt length field cannot drive an OOM.
std::uint64_t stream_remaining(std::istream& is) {
  const auto cur = is.tellg();
  if (cur < 0) throw std::runtime_error("trace stream not seekable");
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  is.seekg(cur);
  if (end < cur) throw std::runtime_error("trace stream not seekable");
  return static_cast<std::uint64_t>(end - cur);
}

std::string get_string(std::istream& is) {
  const auto n = get<std::uint32_t>(is);
  if (n > stream_remaining(is))
    throw std::runtime_error("trace string length exceeds file size");
  std::string s(n, '\0');
  is.read(s.data(), n);
  if (!is) throw std::runtime_error("trace file truncated");
  return s;
}

void check_count(std::uint64_t count, std::uint64_t min_entry_bytes,
                 std::uint64_t remaining, const char* what) {
  if (count > remaining / min_entry_bytes)
    throw std::runtime_error(std::string(what) +
                             " count exceeds remaining file size");
}

void validate_token(TokenId t, const TraceDictionary& d, const char* what) {
  if (t.valid() && t.value() >= d.tokens.size())
    throw std::runtime_error(std::string(what) + " token id out of range");
}

void validate_path_component(TokenId t, const TraceDictionary& d) {
  if (!t.valid() || t.value() >= d.tokens.size())
    throw std::runtime_error("path component token id out of range");
}

void validate_file_meta(const FileMeta& f, const TraceDictionary& d) {
  if (f.path.valid() && f.path.value() >= d.paths.size())
    throw std::runtime_error("file meta path id out of range");
  validate_token(f.dev, d, "file meta dev");
  validate_token(f.fid, d, "file meta fid");
}

// Per-entry minimum on-disk sizes used to bound decoded counts. Both
// formats agree on these: a token is at least its u32 length prefix, a v3
// path is at least its u32 component count (u8 in v2), a file meta row is
// exactly 21 bytes.
constexpr std::uint64_t kMinTokenBytes = 4;
constexpr std::uint64_t kMinPathBytesV2 = 1;
constexpr std::uint64_t kMinPathBytesV3 = 4;
constexpr std::uint64_t kFileMetaBytes = 21;

}  // namespace

void write_dictionary(std::ostream& os, const TraceDictionary& d) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(d.tokens.size()));
  for (std::uint32_t i = 0; i < d.tokens.size(); ++i)
    put_string(os, d.tokens.resolve(TokenId(i)));

  put<std::uint32_t>(os, static_cast<std::uint32_t>(d.paths.size()));
  for (const auto& comps : d.paths) {
    if (comps.size() > 255)
      throw std::runtime_error(
          "v2 trace format cannot represent a path with more than 255 "
          "components; write v3 instead");
    put<std::uint8_t>(os, static_cast<std::uint8_t>(comps.size()));
    for (TokenId t : comps) put<std::uint32_t>(os, t.value());
  }

  put<std::uint32_t>(os, static_cast<std::uint32_t>(d.files.size()));
  for (const FileMeta& f : d.files) {
    put<std::uint32_t>(os, f.path.value());
    put<std::uint32_t>(os, f.dev.value());
    put<std::uint32_t>(os, f.fid.value());
    put<std::uint32_t>(os, f.group);
    put<std::uint32_t>(os, f.size_bytes);
    put<std::uint8_t>(os, f.read_only ? 1 : 0);
  }
}

void read_dictionary(std::istream& is, TraceDictionary& d) {
  const auto ntokens = get<std::uint32_t>(is);
  check_count(ntokens, kMinTokenBytes, stream_remaining(is), "token");
  for (std::uint32_t i = 0; i < ntokens; ++i) {
    const TokenId id = d.tokens.intern(get_string(is));
    if (id.value() != i)
      throw std::runtime_error("token table corrupt (duplicate strings)");
  }

  const auto npaths = get<std::uint32_t>(is);
  check_count(npaths, kMinPathBytesV2, stream_remaining(is), "path");
  d.paths.reserve(npaths);
  for (std::uint32_t i = 0; i < npaths; ++i) {
    const auto ncomp = get<std::uint8_t>(is);
    SmallVector<TokenId, 8> comps;
    for (std::uint8_t c = 0; c < ncomp; ++c) {
      const TokenId t(get<std::uint32_t>(is));
      validate_path_component(t, d);
      comps.push_back(t);
    }
    (void)d.add_path(std::move(comps));
  }

  const auto nfiles = get<std::uint32_t>(is);
  check_count(nfiles, kFileMetaBytes, stream_remaining(is), "file");
  d.files.reserve(nfiles);
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    FileMeta f;
    f.path = PathId(get<std::uint32_t>(is));
    f.dev = TokenId(get<std::uint32_t>(is));
    f.fid = TokenId(get<std::uint32_t>(is));
    f.group = get<std::uint32_t>(is);
    f.size_bytes = get<std::uint32_t>(is);
    f.read_only = get<std::uint8_t>(is) != 0;
    validate_file_meta(f, d);
    d.files.push_back(f);
  }
}

void encode_dictionary(std::string& out, const TraceDictionary& d) {
  const auto raw = [&out](const auto& v) {
    static_assert(std::is_trivially_copyable_v<
                  std::remove_cvref_t<decltype(v)>>);
    out.append(reinterpret_cast<const char*>(&v), sizeof v);
  };

  raw(static_cast<std::uint32_t>(d.tokens.size()));
  for (std::uint32_t i = 0; i < d.tokens.size(); ++i) {
    const std::string_view s = d.tokens.resolve(TokenId(i));
    raw(static_cast<std::uint32_t>(s.size()));
    out.append(s);
  }

  raw(static_cast<std::uint32_t>(d.paths.size()));
  for (const auto& comps : d.paths) {
    raw(static_cast<std::uint32_t>(comps.size()));
    for (TokenId t : comps) raw(t.value());
  }

  raw(static_cast<std::uint32_t>(d.files.size()));
  for (const FileMeta& f : d.files) {
    raw(f.path.value());
    raw(f.dev.value());
    raw(f.fid.value());
    raw(f.group);
    raw(f.size_bytes);
    raw(static_cast<std::uint8_t>(f.read_only ? 1 : 0));
  }
}

void decode_dictionary(ByteReader& in, TraceDictionary& d) {
  const auto ntokens = in.get<std::uint32_t>();
  check_count(ntokens, kMinTokenBytes, in.remaining(), "token");
  for (std::uint32_t i = 0; i < ntokens; ++i) {
    const auto len = in.get<std::uint32_t>();
    const TokenId id = d.tokens.intern(in.view(len));
    if (id.value() != i)
      throw std::runtime_error("token table corrupt (duplicate strings)");
  }

  const auto npaths = in.get<std::uint32_t>();
  check_count(npaths, kMinPathBytesV3, in.remaining(), "path");
  d.paths.reserve(npaths);
  for (std::uint32_t i = 0; i < npaths; ++i) {
    const auto ncomp = in.get<std::uint32_t>();
    check_count(ncomp, 4, in.remaining(), "path component");
    SmallVector<TokenId, 8> comps;
    for (std::uint32_t c = 0; c < ncomp; ++c) {
      const TokenId t(in.get<std::uint32_t>());
      validate_path_component(t, d);
      comps.push_back(t);
    }
    (void)d.add_path(std::move(comps));
  }

  const auto nfiles = in.get<std::uint32_t>();
  check_count(nfiles, kFileMetaBytes, in.remaining(), "file");
  d.files.reserve(nfiles);
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    FileMeta f;
    f.path = PathId(in.get<std::uint32_t>());
    f.dev = TokenId(in.get<std::uint32_t>());
    f.fid = TokenId(in.get<std::uint32_t>());
    f.group = in.get<std::uint32_t>();
    f.size_bytes = in.get<std::uint32_t>();
    f.read_only = in.get<std::uint8_t>() != 0;
    validate_file_meta(f, d);
    d.files.push_back(f);
  }
}

TraceKind validate_trace_kind(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(TraceKind::kCustom))
    throw std::runtime_error("trace kind out of range");
  return static_cast<TraceKind>(raw);
}

void validate_record(const TraceRecord& rec, const TraceDictionary& dict) {
  if (!rec.file.valid() || rec.file.value() >= dict.files.size())
    throw std::runtime_error("record file id out of range");
  if (static_cast<std::uint8_t>(rec.op) >
      static_cast<std::uint8_t>(OpType::kClose))
    throw std::runtime_error("record op out of range");
  if (rec.path.valid() && rec.path.value() >= dict.paths.size())
    throw std::runtime_error("record path id out of range");
  validate_token(rec.user_token, dict, "record user");
  validate_token(rec.process_token, dict, "record process");
  validate_token(rec.host_token, dict, "record host");
  validate_token(rec.dev_token, dict, "record dev");
  validate_token(rec.fid_token, dict, "record fid");
  validate_token(rec.program_token, dict, "record program");
}

void encode_record(const TraceRecord& rec, std::string& out) {
  static_assert(std::is_trivially_copyable_v<TraceRecord>);
  out.append(reinterpret_cast<const char*>(&rec), sizeof rec);
}

TraceRecord decode_record(std::string_view bytes) {
  if (bytes.size() != kTraceRecordBytes)
    throw std::runtime_error("trace record blob has wrong size");
  TraceRecord rec;
  std::memcpy(&rec, bytes.data(), sizeof rec);
  return rec;
}

void write_trace_binary(const Trace& trace, const std::string& path) {
  TraceWriter writer(path, trace.kind, trace.has_paths);
  writer.append(std::span<const TraceRecord>(trace.records));
  writer.finish(trace.name, *trace.dict);
}

void write_trace_binary_v2(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  put(os, kTraceMagic);
  put(os, kTraceVersion2);
  put_string(os, trace.name);
  put<std::uint8_t>(os, static_cast<std::uint8_t>(trace.kind));
  put<std::uint8_t>(os, trace.has_paths ? 1 : 0);

  write_dictionary(os, *trace.dict);

  put<std::uint64_t>(os, trace.records.size());
  for (const TraceRecord& r : trace.records) put(os, r);
  if (!os) throw std::runtime_error("short write: " + path);
}

Trace read_trace_binary(const std::string& path) {
  std::uint32_t version = 0;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot open for read: " + path);
    if (get<std::uint32_t>(is) != kTraceMagic)
      throw std::runtime_error("not a farmer trace: " + path);
    version = get<std::uint32_t>(is);
  }

  if (version == kTraceVersion3) return TraceReader(path).materialize();
  if (version != kTraceVersion2)
    throw std::runtime_error("unsupported trace version: " + path);

  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  is.seekg(8);  // magic + version, checked above

  Trace trace;
  trace.name = get_string(is);
  trace.kind = validate_trace_kind(get<std::uint8_t>(is));
  trace.has_paths = get<std::uint8_t>(is) != 0;
  trace.dict = std::make_shared<TraceDictionary>();
  read_dictionary(is, *trace.dict);

  const auto nrecords = get<std::uint64_t>(is);
  check_count(nrecords, kTraceRecordBytes, stream_remaining(is), "record");
  trace.records.reserve(nrecords);
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    const auto rec = get<TraceRecord>(is);
    validate_record(rec, *trace.dict);
    trace.records.push_back(rec);
  }
  return trace;
}

void write_trace_tsv(const Trace& trace, std::ostream& os,
                     std::size_t max_records) {
  const TraceDictionary& d = *trace.dict;
  os << "timestamp_us\tfile\tuser\tpid\thost\tprogram\tpath\top\n";
  std::size_t n = 0;
  for (const TraceRecord& r : trace.records) {
    if (n++ >= max_records) break;
    os << r.timestamp << '\t' << r.file.value() << '\t'
       << d.tokens.resolve(r.user_token) << '\t'
       << d.tokens.resolve(r.process_token) << '\t'
       << d.tokens.resolve(r.host_token) << '\t'
       << d.tokens.resolve(r.program_token) << '\t'
       << (r.path.valid() ? d.path_string(r.path) : std::string("-")) << '\t'
       << static_cast<int>(r.op) << '\n';
  }
}

}  // namespace farmer
