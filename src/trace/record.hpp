// Trace record model.
//
// A trace is a time-ordered stream of metadata-bearing file requests plus a
// dictionary interning every string the records reference. Records carry
// pre-interned tokens so the FARMER Extracting stage is allocation-free.
//
// The dictionary also stores per-file ground truth (the correlation group a
// file was generated into), which the test suite and the accuracy benches
// use as an oracle; real traces simply leave it at kNoGroup.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/interner.hpp"
#include "common/small_vector.hpp"
#include "common/types.hpp"

namespace farmer {

enum class OpType : std::uint8_t {
  kOpen,   ///< metadata lookup + open
  kRead,
  kWrite,
  kStat,   ///< pure metadata access
  kClose,
};

/// Which published trace a synthetic workload models.
enum class TraceKind : std::uint8_t { kLLNL, kINS, kRES, kHP, kCustom };

[[nodiscard]] const char* trace_kind_name(TraceKind k) noexcept;

/// One file request.
struct TraceRecord {
  SimTime timestamp = 0;      ///< microseconds since trace start
  FileId file;
  UserId user;
  ProcessId process;          ///< unique per process instance (pid)
  HostId host;
  JobId job;                  ///< parallel job (LLNL), else invalid
  PathId path;                ///< invalid when the trace lacks path info
  TokenId user_token;         ///< interned user name
  TokenId process_token;      ///< interned pid string
  TokenId host_token;         ///< interned host name
  TokenId dev_token;          ///< interned device id ("File ID" locality)
  TokenId fid_token;          ///< interned per-file id ("File ID" identity)
  TokenId program_token;      ///< interned program name (PBS/PULS input)
  std::uint32_t size_bytes = 0;
  OpType op = OpType::kOpen;
};

inline constexpr std::uint32_t kNoGroup = 0xFFFFFFFFu;

/// Static per-file facts.
struct FileMeta {
  PathId path;                 ///< invalid when no namespace info
  TokenId dev;
  TokenId fid;
  std::uint32_t group = kNoGroup;  ///< ground-truth correlation group
  std::uint32_t size_bytes = 0;
  bool read_only = false;
};

/// Interned strings + per-path components + per-file metadata.
struct TraceDictionary {
  Interner tokens;
  /// Path components (dirs + filename) indexed by PathId value.
  std::vector<SmallVector<TokenId, 8>> paths;
  /// Per-file static metadata indexed by FileId value.
  std::vector<FileMeta> files;

  [[nodiscard]] PathId add_path(SmallVector<TokenId, 8> components) {
    paths.push_back(std::move(components));
    return PathId(static_cast<std::uint32_t>(paths.size() - 1));
  }

  [[nodiscard]] const SmallVector<TokenId, 8>& path_components(
      PathId p) const {
    return paths.at(p.value());
  }

  /// Rebuilds the full path string ("/a/b/c") for reporting.
  [[nodiscard]] std::string path_string(PathId p) const;
};

/// A complete trace: header facts, record stream, shared dictionary.
struct Trace {
  std::string name;
  TraceKind kind = TraceKind::kCustom;
  bool has_paths = false;
  std::vector<TraceRecord> records;
  std::shared_ptr<TraceDictionary> dict;

  [[nodiscard]] std::size_t file_count() const {
    return dict ? dict->files.size() : 0;
  }
  [[nodiscard]] std::size_t event_count() const { return records.size(); }
  [[nodiscard]] SimTime duration() const {
    return records.empty() ? 0 : records.back().timestamp;
  }
};

}  // namespace farmer
