#include "trace/generator.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "trace/trace_stream.hpp"

namespace farmer {

namespace {

/// Per-group static data built during namespace construction.
struct GroupInfo {
  std::vector<FileId> files;   ///< members in canonical access order
  TokenId program;             ///< program typically operating on the group
  TokenId dev;                 ///< device/volume the group lives on
  UserId owner;
};

/// One process session to be expanded into an event stream.
struct SessionSpec {
  SimTime arrival = 0;
  std::uint32_t group = kNoGroup;
  UserId user;
  HostId host;
  JobId job;
  TokenId user_token, host_token, pid_token, program_token;
  ProcessId pid;
  std::uint32_t passes = 1;
  std::uint64_t rng_seed = 0;
  // LLNL rank sessions:
  std::uint32_t rank = 0;
  std::vector<FileId> rank_files;   ///< private checkpoint files, one/cycle
  std::vector<FileId> slice_files;  ///< private input slices, job start
  FileId manifest;                  ///< shared per-job manifest
};

/// A session-local event before global interleaving.
struct RawEvent {
  SimTime t;
  FileId file;
  OpType op;
  bool foreign = false;  ///< cross-traffic: emitted under a different pid
};

/// Shared immutable state threaded through the generation helpers.
struct Builder {
  const WorkloadProfile& p;
  TraceDictionary& dict;
  std::vector<GroupInfo> groups;
  std::vector<TokenId> user_tokens, host_tokens, program_tokens, dev_tokens;
  std::vector<HostId> user_home_host;
  std::vector<std::vector<std::uint32_t>> user_affinity;  ///< groups per user
  std::uint64_t next_pid = 1;
};

TokenId tok(Builder& b, const std::string& s) {
  return b.dict.tokens.intern(s);
}

/// Creates one file, returning its dense id.
FileId add_file(Builder& b, Rng& rng, PathId path, TokenId dev,
                std::uint32_t group, bool read_only_bias) {
  const auto id = FileId(static_cast<std::uint32_t>(b.dict.files.size()));
  FileMeta meta;
  meta.path = path;
  meta.dev = dev;
  meta.fid = tok(b, "fid" + std::to_string(id.value()));
  meta.group = group;
  meta.size_bytes = static_cast<std::uint32_t>(std::clamp(
      rng.next_lognormal(b.p.file_size_mu, b.p.file_size_sigma), 512.0,
      64.0 * 1024 * 1024));
  meta.read_only = rng.next_bool(read_only_bias ? b.p.read_only_fraction
                                                : b.p.read_only_fraction * 0.5);
  b.dict.files.push_back(meta);
  return id;
}

PathId make_path(Builder& b, std::initializer_list<std::string> components) {
  SmallVector<TokenId, 8> comps;
  for (const auto& c : components) comps.push_back(tok(b, c));
  return b.dict.add_path(std::move(comps));
}

void build_population(Builder& b, Rng& rng) {
  const auto& p = b.p;
  b.user_tokens.reserve(p.users);
  for (std::uint32_t u = 0; u < p.users; ++u) {
    b.user_tokens.push_back(tok(b, "user" + std::to_string(u)));
    b.user_home_host.push_back(
        HostId(static_cast<std::uint32_t>(rng.next_below(p.hosts))));
  }
  for (std::uint32_t h = 0; h < p.hosts; ++h)
    b.host_tokens.push_back(tok(b, "host" + std::to_string(h)));
  for (std::uint32_t g = 0; g < p.programs; ++g)
    b.program_tokens.push_back(tok(b, "prog" + std::to_string(g)));
  for (std::uint32_t v = 0; v < p.volumes; ++v)
    b.dev_tokens.push_back(tok(b, "dev" + std::to_string(v)));
}

/// Builds the regular (non-job) namespace: `groups` correlated file sets in
/// per-owner project directories plus uncorrelated scratch files.
void build_namespace(Builder& b, Rng& rng) {
  const auto& p = b.p;
  b.groups.resize(p.groups);
  for (std::uint32_t g = 0; g < p.groups; ++g) {
    GroupInfo& gi = b.groups[g];
    const auto owner =
        static_cast<std::uint32_t>(rng.next_below(p.users));
    gi.owner = UserId(owner);
    gi.program = b.program_tokens[rng.next_below(p.programs)];
    gi.dev = b.dev_tokens[rng.next_below(p.volumes)];
    const auto nfiles = static_cast<std::uint32_t>(
        rng.next_in(p.files_per_group_min, p.files_per_group_max));
    const std::string user_name = "user" + std::to_string(owner);
    const std::string proj = "proj" + std::to_string(g);
    for (std::uint32_t i = 0; i < nfiles; ++i) {
      PathId path;
      if (p.has_paths)
        path = make_path(
            b, {"home", user_name, proj, "f" + std::to_string(i) + ".d"});
      gi.files.push_back(add_file(b, rng, path, gi.dev, g, true));
    }
  }
  for (std::uint32_t s = 0; s < p.scratch_files; ++s) {
    PathId path;
    if (p.has_paths) path = make_path(b, {"tmp", "s" + std::to_string(s)});
    (void)add_file(b, rng, path,
                   b.dev_tokens[rng.next_below(p.volumes)], kNoGroup, false);
  }

  // Affinity: each user works on a Zipf-popular subset of groups, so hot
  // groups recur across users and sessions (the recurrence prefetching
  // exploits).
  ZipfTable group_pop(p.groups, p.group_zipf_s);
  b.user_affinity.resize(p.users);
  for (std::uint32_t u = 0; u < p.users; ++u) {
    auto& aff = b.user_affinity[u];
    while (aff.size() < std::min(p.groups_per_user, p.groups)) {
      const auto g = static_cast<std::uint32_t>(group_pop.sample(rng));
      if (std::find(aff.begin(), aff.end(), g) == aff.end())
        aff.push_back(g);
    }
  }
}

/// Expands a regular session into its event stream. Noise events carry
/// `foreign == true` when they model cross-traffic from an unrelated
/// process on the same host (interleaved daemons, other users' jobs) —
/// those get a separate pid/user when records are materialised.
std::vector<RawEvent> expand_session(const Builder& b, const SessionSpec& s) {
  Rng rng(s.rng_seed);
  const auto& p = b.p;
  const auto& members = b.groups[s.group].files;
  std::vector<RawEvent> out;
  out.reserve(members.size() * s.passes + 4);
  SimTime t = s.arrival;
  const auto file_universe = static_cast<std::uint64_t>(b.dict.files.size());

  std::vector<FileId> order(members.begin(), members.end());
  for (std::uint32_t pass = 0; pass < s.passes; ++pass) {
    // Adjacent-swap jitter: sessions mostly follow the canonical order but
    // not perfectly (editors, make -j, shell glob order...).
    for (std::size_t i = 0; i + 1 < order.size(); ++i)
      if (rng.next_bool(p.swap_probability)) std::swap(order[i], order[i + 1]);
    for (FileId f : order) {
      if (rng.next_bool(p.skip_probability)) continue;
      if (rng.next_bool(p.noise_probability)) {
        // Unrelated access interleaved into the stream. Mostly genuine
        // cross-traffic (another process); sometimes the session's own
        // process touching an out-of-set file — the hard case semantic
        // filtering cannot catch.
        t += static_cast<SimTime>(rng.next_exponential(p.mean_think_time_us));
        out.push_back(
            {t,
             FileId(static_cast<std::uint32_t>(rng.next_below(file_universe))),
             OpType::kStat, /*foreign=*/rng.next_bool(0.7)});
      }
      t += static_cast<SimTime>(rng.next_exponential(p.mean_think_time_us));
      out.push_back({t, f, OpType::kOpen, false});
    }
  }
  return out;
}

/// Expands an LLNL rank session: program binary, shared inputs, then
/// checkpoint cycles against the job manifest + the rank's private files.
std::vector<RawEvent> expand_rank_session(const Builder& b,
                                          const SessionSpec& s) {
  Rng rng(s.rng_seed);
  const auto& p = b.p;
  const auto& inputs = b.groups[s.group].files;
  std::vector<RawEvent> out;
  out.reserve(inputs.size() + s.rank_files.size() * 2 + 4);
  SimTime t = s.arrival;
  const double think = p.mean_think_time_us;

  for (FileId f : inputs) {  // startup: read app binary + input decks
    t += static_cast<SimTime>(rng.next_exponential(think));
    out.push_back({t, f, OpType::kOpen});
  }
  for (FileId f : s.slice_files) {  // per-rank restart/input slices
    t += static_cast<SimTime>(rng.next_exponential(think));
    out.push_back({t, f, OpType::kOpen});
  }
  if (s.manifest.valid()) {  // job manifest, statted once per rank
    t += static_cast<SimTime>(rng.next_exponential(think));
    out.push_back({t, s.manifest, OpType::kStat});
  }
  for (std::size_t c = 0; c < s.rank_files.size(); ++c) {
    // Compute phase between checkpoints, then a fresh checkpoint write.
    t += static_cast<SimTime>(rng.next_exponential(think * 40.0));
    out.push_back({t, s.rank_files[c], OpType::kWrite});
  }
  return out;
}

/// Builds the job namespace + rank sessions for the LLNL profile.
void build_jobs(Builder& b, Rng& rng, std::vector<SessionSpec>& sessions) {
  const auto& p = b.p;
  // One input group per application: the binary + input decks every job of
  // that app re-reads. These recur across jobs => minable + prefetchable.
  const std::uint32_t apps = p.programs;
  b.groups.resize(apps);
  // Per-(app, rank) restart/input slices: persistent across re-runs of the
  // same application (ranks re-read their own slice every job).
  std::vector<std::vector<std::vector<FileId>>> app_rank_slices(apps);
  for (std::uint32_t a = 0; a < apps; ++a) {
    GroupInfo& gi = b.groups[a];
    gi.program = b.program_tokens[a];
    gi.dev = b.dev_tokens[a % p.volumes];
    gi.owner = UserId(a % p.users);
    const std::string app = "app" + std::to_string(a);
    for (std::uint32_t i = 0; i < p.shared_inputs_per_app; ++i) {
      PathId path = make_path(
          b, {"scratch", app, "input", "deck" + std::to_string(i)});
      gi.files.push_back(add_file(b, rng, path, gi.dev, a, true));
    }
    app_rank_slices[a].resize(p.ranks_per_job);
    for (std::uint32_t r = 0; r < p.ranks_per_job; ++r) {
      for (std::uint32_t sl = 0; sl < p.slices_per_rank; ++sl) {
        PathId path = make_path(
            b, {"scratch", app,
                "slice_r" + std::to_string(r) + "_" + std::to_string(sl)});
        app_rank_slices[a][r].push_back(
            add_file(b, rng, path, gi.dev, a, true));
      }
    }
  }

  ZipfTable app_pop(apps, 1.0);
  SimTime job_clock = 0;
  const double job_gap_us = 1e6 / std::max(0.05, p.session_arrival_rate);
  for (std::uint32_t j = 0; j < p.jobs; ++j) {
    job_clock += static_cast<SimTime>(rng.next_exponential(job_gap_us));
    const auto a = static_cast<std::uint32_t>(app_pop.sample(rng));
    const auto user =
        static_cast<std::uint32_t>(rng.next_below(p.users));
    const std::string jobname = "job" + std::to_string(j);
    // Shared manifest all ranks stat each cycle.
    const FileId manifest =
        add_file(b, rng,
                 p.has_paths ? make_path(b, {"scratch", jobname, "manifest"})
                             : PathId(),
                 b.groups[a].dev, kNoGroup, false);
    for (std::uint32_t r = 0; r < p.ranks_per_job; ++r) {
      SessionSpec s;
      // Ranks stagger their I/O over the job lifetime (real MPI codes
      // deliberately avoid metadata storms), which stretches the reuse
      // distance of the shared input decks far beyond any MDS cache.
      s.arrival = job_clock + static_cast<SimTime>(r) * 600'000 +
                  static_cast<SimTime>(rng.next_below(200'000));
      s.group = a;
      s.user = UserId(user);
      s.user_token = b.user_tokens[user];
      s.host = HostId(r % p.hosts);
      s.host_token = b.host_tokens[r % p.hosts];
      s.job = JobId(j);
      s.pid = ProcessId(static_cast<std::uint32_t>(b.next_pid));
      s.pid_token = tok(b, "pid" + std::to_string(b.next_pid));
      ++b.next_pid;
      s.program_token = b.program_tokens[a];
      s.rank = r;
      s.manifest = manifest;
      s.slice_files = app_rank_slices[a][r];
      for (std::uint32_t c = 0; c < p.checkpoint_cycles; ++c) {
        PathId path;
        if (p.has_paths)
          path = make_path(b, {"scratch", jobname,
                               "ckpt_r" + std::to_string(r) + "_c" +
                                   std::to_string(c)});
        s.rank_files.push_back(
            add_file(b, rng, path, b.groups[a].dev, kNoGroup, false));
      }
      s.rng_seed = rng.next_u64();
      sessions.push_back(std::move(s));
    }
  }
}

/// Builds regular session specs (INS/RES/HP style).
void build_sessions(Builder& b, Rng& rng, std::vector<SessionSpec>& sessions) {
  const auto& p = b.p;
  SimTime clock = 0;
  const double gap_us = 1e6 / std::max(0.05, p.session_arrival_rate);
  sessions.reserve(p.sessions);
  for (std::uint32_t i = 0; i < p.sessions; ++i) {
    clock += static_cast<SimTime>(rng.next_exponential(gap_us));
    SessionSpec s;
    s.arrival = clock;
    const auto user =
        static_cast<std::uint32_t>(rng.next_below(p.users));
    s.user = UserId(user);
    s.user_token = b.user_tokens[user];
    const auto& aff = b.user_affinity[user];
    s.group = aff[rng.next_below(aff.size())];
    // Users mostly work from their home host.
    const HostId host = rng.next_bool(0.8)
                            ? b.user_home_host[user]
                            : HostId(static_cast<std::uint32_t>(
                                  rng.next_below(p.hosts)));
    s.host = host;
    s.host_token = b.host_tokens[host.value()];
    s.pid = ProcessId(static_cast<std::uint32_t>(b.next_pid));
    s.pid_token = tok(b, "pid" + std::to_string(b.next_pid));
    ++b.next_pid;
    // Sessions usually run the group's usual program.
    s.program_token = rng.next_bool(0.85)
                          ? b.groups[s.group].program
                          : b.program_tokens[rng.next_below(p.programs)];
    s.passes = static_cast<std::uint32_t>(
        rng.next_in(p.passes_min, p.passes_max));
    s.rng_seed = rng.next_u64();
    sessions.push_back(std::move(s));
  }
}

}  // namespace

Trace generate_trace(const WorkloadProfile& profile, std::uint64_t seed) {
  Trace trace;
  trace.name = profile.name;
  trace.kind = profile.kind;
  trace.has_paths = profile.has_paths;
  trace.dict = std::make_shared<TraceDictionary>();

  Builder b{profile, *trace.dict, {}, {}, {}, {}, {}, {}, {}, 1};
  Rng master(seed);

  build_population(b, master);
  std::vector<SessionSpec> sessions;
  const bool job_mode = profile.jobs > 0;
  if (job_mode) {
    build_jobs(b, master, sessions);
  } else {
    build_namespace(b, master);
    build_sessions(b, master, sessions);
  }

  // Expand sessions to event streams in parallel; every session has its own
  // RNG stream so the result is independent of the schedule.
  std::vector<std::vector<RawEvent>> streams(sessions.size());
  parallel_for(sessions.size(), [&](std::size_t i) {
    streams[i] = job_mode ? expand_rank_session(b, sessions[i])
                          : expand_session(b, sessions[i]);
  });

  // Merge with a stable global order: (time, session, in-session index).
  struct Cursor {
    std::uint32_t session;
    std::uint32_t index;
    SimTime t;
  };
  std::size_t total = 0;
  for (const auto& st : streams) total += st.size();
  std::vector<Cursor> cursors;
  cursors.reserve(total);
  for (std::uint32_t si = 0; si < streams.size(); ++si)
    for (std::uint32_t ei = 0; ei < streams[si].size(); ++ei)
      cursors.push_back({si, ei, streams[si][ei].t});
  std::sort(cursors.begin(), cursors.end(), [](const Cursor& a,
                                               const Cursor& c) {
    if (a.t != c.t) return a.t < c.t;
    if (a.session != c.session) return a.session < c.session;
    return a.index < c.index;
  });

  // Cross-traffic identities: a small pool of background daemons/users that
  // own the "foreign" noise events.
  const std::uint32_t kForeignPool = 8;
  std::vector<TokenId> foreign_users, foreign_pids;
  const TokenId foreign_prog = b.dict.tokens.intern("sysd");
  for (std::uint32_t i = 0; i < kForeignPool; ++i) {
    foreign_users.push_back(b.dict.tokens.intern("sys" + std::to_string(i)));
    foreign_pids.push_back(b.dict.tokens.intern("xpid" + std::to_string(i)));
  }

  trace.records.reserve(total);
  for (const Cursor& cur : cursors) {
    const SessionSpec& s = sessions[cur.session];
    const RawEvent& ev = streams[cur.session][cur.index];
    const FileMeta& meta = trace.dict->files[ev.file.value()];
    TraceRecord r;
    r.timestamp = ev.t;
    r.file = ev.file;
    r.user = s.user;
    r.process = s.pid;
    r.host = s.host;
    r.job = s.job;
    r.path = profile.has_paths ? meta.path : PathId();
    r.user_token = s.user_token;
    r.process_token = s.pid_token;
    r.host_token = s.host_token;
    r.dev_token = meta.dev;
    r.fid_token = meta.fid;
    r.program_token = s.program_token;
    r.size_bytes = meta.size_bytes;
    r.op = ev.op;
    if (ev.foreign) {
      const std::uint32_t fi = cur.session % kForeignPool;
      r.user = UserId(0xFFFF0000u + fi);
      r.process = ProcessId(0xFFFF0000u + fi);
      r.user_token = foreign_users[fi];
      r.process_token = foreign_pids[fi];
      r.program_token = foreign_prog;
    }
    trace.records.push_back(r);
  }
  return trace;
}

WorkloadProfile WorkloadProfile::scaled(double f) const {
  WorkloadProfile s = *this;
  auto mul = [f](std::uint32_t v) {
    return std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(static_cast<double>(v) * f));
  };
  s.sessions = mul(s.sessions);
  s.jobs = jobs > 0 ? mul(s.jobs) : 0;
  s.groups = mul(s.groups);
  s.scratch_files = mul(s.scratch_files);
  return s;
}

WorkloadProfile WorkloadProfile::ins() {
  WorkloadProfile p;
  p.name = "INS";
  p.kind = TraceKind::kINS;
  // Twenty undergraduate lab machines: a small population re-running the
  // same coursework => small namespace, heavy recurrence, high
  // predictability. No path info in the published trace (fid + dev only).
  p.users = 60;
  p.hosts = 20;
  p.programs = 8;
  p.volumes = 6;
  p.groups = 40;
  p.files_per_group_min = 6;
  p.files_per_group_max = 14;
  p.scratch_files = 300;
  p.has_paths = false;
  p.group_zipf_s = 1.1;
  p.groups_per_user = 5;
  p.sessions = 2600;
  p.passes_min = 1;
  p.passes_max = 3;
  p.skip_probability = 0.05;
  p.swap_probability = 0.05;
  p.noise_probability = 0.04;
  p.mean_think_time_us = 15'000;
  // Whole lab sections run the same assignment simultaneously: the merged
  // stream interleaves many near-identical sessions, which is what defeats
  // sequence-only prefetchers here.
  p.session_arrival_rate = 60.0;
  return p;
}

WorkloadProfile WorkloadProfile::res() {
  WorkloadProfile p;
  p.name = "RES";
  p.kind = TraceKind::kRES;
  // Thirteen researcher desktops: diverse individual projects, much lower
  // recurrence and more noise than INS. No path info.
  p.users = 30;
  p.hosts = 13;
  p.programs = 20;
  p.volumes = 13;
  p.groups = 900;
  p.files_per_group_min = 3;
  p.files_per_group_max = 12;
  p.scratch_files = 1500;
  p.has_paths = false;
  p.group_zipf_s = 0.7;
  p.groups_per_user = 40;
  p.sessions = 5200;
  p.passes_min = 1;
  p.passes_max = 2;
  p.skip_probability = 0.15;
  p.swap_probability = 0.15;
  p.noise_probability = 0.10;
  p.mean_think_time_us = 25'000;
  // Desktops: at most a handful of users active at once, so the merged MDS
  // stream is only lightly interleaved (sequence-only mining stays
  // competitive here — the paper's smallest FPA-vs-Nexus gap).
  p.session_arrival_rate = 7.0;
  return p;
}

WorkloadProfile WorkloadProfile::hp() {
  WorkloadProfile p;
  p.name = "HP";
  p.kind = TraceKind::kHP;
  // 236-user time-sharing server: large namespace with full path info,
  // moderate recurrence, many concurrent users interleaving.
  p.users = 236;
  p.hosts = 48;
  p.programs = 24;
  p.volumes = 16;
  p.groups = 1200;
  p.files_per_group_min = 4;
  p.files_per_group_max = 16;
  p.scratch_files = 2500;
  p.has_paths = true;
  p.group_zipf_s = 0.85;
  p.groups_per_user = 10;
  p.sessions = 9000;
  p.passes_min = 1;
  p.passes_max = 2;
  p.skip_probability = 0.10;
  p.swap_probability = 0.10;
  p.noise_probability = 0.08;
  p.mean_think_time_us = 20'000;
  p.session_arrival_rate = 30.0;
  return p;
}

WorkloadProfile WorkloadProfile::llnl() {
  WorkloadProfile p;
  p.name = "LLNL";
  p.kind = TraceKind::kLLNL;
  // Parallel scientific cluster: few applications, many ranks per job, huge
  // per-rank checkpoint churn, extreme interleaving. Paths available.
  p.users = 24;
  p.hosts = 64;
  p.programs = 8;  // == applications
  p.volumes = 8;
  p.has_paths = true;
  p.jobs = 220;
  p.ranks_per_job = 32;
  p.shared_inputs_per_app = 12;
  p.checkpoint_cycles = 3;
  p.mean_think_time_us = 2'000;
  p.session_arrival_rate = 1.0;  // jobs per second (several concurrent jobs)
  return p;
}

Trace make_paper_trace(TraceKind kind, std::uint64_t seed, double scale) {
  WorkloadProfile p;
  switch (kind) {
    case TraceKind::kLLNL:
      p = WorkloadProfile::llnl();
      break;
    case TraceKind::kINS:
      p = WorkloadProfile::ins();
      break;
    case TraceKind::kRES:
      p = WorkloadProfile::res();
      break;
    case TraceKind::kHP:
    case TraceKind::kCustom:
      p = WorkloadProfile::hp();
      break;
  }
  if (scale != 1.0) p = p.scaled(scale);
  return generate_trace(p, seed);
}

namespace {

/// Splices one tenant's trace into the merged dictionary/stream. All
/// remapping state is local so tenants cannot alias each other by
/// construction: token ids go through a lazy per-tenant table (strings are
/// re-interned under a "t<t>~" prefix), entity ids (user/process/host/job)
/// through dense maps drawing fresh ids from shared counters, file ids by
/// the contiguous offset the caller records in `file_begin`, and
/// ground-truth groups by a running group offset.
struct TenantSplicer {
  TraceDictionary& dict;
  std::string prefix;  ///< "t<tenant>~", namespaces every re-interned token
  std::vector<TokenId> token_map;
  std::vector<PathId> path_map;
  std::uint32_t file_offset = 0;
  std::uint32_t group_offset = 0;
  std::uint32_t group_max = 0;  ///< highest remapped group id seen + 1
  // Shared dense-id counters, owned by the caller (one per id space).
  std::uint32_t& next_user;
  std::uint32_t& next_process;
  std::uint32_t& next_host;
  std::uint32_t& next_job;
  std::unordered_map<std::uint32_t, std::uint32_t> user_map, process_map,
      host_map, job_map;

  [[nodiscard]] TokenId remap_token(const TraceDictionary& src, TokenId t) {
    if (!t.valid()) return t;
    TokenId& slot = token_map.at(t.value());
    if (!slot.valid())
      slot = dict.tokens.intern(prefix + std::string(src.tokens.resolve(t)));
    return slot;
  }

  [[nodiscard]] static std::uint32_t remap_id(
      std::unordered_map<std::uint32_t, std::uint32_t>& map,
      std::uint32_t& next, std::uint32_t old) {
    const auto [it, inserted] = map.try_emplace(old, next);
    if (inserted) ++next;
    return it->second;
  }

  void splice(const Trace& sub) {
    const TraceDictionary& src = *sub.dict;
    token_map.assign(src.tokens.size(), TokenId());
    path_map.assign(src.paths.size(), PathId());
    file_offset = static_cast<std::uint32_t>(dict.files.size());

    for (std::size_t p = 0; p < src.paths.size(); ++p) {
      SmallVector<TokenId, 8> comps;
      for (TokenId t : src.paths[p]) comps.push_back(remap_token(src, t));
      path_map[p] = dict.add_path(std::move(comps));
    }
    for (const FileMeta& m : src.files) {
      FileMeta out = m;
      out.path = m.path.valid() ? path_map.at(m.path.value()) : PathId();
      out.dev = remap_token(src, m.dev);
      out.fid = remap_token(src, m.fid);
      if (m.group != kNoGroup) {
        out.group = group_offset + m.group;
        group_max = std::max(group_max, out.group + 1);
      }
      dict.files.push_back(out);
    }
  }

  [[nodiscard]] TraceRecord remap_record(const TraceDictionary& src,
                                         TraceRecord r) {
    r.file = FileId(r.file.value() + file_offset);
    if (r.user.valid())
      r.user = UserId(remap_id(user_map, next_user, r.user.value()));
    if (r.process.valid())
      r.process =
          ProcessId(remap_id(process_map, next_process, r.process.value()));
    if (r.host.valid())
      r.host = HostId(remap_id(host_map, next_host, r.host.value()));
    if (r.job.valid())
      r.job = JobId(remap_id(job_map, next_job, r.job.value()));
    r.path = r.path.valid() ? path_map.at(r.path.value()) : PathId();
    r.user_token = remap_token(src, r.user_token);
    r.process_token = remap_token(src, r.process_token);
    r.host_token = remap_token(src, r.host_token);
    r.dev_token = remap_token(src, r.dev_token);
    r.fid_token = remap_token(src, r.fid_token);
    r.program_token = remap_token(src, r.program_token);
    return r;
  }
};

}  // namespace

MultiTenantTrace make_multi_tenant_trace(std::span<const TraceKind> tenants,
                                         std::uint64_t seed, double scale) {
  MultiTenantTrace out;
  out.trace.kind = TraceKind::kCustom;
  out.trace.has_paths = !tenants.empty();
  out.trace.dict = std::make_shared<TraceDictionary>();
  out.trace.name = "MT[";
  out.file_begin.push_back(0);

  std::uint32_t next_user = 0, next_process = 0, next_host = 0, next_job = 0;
  std::uint32_t group_offset = 0;
  std::size_t total_records = 0;
  std::vector<TraceRecord> merged;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    // Split the master seed per tenant (SplitMix-style odd-constant jump)
    // so tenant streams are independent and the whole result is a pure
    // function of (tenants, seed, scale).
    const Trace sub = make_paper_trace(
        tenants[t], seed + 0x9E3779B97F4A7C15ull * (t + 1), scale);
    out.trace.name += (t ? "+" : "") + sub.name;
    out.trace.has_paths = out.trace.has_paths && sub.has_paths;

    TenantSplicer splicer{*out.trace.dict,
                          "t" + std::to_string(t) + "~",
                          {},
                          {},
                          0,
                          group_offset,
                          group_offset,
                          next_user,
                          next_process,
                          next_host,
                          next_job,
                          {},
                          {},
                          {},
                          {}};
    splicer.splice(sub);
    total_records += sub.records.size();
    merged.reserve(total_records);
    for (const TraceRecord& r : sub.records)
      merged.push_back(splicer.remap_record(*sub.dict, r));
    group_offset = std::max(group_offset, splicer.group_max);
    out.file_begin.push_back(
        static_cast<std::uint32_t>(out.trace.dict->files.size()));
  }
  out.trace.name += "]";

  // One MDS sees one time-ordered stream: interleave tenants by timestamp.
  // stable_sort keeps equal-time records in tenant order, so the merge is
  // deterministic.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  out.trace.records = std::move(merged);
  return out;
}

StreamedMultiTenantTrace stream_multi_tenant_trace(
    const StreamedTraceSpec& spec, const std::string& dir) {
  if (spec.tenants.empty())
    throw std::invalid_argument("stream_multi_tenant_trace: no tenants");
  if (spec.rounds == 0)
    throw std::invalid_argument("stream_multi_tenant_trace: zero rounds");

  // Quiet gap inserted between workload rounds on the time axis.
  constexpr SimTime kRoundGapUs = 1'000'000;

  StreamedMultiTenantTrace out;
  out.name = "MT[";
  out.file_begin.push_back(0);

  TraceDictionary dict;
  std::uint32_t next_user = 0, next_process = 0, next_host = 0, next_job = 0;
  std::uint32_t group_offset = 0;
  bool has_paths = true;
  // Every part embeds the final merged dictionary, so all writers stay
  // open until the last tenant is spliced (the v3 footer layout exists for
  // exactly this) — merge_trace_streams then sees identical dict bytes.
  std::vector<std::unique_ptr<TraceWriter>> writers;

  for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
    const std::string part_path =
        dir + "/part-t" + std::to_string(t) + ".ftrace";
    TenantSplicer splicer{dict,
                          "t" + std::to_string(t) + "~",
                          {},
                          {},
                          0,
                          group_offset,
                          group_offset,
                          next_user,
                          next_process,
                          next_host,
                          next_job,
                          {},
                          {},
                          {},
                          {}};
    std::unique_ptr<TraceWriter> writer;
    SimTime time_base = 0;
    std::vector<TraceRecord> batch;
    for (std::size_t r = 0; r < spec.rounds; ++r) {
      // Round 0 uses make_multi_tenant_trace's exact per-tenant seed split
      // (the rounds == 1 byte-identity depends on it); later rounds jump
      // by a second odd constant so round streams stay independent.
      const std::uint64_t sub_seed = spec.seed +
                                     0x9E3779B97F4A7C15ull * (t + 1) +
                                     0xD1B54A32D192ED03ull * r;
      const Trace sub = make_paper_trace(spec.tenants[t], sub_seed,
                                         spec.scale);
      if (r == 0) {
        out.name += (t ? "+" : "") + sub.name;
        has_paths = has_paths && sub.has_paths;
        writer = std::make_unique<TraceWriter>(part_path, spec.tenants[t],
                                               sub.has_paths);
      } else {
        // New round, fresh ground-truth groups: advance past everything
        // this tenant has produced so far.
        splicer.group_offset = splicer.group_max;
      }
      splicer.splice(sub);
      batch.clear();
      batch.reserve(sub.records.size());
      for (const TraceRecord& rec : sub.records) {
        TraceRecord m = splicer.remap_record(*sub.dict, rec);
        m.timestamp += time_base;
        batch.push_back(m);
      }
      writer->append(std::span<const TraceRecord>(batch));
      time_base += sub.duration() + kRoundGapUs;
    }
    group_offset = std::max(group_offset, splicer.group_max);
    out.file_begin.push_back(static_cast<std::uint32_t>(dict.files.size()));
    out.part_paths.push_back(part_path);
    writers.push_back(std::move(writer));
  }
  out.name += "]";
  out.has_paths = has_paths;

  for (std::size_t t = 0; t < writers.size(); ++t) {
    out.records_written += writers[t]->records_written();
    writers[t]->finish(out.name + "~t" + std::to_string(t), dict);
  }
  return out;
}

const char* trace_kind_name(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kLLNL:
      return "LLNL";
    case TraceKind::kINS:
      return "INS";
    case TraceKind::kRES:
      return "RES";
    case TraceKind::kHP:
      return "HP";
    case TraceKind::kCustom:
      return "CUSTOM";
  }
  return "?";
}

std::string TraceDictionary::path_string(PathId p) const {
  if (!p.valid()) return {};
  std::string out;
  for (TokenId t : path_components(p)) {
    out += '/';
    out += tokens.resolve(t);
  }
  return out;
}

}  // namespace farmer
