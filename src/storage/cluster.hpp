// End-to-end cluster replay: clients -> MDS under discrete-event time.
//
// Clients re-issue the trace's requests at (scaled) trace timestamps — an
// open-loop arrival process, as in the paper's HUSt replay — and record the
// response time of every demand request. This produces the latency figures
// (Fig. 6 and Fig. 8); hit-ratio figures use the faster zero-latency replay
// in src/prefetch/replay.hpp.
#pragma once

#include "common/stats.hpp"
#include "storage/mds.hpp"
#include "trace/record.hpp"

namespace farmer {

struct ClusterConfig {
  MdsConfig mds;
  /// Multiplies trace inter-arrival gaps; < 1 compresses time and raises
  /// load. Tuned per trace so the MDS runs at a realistic utilisation.
  double time_scale = 1.0;
};

struct ClusterMetrics {
  LatencyHistogram response;   ///< demand response times, µs
  CacheStats cache;
  RunningStats demand_wait;    ///< queueing wait at the disk, µs
  RunningStats prefetch_wait;
  std::uint64_t requests = 0;
  std::uint64_t prefetch_batches = 0;
  std::uint64_t duplicate_suppressed = 0;
  SimTime sim_duration = 0;

  [[nodiscard]] double mean_response_ms() const noexcept {
    return response.mean() / 1000.0;
  }
};

/// Replays `trace` through an MDS driven by `predictor`.
[[nodiscard]] ClusterMetrics run_cluster(const Trace& trace,
                                         Predictor& predictor,
                                         const ClusterConfig& cfg);

}  // namespace farmer
