#include "storage/osd.hpp"

namespace farmer {

std::optional<Extent> Osd::allocate(std::uint64_t blocks) {
  if (blocks == 0) return Extent{0, 0};
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < blocks) continue;
    Extent e{it->first, blocks};
    const std::uint64_t rem_start = it->first + blocks;
    const std::uint64_t rem_len = it->second - blocks;
    free_.erase(it);
    if (rem_len > 0) free_.emplace(rem_start, rem_len);
    allocated_ += blocks;
    return e;
  }
  return std::nullopt;
}

void Osd::free_extent(Extent e) {
  if (e.length == 0) return;
  allocated_ -= e.length;
  auto [it, inserted] = free_.emplace(e.start, e.length);
  if (!inserted) return;  // double free: ignore defensively
  // Coalesce with successor.
  auto next = std::next(it);
  if (next != free_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_.erase(next);
  }
  // Coalesce with predecessor.
  if (it != free_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_.erase(it);
    }
  }
}

std::uint64_t Osd::largest_free() const noexcept {
  std::uint64_t best = 0;
  for (const auto& [start, len] : free_)
    if (len > best) best = len;
  return best;
}

}  // namespace farmer
