// Object storage device (OSD) model.
//
// A linear block address space with a first-fit extent allocator and a seek
// cost model. The layout experiments place files (objects) on OSDs either
// naively (creation order, arbitrary scatter) or grouped by FARMER
// correlation, then measure the sequentiality of replayed access runs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace farmer {

struct Extent {
  std::uint64_t start = 0;  ///< block address
  std::uint64_t length = 0; ///< blocks
  [[nodiscard]] std::uint64_t end() const noexcept { return start + length; }
};

class Osd {
 public:
  explicit Osd(std::uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {
    free_.emplace(0, capacity_blocks);
  }

  /// Allocates `blocks` contiguously (first fit). Returns nullopt when no
  /// single free extent fits.
  std::optional<Extent> allocate(std::uint64_t blocks);

  /// Frees a previously allocated extent, coalescing neighbours.
  void free_extent(Extent e);

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t allocated() const noexcept {
    return allocated_;
  }
  [[nodiscard]] std::size_t free_fragments() const noexcept {
    return free_.size();
  }

  /// Largest free extent (fragmentation indicator).
  [[nodiscard]] std::uint64_t largest_free() const noexcept;

  /// Seek distance between two block addresses (cost-model helper).
  [[nodiscard]] static std::uint64_t seek_distance(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
    return a > b ? a - b : b - a;
  }

 private:
  std::uint64_t capacity_;
  std::uint64_t allocated_ = 0;
  std::map<std::uint64_t, std::uint64_t> free_;  ///< start -> length
};

/// Placement map: object -> (osd index, extent).
struct Placement {
  std::uint32_t osd = 0;
  Extent extent;
};

}  // namespace farmer
