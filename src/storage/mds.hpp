// Metadata server (MDS) — the HUSt component FARMER plugs into.
//
// The MDS serves metadata lookups from a bounded cache backed by a KV store
// (the Berkeley DB stand-in). Misses go to a disk/DB service station.
// After answering a demand request the MDS consults its predictor and issues
// a *batched* prefetch for the predicted correlator group at low priority —
// the paper's two-queue, demand-over-prefetch scheduling model (Section 4.1).
//
// Duplicate suppression: requests for a file already being fetched (demand
// or prefetch) join the in-flight operation instead of re-hitting the disk.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/metadata_cache.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "kvstore/btree.hpp"
#include "prefetch/predictor.hpp"
#include "sim/service_station.hpp"
#include "sim/simulator.hpp"

namespace farmer {

struct MdsConfig {
  std::size_t cache_capacity = 1024;
  CachePolicy policy = CachePolicy::kLRU;
  std::size_t prefetch_degree = 4;
  unsigned disk_servers = 1;
  SimTime cpu_time = 30;            ///< µs per request (hit path)
  SimTime db_fetch_time = 1500;     ///< µs mean per random DB/disk fetch
  SimTime db_fetch_jitter = 400;    ///< uniform +- jitter
  SimTime seq_fetch_time = 250;     ///< µs per extra entry in a batched
                                    ///< prefetch (correlated files laid out
                                    ///< contiguously, Section 4.2)
  bool batch_prefetch = true;       ///< single I/O per correlator group
  std::uint64_t seed = 42;
};

class MdsServer {
 public:
  using ResponseFn = std::function<void(SimTime response_time_us)>;

  MdsServer(Simulator& sim, MdsConfig cfg, Predictor& predictor);

  /// Loads the metadata table (one KV record per file).
  void populate(std::size_t file_count);

  /// Client-facing entry point: a demand metadata request for `rec.file`
  /// arriving now. `respond` fires when the reply leaves the MDS.
  void handle_demand(const TraceRecord& rec, ResponseFn respond);

  /// Drops `f` from the cache if resident (metadata changed under the MDS:
  /// file deleted/recreated — the serving harness's population-churn
  /// events). A fetch already in flight is unaffected: its completion
  /// re-inserts the entry, modelling the post-change re-fetch.
  void invalidate(FileId f) { cache_.erase(f); }

  [[nodiscard]] const MetadataCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const ServiceStation& disk() const noexcept { return disk_; }
  [[nodiscard]] const BTreeStore& metadata_table() const noexcept {
    return table_;
  }
  [[nodiscard]] std::uint64_t prefetch_batches() const noexcept {
    return prefetch_batches_;
  }
  [[nodiscard]] std::uint64_t duplicate_suppressed() const noexcept {
    return duplicate_suppressed_;
  }

 private:
  /// One disk fetch duration (randomised around the mean).
  [[nodiscard]] SimTime fetch_time();

  void issue_prefetch(const TraceRecord& rec);

  Simulator& sim_;
  MdsConfig cfg_;
  Predictor& predictor_;
  MetadataCache cache_;
  ServiceStation disk_;
  BTreeStore table_;
  Rng rng_;

  // In-flight fetches: file -> callbacks waiting for it to land.
  std::unordered_map<FileId, std::vector<ResponseFn>> inflight_;
  std::uint64_t prefetch_batches_ = 0;
  std::uint64_t duplicate_suppressed_ = 0;
};

}  // namespace farmer
