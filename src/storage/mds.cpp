#include "storage/mds.hpp"

#include <string>

namespace farmer {

MdsServer::MdsServer(Simulator& sim, MdsConfig cfg, Predictor& predictor)
    : sim_(sim),
      cfg_(cfg),
      predictor_(predictor),
      cache_(cfg.cache_capacity, cfg.policy),
      disk_(sim, cfg.disk_servers),
      rng_(cfg.seed) {}

void MdsServer::populate(std::size_t file_count) {
  // One metadata record per file: a fixed-shape blob standing in for the
  // inode/object descriptor HUSt keeps in Berkeley DB.
  std::string blob(96, '\0');
  for (std::size_t i = 0; i < file_count; ++i) {
    blob.replace(0, 8, reinterpret_cast<const char*>(&i), 8);
    table_.put(i, blob);
  }
}

SimTime MdsServer::fetch_time() {
  const SimTime jitter = cfg_.db_fetch_jitter > 0
                             ? rng_.next_in(-cfg_.db_fetch_jitter,
                                            cfg_.db_fetch_jitter)
                             : 0;
  const SimTime t = cfg_.db_fetch_time + jitter;
  return t > kMicrosecond ? t : kMicrosecond;
}

void MdsServer::handle_demand(const TraceRecord& rec, ResponseFn respond) {
  const SimTime arrival = sim_.now();
  const FileId file = rec.file;

  // Learning happens on every demand request, hit or miss.
  predictor_.observe(rec);

  if (cache_.access(file)) {
    const SimTime done = arrival + cfg_.cpu_time;
    sim_.schedule_at(done, [respond = std::move(respond), arrival, done] {
      respond(done - arrival);
    });
    issue_prefetch(rec);
    return;
  }

  // Miss: coalesce with any in-flight fetch of the same file.
  auto it = inflight_.find(file);
  if (it != inflight_.end()) {
    ++duplicate_suppressed_;
    it->second.push_back(
        [this, arrival, respond = std::move(respond)](SimTime) {
          respond(sim_.now() + cfg_.cpu_time - arrival);
        });
    issue_prefetch(rec);
    return;
  }

  inflight_[file].push_back(
      [this, arrival, respond = std::move(respond)](SimTime) {
        respond(sim_.now() + cfg_.cpu_time - arrival);
      });
  disk_.submit(ServiceStation::kDemand, fetch_time(), [this, file] {
    // Verify the record exists in the table — the fetch we just paid for.
    (void)table_.get(file.value());
    cache_.insert_demand(file);
    auto waiters = std::move(inflight_[file]);
    inflight_.erase(file);
    for (auto& w : waiters) w(0);
  });
  issue_prefetch(rec);
}

void MdsServer::issue_prefetch(const TraceRecord& rec) {
  if (cfg_.prefetch_degree == 0) return;
  PredictionList predictions;
  predictor_.predict(rec, cfg_.prefetch_degree, predictions);
  if (predictions.empty()) return;

  // Collect candidates that actually need a fetch.
  SmallVector<FileId, 8> to_fetch;
  for (FileId f : predictions) {
    if (f == rec.file || cache_.contains(f) || inflight_.count(f)) continue;
    to_fetch.push_back(f);
    inflight_[f];  // mark in-flight with no waiters yet
  }
  if (to_fetch.empty()) return;

  ++prefetch_batches_;
  if (cfg_.batch_prefetch) {
    // Correlated files are laid out contiguously (Section 4.2), so a group
    // costs one seek plus sequential transfers.
    const SimTime t =
        fetch_time() +
        static_cast<SimTime>(to_fetch.size() - 1) * cfg_.seq_fetch_time;
    disk_.submit(ServiceStation::kPrefetch, t, [this, to_fetch] {
      for (FileId f : to_fetch) {
        (void)table_.get(f.value());
        cache_.insert_prefetch(f);
        auto waiters = std::move(inflight_[f]);
        inflight_.erase(f);
        for (auto& w : waiters) w(0);
      }
    });
  } else {
    for (FileId f : to_fetch) {
      disk_.submit(ServiceStation::kPrefetch, fetch_time(), [this, f] {
        (void)table_.get(f.value());
        cache_.insert_prefetch(f);
        auto waiters = std::move(inflight_[f]);
        inflight_.erase(f);
        for (auto& w : waiters) w(0);
      });
    }
  }
}

}  // namespace farmer
