#include "storage/cluster.hpp"

namespace farmer {

ClusterMetrics run_cluster(const Trace& trace, Predictor& predictor,
                           const ClusterConfig& cfg) {
  Simulator sim;
  MdsServer mds(sim, cfg.mds, predictor);
  mds.populate(trace.file_count());

  ClusterMetrics metrics;

  // Self-clocking arrival chain: each arrival schedules the next, keeping
  // the event queue O(1) in trace length.
  const auto& records = trace.records;
  auto arrival_time = [&](std::size_t i) {
    return static_cast<SimTime>(static_cast<double>(records[i].timestamp) *
                                cfg.time_scale);
  };

  // std::function must be copyable; share the recursive closure via a
  // small heap cell. The closure captures its own cell weakly — a strong
  // capture would be a shared_ptr cycle (cell -> function -> cell) that
  // outlives the function and leaks. The local `issue` keeps the cell
  // alive for the whole run, so lock() cannot fail while events exist.
  auto issue = std::make_shared<std::function<void(std::size_t)>>();
  *issue = [&, weak = std::weak_ptr(issue)](std::size_t i) {
    if (i + 1 < records.size())
      sim.schedule_at(arrival_time(i + 1), [weak, i] {
        if (const auto self = weak.lock()) (*self)(i + 1);
      });
    mds.handle_demand(records[i], [&metrics](SimTime rt) {
      metrics.response.record(static_cast<std::uint64_t>(rt));
    });
  };
  if (!records.empty())
    sim.schedule_at(arrival_time(0), [issue] { (*issue)(0); });

  sim.run();

  metrics.cache = mds.cache().stats();
  metrics.demand_wait = mds.disk().wait_stats(ServiceStation::kDemand);
  metrics.prefetch_wait = mds.disk().wait_stats(ServiceStation::kPrefetch);
  metrics.requests = records.size();
  metrics.prefetch_batches = mds.prefetch_batches();
  metrics.duplicate_suppressed = mds.duplicate_suppressed();
  metrics.sim_duration = sim.now();
  return metrics;
}

}  // namespace farmer
