#include "sim/simulator.hpp"

namespace farmer {

void Simulator::schedule_at(SimTime at, Callback cb) {
  if (at < now_) at = now_;
  queue_.push({at, next_seq_++, std::move(cb)});
}

std::size_t Simulator::run() { return run_until(INT64_MAX); }

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    if (queue_.top().at > deadline) break;
    // priority_queue::top() is const; the callback must be moved out before
    // pop, so copy the POD fields first and steal the callback via const_cast
    // — safe because the element is popped immediately after.
    auto& top = const_cast<Event&>(queue_.top());
    now_ = top.at;
    Callback cb = std::move(top.cb);
    queue_.pop();
    cb();
    ++n;
    ++executed_;
  }
  return n;
}

}  // namespace farmer
