#include "sim/service_station.hpp"

namespace farmer {

void ServiceStation::submit(int priority, SimTime service_time,
                            Completion done) {
  Job job{sim_.now(), service_time, std::move(done)};
  if (priority == kDemand)
    demand_q_.push_back(std::move(job));
  else
    prefetch_q_.push_back(std::move(job));
  try_dispatch();
}

void ServiceStation::try_dispatch() {
  while (free_servers_ > 0) {
    if (!demand_q_.empty()) {
      Job job = std::move(demand_q_.front());
      demand_q_.pop_front();
      start(std::move(job), kDemand);
    } else if (!prefetch_q_.empty()) {
      Job job = std::move(prefetch_q_.front());
      prefetch_q_.pop_front();
      start(std::move(job), kPrefetch);
    } else {
      break;
    }
  }
}

void ServiceStation::start(Job job, int priority) {
  --free_servers_;
  ++busy_;
  const auto wait = static_cast<double>(sim_.now() - job.enqueue_time);
  (priority == kDemand ? demand_wait_ : prefetch_wait_).add(wait);
  // Move the completion into the event; the station's own bookkeeping event
  // runs first (same timestamp, earlier sequence) to free the server.
  sim_.schedule_after(job.service_time,
                      [this, done = std::move(job.done)]() mutable {
                        ++free_servers_;
                        --busy_;
                        ++completed_;
                        if (done) done();
                        try_dispatch();
                      });
}

}  // namespace farmer
