// Discrete-event simulation engine.
//
// A single-threaded event loop over a (time, sequence) min-heap. Events are
// arbitrary callbacks; the sequence number makes simultaneous events fire in
// scheduling order, which keeps every run bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace farmer {

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time (µs).
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `cb` to run at absolute time `at` (clamped to now).
  void schedule_at(SimTime at, Callback cb);

  /// Schedules `cb` after `delay` µs.
  void schedule_after(SimTime delay, Callback cb) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Runs until the event queue drains. Returns events executed.
  std::size_t run();

  /// Runs until the queue drains or simulated time passes `deadline`.
  std::size_t run_until(SimTime deadline);

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace farmer
