// Priority service station: an m-server, two-priority, non-preemptive queue.
//
// Models the MDS's Berkeley-DB/disk stage. Demand requests (priority 0)
// always dequeue before prefetch requests (priority 1) — the paper's
// "priority-based request-scheduling model" with a demand queue and a
// prefetch queue — but a prefetch already in service is not preempted,
// which is exactly how aggressive prefetching hurts demand latency.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/stats.hpp"
#include "sim/simulator.hpp"

namespace farmer {

class ServiceStation {
 public:
  using Completion = std::function<void()>;

  static constexpr int kDemand = 0;
  static constexpr int kPrefetch = 1;

  /// `servers`: concurrent service slots (disk spindles / DB threads).
  ServiceStation(Simulator& sim, unsigned servers)
      : sim_(sim), free_servers_(servers == 0 ? 1 : servers) {}

  /// Enqueues a job of `service_time` µs at `priority`; `done` fires at
  /// completion time.
  void submit(int priority, SimTime service_time, Completion done);

  /// Jobs currently waiting at the given priority.
  [[nodiscard]] std::size_t queued(int priority) const noexcept {
    return priority == kDemand ? demand_q_.size() : prefetch_q_.size();
  }
  [[nodiscard]] unsigned busy_servers() const noexcept { return busy_; }

  /// Aggregate waiting-time statistics per priority (µs).
  [[nodiscard]] const RunningStats& wait_stats(int priority) const noexcept {
    return priority == kDemand ? demand_wait_ : prefetch_wait_;
  }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

 private:
  struct Job {
    SimTime enqueue_time;
    SimTime service_time;
    Completion done;
  };

  void try_dispatch();
  void start(Job job, int priority);

  Simulator& sim_;
  unsigned free_servers_;
  unsigned busy_ = 0;
  std::deque<Job> demand_q_;
  std::deque<Job> prefetch_q_;
  RunningStats demand_wait_;
  RunningStats prefetch_wait_;
  std::uint64_t completed_ = 0;
};

}  // namespace farmer
