// FARMER-enabled data layout and its evaluation (Section 4.2).
//
// Two placement strategies over a set of OSDs:
//   * scatter — files are allocated in creation order round-robin across
//     OSDs (the baseline: correlated files end up far apart);
//   * grouped — FARMER groups are allocated contiguously on one OSD each,
//     so a predecessor access can batch-read its whole group sequentially.
//
// Evaluation replays the trace's access stream against a placement and
// accumulates a seek-cost model: consecutive accesses on the same OSD pay a
// cost growing with block distance; an access within the previous access's
// group costs a sequential transfer only. Reported: mean seek distance,
// sequential-run fraction, and modelled total I/O time.
#pragma once

#include "layout/grouper.hpp"
#include "storage/osd.hpp"
#include "trace/record.hpp"

namespace farmer {

struct LayoutConfig {
  std::uint32_t osd_count = 4;
  std::uint64_t osd_capacity_blocks = 1ull << 22;  ///< 4 Mi blocks
  std::uint32_t block_size = 4096;
  // Cost model (µs).
  double seek_base_us = 400.0;       ///< minimum positioning cost
  double seek_per_gb_us = 2500.0;    ///< added cost per GB of seek span
  double transfer_per_block_us = 8.0;
};

struct PlacementMap {
  std::vector<Placement> of_file;  ///< dense by FileId
  std::vector<Osd> osds;
};

struct LayoutMetrics {
  std::uint64_t accesses = 0;
  std::uint64_t seeks = 0;            ///< non-sequential transitions
  std::uint64_t sequential_hits = 0;  ///< same-group, same-OSD transitions
  double mean_seek_blocks = 0.0;
  double total_io_ms = 0.0;

  [[nodiscard]] double sequential_fraction() const noexcept {
    return accesses > 1
               ? static_cast<double>(sequential_hits) /
                     static_cast<double>(accesses - 1)
               : 0.0;
  }
};

/// Allocates every file round-robin in creation order (baseline).
[[nodiscard]] PlacementMap place_scatter(const TraceDictionary& dict,
                                         const LayoutConfig& cfg);

/// Allocates FARMER groups contiguously, then the remaining files scattered.
[[nodiscard]] PlacementMap place_grouped(const TraceDictionary& dict,
                                         const GroupingResult& groups,
                                         const LayoutConfig& cfg);

/// Replays the trace's file sequence against a placement.
[[nodiscard]] LayoutMetrics evaluate_layout(const Trace& trace,
                                            const PlacementMap& placement,
                                            const GroupingResult* groups,
                                            const LayoutConfig& cfg);

}  // namespace farmer
