#include "layout/grouper.hpp"

#include <numeric>

namespace farmer {

UnionFind::UnionFind(std::size_t n) : parent_(n), sizes_(n, 1) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

std::uint32_t UnionFind::find(std::uint32_t x) noexcept {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::merge(std::uint32_t a, std::uint32_t b,
                      std::size_t cap) noexcept {
  a = find(a);
  b = find(b);
  if (a == b) return true;
  if (sizes_[a] + sizes_[b] > cap) return false;
  if (sizes_[a] < sizes_[b]) std::swap(a, b);
  parent_[b] = a;
  sizes_[a] += sizes_[b];
  return true;
}

GroupingResult build_groups(const CorrelationMiner& model,
                            const TraceDictionary& dict,
                            const GrouperConfig& cfg) {
  const std::size_t n = dict.files.size();
  UnionFind uf(n);

  for (std::uint32_t f = 0; f < n; ++f) {
    if (cfg.read_only_only && !dict.files[f].read_only) continue;
    for (const Correlator& c : model.snapshot(FileId(f))) {
      if (static_cast<double>(c.degree) < cfg.min_degree) continue;
      const std::uint32_t succ = c.file.value();
      if (succ >= n) continue;
      if (cfg.read_only_only && !dict.files[succ].read_only) continue;
      uf.merge(f, succ, cfg.max_group_files);
    }
  }

  GroupingResult result;
  result.group_of.resize(n);
  std::vector<std::vector<FileId>> by_rep(n);
  for (std::uint32_t f = 0; f < n; ++f) {
    const std::uint32_t rep = uf.find(f);
    result.group_of[f] = rep;
    by_rep[rep].push_back(FileId(f));
  }
  for (auto& members : by_rep) {
    if (members.size() < 2) continue;
    result.grouped_files += members.size();
    result.groups.push_back(std::move(members));
  }
  return result;
}

}  // namespace farmer
