#include "layout/layout.hpp"

#include <cassert>

namespace farmer {

namespace {

std::uint64_t blocks_for(const FileMeta& meta, const LayoutConfig& cfg) {
  return (static_cast<std::uint64_t>(meta.size_bytes) + cfg.block_size - 1) /
             cfg.block_size +
         1;  // +1 block of metadata/indirection
}

PlacementMap make_osds(const LayoutConfig& cfg) {
  PlacementMap map;
  map.osds.reserve(cfg.osd_count);
  for (std::uint32_t i = 0; i < cfg.osd_count; ++i)
    map.osds.emplace_back(cfg.osd_capacity_blocks);
  return map;
}

void place_file(PlacementMap& map, const TraceDictionary& dict,
                const LayoutConfig& cfg, std::uint32_t file,
                std::uint32_t osd) {
  auto extent = map.osds[osd].allocate(blocks_for(dict.files[file], cfg));
  assert(extent.has_value() && "OSD capacity exhausted");
  map.of_file[file] = {osd, extent.value_or(Extent{})};
}

}  // namespace

PlacementMap place_scatter(const TraceDictionary& dict,
                           const LayoutConfig& cfg) {
  PlacementMap map = make_osds(cfg);
  map.of_file.resize(dict.files.size());
  for (std::uint32_t f = 0; f < dict.files.size(); ++f)
    place_file(map, dict, cfg, f, f % cfg.osd_count);
  return map;
}

PlacementMap place_grouped(const TraceDictionary& dict,
                           const GroupingResult& groups,
                           const LayoutConfig& cfg) {
  PlacementMap map = make_osds(cfg);
  map.of_file.resize(dict.files.size());
  std::vector<bool> placed(dict.files.size(), false);

  // Each multi-file group lands contiguously on one OSD (round-robin over
  // OSDs to balance load).
  std::uint32_t next_osd = 0;
  for (const auto& members : groups.groups) {
    const std::uint32_t osd = next_osd;
    next_osd = (next_osd + 1) % cfg.osd_count;
    for (FileId f : members) {
      place_file(map, dict, cfg, f.value(), osd);
      placed[f.value()] = true;
    }
  }
  for (std::uint32_t f = 0; f < dict.files.size(); ++f)
    if (!placed[f]) place_file(map, dict, cfg, f, f % cfg.osd_count);
  return map;
}

LayoutMetrics evaluate_layout(const Trace& trace,
                              const PlacementMap& placement,
                              const GroupingResult* groups,
                              const LayoutConfig& cfg) {
  LayoutMetrics m;
  double seek_blocks_total = 0.0;
  double io_us = 0.0;
  FileId prev;

  const double bytes_per_block = cfg.block_size;
  for (const TraceRecord& rec : trace.records) {
    ++m.accesses;
    const Placement& cur = placement.of_file[rec.file.value()];
    io_us += static_cast<double>(cur.extent.length) *
             cfg.transfer_per_block_us;
    if (prev.valid() && prev != rec.file) {
      const Placement& before = placement.of_file[prev.value()];
      const bool grouped =
          groups != nullptr && groups->same_group(prev, rec.file);
      if (before.osd == cur.osd && grouped) {
        // Same correlated group laid out contiguously: the batched read
        // already streamed this file — sequential continuation.
        ++m.sequential_hits;
      } else {
        ++m.seeks;
        const std::uint64_t dist =
            before.osd == cur.osd
                ? Osd::seek_distance(before.extent.end(), cur.extent.start)
                : cfg.osd_capacity_blocks / 2;  // cross-OSD: full reposition
        seek_blocks_total += static_cast<double>(dist);
        const double gb =
            static_cast<double>(dist) * bytes_per_block / 1e9;
        io_us += cfg.seek_base_us + gb * cfg.seek_per_gb_us;
      }
    }
    prev = rec.file;
  }
  m.mean_seek_blocks =
      m.seeks > 0 ? seek_blocks_total / static_cast<double>(m.seeks) : 0.0;
  m.total_io_ms = io_us / 1000.0;
  return m;
}

}  // namespace farmer
