// Correlation-directed file grouping (Section 4.2).
//
// Builds disjoint groups of strongly correlated files from FARMER's
// Correlator Lists via union-find: an edge A -> B with degree >= threshold
// merges A and B, subject to a group-size cap (one batched I/O must stay
// bounded). Per the paper's design decision, only read-only files are
// eligible — mutable files would make grouped layout management complex.
#pragma once

#include <cstdint>
#include <vector>

#include "api/correlation_miner.hpp"
#include "trace/record.hpp"

namespace farmer {

struct GrouperConfig {
  double min_degree = 0.4;       ///< correlation degree to merge
  std::size_t max_group_files = 16;
  bool read_only_only = true;    ///< the paper's initial-attempt restriction
};

/// Disjoint-set over dense file ids with size caps.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  [[nodiscard]] std::uint32_t find(std::uint32_t x) noexcept;
  /// Merges if the combined size stays within `cap`; returns success.
  bool merge(std::uint32_t a, std::uint32_t b, std::size_t cap) noexcept;
  [[nodiscard]] std::size_t size_of(std::uint32_t x) noexcept {
    return sizes_[find(x)];
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> sizes_;
};

/// Computed layout groups: `group_of[file] == representative`, plus the
/// member lists of every multi-file group.
struct GroupingResult {
  std::vector<std::uint32_t> group_of;              ///< dense by FileId
  std::vector<std::vector<FileId>> groups;          ///< multi-file groups
  std::size_t grouped_files = 0;

  [[nodiscard]] bool same_group(FileId a, FileId b) const noexcept {
    return group_of[a.value()] == group_of[b.value()];
  }
};

/// Derives groups from the miner's current Correlator Lists. Works with any
/// CorrelationMiner backend (serial, sharded, nexus).
[[nodiscard]] GroupingResult build_groups(const CorrelationMiner& model,
                                          const TraceDictionary& dict,
                                          const GrouperConfig& cfg);

}  // namespace farmer
