// Key-value store interface — the Berkeley DB stand-in.
//
// HUSt stores file/object metadata and FARMER's Correlator Lists in
// Berkeley DB; this library provides the same role with two engines:
//   * BTreeStore  — in-memory B+tree with ordered iteration (btree.hpp)
//   * LogStore    — append-only persistent log + in-memory index with
//                   crash recovery (log_store.hpp)
// Keys are 64-bit; values are opaque byte strings.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace farmer {

class KvStore {
 public:
  virtual ~KvStore() = default;

  /// Inserts or overwrites.
  virtual void put(std::uint64_t key, std::string_view value) = 0;

  /// Point lookup.
  [[nodiscard]] virtual std::optional<std::string> get(
      std::uint64_t key) const = 0;

  /// Deletes if present; returns whether a value was removed.
  virtual bool erase(std::uint64_t key) = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// In-order scan over [lo, hi]; `fn` returns false to stop early.
  virtual void scan(std::uint64_t lo, std::uint64_t hi,
                    const std::function<bool(std::uint64_t,
                                             std::string_view)>& fn) const = 0;
};

}  // namespace farmer
