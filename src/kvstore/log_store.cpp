#include "kvstore/log_store.hpp"

#include <cstring>
#include <map>
#include <stdexcept>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/hash.hpp"

namespace farmer {

namespace {

// Pushes `f`'s already-flushed bytes to stable storage. No-op on platforms
// without fdatasync/fsync; durability there degrades to the page cache.
void fsync_file(std::FILE* f) {
#if defined(__linux__)
  ::fdatasync(::fileno(f));
#elif defined(__unix__) || defined(__APPLE__)
  ::fsync(::fileno(f));
#else
  (void)f;
#endif
}

constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpErase = 2;

// Record: [u32 checksum][u8 op][u64 key][u32 len][len bytes]
struct RecordHeader {
  std::uint32_t checksum;
  std::uint8_t op;
  std::uint64_t key;
  std::uint32_t len;
};

// Word-wise mix64 chain (the value length is folded into the seed so a
// zero-padded final word cannot alias a shorter value). Hashing 8 bytes
// per mix instead of 1 keeps the checksum off the WAL append's critical
// path for record-sized values.
std::uint32_t checksum_of(std::uint8_t op, std::uint64_t key,
                          std::string_view value) {
  std::uint64_t h = mix64(key ^ (static_cast<std::uint64_t>(op) << 56) ^
                          (value.size() * 0x9E3779B97F4A7C15ull));
  const char* p = value.data();
  std::size_t n = value.size();
  for (; n >= 8; p += 8, n -= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = mix64(h ^ w);
  }
  if (n > 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, p, n);
    h = mix64(h ^ w);
  }
  return static_cast<std::uint32_t>(h);
}

}  // namespace

LogStore::LogStore(std::string path, Durability durability,
                   IndexMode index_mode)
    : path_(std::move(path)),
      durability_(durability),
      index_mode_(index_mode) {
  replay();
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr)
    throw std::runtime_error("LogStore: cannot open " + path_);
}

LogStore::~LogStore() {
  if (file_ != nullptr) std::fclose(file_);
}

void LogStore::replay() {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return;  // fresh store
  long valid_end = 0;
  for (;;) {
    RecordHeader h{};
    if (std::fread(&h.checksum, sizeof h.checksum, 1, f) != 1) break;
    if (std::fread(&h.op, sizeof h.op, 1, f) != 1) break;
    if (std::fread(&h.key, sizeof h.key, 1, f) != 1) break;
    if (std::fread(&h.len, sizeof h.len, 1, f) != 1) break;
    std::string value(h.len, '\0');
    if (h.len > 0 && std::fread(value.data(), 1, h.len, f) != h.len) break;
    if (checksum_of(h.op, h.key, value) != h.checksum) break;  // torn tail
    if (h.op == kOpPut) {
      if (index_mode_ == IndexMode::kIndexed) {
        auto it = index_.find(h.key);
        if (it != index_.end())
          dead_bytes_ += sizeof(RecordHeader) + it->second.size();
        index_[h.key] = std::move(value);
      }
    } else if (h.op == kOpErase) {
      index_.erase(h.key);
    } else {
      break;  // unknown op: treat as corruption
    }
    ++recovered_;
    valid_end = std::ftell(f);
  }
  std::fclose(f);
  // Truncate any torn tail so future appends start at a clean boundary.
  if (valid_end >= 0) {
    std::FILE* t = std::fopen(path_.c_str(), "rb+");
    if (t != nullptr) {
      std::fseek(t, 0, SEEK_END);
      if (std::ftell(t) != valid_end) {
        std::fclose(t);
        // ftruncate via reopen-and-copy is portable but wasteful; use the
        // POSIX call through stdio's fileno-free fallback: rewrite file.
        std::FILE* in = std::fopen(path_.c_str(), "rb");
        std::vector<char> keep(static_cast<std::size_t>(valid_end));
        if (in != nullptr) {
          const std::size_t got = keep.empty()
                                      ? 0
                                      : std::fread(keep.data(), 1,
                                                   keep.size(), in);
          std::fclose(in);
          std::FILE* out = std::fopen(path_.c_str(), "wb");
          if (out != nullptr) {
            if (got > 0) std::fwrite(keep.data(), 1, got, out);
            std::fclose(out);
          }
        }
      } else {
        std::fclose(t);
      }
    }
  }
}

void LogStore::append(std::uint8_t op, std::uint64_t key,
                      std::string_view value) {
  const std::uint32_t csum = checksum_of(op, key, value);
  const auto len = static_cast<std::uint32_t>(value.size());
  // One fwrite per record: stdio locks the FILE per call, so five small
  // writes cost five lock round-trips on the WAL append path.
  write_buf_.clear();
  write_buf_.append(reinterpret_cast<const char*>(&csum), sizeof csum);
  write_buf_.push_back(static_cast<char>(op));
  write_buf_.append(reinterpret_cast<const char*>(&key), sizeof key);
  write_buf_.append(reinterpret_cast<const char*>(&len), sizeof len);
  write_buf_.append(value.data(), value.size());
  std::fwrite(write_buf_.data(), 1, write_buf_.size(), file_);
}

void LogStore::put(std::uint64_t key, std::string_view value) {
  append(kOpPut, key, value);
  if (index_mode_ != IndexMode::kIndexed) return;
  auto it = index_.find(key);
  if (it != index_.end())
    dead_bytes_ += sizeof(RecordHeader) + it->second.size();
  index_[key] = std::string(value);
}

std::optional<std::string> LogStore::get(std::uint64_t key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool LogStore::erase(std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  append(kOpErase, key, {});
  dead_bytes_ += sizeof(RecordHeader) + it->second.size();
  index_.erase(it);
  return true;
}

void LogStore::scan(
    std::uint64_t lo, std::uint64_t hi,
    const std::function<bool(std::uint64_t, std::string_view)>& fn) const {
  // The hash index is unordered; materialise an ordered view for the scan.
  std::map<std::uint64_t, const std::string*> ordered;
  for (const auto& [k, v] : index_)
    if (k >= lo && k <= hi) ordered.emplace(k, &v);
  for (const auto& [k, v] : ordered)
    if (!fn(k, *v)) return;
}

void LogStore::sync() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  if (durability_ == Durability::kFsync) fsync_file(file_);
}

std::size_t LogStore::compact() {
  // An append-only store has no index to rewrite from; compacting would
  // silently discard every record.
  if (index_mode_ != IndexMode::kIndexed) return 0;
  const std::size_t reclaimed = dead_bytes_;
  if (file_ != nullptr) std::fclose(file_);
  const std::string tmp = path_ + ".compact";
  {
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr)
      throw std::runtime_error("LogStore: cannot open " + tmp);
    std::FILE* saved = file_;
    file_ = out;
    for (const auto& [k, v] : index_) append(kOpPut, k, v);
    file_ = saved;
    std::fflush(out);
    if (durability_ == Durability::kFsync) fsync_file(out);
    std::fclose(out);
  }
  std::remove(path_.c_str());
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    throw std::runtime_error("LogStore: compaction rename failed");
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr)
    throw std::runtime_error("LogStore: cannot reopen " + path_);
  dead_bytes_ = 0;
  return reclaimed;
}

}  // namespace farmer
