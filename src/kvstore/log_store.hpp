// Append-only persistent log store with crash recovery.
//
// Every put/erase appends a checksummed record to a log file; an in-memory
// hash index maps keys to their latest value. On open, the log is replayed
// to rebuild the index; a torn tail (partial final record or bad checksum)
// is truncated, matching the write-ahead-log discipline Berkeley DB applies.
// `compact()` rewrites the log keeping only live entries.
#pragma once

#include <cstdio>
#include <string>
#include <unordered_map>

#include "kvstore/kvstore.hpp"

namespace farmer {

class LogStore final : public KvStore {
 public:
  /// How far `sync()` pushes appended records.
  enum class Durability {
    kBuffered,  ///< fflush only: survives the process, not the machine
    kFsync,     ///< fflush + fdatasync: survives power loss (WAL group commit)
  };

  /// Whether the store maintains its in-memory key→value index.
  enum class IndexMode {
    kIndexed,     ///< default: get/scan/erase/compact work (Berkeley-DB use)
    kAppendOnly,  ///< write-optimized WAL segment: put() only appends; the
                  ///< replay still validates and truncates the torn tail,
                  ///< but get()/scan() see nothing, size() is 0, erase() is
                  ///< a no-op and compact() reclaims nothing. Reopen in
                  ///< kIndexed mode to read the contents back.
  };

  /// Opens (creating if needed) the log at `path` and replays it.
  /// Throws std::runtime_error on unrecoverable I/O errors.
  explicit LogStore(std::string path,
                    Durability durability = Durability::kBuffered,
                    IndexMode index_mode = IndexMode::kIndexed);
  ~LogStore() override;
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  void put(std::uint64_t key, std::string_view value) override;
  [[nodiscard]] std::optional<std::string> get(
      std::uint64_t key) const override;
  bool erase(std::uint64_t key) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  void scan(std::uint64_t lo, std::uint64_t hi,
            const std::function<bool(std::uint64_t, std::string_view)>& fn)
      const override;

  /// Flushes buffered appends to the OS; in `Durability::kFsync` mode also
  /// fdatasync()s them to stable storage before returning.
  void sync();

  /// Rewrites the log with only live records; returns reclaimed bytes.
  std::size_t compact();

  /// Number of log records replayed by the constructor (tests/recovery).
  [[nodiscard]] std::size_t recovered_records() const noexcept {
    return recovered_;
  }

 private:
  void append(std::uint8_t op, std::uint64_t key, std::string_view value);
  void replay();

  std::string path_;
  Durability durability_ = Durability::kBuffered;
  IndexMode index_mode_ = IndexMode::kIndexed;
  std::FILE* file_ = nullptr;
  std::unordered_map<std::uint64_t, std::string> index_;
  std::string write_buf_;  // reused per append: one fwrite per record
  std::size_t recovered_ = 0;
  std::size_t dead_bytes_ = 0;
};

}  // namespace farmer
