// Append-only persistent log store with crash recovery.
//
// Every put/erase appends a checksummed record to a log file; an in-memory
// hash index maps keys to their latest value. On open, the log is replayed
// to rebuild the index; a torn tail (partial final record or bad checksum)
// is truncated, matching the write-ahead-log discipline Berkeley DB applies.
// `compact()` rewrites the log keeping only live entries.
#pragma once

#include <cstdio>
#include <string>
#include <unordered_map>

#include "kvstore/kvstore.hpp"

namespace farmer {

class LogStore final : public KvStore {
 public:
  /// Opens (creating if needed) the log at `path` and replays it.
  /// Throws std::runtime_error on unrecoverable I/O errors.
  explicit LogStore(std::string path);
  ~LogStore() override;
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  void put(std::uint64_t key, std::string_view value) override;
  [[nodiscard]] std::optional<std::string> get(
      std::uint64_t key) const override;
  bool erase(std::uint64_t key) override;
  [[nodiscard]] std::size_t size() const override { return index_.size(); }
  void scan(std::uint64_t lo, std::uint64_t hi,
            const std::function<bool(std::uint64_t, std::string_view)>& fn)
      const override;

  /// Flushes buffered appends to the OS.
  void sync();

  /// Rewrites the log with only live records; returns reclaimed bytes.
  std::size_t compact();

  /// Number of log records replayed by the constructor (tests/recovery).
  [[nodiscard]] std::size_t recovered_records() const noexcept {
    return recovered_;
  }

 private:
  void append(std::uint8_t op, std::uint64_t key, std::string_view value);
  void replay();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::unordered_map<std::uint64_t, std::string> index_;
  std::size_t recovered_ = 0;
  std::size_t dead_bytes_ = 0;
};

}  // namespace farmer
