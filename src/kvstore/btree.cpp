#include "kvstore/btree.hpp"

#include <algorithm>
#include <cstring>

namespace farmer {

// Node layout: a tagged base plus leaf/interior variants. Separator rule:
// interior key[i] is the smallest key reachable through child[i+1].
struct BTreeStore::Node {
  bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct BTreeStore::Leaf final : Node {
  Leaf() : Node(true) {}
  std::vector<std::uint64_t> keys;
  std::vector<std::string> values;
  Leaf* next = nullptr;
};

struct BTreeStore::Interior final : Node {
  Interior() : Node(false) {}
  std::vector<std::uint64_t> keys;   // size == children.size() - 1
  std::vector<Node*> children;
};

namespace {

void destroy(BTreeStore::Node* n);

}  // namespace

BTreeStore::BTreeStore() {
  auto* leaf = new Leaf();
  root_ = leaf;
  first_leaf_ = leaf;
}

namespace {
void destroy(BTreeStore::Node* n) {
  if (n == nullptr) return;
  if (!n->is_leaf) {
    auto* in = static_cast<BTreeStore::Interior*>(n);
    for (auto* c : in->children) destroy(c);
    delete in;
  } else {
    delete static_cast<BTreeStore::Leaf*>(n);
  }
}
}  // namespace

BTreeStore::~BTreeStore() { destroy(root_); }

BTreeStore::Leaf* BTreeStore::find_leaf(std::uint64_t key) const {
  Node* n = root_;
  while (!n->is_leaf) {
    auto* in = static_cast<Interior*>(n);
    const auto it =
        std::upper_bound(in->keys.begin(), in->keys.end(), key);
    n = in->children[static_cast<std::size_t>(it - in->keys.begin())];
  }
  return static_cast<Leaf*>(n);
}

void BTreeStore::put(std::uint64_t key, std::string_view value) {
  // Descend, remembering the interior path for splits.
  std::vector<Interior*> path;
  Node* n = root_;
  while (!n->is_leaf) {
    auto* in = static_cast<Interior*>(n);
    path.push_back(in);
    const auto it = std::upper_bound(in->keys.begin(), in->keys.end(), key);
    n = in->children[static_cast<std::size_t>(it - in->keys.begin())];
  }
  auto* leaf = static_cast<Leaf*>(n);
  const auto pos = static_cast<std::size_t>(
      std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key) -
      leaf->keys.begin());
  if (pos < leaf->keys.size() && leaf->keys[pos] == key) {
    leaf->values[pos].assign(value);
    return;
  }
  leaf->keys.insert(leaf->keys.begin() + static_cast<std::ptrdiff_t>(pos),
                    key);
  leaf->values.insert(leaf->values.begin() + static_cast<std::ptrdiff_t>(pos),
                      std::string(value));
  ++size_;

  if (leaf->keys.size() <= kLeafCap) return;

  // Split the leaf.
  auto* right = new Leaf();
  const std::size_t mid = leaf->keys.size() / 2;
  right->keys.assign(leaf->keys.begin() + static_cast<std::ptrdiff_t>(mid),
                     leaf->keys.end());
  right->values.assign(
      std::make_move_iterator(leaf->values.begin() +
                              static_cast<std::ptrdiff_t>(mid)),
      std::make_move_iterator(leaf->values.end()));
  leaf->keys.resize(mid);
  leaf->values.resize(mid);
  right->next = leaf->next;
  leaf->next = right;
  insert_into_parent(path, leaf, right->keys.front(), right);
}

void BTreeStore::insert_into_parent(std::vector<Interior*>& path, Node* left,
                                    std::uint64_t sep, Node* right) {
  if (path.empty()) {
    auto* new_root = new Interior();
    new_root->keys.push_back(sep);
    new_root->children.push_back(left);
    new_root->children.push_back(right);
    root_ = new_root;
    ++height_;
    return;
  }
  Interior* parent = path.back();
  path.pop_back();
  const auto it =
      std::upper_bound(parent->keys.begin(), parent->keys.end(), sep);
  const auto idx = static_cast<std::size_t>(it - parent->keys.begin());
  parent->keys.insert(parent->keys.begin() + static_cast<std::ptrdiff_t>(idx),
                      sep);
  parent->children.insert(
      parent->children.begin() + static_cast<std::ptrdiff_t>(idx) + 1, right);
  if (parent->children.size() <= kFanout) return;

  // Split the interior: middle key moves up.
  auto* rnode = new Interior();
  const std::size_t mid = parent->keys.size() / 2;
  const std::uint64_t up = parent->keys[mid];
  rnode->keys.assign(parent->keys.begin() + static_cast<std::ptrdiff_t>(mid) +
                         1,
                     parent->keys.end());
  rnode->children.assign(
      parent->children.begin() + static_cast<std::ptrdiff_t>(mid) + 1,
      parent->children.end());
  parent->keys.resize(mid);
  parent->children.resize(mid + 1);
  insert_into_parent(path, parent, up, rnode);
}

std::optional<std::string> BTreeStore::get(std::uint64_t key) const {
  const Leaf* leaf = find_leaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it != leaf->keys.end() && *it == key)
    return leaf->values[static_cast<std::size_t>(it - leaf->keys.begin())];
  return std::nullopt;
}

bool BTreeStore::erase(std::uint64_t key) {
  // Lazy deletion: remove from the leaf without rebalancing. Underfull
  // leaves are tolerated (Berkeley DB behaves similarly under DB_BTREE with
  // reverse splits disabled); ordered iteration and lookups stay correct,
  // which is what the MDS needs.
  Leaf* leaf = find_leaf(key);
  const auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return false;
  const auto pos = static_cast<std::size_t>(it - leaf->keys.begin());
  leaf->keys.erase(leaf->keys.begin() + static_cast<std::ptrdiff_t>(pos));
  leaf->values.erase(leaf->values.begin() + static_cast<std::ptrdiff_t>(pos));
  --size_;
  return true;
}

void BTreeStore::scan(
    std::uint64_t lo, std::uint64_t hi,
    const std::function<bool(std::uint64_t, std::string_view)>& fn) const {
  const Leaf* leaf = find_leaf(lo);
  while (leaf != nullptr) {
    for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
      const std::uint64_t k = leaf->keys[i];
      if (k < lo) continue;
      if (k > hi) return;
      if (!fn(k, leaf->values[i])) return;
    }
    leaf = leaf->next;
  }
}

namespace {

struct CheckState {
  bool ok = true;
  std::size_t expected_depth = 0;
};

void check_node(const BTreeStore::Node* n, std::uint64_t lo, std::uint64_t hi,
                std::size_t depth, CheckState& st) {
  if (!st.ok) return;
  if (n->is_leaf) {
    const auto* leaf = static_cast<const BTreeStore::Leaf*>(n);
    if (st.expected_depth == 0) st.expected_depth = depth;
    if (depth != st.expected_depth) {  // uniform depth violated
      st.ok = false;
      return;
    }
    std::uint64_t prev = lo;
    bool first = true;
    for (std::uint64_t k : leaf->keys) {
      if (k < lo || k > hi || (!first && k <= prev)) {
        st.ok = false;
        return;
      }
      prev = k;
      first = false;
    }
    return;
  }
  const auto* in = static_cast<const BTreeStore::Interior*>(n);
  if (in->children.size() != in->keys.size() + 1 || in->children.empty()) {
    st.ok = false;
    return;
  }
  std::uint64_t cur_lo = lo;
  for (std::size_t i = 0; i < in->children.size(); ++i) {
    const std::uint64_t cur_hi = i < in->keys.size() ? in->keys[i] - 1 : hi;
    if (i > 0 && in->keys[i - 1] < cur_lo) {
      st.ok = false;
      return;
    }
    check_node(in->children[i], cur_lo, cur_hi, depth + 1, st);
    if (i < in->keys.size()) cur_lo = in->keys[i];
  }
}

}  // namespace

bool BTreeStore::check_invariants() const {
  CheckState st;
  check_node(root_, 0, UINT64_MAX, 1, st);
  if (!st.ok) return false;
  // Leaf chain must enumerate exactly size_ keys in strict order.
  std::size_t n = 0;
  std::uint64_t prev = 0;
  bool first = true;
  for (const Leaf* l = first_leaf_; l != nullptr; l = l->next) {
    for (std::uint64_t k : l->keys) {
      if (!first && k <= prev) return false;
      prev = k;
      first = false;
      ++n;
    }
  }
  return n == size_;
}

namespace {

std::size_t node_bytes(const BTreeStore::Node* n) {
  if (n->is_leaf) {
    const auto* leaf = static_cast<const BTreeStore::Leaf*>(n);
    std::size_t b = sizeof(*leaf) +
                    leaf->keys.capacity() * sizeof(std::uint64_t) +
                    leaf->values.capacity() * sizeof(std::string);
    for (const auto& v : leaf->values) b += v.capacity();
    return b;
  }
  const auto* in = static_cast<const BTreeStore::Interior*>(n);
  std::size_t b = sizeof(*in) + in->keys.capacity() * sizeof(std::uint64_t) +
                  in->children.capacity() * sizeof(void*);
  for (const auto* c : in->children) b += node_bytes(c);
  return b;
}

}  // namespace

std::size_t BTreeStore::footprint_bytes() const noexcept {
  return sizeof(*this) + node_bytes(root_);
}

}  // namespace farmer
