// In-memory B+tree keyed by uint64 with string values.
//
// A classic order-B B+tree: interior nodes route, leaves hold key/value
// pairs and are linked for ordered scans. Chosen over std::map for the same
// reason Berkeley DB uses B-trees — cache-friendly fanout (Per.19: access
// memory predictably) — and implemented from scratch per the reproduction
// ground rules.
#pragma once

#include <array>
#include <cassert>
#include <memory>
#include <vector>

#include "kvstore/kvstore.hpp"

namespace farmer {

class BTreeStore final : public KvStore {
 public:
  static constexpr std::size_t kFanout = 32;  ///< max children per interior
  static constexpr std::size_t kLeafCap = 32; ///< max entries per leaf

  BTreeStore();
  ~BTreeStore() override;
  BTreeStore(const BTreeStore&) = delete;
  BTreeStore& operator=(const BTreeStore&) = delete;

  void put(std::uint64_t key, std::string_view value) override;
  [[nodiscard]] std::optional<std::string> get(
      std::uint64_t key) const override;
  bool erase(std::uint64_t key) override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  void scan(std::uint64_t lo, std::uint64_t hi,
            const std::function<bool(std::uint64_t, std::string_view)>& fn)
      const override;

  /// Tree height (leaf = 1). Exposed for tests/invariant checks.
  [[nodiscard]] std::size_t height() const noexcept { return height_; }

  /// Validates all B+tree invariants (ordering, fill, uniform depth,
  /// leaf-chain consistency). Used by property tests; returns false and
  /// stops at the first violation.
  [[nodiscard]] bool check_invariants() const;

  /// Approximate heap footprint.
  [[nodiscard]] std::size_t footprint_bytes() const noexcept;

  // Node types are public-opaque: the .cpp's free helper functions (destroy,
  // invariant walk, footprint walk) need to name them.
  struct Node;
  struct Leaf;
  struct Interior;

 private:
  [[nodiscard]] Leaf* find_leaf(std::uint64_t key) const;
  void insert_into_parent(std::vector<Interior*>& path, Node* left,
                          std::uint64_t sep, Node* right);

  Node* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  std::size_t size_ = 0;
  std::size_t height_ = 1;
};

}  // namespace farmer
