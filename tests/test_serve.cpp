// Tests for the closed-loop serving harness (src/serve/) and the runtime
// API surface that feeds it: scenario registry + validation, bit-identical
// determinism of scenario runs, the WindowStats field contract,
// cold-start-vs-checkpoint-restore differential, the PredictorFactory's
// validation errors, RuntimeConfig's typed ConfigError, the honest
// footprint sweep, and a TSan stress case serving a concurrently ingesting
// miner.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/correlation_miner.hpp"
#include "api/predictor_factory.hpp"
#include "api/runtime_config.hpp"
#include "serve/harness.hpp"
#include "serve/scenario.hpp"
#include "trace/generator.hpp"

namespace farmer {
namespace {

/// Small, fast spec shared by most serving tests: one tenant, tiny scale,
/// few windows. Derived from the registered "steady" scenario so the tests
/// exercise the same path as `bench_serving`.
ScenarioSpec tiny_spec(const std::string& base = "steady") {
  ScenarioSpec spec = scenario_spec(base);
  spec.scale = 0.04;
  spec.windows = 5;
  return spec;
}

FarmerConfig cfg_for(const Trace& trace) {
  FarmerConfig cfg;
  cfg.attributes = trace.has_paths ? AttributeMask::all_with_path()
                                   : AttributeMask::all_with_fileid();
  return cfg;
}

// ---------------------------------------------------------------- scenarios

TEST(ScenarioRegistry, BuiltInsRegistered) {
  const std::vector<std::string> names = registered_scenarios();
  for (const char* want :
       {"steady", "diurnal", "flash_crowd", "tenant_shift", "churn",
        "cold_start", "warm_start", "smoke"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << "missing built-in scenario " << want;
    const ScenarioSpec spec = scenario_spec(want);
    EXPECT_EQ(spec.name, want);
    EXPECT_TRUE(spec.validate().empty()) << want << ": " << spec.validate();
    EXPECT_FALSE(spec.description.empty());
  }
}

TEST(ScenarioRegistry, UnknownNameListsRegistered) {
  try {
    (void)scenario_spec("no_such_scenario");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_scenario"), std::string::npos);
    EXPECT_NE(msg.find("steady"), std::string::npos)
        << "diagnostic should list registered scenarios: " << msg;
  }
}

TEST(ScenarioRegistry, ValidateCatchesBadFields) {
  ScenarioSpec spec = tiny_spec();
  spec.scale = 0.0;
  EXPECT_NE(spec.validate().find("scale"), std::string::npos);

  spec = tiny_spec();
  spec.windows = 0;
  EXPECT_FALSE(spec.validate().empty());

  spec = tiny_spec();
  spec.pretrain_fraction = 0.95;
  EXPECT_FALSE(spec.validate().empty());

  spec = tiny_spec();
  spec.warm_start = true;  // warm start needs history to pretrain on
  EXPECT_NE(spec.validate().find("warm_start"), std::string::npos);

  spec = tiny_spec();
  spec.churn_events = 3;  // churn events without a churn fraction
  EXPECT_FALSE(spec.validate().empty());

  spec = tiny_spec();
  spec.shape = LoadShape::kTenantShift;  // needs >= 2 tenants
  spec.tenants = {TraceKind::kINS};
  EXPECT_FALSE(spec.validate().empty());

  // Multiple violations are all reported, "; "-joined.
  spec = tiny_spec();
  spec.scale = -1.0;
  spec.windows = 0;
  EXPECT_NE(spec.validate().find("; "), std::string::npos);

  EXPECT_THROW((void)build_workload(spec), std::invalid_argument);
}

TEST(ScenarioWorkload, WarpsPreserveContentAndOrder) {
  for (const char* name : {"steady", "diurnal", "flash_crowd"}) {
    ScenarioSpec spec = tiny_spec(name);
    const ScenarioWorkload wl = build_workload(spec);
    ASSERT_FALSE(wl.trace.records.empty()) << name;
    // Timestamps are non-decreasing after the warp + re-sort.
    for (std::size_t i = 1; i < wl.trace.records.size(); ++i)
      ASSERT_GE(wl.trace.records[i].timestamp,
                wl.trace.records[i - 1].timestamp)
          << name << " record " << i;
    // The warp moves time, not content: same multiset of files as the
    // unwarped generation at the same (tenants, seed, scale).
    ScenarioSpec flat = spec;
    flat.shape = LoadShape::kSteady;
    const ScenarioWorkload base = build_workload(flat);
    ASSERT_EQ(wl.trace.records.size(), base.trace.records.size());
    std::vector<std::uint32_t> a, b;
    for (const auto& r : wl.trace.records) a.push_back(r.file.value());
    for (const auto& r : base.trace.records) b.push_back(r.file.value());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << name << ": warp changed request content";
  }
}

TEST(ScenarioWorkload, ChurnPlanCoversServingSpan) {
  const ScenarioSpec spec = scenario_spec("churn");
  ScenarioSpec small = spec;
  small.scale = 0.04;
  const ScenarioWorkload wl = build_workload(small);
  ASSERT_EQ(wl.churn.size(), small.churn_events);
  const std::uint32_t files =
      static_cast<std::uint32_t>(wl.trace.file_count());
  SimTime prev = 0;
  for (const ChurnEvent& ev : wl.churn) {
    EXPECT_GT(ev.at, prev);  // strictly increasing, evenly spaced
    prev = ev.at;
    EXPECT_LT(ev.file_lo, ev.file_hi);
    EXPECT_LE(ev.file_hi, files);
  }
}

// ------------------------------------------------------------- determinism

void expect_windows_identical(const std::vector<WindowStats>& a,
                              const std::vector<WindowStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].begin_us, b[i].begin_us);
    EXPECT_EQ(a[i].end_us, b[i].end_us);
    EXPECT_EQ(a[i].demand_requests, b[i].demand_requests);
    EXPECT_EQ(a[i].demand_hits, b[i].demand_hits);
    EXPECT_EQ(a[i].prefetch_inserted, b[i].prefetch_inserted);
    EXPECT_EQ(a[i].prefetch_used, b[i].prefetch_used);
    EXPECT_EQ(a[i].prefetch_evicted_unused, b[i].prefetch_evicted_unused);
    EXPECT_EQ(a[i].invalidations, b[i].invalidations);
    EXPECT_EQ(a[i].responses, b[i].responses);
    EXPECT_EQ(a[i].mean_response_us, b[i].mean_response_us);
    EXPECT_EQ(a[i].p50_response_us, b[i].p50_response_us);
    EXPECT_EQ(a[i].p95_response_us, b[i].p95_response_us);
    EXPECT_EQ(a[i].p99_response_us, b[i].p99_response_us);
    EXPECT_EQ(a[i].ingest_pending, b[i].ingest_pending);
    EXPECT_EQ(a[i].ingest_epoch, b[i].ingest_epoch);
    EXPECT_EQ(a[i].model_footprint_bytes, b[i].model_footprint_bytes);
  }
}

TEST(ServingDeterminism, SameSpecSameSeedBitIdentical) {
  for (const char* name : {"steady", "flash_crowd", "churn"}) {
    ScenarioSpec spec = scenario_spec(name);
    spec.scale = 0.04;
    spec.windows = 4;
    const ServingResult r1 = run_scenario(spec, "fpa");
    const ServingResult r2 = run_scenario(spec, "fpa");
    SCOPED_TRACE(name);
    expect_windows_identical(r1.windows, r2.windows);
    EXPECT_EQ(r1.requests, r2.requests);
    EXPECT_EQ(r1.sim_duration, r2.sim_duration);
    EXPECT_EQ(r1.cache.demand.numerator(), r2.cache.demand.numerator());
    EXPECT_EQ(r1.model_footprint_bytes, r2.model_footprint_bytes);
  }
}

TEST(ServingDeterminism, SeedChangesWorkload) {
  ScenarioSpec spec = tiny_spec();
  const ServingResult r1 = run_scenario(spec, "fpa");
  spec.seed += 1;
  const ServingResult r2 = run_scenario(spec, "fpa");
  // Different seed, different trace: at minimum the totals move.
  EXPECT_TRUE(r1.requests != r2.requests ||
              r1.cache.demand.numerator() != r2.cache.demand.numerator() ||
              r1.sim_duration != r2.sim_duration);
}

// ---------------------------------------------------- WindowStats contract

TEST(ServingWindowContract, CountersSumToRunTotals) {
  for (const char* name : {"steady", "churn", "flash_crowd"}) {
    ScenarioSpec spec = scenario_spec(name);
    spec.scale = 0.04;
    spec.windows = 6;
    const ServingResult res = run_scenario(spec, "fpa");
    SCOPED_TRACE(name);
    ASSERT_EQ(res.windows.size(), spec.windows);

    std::uint64_t demand = 0, hits = 0, inserted = 0, used = 0, evicted = 0,
                  responses = 0, invalidations = 0;
    for (const WindowStats& w : res.windows) {
      demand += w.demand_requests;
      hits += w.demand_hits;
      inserted += w.prefetch_inserted;
      used += w.prefetch_used;
      evicted += w.prefetch_evicted_unused;
      responses += w.responses;
      invalidations += w.invalidations;
    }
    EXPECT_EQ(demand, res.cache.demand.denominator());
    EXPECT_EQ(demand, res.requests);
    EXPECT_EQ(hits, res.cache.demand.numerator());
    EXPECT_EQ(inserted, res.cache.prefetch_inserted);
    EXPECT_EQ(used, res.cache.prefetch_used);
    EXPECT_EQ(evicted, res.cache.prefetch_evicted_unused);
    EXPECT_EQ(responses, res.response.count());
    EXPECT_EQ(invalidations, res.invalidations);
  }
}

TEST(ServingWindowContract, WindowsTileTheRun) {
  ScenarioSpec spec = tiny_spec();
  spec.windows = 7;
  const ServingResult res = run_scenario(spec, "fpa");
  ASSERT_EQ(res.windows.size(), 7u);
  for (std::size_t i = 0; i < res.windows.size(); ++i) {
    EXPECT_EQ(res.windows[i].index, i);
    if (i > 0)
      EXPECT_EQ(res.windows[i].begin_us, res.windows[i - 1].end_us);
    EXPECT_GE(res.windows[i].end_us, res.windows[i].begin_us);
  }
  // The last window closes at the actual end of simulated time, covering
  // completions that trail the final arrival.
  EXPECT_EQ(res.windows.back().end_us, res.sim_duration);
}

TEST(ServingWindowContract, ChurnInvalidationsLandInWindows) {
  ScenarioSpec spec = scenario_spec("churn");
  spec.scale = 0.04;
  spec.windows = 6;
  const ServingResult res = run_scenario(spec, "fpa");
  EXPECT_GT(res.invalidations, 0u);
  std::size_t windows_with_churn = 0;
  for (const WindowStats& w : res.windows)
    if (w.invalidations > 0) ++windows_with_churn;
  // 6 evenly spaced events over 6 windows: churn shows up spread over the
  // run, not lumped into one window.
  EXPECT_GE(windows_with_churn, 2u);
}

TEST(ServingWindowContract, GaugesSampledPerWindow) {
  ScenarioSpec spec = tiny_spec();
  const ServingResult res = run_scenario(spec, "fpa");
  // "fpa" on the default serial backend: footprint grows with the model and
  // is sampled at every close; epoch/pending stay 0 (synchronous contract).
  for (const WindowStats& w : res.windows) {
    EXPECT_GT(w.model_footprint_bytes, 0u);
    EXPECT_EQ(w.ingest_pending, 0u);
    EXPECT_EQ(w.ingest_epoch, 0u);
  }
  EXPECT_GE(res.windows.back().model_footprint_bytes,
            res.windows.front().model_footprint_bytes);
}

// ------------------------------------------------------- cold vs warm start

TEST(ServingWarmStart, RestoredModelRampsEarlier) {
  // Small explicit cache so the hit ratio reflects the model, not a cache
  // big enough to hold the whole population (which masks the differential).
  ScenarioSpec cold = scenario_spec("cold_start");
  cold.scale = 0.06;
  cold.windows = 6;
  cold.cache_capacity = 64;
  ScenarioSpec warm = scenario_spec("warm_start");
  warm.scale = cold.scale;
  warm.windows = cold.windows;
  warm.cache_capacity = cold.cache_capacity;
  ASSERT_EQ(cold.pretrain_fraction, warm.pretrain_fraction)
      << "cold/warm built-ins must serve the same suffix";

  const ServingResult rc = run_scenario(cold, "fpa");
  const ServingResult rw = run_scenario(warm, "fpa");
  ASSERT_EQ(rc.requests, rw.requests) << "same served suffix";

  // The default backend ("farmer") persists, so warm start goes through a
  // real save()/load() checkpoint round-trip.
  EXPECT_FALSE(rc.checkpoint_restored);
  EXPECT_TRUE(rw.checkpoint_restored);

  // Strictly earlier ramp: over the first half of the run the restored
  // model prefetches usefully from the first request; the cold model is
  // still learning.
  const std::size_t half = rc.windows.size() / 2;
  std::uint64_t cold_hits = 0, cold_reqs = 0, warm_hits = 0, warm_reqs = 0;
  std::uint64_t warm_used = 0, cold_used = 0;
  for (std::size_t i = 0; i < half; ++i) {
    cold_hits += rc.windows[i].demand_hits;
    cold_reqs += rc.windows[i].demand_requests;
    warm_hits += rw.windows[i].demand_hits;
    warm_reqs += rw.windows[i].demand_requests;
    cold_used += rc.windows[i].prefetch_used;
    warm_used += rw.windows[i].prefetch_used;
  }
  ASSERT_GT(cold_reqs, 0u);
  ASSERT_GT(warm_reqs, 0u);
  const double cold_ramp =
      static_cast<double>(cold_hits) / static_cast<double>(cold_reqs);
  const double warm_ramp =
      static_cast<double>(warm_hits) / static_cast<double>(warm_reqs);
  EXPECT_GT(warm_ramp, cold_ramp)
      << "restored model should hit earlier (warm " << warm_ramp
      << " vs cold " << cold_ramp << ")";
  EXPECT_GT(warm_used, cold_used);
}

TEST(ServingWarmStart, NonPersistentBackendFallsBackWarm) {
  // "nexus" has no mining backend at all, so there is nothing to
  // checkpoint: the harness keeps the pretrained instance in memory and
  // reports checkpoint_restored = false — but the model is still warm.
  ScenarioSpec warm = scenario_spec("warm_start");
  warm.scale = 0.04;
  warm.windows = 4;
  const ServingResult res = run_scenario(warm, "nexus");
  EXPECT_FALSE(res.checkpoint_restored);
  EXPECT_GT(res.cache.prefetch_used, 0u) << "pretrained model never fired";
}

// ------------------------------------------------ predictor factory errors

TEST(PredictorFactoryErrors, UnknownNameListsRegistered) {
  const Trace trace = make_paper_trace(TraceKind::kHP, 7, 0.02);
  try {
    (void)make_predictor("bogus", cfg_for(trace), trace.dict);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    for (const std::string& name : registered_predictors())
      EXPECT_NE(msg.find(name), std::string::npos)
          << "diagnostic should list " << name << ": " << msg;
  }
}

TEST(PredictorFactoryErrors, InvalidOptionsRejected) {
  const Trace trace = make_paper_trace(TraceKind::kHP, 7, 0.02);
  const FarmerConfig cfg = cfg_for(trace);

  PredictorOptions opts;
  opts.window = 4096;  // above AccessWindow::kMaxWindow
  EXPECT_THROW((void)make_predictor("nexus", cfg, trace.dict, opts),
               std::invalid_argument);

  opts = {};
  opts.min_chance = 1.5;  // probability above 1
  EXPECT_THROW((void)make_predictor("probgraph", cfg, trace.dict, opts),
               std::invalid_argument);

  opts = {};
  opts.recent_k = 2;
  opts.recent_j = 5;  // j > k
  EXPECT_THROW((void)make_predictor("recentpop", cfg, trace.dict, opts),
               std::invalid_argument);

  opts = {};
  opts.miner_backend = "not_a_backend";
  EXPECT_THROW((void)make_predictor("fpa", cfg, trace.dict, opts),
               std::invalid_argument);
}

TEST(PredictorFactoryErrors, UnknownPredictorThroughScenario) {
  EXPECT_THROW((void)run_scenario(tiny_spec(), "bogus"),
               std::invalid_argument);
}

// ------------------------------------------------------- footprint honesty

TEST(PredictorFootprint, EveryFactoryPredictorReportsState) {
  const Trace trace = make_paper_trace(TraceKind::kHP, 7, 0.05);
  const FarmerConfig cfg = cfg_for(trace);
  for (const std::string& name : registered_predictors()) {
    const auto p = make_predictor(name, cfg, trace.dict);
    for (const TraceRecord& r : trace.records) p->observe(r);
    p->flush();
    if (name == "none") {
      EXPECT_EQ(p->footprint_bytes(), 0u);  // genuinely stateless
    } else {
      EXPECT_GT(p->footprint_bytes(), 0u)
          << name << " must report its actual state";
    }
  }
}

// --------------------------------------------------- RuntimeConfig errors

/// Scoped setenv: restores the previous value on destruction so tests do
/// not leak environment into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* var, const char* value) : var_(var) {
    const char* old = std::getenv(var);
    if (old) saved_ = old;
    had_ = old != nullptr;
    ::setenv(var, value, 1);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(var_.c_str(), saved_.c_str(), 1);
    else
      ::unsetenv(var_.c_str());
  }

 private:
  std::string var_;
  std::string saved_;
  bool had_ = false;
};

TEST(RuntimeConfigTest, DefaultsWithEmptyEnvironment) {
  const RuntimeConfig rc = RuntimeConfig::from_env();
  EXPECT_EQ(rc.miner_backend, "farmer");
  EXPECT_EQ(rc.predictor, "fpa");
  EXPECT_DOUBLE_EQ(rc.bench_scale, 0.25);
  EXPECT_TRUE(rc.predictor_options.validate().empty());
}

TEST(RuntimeConfigTest, ParsesAndMirrorsIntoPredictorOptions) {
  ScopedEnv e1("FARMER_MINER", "sharded");
  ScopedEnv e2("FARMER_SHARDS", "4");
  ScopedEnv e3("FARMER_PREDICTOR", "nexus");
  ScopedEnv e4("FARMER_SCENARIO", "flash_crowd");
  ScopedEnv e5("FARMER_SERVE_WINDOWS", "9");
  const RuntimeConfig rc = RuntimeConfig::from_env();
  EXPECT_EQ(rc.miner_backend, "sharded");
  EXPECT_EQ(rc.miner.shards, 4u);
  EXPECT_EQ(rc.predictor, "nexus");
  EXPECT_EQ(rc.scenario, "flash_crowd");
  EXPECT_EQ(rc.serve_windows, 9u);
  // The predictor options mirror the miner selection so "fpa" mines on the
  // env-selected backend.
  EXPECT_EQ(rc.predictor_options.miner_backend, "sharded");
  EXPECT_EQ(rc.predictor_options.miner.shards, 4u);
}

TEST(RuntimeConfigTest, TypedErrorNamesVarValueReason) {
  ScopedEnv bad("FARMER_SHARDS", "banana");
  try {
    (void)RuntimeConfig::from_env();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.var(), "FARMER_SHARDS");
    EXPECT_EQ(e.value(), "banana");
    EXPECT_FALSE(e.reason().empty());
    const std::string msg = e.what();
    EXPECT_NE(msg.find("FARMER_SHARDS"), std::string::npos);
    EXPECT_NE(msg.find("banana"), std::string::npos);
  }
}

TEST(RuntimeConfigTest, RejectsZeroAndOutOfRange) {
  {
    ScopedEnv bad("FARMER_SHARDS", "0");
    EXPECT_THROW((void)RuntimeConfig::from_env(), ConfigError);
  }
  {
    ScopedEnv bad("FARMER_BENCH_SCALE", "1.5");
    EXPECT_THROW((void)RuntimeConfig::from_env(), ConfigError);
  }
  {
    ScopedEnv bad("FARMER_BENCH_SCALE", "0");
    EXPECT_THROW((void)RuntimeConfig::from_env(), ConfigError);
  }
  {
    ScopedEnv bad("FARMER_SERVE_WINDOWS", "99999");
    EXPECT_THROW((void)RuntimeConfig::from_env(), ConfigError);
  }
}

// ----------------------------------------------------------------- stress

TEST(ServingStress, ConcurrentMinerUnderLiveReplay) {
  // The serving loop drives an FPA predictor whose miner ingests
  // asynchronously ("concurrent" backend) while a reader thread hammers the
  // published snapshots through the same miner pointer the harness samples
  // stats from. TSan builds verify the data-race freedom of the
  // serve-path + snapshot-path interleaving.
  ScenarioSpec spec = tiny_spec();
  spec.windows = 4;
  const ScenarioWorkload wl = build_workload(spec);

  PredictorOptions opts;
  opts.miner_backend = "concurrent";
  const FarmerConfig cfg = cfg_for(wl.trace);
  const auto predictor = make_predictor("fpa", cfg, wl.trace.dict, opts);
  CorrelationMiner* miner = predictor->miner();
  ASSERT_NE(miner, nullptr);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::thread reader([&] {
    const std::uint32_t files =
        static_cast<std::uint32_t>(wl.trace.file_count());
    std::uint32_t f = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const CorrelatorView view = miner->snapshot(FileId(f % files));
      queries += view.size();
      (void)miner->stats();
      ++f;
    }
  });

  const ServingResult res = serve(spec, wl, *predictor);
  stop.store(true);
  reader.join();
  predictor->flush();

  EXPECT_EQ(res.requests, wl.trace.records.size() - wl.pretrain_records);
  EXPECT_GT(miner->stats().requests, 0u);
  // Async backend: the per-window epoch gauge may be non-zero; pending
  // drains to 0 only after the explicit flush above.
  EXPECT_EQ(miner->stats().pending, 0u);
}

}  // namespace
}  // namespace farmer
