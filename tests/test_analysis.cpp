// Tests for the Figure-1 analysis and table rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/interfile_prob.hpp"
#include "analysis/table.hpp"
#include "test_helpers.hpp"

namespace farmer {
namespace {

using testing::MicroTrace;

TEST(InterfileProb, DeterministicStreamScoresOne) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b"), c = mt.file("c");
  for (int i = 0; i < 10; ++i) {
    mt.access(a);
    mt.access(b);
    mt.access(c);
  }
  const Trace t = mt.build();
  const auto rows = interfile_access_probability(
      t, {{"none", AttributeMask{}}});
  ASSERT_EQ(rows.size(), 1u);
  // Every transition is fully determined: a->b, b->c, c->a.
  EXPECT_NEAR(rows[0].probability, 1.0, 1e-9);
  EXPECT_GT(rows[0].transitions, 0u);
}

TEST(InterfileProb, InterleavingLowersUnfilteredProbability) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b");
  const FileId x = mt.file("x"), y = mt.file("y");
  // Two deterministic per-process streams (a->b and x->y), interleaved in
  // a pattern that varies per iteration so the *global* successor of each
  // file is unstable while each pid's stream stays deterministic.
  for (int i = 0; i < 10; ++i) {
    if (i % 2 == 0) {
      mt.access(a, "u0", "pid0");
      mt.access(x, "u1", "pid1");
      mt.access(b, "u0", "pid0");
      mt.access(y, "u1", "pid1");
    } else {
      mt.access(x, "u1", "pid1");
      mt.access(a, "u0", "pid0");
      mt.access(y, "u1", "pid1");
      mt.access(b, "u0", "pid0");
    }
  }
  const Trace t = mt.build();
  const auto rows = interfile_access_probability(
      t, {{"none", AttributeMask{}},
          {"pid", AttributeMask{Attribute::kProcess}}});
  ASSERT_EQ(rows.size(), 2u);
  // Filtered by pid the streams are deterministic; unfiltered they are not.
  EXPECT_NEAR(rows[1].probability, 1.0, 1e-9);
  EXPECT_LT(rows[0].probability, 1.0);
}

TEST(InterfileProb, SelfTransitionsIgnored) {
  MicroTrace mt;
  const FileId a = mt.file("a");
  for (int i = 0; i < 5; ++i) mt.access(a);
  const Trace t = mt.build();
  const auto rows =
      interfile_access_probability(t, {{"none", AttributeMask{}}});
  EXPECT_EQ(rows[0].transitions, 0u);
  EXPECT_DOUBLE_EQ(rows[0].probability, 0.0);
}

TEST(InterfileProb, Figure1CombinationSetShapes) {
  const auto with_path = figure1_combinations(true);
  const auto with_fid = figure1_combinations(false);
  ASSERT_GE(with_path.size(), 5u);
  EXPECT_EQ(with_path.front().label, "none");
  EXPECT_TRUE(with_path.front().mask.empty());
  bool has_path = false, has_fid = false;
  for (const auto& c : with_path) has_path |= c.mask.has(Attribute::kPath);
  for (const auto& c : with_fid) has_fid |= c.mask.has(Attribute::kFileId);
  EXPECT_TRUE(has_path);
  EXPECT_TRUE(has_fid);
}

TEST(InterfileProb, EmptyTraceSafe) {
  MicroTrace mt;
  const Trace t = mt.build();
  const auto rows =
      interfile_access_probability(t, {{"none", AttributeMask{}}});
  EXPECT_DOUBLE_EQ(rows[0].probability, 0.0);
}

// ---------------------------------------------------------------- Table --

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table table({"a", "b", "c"});
  table.add_row({"1"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find('1'), std::string::npos);
}

TEST(Table, ExperimentHeaderMentionsIdAndExpectation) {
  std::ostringstream os;
  print_experiment_header(os, "Figure 7", "hit ratios", "FPA wins");
  const std::string out = os.str();
  EXPECT_NE(out.find("Figure 7"), std::string::npos);
  EXPECT_NE(out.find("FPA wins"), std::string::npos);
}

}  // namespace
}  // namespace farmer
