// Tests for the durable persistence subsystem (src/persist/): checkpoint
// save/load round-trips on every backend, factory-level auto-recovery from
// a persist directory, corrupt-checkpoint fallback, config binding, and the
// crash-consistency contract — a subprocess is SIGKILLed mid-WAL-append and
// the reopened miner must answer queries byte-identically to a reference
// miner replayed over the durable prefix.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/miner_factory.hpp"
#include "api/miner_router.hpp"
#include "common/hash.hpp"
#include "persist/persister.hpp"
#include "trace/generator.hpp"

namespace farmer {
namespace {

namespace fs = std::filesystem;

/// Small but non-trivial paper trace shared across the suite. Built eagerly
/// by every test that forks, so the child inherits it instead of rebuilding.
const Trace& trace() {
  static const Trace t = make_paper_trace(TraceKind::kHP, 77, 0.08);
  return t;
}

FarmerConfig test_cfg() {
  FarmerConfig cfg;
  cfg.attributes = trace().has_paths ? AttributeMask::all_with_path()
                                     : AttributeMask::all_with_fileid();
  return cfg;
}

/// Persistence knobs sized for tests: frequent checkpoints, small commit
/// groups, real fsync (the crash tests depend on it).
MinerOptions persist_opts(const std::string& dir) {
  MinerOptions opts;
  opts.persist_dir = dir;
  opts.checkpoint_interval_records = 400;
  opts.wal_group_commit = 32;
  return opts;
}

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(::testing::TempDir() + name) {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

/// Byte-identical equivalence over the full query surface: access counts
/// and Correlator Lists for every file (bitwise float compare), pairwise
/// queries on a stride of pairs, and the ingested-request counter.
void expect_identical(const CorrelationMiner& got,
                      const CorrelationMiner& want) {
  ASSERT_EQ(got.stats().requests, want.stats().requests);
  const auto files =
      static_cast<std::uint32_t>(trace().dict->files.size());
  for (std::uint32_t f = 0; f < files; ++f) {
    const FileId id(f);
    ASSERT_EQ(got.access_count(id), want.access_count(id)) << "file " << f;
    const CorrelatorView g = got.snapshot(id);
    const CorrelatorView w = want.snapshot(id);
    ASSERT_EQ(g.size(), w.size()) << "file " << f;
    for (std::size_t i = 0; i < g.size(); ++i) {
      EXPECT_EQ(g[i].file.value(), w[i].file.value())
          << "file " << f << " entry " << i;
      EXPECT_EQ(std::bit_cast<std::uint32_t>(g[i].degree),
                std::bit_cast<std::uint32_t>(w[i].degree))
          << "file " << f << " entry " << i;
    }
  }
  for (std::uint32_t a = 0; a < files; a += 17) {
    for (std::uint32_t b = 0; b < files; b += 29) {
      const FileId fa(a), fb(b);
      EXPECT_EQ(got.correlation_degree(fa, fb),
                want.correlation_degree(fa, fb));
      EXPECT_EQ(got.semantic_similarity(fa, fb),
                want.semantic_similarity(fa, fb));
      EXPECT_EQ(got.access_frequency(fa, fb), want.access_frequency(fa, fb));
    }
  }
}

std::unique_ptr<CorrelationMiner> reference_miner(
    const char* backend, std::span<const TraceRecord> records,
    const MinerOptions& opts = {}) {
  auto miner = make_miner(backend, test_cfg(), trace().dict, opts);
  miner->observe_batch(records);
  miner->flush();
  return miner;
}

// ------------------------------------------------------ save()/load() ----

TEST(PersistSaveLoad, FarmerRoundTrip) {
  TempDir dir("persist_farmer_rt");
  const auto source = reference_miner("farmer", trace().records);
  source->save(dir.str());
  auto loaded = make_miner("farmer", test_cfg(), trace().dict);
  loaded->load(dir.str());
  expect_identical(*loaded, *source);
}

TEST(PersistSaveLoad, ShardedRoundTrip) {
  TempDir dir("persist_sharded_rt");
  const auto source = reference_miner("sharded", trace().records);
  source->save(dir.str());
  auto loaded = make_miner("sharded", test_cfg(), trace().dict);
  loaded->load(dir.str());
  expect_identical(*loaded, *source);
}

TEST(PersistSaveLoad, ConcurrentRoundTrip) {
  TempDir dir("persist_concurrent_rt");
  auto source = reference_miner("concurrent", trace().records);
  source->save(dir.str());
  auto loaded = make_miner("concurrent", test_cfg(), trace().dict);
  loaded->load(dir.str());
  expect_identical(*loaded, *source);
  // The loaded miner keeps mining: further ingest lands on top of the
  // loaded model exactly as it would have on the original.
  loaded->observe_batch(std::span<const TraceRecord>(trace().records.data(),
                                                     64));
  loaded->flush();
  source->observe_batch(std::span<const TraceRecord>(trace().records.data(),
                                                     64));
  source->flush();
  expect_identical(*loaded, *source);
}

TEST(PersistSaveLoad, RouterRoundTripMixedBackends) {
  TempDir dir("persist_router_rt");
  MinerOptions opts;
  opts.router_tenants = 2;
  opts.router_backends = "0=sharded,1=farmer";
  const auto source = reference_miner("router", trace().records, opts);
  source->save(dir.str());
  auto loaded = make_miner("router", test_cfg(), trace().dict, opts);
  loaded->load(dir.str());
  expect_identical(*loaded, *source);
}

TEST(PersistSaveLoad, ShardedCheckpointLoadsIntoConcurrent) {
  // Same shard count + the deterministic shard_of routing make a "sharded"
  // checkpoint directly loadable by "concurrent" (and vice versa).
  TempDir dir("persist_cross_backend");
  const auto source = reference_miner("sharded", trace().records);
  source->save(dir.str());
  auto loaded = make_miner("concurrent", test_cfg(), trace().dict);
  loaded->load(dir.str());
  expect_identical(*loaded, *source);
}

TEST(PersistSaveLoad, LoadRequiresFreshMiner) {
  TempDir dir("persist_fresh_only");
  const auto source = reference_miner("farmer", trace().records);
  source->save(dir.str());
  auto dirty = make_miner("farmer", test_cfg(), trace().dict);
  dirty->observe(trace().records.front());
  EXPECT_THROW(dirty->load(dir.str()), std::logic_error);
  auto dirty_conc = make_miner("concurrent", test_cfg(), trace().dict);
  dirty_conc->observe(trace().records.front());
  dirty_conc->flush();
  EXPECT_THROW(dirty_conc->load(dir.str()), std::logic_error);
}

// Regression: checkpoints embed the dictionary with the shared v3 codec.
// The legacy v2 codec stored path-component counts in a uint8_t, so a path
// deeper than 255 components silently truncated on save and the reloaded
// miner was bound to a different dictionary than the one it was mined
// under. A >255-component path must round-trip through save()/load().
TEST(PersistSaveLoad, DeepPathDictionaryRoundTrips) {
  TempDir dir("persist_deep_path_rt");
  auto dict = std::make_shared<TraceDictionary>();
  SmallVector<TokenId, 8> comps;
  for (int i = 0; i < 300; ++i)
    comps.push_back(dict->tokens.intern("d" + std::to_string(i)));
  const PathId deep = dict->add_path(std::move(comps));
  for (std::uint32_t f = 0; f < 4; ++f) {
    FileMeta m;
    m.path = f == 0 ? deep : dict->add_path({dict->tokens.intern(
                                 "f" + std::to_string(f))});
    m.dev = dict->tokens.intern("dev0");
    m.fid = dict->tokens.intern("fid" + std::to_string(f));
    dict->files.push_back(m);
  }
  std::vector<TraceRecord> records;
  for (std::uint32_t i = 0; i < 64; ++i) {
    TraceRecord r;
    r.timestamp = i * 1000;
    r.file = FileId(i % 4);
    r.path = dict->files[i % 4].path;
    r.dev_token = dict->files[i % 4].dev;
    r.fid_token = dict->files[i % 4].fid;
    records.push_back(r);
  }
  FarmerConfig cfg;
  cfg.attributes = AttributeMask::all_with_path();

  auto source = make_miner("farmer", cfg, dict);
  source->observe_batch(records);
  source->flush();
  source->save(dir.str());

  auto loaded = make_miner("farmer", cfg, dict);
  loaded->load(dir.str());
  ASSERT_EQ(loaded->stats().requests, source->stats().requests);
  for (std::uint32_t f = 0; f < 4; ++f) {
    const FileId id(f);
    EXPECT_EQ(loaded->access_count(id), source->access_count(id));
    EXPECT_EQ(loaded->correlation_degree(id, FileId((f + 1) % 4)),
              source->correlation_degree(id, FileId((f + 1) % 4)));
  }
}

// ------------------------------------------- factory-level persistence ----

TEST(PersistReopen, ShardedRecoversAcrossProcessLifetime) {
  TempDir dir("persist_reopen_sharded");
  {
    auto miner =
        make_miner("sharded", test_cfg(), trace().dict,
                   persist_opts(dir.str()));
    EXPECT_STREQ(miner->name(), "sharded");  // decoration keeps the name
    miner->observe_batch(trace().records);
  }  // destructor syncs the WAL tail
  auto recovered = make_miner("sharded", test_cfg(), trace().dict,
                              persist_opts(dir.str()));
  const auto reference = reference_miner("sharded", trace().records);
  expect_identical(*recovered, *reference);
}

TEST(PersistReopen, ConcurrentRecoversAcrossProcessLifetime) {
  TempDir dir("persist_reopen_concurrent");
  {
    auto miner = make_miner("concurrent", test_cfg(), trace().dict,
                            persist_opts(dir.str()));
    miner->observe_batch(trace().records);
    miner->flush();
  }
  auto recovered = make_miner("concurrent", test_cfg(), trace().dict,
                              persist_opts(dir.str()));
  const auto reference = reference_miner("concurrent", trace().records);
  expect_identical(*recovered, *reference);
  // Recovered state accepts further ingest seamlessly.
  recovered->observe_batch(
      std::span<const TraceRecord>(trace().records.data(), 128));
  recovered->flush();
}

TEST(PersistReopen, RouterRecoversPerTenantSubdirectories) {
  TempDir dir("persist_reopen_router");
  MinerOptions opts = persist_opts(dir.str());
  opts.router_tenants = 2;
  opts.router_backends = "0=sharded,1=farmer";
  {
    auto miner = make_miner("router", test_cfg(), trace().dict, opts);
    miner->observe_batch(trace().records);
  }
  EXPECT_TRUE(fs::exists(dir.str() + "/tenant0"));
  EXPECT_TRUE(fs::exists(dir.str() + "/tenant1"));
  auto recovered = make_miner("router", test_cfg(), trace().dict, opts);
  MinerOptions ref_opts;
  ref_opts.router_tenants = 2;
  ref_opts.router_backends = "0=sharded,1=farmer";
  const auto reference =
      reference_miner("router", trace().records, ref_opts);
  expect_identical(*recovered, *reference);
}

TEST(PersistReopen, CorruptNewestCheckpointFallsBackToOlder) {
  TempDir dir("persist_corrupt_ckpt");
  {
    auto miner = make_miner("sharded", test_cfg(), trace().dict,
                            persist_opts(dir.str()));
    // Chunked ingest: checkpoints are initiated on batch boundaries, so one
    // giant batch would commit only a single checkpoint.
    const auto& records = trace().records;
    for (std::size_t i = 0; i < records.size(); i += 200)
      miner->observe_batch(std::span<const TraceRecord>(
          records.data() + i, std::min<std::size_t>(200, records.size() - i)));
  }
  // The trace is large enough for several checkpoint intervals, and the
  // pruner keeps the two newest checkpoints.
  std::vector<fs::path> checkpoints;
  for (const auto& e : fs::directory_iterator(dir.str())) {
    const std::string name = e.path().filename().string();
    if (name.rfind("CHECKPOINT.", 0) == 0 &&
        name.find(".tmp") == std::string::npos)
      checkpoints.push_back(e.path());
  }
  ASSERT_GE(checkpoints.size(), 2u);
  std::sort(checkpoints.begin(), checkpoints.end(),
            [](const fs::path& a, const fs::path& b) {
              return std::stoull(a.filename().string().substr(11)) <
                     std::stoull(b.filename().string().substr(11));
            });
  // Flip one byte in the middle of the newest checkpoint: its checksum
  // fails, recovery falls back to the older one and replays the longer WAL
  // tail — ending at exactly the same durable state.
  {
    const fs::path& victim = checkpoints.back();
    const auto size = fs::file_size(victim);
    std::FILE* f = std::fopen(victim.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(size / 2), SEEK_SET), 0);
    const int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(size / 2), SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto recovered = make_miner("sharded", test_cfg(), trace().dict,
                              persist_opts(dir.str()));
  const auto reference = reference_miner("sharded", trace().records);
  expect_identical(*recovered, *reference);
}

TEST(PersistReopen, ConfigMismatchThrows) {
  TempDir dir("persist_cfg_mismatch");
  {
    auto miner = make_miner("farmer", test_cfg(), trace().dict,
                            persist_opts(dir.str()));
    miner->observe_batch(trace().records);
  }
  FarmerConfig other = test_cfg();
  other.p = other.p / 2.0;
  EXPECT_THROW(
      make_miner("farmer", other, trace().dict, persist_opts(dir.str())),
      std::runtime_error);
}

TEST(PersistReopen, WalOnlyDirIsBoundToItsDictionary) {
  // Regression: a directory killed before its first checkpoint holds only
  // WAL segments, which carry no config/dictionary binding of their own.
  // The MANIFEST written at first open must reject a reopen under a
  // different trace or config instead of replaying foreign records into a
  // mismatched model.
  TempDir dir("persist_wal_only_binding");
  {
    auto miner = make_miner("farmer", test_cfg(), trace().dict,
                            persist_opts(dir.str()));
    // Fewer records than the 400-record checkpoint interval: WAL only.
    miner->observe_batch(
        std::span<const TraceRecord>(trace().records.data(), 100));
  }
  EXPECT_TRUE(fs::exists(dir.str() + "/MANIFEST"));
  for (const auto& e : fs::directory_iterator(dir.str()))
    ASSERT_EQ(e.path().filename().string().rfind("CHECKPOINT.", 0),
              std::string::npos)
        << "test premise broken: a checkpoint was committed";

  const Trace other = make_paper_trace(TraceKind::kINS, 11, 0.02);
  EXPECT_THROW(
      make_miner("farmer", test_cfg(), other.dict, persist_opts(dir.str())),
      std::runtime_error);
  FarmerConfig other_cfg = test_cfg();
  other_cfg.p = other_cfg.p / 2.0;
  EXPECT_THROW(
      make_miner("farmer", other_cfg, trace().dict, persist_opts(dir.str())),
      std::runtime_error);

  // The matching config + dictionary still recovers cleanly.
  auto recovered = make_miner("farmer", test_cfg(), trace().dict,
                              persist_opts(dir.str()));
  const auto reference = reference_miner(
      "farmer", std::span<const TraceRecord>(trace().records.data(), 100));
  expect_identical(*recovered, *reference);
}

// --------------------------------------------------- kill-and-recover ----

/// Forks a child that ingests the trace on repeat (single producer, so WAL
/// order is trace order) into `backend` with persistence in `dir`, until
/// the parent SIGKILLs it mid-WAL-append.
pid_t spawn_ingest_child(const char* backend, const std::string& dir,
                         MinerOptions opts) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  opts.persist_dir = dir;
  {
    auto miner = make_miner(backend, test_cfg(), trace().dict, opts);
    const auto& records = trace().records;
    for (;;)
      for (const TraceRecord& r : records) miner->observe(r);
  }
  ::_exit(3);  // unreachable
}

/// Waits until a committed (non-.tmp) checkpoint exists under `dir`, lets a
/// little more WAL accumulate, then SIGKILLs and reaps the child.
void kill_after_first_checkpoint(pid_t child, const std::string& dir) {
  bool saw_checkpoint = false;
  for (int i = 0; i < 30000 && !saw_checkpoint; ++i) {
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end; ++it) {
      const std::string name = it->path().filename().string();
      if (name.rfind("CHECKPOINT.", 0) == 0 &&
          name.find(".tmp") == std::string::npos)
        saw_checkpoint = true;
    }
    if (!saw_checkpoint)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(saw_checkpoint) << "child never committed a checkpoint";
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

/// The shared sharded/concurrent crash differential: kill mid-append, read
/// the durable record count, replay exactly that prefix of the (repeated)
/// trace into a fresh reference miner, and demand byte-identical queries
/// from the recovered miner.
void run_kill_and_recover(const char* backend) {
  (void)trace();  // build the trace before forking
  TempDir dir(std::string("persist_kill_") + backend);
  const pid_t child = spawn_ingest_child(backend, dir.str(), persist_opts(""));
  ASSERT_GT(child, 0);
  kill_after_first_checkpoint(child, dir.str());

  const persist::Recovery rec =
      persist::recover_dir(dir.str(), test_cfg(), trace().dict.get());
  const std::uint64_t durable = rec.durable_records();
  ASSERT_GT(durable, 0u);

  const auto& records = trace().records;
  std::vector<TraceRecord> prefix;
  prefix.reserve(durable);
  for (std::uint64_t i = 0; i < durable; ++i)
    prefix.push_back(records[i % records.size()]);
  const auto reference = reference_miner(backend, prefix);

  auto recovered = make_miner(backend, test_cfg(), trace().dict,
                              persist_opts(dir.str()));
  expect_identical(*recovered, *reference);
}

TEST(PersistKillAndRecover, Sharded) { run_kill_and_recover("sharded"); }

TEST(PersistKillAndRecover, Concurrent) {
  run_kill_and_recover("concurrent");
}

TEST(PersistKillAndRecover, Router) {
  (void)trace();
  TempDir dir("persist_kill_router");
  MinerOptions opts = persist_opts("");
  opts.router_tenants = 2;
  opts.router_backends = "0=sharded,1=farmer";
  const pid_t child = spawn_ingest_child("router", dir.str(), opts);
  ASSERT_GT(child, 0);
  // Tenant subdirectories checkpoint independently; waiting on tenant0 is
  // enough to know the child is well past its first checkpoint interval.
  kill_after_first_checkpoint(child, dir.str() + "/tenant0");

  // Each tenant's durable prefix is independent: reconstruct each child's
  // sub-stream with the router's own range mapping and feed the reference
  // router exactly the per-tenant prefixes recovery will produce.
  const auto tenant_of = MinerRouter::range_tenants(
      2, static_cast<std::uint32_t>(trace().dict->files.size()));
  std::vector<std::vector<TraceRecord>> streams(2);
  for (const TraceRecord& r : trace().records)
    streams[tenant_of(r.file)].push_back(r);
  MinerOptions ref_opts;
  ref_opts.router_tenants = 2;
  ref_opts.router_backends = "0=sharded,1=farmer";
  auto reference = make_miner("router", test_cfg(), trace().dict, ref_opts);
  for (std::size_t t = 0; t < 2; ++t) {
    ASSERT_FALSE(streams[t].empty());
    const persist::Recovery rec = persist::recover_dir(
        dir.str() + "/tenant" + std::to_string(t), test_cfg(),
        trace().dict.get());
    for (std::uint64_t i = 0; i < rec.durable_records(); ++i)
      reference->observe(streams[t][i % streams[t].size()]);
  }
  reference->flush();

  MinerOptions recover_opts = opts;
  recover_opts.persist_dir = dir.str();
  auto recovered =
      make_miner("router", test_cfg(), trace().dict, recover_opts);
  expect_identical(*recovered, *reference);
}

TEST(PersistKillAndRecover, Cluster) {
  (void)trace();
  TempDir dir("persist_kill_cluster");
  MinerOptions opts = persist_opts("");
  opts.cluster_shards = 2;
  // The child runs the whole distributed deployment in-process: SIGKILL
  // takes down the cluster client AND every shard server mid-request.
  const pid_t child = spawn_ingest_child("cluster", dir.str(), opts);
  ASSERT_GT(child, 0);
  // Shard subdirectories checkpoint independently; shard0's first committed
  // checkpoint means the child is well past its first interval.
  kill_after_first_checkpoint(child, dir.str() + "/shard0");

  // Each shard's durable prefix is independent. Reconstruct the per-shard
  // sub-streams with the cluster's own routing (mix64 of the process id —
  // identical to ShardedFarmer::shard_of), and feed a sharded reference
  // exactly the prefixes recovery will reproduce: the records route back
  // to their original shards, so the models coincide bit for bit.
  std::vector<std::vector<TraceRecord>> streams(2);
  for (const TraceRecord& r : trace().records)
    streams[static_cast<std::size_t>(mix64(r.process.value())) % 2]
        .push_back(r);
  MinerOptions ref_opts;
  ref_opts.shards = 2;
  auto reference = make_miner("sharded", test_cfg(), trace().dict, ref_opts);
  for (std::size_t s = 0; s < 2; ++s) {
    ASSERT_FALSE(streams[s].empty());
    const persist::Recovery rec = persist::recover_dir(
        dir.str() + "/shard" + std::to_string(s), test_cfg(),
        trace().dict.get());
    ASSERT_GT(rec.durable_records(), 0u) << "shard " << s;
    for (std::uint64_t i = 0; i < rec.durable_records(); ++i)
      reference->observe(streams[s][i % streams[s].size()]);
  }
  reference->flush();

  // Reopening the cluster recovers every shard server from its own
  // directory; the recovered distributed model answers byte-identically
  // to the reference replay of the durable prefixes.
  MinerOptions recover_opts = opts;
  recover_opts.persist_dir = dir.str();
  auto recovered =
      make_miner("cluster", test_cfg(), trace().dict, recover_opts);
  expect_identical(*recovered, *reference);
}

}  // namespace
}  // namespace farmer
