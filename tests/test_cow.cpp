// Copy-on-write snapshot publication invariants: the CowBlockStore
// primitive, Farmer/ShardedFarmer COW exports (old snapshots keep old
// answers, untouched blocks stay pointer-identical), the memoized
// footprint, Farmer::observe_batch, and the concurrent backend's publish
// coalescing (differential byte-identity, flush barrier, publish stats).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "api/miner_factory.hpp"
#include "common/cow_store.hpp"
#include "core/concurrent_farmer.hpp"
#include "core/farmer.hpp"
#include "core/sharded_farmer.hpp"
#include "test_helpers.hpp"
#include "trace/generator.hpp"

namespace farmer {
namespace {

using testing::MicroTrace;

// ----------------------------------------------------------- CowBlockStore --

struct Payload {
  int x = 0;
  std::vector<int> heap;
};

TEST(CowBlockStore, FindOnEmptyAndOutOfRange) {
  CowBlockStore<Payload, 4> store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.find(0), nullptr);
  store.grow_to(10);
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.find(3), nullptr);   // grown but never populated
  EXPECT_EQ(store.find(99), nullptr);  // out of range
}

TEST(CowBlockStore, MutateCreatesAndFindsAcrossPages) {
  CowBlockStore<Payload, 4> store;  // tiny pages: index 9 is page 2
  store.mutate(9).x = 42;
  store.mutate(0).x = 7;
  ASSERT_NE(store.find(9), nullptr);
  EXPECT_EQ(store.find(9)->x, 42);
  EXPECT_EQ(store.find(0)->x, 7);
  EXPECT_EQ(store.size(), 10u);
  EXPECT_EQ(store.stats().blocks, 2u);
  EXPECT_EQ(store.stats().creates, 2u);
  EXPECT_EQ(store.stats().clones, 0u);
}

TEST(CowBlockStore, ShareIsPointerIdenticalUntilWrite) {
  CowBlockStore<Payload, 4> store;
  store.mutate(1).x = 10;
  store.mutate(5).x = 50;
  const auto snap = store.share();
  // Nothing copied: both stores address the very same blocks.
  EXPECT_EQ(store.block_identity(1), snap.block_identity(1));
  EXPECT_EQ(store.block_identity(5), snap.block_identity(5));
  EXPECT_EQ(snap.find(1)->x, 10);
  EXPECT_EQ(store.stats().clones, 0u);
}

TEST(CowBlockStore, WriteAfterShareClonesOnlyTheTouchedBlock) {
  CowBlockStore<Payload, 4> store;
  store.mutate(1).x = 10;
  store.mutate(2).x = 20;
  store.mutate(5).x = 50;  // second page
  const auto snap = store.share();
  store.mutate(1).x = 11;
  // The touched block was cloned; the snapshot still answers the old value.
  EXPECT_NE(store.block_identity(1), snap.block_identity(1));
  EXPECT_EQ(snap.find(1)->x, 10);
  EXPECT_EQ(store.find(1)->x, 11);
  // Same-page neighbor and other-page block stay shared.
  EXPECT_EQ(store.block_identity(2), snap.block_identity(2));
  EXPECT_EQ(store.block_identity(5), snap.block_identity(5));
  EXPECT_EQ(store.stats().clones, 1u);
  // Further writes to the same block within the epoch do not clone again.
  store.mutate(1).x = 12;
  EXPECT_EQ(store.stats().clones, 1u);
}

TEST(CowBlockStore, EveryShareOpensANewCloneEpoch) {
  CowBlockStore<Payload, 4> store;
  store.mutate(3).x = 1;
  const auto s1 = store.share();
  store.mutate(3).x = 2;  // clone #1
  const auto s2 = store.share();
  store.mutate(3).x = 3;  // clone #2: s2 shares the block written at epoch 1
  EXPECT_EQ(store.stats().clones, 2u);
  EXPECT_EQ(s1.find(3)->x, 1);
  EXPECT_EQ(s2.find(3)->x, 2);
  EXPECT_EQ(store.find(3)->x, 3);
}

TEST(CowBlockStore, CreatingNewBlocksNeverDisturbsTheSnapshot) {
  CowBlockStore<Payload, 4> store;
  store.mutate(0).x = 1;
  const auto snap = store.share();
  store.mutate(1).x = 2;  // same page as 0, absent in the snapshot
  EXPECT_EQ(snap.find(1), nullptr);
  EXPECT_EQ(store.find(1)->x, 2);
  EXPECT_EQ(store.block_identity(0), snap.block_identity(0));
}

TEST(CowBlockStore, CopyIsDeepAndDetached) {
  CowBlockStore<Payload, 4> store;
  store.mutate(2).x = 5;
  store.mutate(2).heap = {1, 2, 3};
  const CowBlockStore<Payload, 4> copy(store);
  EXPECT_NE(copy.block_identity(2), store.block_identity(2));
  EXPECT_EQ(copy.find(2)->x, 5);
  EXPECT_EQ(copy.find(2)->heap, (std::vector<int>{1, 2, 3}));
  store.mutate(2).x = 6;
  EXPECT_EQ(copy.find(2)->x, 5);
  // A deep copy starts a fresh accounting baseline.
  EXPECT_EQ(copy.stats().blocks, 1u);
  EXPECT_EQ(copy.stats().clones, 0u);
}

TEST(CowBlockStore, FootprintCountsBlocksAndHeap) {
  CowBlockStore<Payload, 4> store;
  const auto heap_of = [](const Payload& p) {
    return p.heap.capacity() * sizeof(int);
  };
  const std::size_t empty = store.footprint_bytes(heap_of);
  store.mutate(0).heap.assign(100, 7);
  EXPECT_GT(store.footprint_bytes(heap_of), empty + 100 * sizeof(int));
}

// ------------------------------------------------- Farmer COW snapshots --

MicroTrace correlated_trace() {
  MicroTrace mt;
  const FileId a = mt.file("a", "/home/u0/proj/a");
  const FileId b = mt.file("b", "/home/u0/proj/b");
  const FileId c = mt.file("c", "/home/u0/proj/c");
  const FileId quiet = mt.file("quiet", "/var/quiet/q");
  // `quiet` is only accessed up front: by the end of the trace it has long
  // left the look-ahead window, so later a/b/c ingest never touches its
  // blocks — the structurally-shared bystander of the COW tests.
  for (int i = 0; i < 4; ++i) mt.access(quiet, "u0", "pidA");
  for (int i = 0; i < 8; ++i) {
    mt.access(a, "u0", "pidA");
    mt.access(b, "u0", "pidA");
    mt.access(c, "u0", "pidA");
  }
  return mt;
}

TEST(FarmerCowSnapshot, OldSnapshotKeepsOldAnswersForLaterTouchedFiles) {
  const MicroTrace mt = correlated_trace();
  Farmer live(FarmerConfig{}, mt.dict());
  live.observe_batch(mt.records());

  const FileId a(0);
  const Farmer snap(CowShare{}, live);
  const std::vector<Correlator> before(snap.correlator_list(a).begin(),
                                       snap.correlator_list(a).end());
  const std::uint64_t n_before = snap.access_count(a);
  ASSERT_FALSE(before.empty());

  // Hammer file a (and its window neighbors): degrees and N_a move.
  for (int i = 0; i < 16; ++i) live.observe_batch(mt.records());
  ASSERT_GT(live.access_count(a), n_before);

  EXPECT_EQ(snap.access_count(a), n_before);
  const auto& after = snap.correlator_list(a);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].file, before[i].file);
    EXPECT_EQ(after[i].degree, before[i].degree);  // bitwise: untouched
  }
}

TEST(FarmerCowSnapshot, UntouchedBlocksArePointerIdenticalAcrossPublishes) {
  const MicroTrace mt = correlated_trace();
  Farmer live(FarmerConfig{}, mt.dict());
  live.observe_batch(mt.records());

  const FileId a(0), quiet(3);
  const Farmer snap1(CowShare{}, live);
  // Touch only file a: an a-only stream keeps every other block clean.
  std::vector<TraceRecord> a_only;
  for (const TraceRecord& r : mt.records())
    if (r.file == a) a_only.push_back(r);
  ASSERT_FALSE(a_only.empty());
  live.observe_batch(a_only);
  const Farmer snap2(CowShare{}, live);

  // The quiet file's blocks are the very same heap objects in both
  // snapshots; the touched file was cloned.
  EXPECT_NE(snap1.graph().node_identity(quiet), nullptr);
  EXPECT_EQ(snap1.graph().node_identity(quiet),
            snap2.graph().node_identity(quiet));
  EXPECT_EQ(snap1.semantic_state_identity(quiet),
            snap2.semantic_state_identity(quiet));
  EXPECT_NE(snap1.graph().node_identity(a), snap2.graph().node_identity(a));
  EXPECT_NE(snap1.semantic_state_identity(a),
            snap2.semantic_state_identity(a));
  // And pointer identity is visible at the list level too.
  EXPECT_EQ(&snap1.correlator_list(quiet), &snap2.correlator_list(quiet));
}

TEST(FarmerCowSnapshot, ShareAndDeepCopyAnswerIdentically) {
  const MicroTrace mt = correlated_trace();
  Farmer live(FarmerConfig{}, mt.dict());
  live.observe_batch(mt.records());

  const Farmer deep(live);
  const Farmer shared(CowShare{}, live);
  for (std::uint32_t f = 0; f < mt.dict()->files.size(); ++f) {
    const auto& ld = deep.correlator_list(FileId(f));
    const auto& ls = shared.correlator_list(FileId(f));
    ASSERT_EQ(ld.size(), ls.size()) << "file " << f;
    for (std::size_t i = 0; i < ld.size(); ++i) {
      EXPECT_EQ(ld[i].file, ls[i].file);
      EXPECT_EQ(ld[i].degree, ls[i].degree);
    }
    EXPECT_EQ(deep.access_count(FileId(f)), shared.access_count(FileId(f)));
    EXPECT_EQ(deep.correlation_degree(FileId(f), FileId(0)),
              shared.correlation_degree(FileId(f), FileId(0)));
    EXPECT_EQ(deep.semantic_similarity(FileId(f), FileId(0)),
              shared.semantic_similarity(FileId(f), FileId(0)));
  }
  EXPECT_EQ(deep.stats().requests, shared.stats().requests);
  EXPECT_EQ(deep.stats().pairs_evaluated, shared.stats().pairs_evaluated);
}

TEST(FarmerCowSnapshot, DeepCopyDetachesFromLiveMutation) {
  const MicroTrace mt = correlated_trace();
  Farmer live(FarmerConfig{}, mt.dict());
  live.observe_batch(mt.records());
  const FileId a(0);
  const Farmer deep(live);
  const std::uint64_t n = deep.access_count(a);
  live.observe_batch(mt.records());
  EXPECT_EQ(deep.access_count(a), n);
  // Deep copies share nothing, by identity.
  EXPECT_NE(deep.graph().node_identity(a), live.graph().node_identity(a));
}

TEST(FarmerCowSnapshot, ShardedExportSharesUntouchedBlocks) {
  const MicroTrace mt = correlated_trace();
  ShardedFarmer sharded(FarmerConfig{}, mt.dict(), /*shards=*/1);
  sharded.observe_batch(mt.records());
  const auto snap1 = sharded.export_shard_snapshot(0);
  const auto snap2 = sharded.export_shard_snapshot(0);
  // No ingest between exports: every block is shared.
  const FileId a(0);
  EXPECT_EQ(snap1->graph().node_identity(a),
            snap2->graph().node_identity(a));
  EXPECT_EQ(snap1->semantic_state_identity(a),
            snap2->semantic_state_identity(a));
  // Snapshots answer like the live shard.
  const auto live_list = sharded.correlators(a);
  const auto& snap_list = snap1->correlator_list(a);
  ASSERT_EQ(live_list.size(), snap_list.size());
  for (std::size_t i = 0; i < live_list.size(); ++i)
    EXPECT_EQ(live_list[i].degree, snap_list[i].degree);
}

// --------------------------------------------- footprint memoization --

TEST(FarmerFootprint, MemoizedBetweenIngests) {
  const MicroTrace mt = correlated_trace();
  Farmer model(FarmerConfig{}, mt.dict());
  model.observe_batch(mt.records());
  const std::size_t f1 = model.footprint_bytes();
  EXPECT_GT(f1, 0u);
  EXPECT_EQ(model.footprint_bytes(), f1);  // cached, identical
  // New files + new correlations: the footprint must move after ingest.
  MicroTrace grown = correlated_trace();
  for (int i = 0; i < 64; ++i)
    grown.access(grown.file("extra" + std::to_string(i),
                            "/home/u0/extra/f" + std::to_string(i)));
  Farmer model2(FarmerConfig{}, grown.dict());
  model2.observe_batch(grown.records());
  const std::size_t g1 = model2.footprint_bytes();
  EXPECT_GT(g1, f1);
}

TEST(FarmerFootprint, InvalidatedByObserve) {
  MicroTrace mt = correlated_trace();
  Farmer model(FarmerConfig{}, mt.dict());
  model.observe_batch(mt.records());
  const std::size_t before = model.footprint_bytes();
  // A record for a brand-new file must be reflected: if observe failed to
  // invalidate the memoized value, the stale (smaller) footprint would
  // still be served.
  const std::size_t first_new = mt.records().size();
  for (int i = 0; i < 8; ++i)
    mt.access(mt.file("fresh" + std::to_string(i),
                      "/home/u0/fresh/f" + std::to_string(i)));
  model.observe_batch(std::span<const TraceRecord>(
      mt.records().data() + first_new, mt.records().size() - first_new));
  EXPECT_GT(model.footprint_bytes(), before);
}

TEST(FarmerFootprint, SnapshotFootprintIsStable) {
  const MicroTrace mt = correlated_trace();
  Farmer live(FarmerConfig{}, mt.dict());
  live.observe_batch(mt.records());
  const Farmer snap(CowShare{}, live);
  const std::size_t s1 = snap.footprint_bytes();
  live.observe_batch(mt.records());  // live moves on
  EXPECT_EQ(snap.footprint_bytes(), s1);
}

// ------------------------------------------------- Farmer::observe_batch --

TEST(FarmerObserveBatch, ByteIdenticalToSerialObserve) {
  const Trace t = make_paper_trace(TraceKind::kHP, 41, 0.02);
  Farmer serial(FarmerConfig{}, t.dict);
  Farmer batched(FarmerConfig{}, t.dict);
  for (const TraceRecord& r : t.records) serial.observe(r);
  batched.observe_batch(t.records);
  EXPECT_EQ(serial.stats().requests, batched.stats().requests);
  EXPECT_EQ(serial.stats().pairs_evaluated, batched.stats().pairs_evaluated);
  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    const auto& ls = serial.correlator_list(FileId(f));
    const auto& lb = batched.correlator_list(FileId(f));
    ASSERT_EQ(ls.size(), lb.size()) << "file " << f;
    for (std::size_t i = 0; i < ls.size(); ++i) {
      EXPECT_EQ(ls[i].file, lb[i].file);
      EXPECT_EQ(ls[i].degree, lb[i].degree);
    }
    EXPECT_EQ(serial.access_count(FileId(f)), batched.access_count(FileId(f)));
  }
}

TEST(FarmerObserveBatch, EmptyBatchIsANoOp) {
  const MicroTrace mt = correlated_trace();
  Farmer model(FarmerConfig{}, mt.dict());
  model.observe_batch(mt.records());
  const std::uint64_t requests = model.stats().requests;
  const std::size_t footprint = model.footprint_bytes();
  model.observe_batch(std::span<const TraceRecord>{});
  EXPECT_EQ(model.stats().requests, requests);
  EXPECT_EQ(model.footprint_bytes(), footprint);
}

// --------------------------------------------------- publish coalescing --

TEST(PublishCoalescing, DifferentialByteIdentityStillHolds) {
  const Trace t = make_paper_trace(TraceKind::kHP, 43, 0.02);
  MinerOptions opts;
  opts.shards = 4;
  const auto sharded = make_miner("sharded", FarmerConfig{}, t.dict, opts);
  MinerOptions coalesced = opts;
  // Interval and deadline far out of reach: only flush() can trigger the
  // publishes this test observes.
  coalesced.publish_interval_records = 1 << 20;
  coalesced.publish_max_delay_ms = 10000;
  const auto concurrent =
      make_miner("concurrent", FarmerConfig{}, t.dict, coalesced);

  constexpr std::size_t kChunk = 64;
  for (std::size_t i = 0; i < t.records.size(); i += kChunk) {
    const std::size_t n = std::min(kChunk, t.records.size() - i);
    concurrent->observe_batch(std::span<const TraceRecord>(&t.records[i], n));
  }
  sharded->observe_batch(t.records);
  concurrent->flush();

  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    const auto ls = sharded->correlators(FileId(f));
    const auto lc = concurrent->correlators(FileId(f));
    ASSERT_EQ(ls.size(), lc.size()) << "file " << f;
    for (std::size_t i = 0; i < ls.size(); ++i) {
      EXPECT_EQ(ls[i].file, lc[i].file) << "file " << f << " slot " << i;
      EXPECT_EQ(ls[i].degree, lc[i].degree) << "file " << f << " slot " << i;
    }
  }
  const MinerStats sc = concurrent->stats();
  EXPECT_EQ(sc.requests, t.records.size());
  EXPECT_EQ(sc.pending, 0u);
  EXPECT_EQ(sc.publishes, sc.epoch);
  EXPECT_GE(sc.publishes, 1u);
}

TEST(PublishCoalescing, FlushIsAStrictBarrierDespiteHugeIntervals) {
  // With an effectively infinite interval and deadline, the only publish
  // triggers left are the dry-queue sweep and flush(); if either were
  // broken this test would hang rather than fail.
  const MicroTrace mt = correlated_trace();
  ConcurrentFarmer miner(FarmerConfig{}, mt.dict(), /*shards=*/2,
                         /*ingest_queues=*/1,
                         ConcurrentFarmer::kDefaultMaxPending,
                         /*query_cache_capacity=*/0,
                         /*publish_interval_records=*/1u << 30,
                         /*publish_max_delay_ms=*/60000);
  miner.observe_batch(mt.records());
  miner.flush();
  EXPECT_EQ(miner.stats().requests, mt.records().size());
  EXPECT_EQ(miner.stats().pending, 0u);
  EXPECT_GE(miner.epoch(), 1u);
  // Everything accepted is queryable.
  EXPECT_GT(miner.access_count(FileId(0)), 0u);
}

TEST(PublishCoalescing, FlushCompletesWhileIngestNeverPauses) {
  // Interval and deadline far out of reach while a producer keeps the
  // queues busy: a waiting flush() must still be released promptly (the
  // drain publishes per apply round for waiters) instead of stalling
  // until the staleness deadline.
  const Trace t = make_paper_trace(TraceKind::kHP, 47, 0.02);
  ConcurrentFarmer miner(FarmerConfig{}, t.dict, /*shards=*/2,
                         /*ingest_queues=*/2,
                         ConcurrentFarmer::kDefaultMaxPending,
                         /*query_cache_capacity=*/0,
                         /*publish_interval_records=*/1u << 30,
                         /*publish_max_delay_ms=*/60000);
  // A fixed workload (not a stop-flag loop): on a single core the producer
  // might otherwise never be scheduled before the flushes return, leaving
  // nothing ingested and the assertions vacuous.
  std::uint64_t produced = 0;
  std::thread producer([&] {
    std::size_t i = 0;
    for (int round = 0; round < 64; ++round) {
      const std::size_t n = std::min<std::size_t>(64, t.records.size() - i);
      miner.observe_batch(std::span<const TraceRecord>(&t.records[i], n));
      produced += n;
      i = (i + n) % t.records.size();
    }
  });
  for (int k = 0; k < 3; ++k) miner.flush();  // hangs if the barrier waits
  producer.join();
  miner.flush();
  EXPECT_EQ(miner.stats().requests, produced);
  EXPECT_EQ(miner.stats().pending, 0u);
  EXPECT_GE(miner.epoch(), 1u);
}

TEST(PublishCoalescing, IdleBacklogPublishesByStalenessDeadline) {
  // Interval out of reach and no flush(): only the staleness deadline can
  // surface the applied records. The drain's idle wait doubles as the
  // deadline poll, so the epoch must advance within ~delay + scheduling.
  const MicroTrace mt = correlated_trace();
  ConcurrentFarmer miner(FarmerConfig{}, mt.dict(), /*shards=*/2,
                         /*ingest_queues=*/1,
                         ConcurrentFarmer::kDefaultMaxPending,
                         /*query_cache_capacity=*/0,
                         /*publish_interval_records=*/1u << 30,
                         /*publish_max_delay_ms=*/50);
  miner.observe_batch(mt.records());
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (miner.epoch() == 0 && std::chrono::steady_clock::now() < give_up)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(miner.epoch(), 1u) << "deadline publish never fired";
  EXPECT_EQ(miner.stats().pending, 0u);
  EXPECT_EQ(miner.stats().requests, mt.records().size());
  EXPECT_GT(miner.access_count(FileId(0)), 0u);
}

TEST(PublishCoalescing, PublishStatsAccountCowSharing) {
  const MicroTrace mt = correlated_trace();
  MinerOptions opts;
  opts.shards = 2;
  const auto miner = make_miner("concurrent", FarmerConfig{}, mt.dict(), opts);
  miner->observe_batch(mt.records());
  miner->flush();
  // Re-ingest only file a's records: a published snapshot still shares
  // every block, so COW must clone a's blocks (files_cloned) while the
  // republish structurally reuses b's and c's (bytes_shared).
  std::vector<TraceRecord> a_only;
  for (const TraceRecord& r : mt.records())
    if (r.file == FileId(0)) a_only.push_back(r);
  ASSERT_FALSE(a_only.empty());
  miner->observe_batch(a_only);
  miner->flush();
  const MinerStats s = miner->stats();
  EXPECT_GE(s.publishes, 2u);
  EXPECT_EQ(s.publishes, s.epoch);
  EXPECT_GT(s.files_cloned, 0u);
  EXPECT_GT(s.bytes_shared, 0u);
  EXPECT_EQ(s.pending, 0u);
}

TEST(PublishCoalescing, SyncBackendsReportNoPublishActivity) {
  const MicroTrace mt = correlated_trace();
  for (const char* backend : {"farmer", "sharded", "nexus"}) {
    const auto miner = make_miner(backend, FarmerConfig{}, mt.dict());
    miner->observe_batch(mt.records());
    const MinerStats s = miner->stats();
    EXPECT_EQ(s.publishes, 0u) << backend;
    EXPECT_EQ(s.files_cloned, 0u) << backend;
    EXPECT_EQ(s.bytes_shared, 0u) << backend;
  }
}

}  // namespace
}  // namespace farmer
