// Unit tests for the correlation graph and the access window (LDA).
#include <gtest/gtest.h>

#include "graph/access_window.hpp"
#include "graph/correlation_graph.hpp"

namespace farmer {
namespace {

// --------------------------------------------------------- AccessWindow --

TEST(AccessWindow, LdaWeightsMatchPaperExample) {
  // Paper: sequence ABCD -> B gets 1.0, C gets 0.9, D gets 0.8 toward A.
  EXPECT_DOUBLE_EQ(AccessWindow::lda_weight(1, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(AccessWindow::lda_weight(2, 0.1), 0.9);
  EXPECT_DOUBLE_EQ(AccessWindow::lda_weight(3, 0.1), 0.8);
}

TEST(AccessWindow, LdaWeightClampsAtZero) {
  EXPECT_DOUBLE_EQ(AccessWindow::lda_weight(12, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(AccessWindow::lda_weight(100, 0.1), 0.0);
}

TEST(AccessWindow, PushAndOrder) {
  AccessWindow w(3);
  w.push(FileId(1));
  w.push(FileId(2));
  w.push(FileId(3));
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.at(0), FileId(3));  // most recent first
  EXPECT_EQ(w.at(1), FileId(2));
  EXPECT_EQ(w.at(2), FileId(1));
}

TEST(AccessWindow, OldestFallsOut) {
  AccessWindow w(2);
  w.push(FileId(1));
  w.push(FileId(2));
  w.push(FileId(3));
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w.at(0), FileId(3));
  EXPECT_EQ(w.at(1), FileId(2));
}

TEST(AccessWindow, PredecessorIterationWithDistances) {
  AccessWindow w(4);
  w.push(FileId(10));
  w.push(FileId(11));
  w.push(FileId(12));
  std::vector<std::pair<std::uint32_t, std::size_t>> seen;
  w.for_each_predecessor(FileId(99), [&](FileId f, std::size_t d) {
    seen.emplace_back(f.value(), d);
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::uint32_t, std::size_t>{12, 1}));
  EXPECT_EQ(seen[1], (std::pair<std::uint32_t, std::size_t>{11, 2}));
  EXPECT_EQ(seen[2], (std::pair<std::uint32_t, std::size_t>{10, 3}));
}

TEST(AccessWindow, SelfReferenceSkipped) {
  AccessWindow w(4);
  w.push(FileId(5));
  w.push(FileId(6));
  int count = 0;
  w.for_each_predecessor(FileId(5), [&](FileId, std::size_t) { ++count; });
  EXPECT_EQ(count, 1);  // only FileId(6)
}

TEST(AccessWindow, ClearEmpties) {
  AccessWindow w(4);
  w.push(FileId(1));
  w.clear();
  EXPECT_TRUE(w.empty());
}

// ----------------------------------------------------- CorrelationGraph --

TEST(CorrelationGraph, AccessCounting) {
  CorrelationGraph g;
  g.record_access(FileId(3));
  g.record_access(FileId(3));
  g.record_access(FileId(7));
  EXPECT_EQ(g.access_count(FileId(3)), 2u);
  EXPECT_EQ(g.access_count(FileId(7)), 1u);
  EXPECT_EQ(g.access_count(FileId(999)), 0u);
}

TEST(CorrelationGraph, TransitionAccumulates) {
  CorrelationGraph g;
  EXPECT_TRUE(g.add_transition(FileId(1), FileId(2), 1.0));
  EXPECT_TRUE(g.add_transition(FileId(1), FileId(2), 0.9));
  EXPECT_NEAR(g.edge_weight(FileId(1), FileId(2)), 1.9, 1e-6);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(CorrelationGraph, SelfEdgeRejected) {
  CorrelationGraph g;
  EXPECT_FALSE(g.add_transition(FileId(1), FileId(1), 1.0));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(CorrelationGraph, NonPositiveWeightRejected) {
  CorrelationGraph g;
  EXPECT_FALSE(g.add_transition(FileId(1), FileId(2), 0.0));
  EXPECT_FALSE(g.add_transition(FileId(1), FileId(2), -1.0));
}

TEST(CorrelationGraph, AccessFrequencyDefinition) {
  CorrelationGraph g;
  g.record_access(FileId(1));
  g.record_access(FileId(1));
  g.record_access(FileId(1));
  g.record_access(FileId(1));
  g.add_transition(FileId(1), FileId(2), 1.0);
  g.add_transition(FileId(1), FileId(2), 1.0);
  // F(A,B) = N_AB / N_A = 2 / 4.
  EXPECT_NEAR(g.access_frequency(FileId(1), FileId(2)), 0.5, 1e-6);
}

TEST(CorrelationGraph, FrequencyZeroWhenUnknown) {
  CorrelationGraph g;
  EXPECT_DOUBLE_EQ(g.access_frequency(FileId(5), FileId(6)), 0.0);
}

TEST(CorrelationGraph, BoundedSuccessorsEvictWeakest) {
  CorrelationGraph g({/*max_successors=*/2, /*correlator_capacity=*/4});
  g.add_transition(FileId(0), FileId(1), 5.0);
  g.add_transition(FileId(0), FileId(2), 1.0);
  // Full. A stronger newcomer replaces the weakest (2).
  EXPECT_TRUE(g.add_transition(FileId(0), FileId(3), 2.0));
  EXPECT_EQ(g.successors(FileId(0)).size(), 2u);
  EXPECT_DOUBLE_EQ(g.edge_weight(FileId(0), FileId(2)), 0.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(FileId(0), FileId(3)), 2.0);
  // A weaker newcomer is rejected.
  EXPECT_FALSE(g.add_transition(FileId(0), FileId(4), 0.5));
}

TEST(CorrelationGraph, CorrelatorListSortedDescending) {
  CorrelationGraph g;
  g.upsert_correlator(FileId(0), {FileId(1), 0.5f});
  g.upsert_correlator(FileId(0), {FileId(2), 0.9f});
  g.upsert_correlator(FileId(0), {FileId(3), 0.7f});
  const auto& list = g.correlators(FileId(0));
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].file, FileId(2));
  EXPECT_EQ(list[1].file, FileId(3));
  EXPECT_EQ(list[2].file, FileId(1));
}

TEST(CorrelationGraph, CorrelatorUpsertReplacesInPlace) {
  CorrelationGraph g;
  g.upsert_correlator(FileId(0), {FileId(1), 0.5f});
  g.upsert_correlator(FileId(0), {FileId(1), 0.95f});
  const auto& list = g.correlators(FileId(0));
  ASSERT_EQ(list.size(), 1u);
  EXPECT_FLOAT_EQ(list[0].degree, 0.95f);
}

TEST(CorrelationGraph, CorrelatorCapacityEnforced) {
  CorrelationGraph g({16, /*correlator_capacity=*/3});
  for (std::uint32_t i = 1; i <= 6; ++i)
    g.upsert_correlator(FileId(0),
                        {FileId(i), static_cast<float>(i) * 0.1f});
  const auto& list = g.correlators(FileId(0));
  ASSERT_EQ(list.size(), 3u);
  // Strongest three survive: 0.6, 0.5, 0.4.
  EXPECT_EQ(list[0].file, FileId(6));
  EXPECT_EQ(list[1].file, FileId(5));
  EXPECT_EQ(list[2].file, FileId(4));
}

TEST(CorrelationGraph, WeakEntryNotInsertedWhenFull) {
  CorrelationGraph g({16, 2});
  g.upsert_correlator(FileId(0), {FileId(1), 0.9f});
  g.upsert_correlator(FileId(0), {FileId(2), 0.8f});
  g.upsert_correlator(FileId(0), {FileId(3), 0.1f});  // too weak
  const auto& list = g.correlators(FileId(0));
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].file, FileId(1));
  EXPECT_EQ(list[1].file, FileId(2));
}

TEST(CorrelationGraph, RemoveCorrelator) {
  CorrelationGraph g;
  g.upsert_correlator(FileId(0), {FileId(1), 0.5f});
  g.upsert_correlator(FileId(0), {FileId(2), 0.6f});
  g.remove_correlator(FileId(0), FileId(1));
  const auto& list = g.correlators(FileId(0));
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].file, FileId(2));
  g.remove_correlator(FileId(0), FileId(42));  // absent: no-op
  EXPECT_EQ(g.correlators(FileId(0)).size(), 1u);
}

TEST(CorrelationGraph, UnknownFileQueriesAreEmpty) {
  CorrelationGraph g;
  EXPECT_TRUE(g.successors(FileId(123)).empty());
  EXPECT_TRUE(g.correlators(FileId(123)).empty());
}

TEST(CorrelationGraph, FootprintGrowsWithNodes) {
  CorrelationGraph g;
  const auto before = g.footprint_bytes();
  for (std::uint32_t i = 0; i < 1000; ++i) g.record_access(FileId(i));
  EXPECT_GT(g.footprint_bytes(), before);
}

TEST(CorrelationGraph, NodeCountTracksHighestId) {
  CorrelationGraph g;
  g.record_access(FileId(9));
  EXPECT_EQ(g.node_count(), 10u);  // dense table
}

}  // namespace
}  // namespace farmer
