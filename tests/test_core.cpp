// Tests for the FARMER core: the four-stage pipeline, CoMiner semantics,
// threshold filtering, the Nexus/PBS reduction properties, and sharding.
#include <gtest/gtest.h>

#include "core/farmer.hpp"
#include "core/sharded_farmer.hpp"
#include "test_helpers.hpp"

namespace farmer {
namespace {

using testing::MicroTrace;

FarmerConfig base_config() {
  FarmerConfig cfg;
  cfg.p = 0.7;
  cfg.max_strength = 0.4;
  cfg.window = 4;
  return cfg;
}

TEST(Farmer, MinesAdjacentPairInSameContext) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/home/u0/proj/a");
  const FileId b = mt.file("b", "/home/u0/proj/b");
  // Same user/pid/host and same directory: a then b, repeatedly.
  for (int i = 0; i < 5; ++i) {
    mt.access(a);
    mt.access(b);
  }
  Farmer model(base_config(), mt.dict());
  for (const auto& r : mt.records()) model.observe(r);

  const auto& list = model.correlators(a);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list[0].file, b);
  EXPECT_GE(list[0].degree, 0.4f);
}

TEST(Farmer, CorrelationDegreeCombinesBothFactors) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/home/u0/proj/a");
  const FileId b = mt.file("b", "/home/u0/proj/b");
  mt.access(a);
  mt.access(b);
  Farmer model(base_config(), mt.dict());
  for (const auto& r : mt.records()) model.observe(r);

  // sim: user+pid+host match (3) + dirsim 3/4, over 4 items = 0.9375.
  // F(a,b) = 1.0 / 1 access = 1.0. R = 0.7*0.9375 + 0.3*1.0 = 0.95625.
  EXPECT_NEAR(model.correlation_degree(a, b), 0.95625, 1e-9);
}

TEST(Farmer, UnrelatedContextFilteredByThreshold) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/home/u0/proj/a");
  const FileId x = mt.file("x", "/var/other/x");
  // Interleaved stream from different user+pid+host: the sequence factor
  // alone (0.3 * F) cannot reach the 0.4 threshold.
  for (int i = 0; i < 5; ++i) {
    mt.access(a, "u0", "pid0", "h0");
    mt.access(x, "u9", "pid9", "h9");
  }
  Farmer model(base_config(), mt.dict());
  for (const auto& r : mt.records()) model.observe(r);

  for (const auto& c : model.correlators(a)) EXPECT_NE(c.file, x);
}

TEST(Farmer, ZeroThresholdKeepsWeakPairs) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/home/u0/proj/a");
  const FileId x = mt.file("x", "/var/other/x");
  for (int i = 0; i < 5; ++i) {
    mt.access(a, "u0", "pid0", "h0");
    mt.access(x, "u9", "pid9", "h9");
  }
  auto cfg = base_config();
  cfg.max_strength = 0.0;
  Farmer model(cfg, mt.dict());
  for (const auto& r : mt.records()) model.observe(r);

  bool found = false;
  for (const auto& c : model.correlators(a)) found |= (c.file == x);
  EXPECT_TRUE(found);
}

TEST(Farmer, WindowAssignsLdaWeights) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  const FileId b = mt.file("b", "/p/b");
  const FileId c = mt.file("c", "/p/c");
  const FileId d = mt.file("d", "/p/d");
  mt.access(a);
  mt.access(b);
  mt.access(c);
  mt.access(d);
  Farmer model(base_config(), mt.dict());
  for (const auto& r : mt.records()) model.observe(r);

  const auto& g = model.graph();
  EXPECT_NEAR(g.edge_weight(a, b), 1.0, 1e-6);
  EXPECT_NEAR(g.edge_weight(a, c), 0.9, 1e-6);
  EXPECT_NEAR(g.edge_weight(a, d), 0.8, 1e-6);
}

TEST(Farmer, PEqualZeroReducesToSequenceOnly) {
  // Paper: "If the weight value is 0, FARMER is reduced to Nexus."
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  const FileId b = mt.file("b", "/q/b");  // different dir: no semantic help
  mt.access(a, "u0", "pid0");
  mt.access(b, "u1", "pid1");  // different context too
  auto cfg = base_config();
  cfg.p = 0.0;
  cfg.max_strength = 0.0;
  Farmer model(cfg, mt.dict());
  for (const auto& r : mt.records()) model.observe(r);
  // Degree must equal F(a,b) exactly = 1.0 (one access of a, weight 1).
  EXPECT_NEAR(model.correlation_degree(a, b), 1.0, 1e-9);
}

TEST(Farmer, PEqualOneIsPureSemantic) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/home/u0/proj/a");
  const FileId b = mt.file("b", "/home/u0/proj/b");
  mt.access(a);
  mt.access(b);
  auto cfg = base_config();
  cfg.p = 1.0;
  Farmer model(cfg, mt.dict());
  for (const auto& r : mt.records()) model.observe(r);
  EXPECT_NEAR(model.correlation_degree(a, b), 0.9375, 1e-9);
}

TEST(Farmer, SemanticVectorTracksLatestContext) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/home/u0/proj/a");
  const FileId b = mt.file("b", "/home/u0/proj/b");
  // First access by u0/pid0, later the pair runs under u5/pid5: the pair
  // should still be similar because vectors update to the latest context.
  mt.access(a, "u0", "pid0");
  mt.access(b, "u0", "pid0");
  mt.access(a, "u5", "pid5");
  mt.access(b, "u5", "pid5");
  Farmer model(base_config(), mt.dict());
  for (const auto& r : mt.records()) model.observe(r);
  EXPECT_GT(model.correlation_degree(a, b), 0.6);
}

TEST(Farmer, DegreeDecaysAsFrequencyDrops) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p1/a");
  const FileId b = mt.file("b", "/p2/b");
  mt.access(a, "u0", "pid0");
  mt.access(b, "u0", "pid0");  // once: F = 1/1
  // Then a is accessed many times without b following.
  for (int i = 0; i < 8; ++i) mt.access(a, "u0", "pid" + std::to_string(i));
  Farmer model(base_config(), mt.dict());
  std::vector<double> degrees;
  for (const auto& r : mt.records()) {
    model.observe(r);
    degrees.push_back(model.correlation_degree(a, b));
  }
  // F(a,b) = 1/9 at the end; degree must have decreased.
  EXPECT_LT(degrees.back(), degrees[1]);
}

TEST(Farmer, StatsCountRequestsAndPairs) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  const FileId b = mt.file("b", "/p/b");
  mt.access(a);
  mt.access(b);
  Farmer model(base_config(), mt.dict());
  for (const auto& r : mt.records()) model.observe(r);
  const auto st = model.stats();
  EXPECT_EQ(st.requests, 2u);
  EXPECT_EQ(st.pairs_evaluated, 1u);
}

TEST(Farmer, FootprintGrowsWithFiles) {
  MicroTrace mt;
  std::vector<FileId> files;
  for (int i = 0; i < 50; ++i)
    files.push_back(mt.file("f" + std::to_string(i), "/p/f"));
  for (const FileId f : files) mt.access(f);
  Farmer model(base_config(), mt.dict());
  const auto before = model.footprint_bytes();
  for (const auto& r : mt.records()) model.observe(r);
  EXPECT_GT(model.footprint_bytes(), before);
}

TEST(Farmer, CorrelatorListStaysSorted) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/h/u/p/a");
  const FileId b = mt.file("b", "/h/u/p/b");
  const FileId c = mt.file("c", "/h/u/p/c");
  for (int i = 0; i < 4; ++i) {
    mt.access(a);
    mt.access(b);
    mt.access(c);
  }
  Farmer model(base_config(), mt.dict());
  for (const auto& r : mt.records()) model.observe(r);
  const auto& list = model.correlators(a);
  for (std::size_t i = 1; i < list.size(); ++i)
    EXPECT_GE(list[i - 1].degree, list[i].degree);
}

TEST(Farmer, FileIdAttributesWorkWithoutPaths) {
  // INS/RES style: no path info at all; dev+fid carry the locality.
  MicroTrace mt;
  const FileId a = mt.file("a");
  const FileId b = mt.file("b");
  for (int i = 0; i < 5; ++i) {
    mt.access(a);
    mt.access(b);
  }
  auto cfg = base_config();
  cfg.attributes = AttributeMask::all_with_fileid();
  Farmer model(cfg, mt.dict());
  for (const auto& r : mt.records()) model.observe(r);
  const auto& list = model.correlators(a);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list[0].file, b);
}

// -------------------------------------------------------------- sharded --

TEST(ShardedFarmer, SingleShardMatchesSerialFarmer) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  const FileId b = mt.file("b", "/p/b");
  for (int i = 0; i < 6; ++i) {
    mt.access(a);
    mt.access(b);
  }
  Farmer serial(base_config(), mt.dict());
  ShardedFarmer sharded(base_config(), mt.dict(), 1);
  for (const auto& r : mt.records()) {
    serial.observe(r);
    sharded.observe(r);
  }
  const auto& sl = serial.correlators(a);
  const auto ml = sharded.correlators(a);
  ASSERT_EQ(ml.size(), sl.size());
  for (std::size_t i = 0; i < sl.size(); ++i) {
    EXPECT_EQ(ml[i].file, sl[i].file);
    EXPECT_FLOAT_EQ(ml[i].degree, sl[i].degree);
  }
}

TEST(ShardedFarmer, BatchIngestEqualsSerialIngest) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  const FileId b = mt.file("b", "/p/b");
  const FileId c = mt.file("c", "/p/c");
  for (int i = 0; i < 8; ++i) {
    mt.access(a, "u0", "pidA");
    mt.access(b, "u0", "pidA");
    mt.access(c, "u1", "pidB");
  }
  ShardedFarmer one(base_config(), mt.dict(), 4);
  ShardedFarmer two(base_config(), mt.dict(), 4);
  for (const auto& r : mt.records()) one.observe(r);
  two.observe_batch(mt.records());
  const auto la = one.correlators(a);
  const auto lb = two.correlators(a);
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].file, lb[i].file);
    EXPECT_FLOAT_EQ(la[i].degree, lb[i].degree);
  }
}

TEST(ShardedFarmer, MergedListSortedAndDeduplicated) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  const FileId b = mt.file("b", "/p/b");
  // Two pids -> two shards (likely); both observe a->b.
  for (int i = 0; i < 4; ++i) {
    mt.access(a, "u0", "pidA");
    mt.access(b, "u0", "pidA");
    mt.access(a, "u0", "pidB");
    mt.access(b, "u0", "pidB");
  }
  ShardedFarmer sharded(base_config(), mt.dict(), 4);
  for (const auto& r : mt.records()) sharded.observe(r);
  const auto list = sharded.correlators(a);
  // No duplicate successors.
  for (std::size_t i = 0; i < list.size(); ++i)
    for (std::size_t j = i + 1; j < list.size(); ++j)
      EXPECT_NE(list[i].file, list[j].file);
  for (std::size_t i = 1; i < list.size(); ++i)
    EXPECT_GE(list[i - 1].degree, list[i].degree);
}

TEST(ShardedFarmer, FootprintSumsShards) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  mt.access(a);
  ShardedFarmer sharded(base_config(), mt.dict(), 3);
  EXPECT_EQ(sharded.shard_count(), 3u);
  EXPECT_GT(sharded.footprint_bytes(), 0u);
}

}  // namespace
}  // namespace farmer
