// Differential gate for the parallel shard-disjoint apply path: every
// backend's observe_batch(), at every FARMER_APPLY_THREADS setting, must
// build the byte-identical model a per-record serial observe() builds.
//
// The parallelism argument is structural — records are partitioned by the
// routing hash (shard_of), slices preserve per-shard record order, and
// shards share no mutable state — so the gate compares *bits*, not
// tolerances: every float on the query surface via std::bit_cast and the
// full serialized per-shard model blobs byte-for-byte. A scheduling leak
// (cross-shard write, reordered slice, dropped record) diverges one of
// these with high probability on a multi-tenant stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/miner_factory.hpp"
#include "core/sharded_farmer.hpp"
#include "net/cluster_miner.hpp"
#include "persist/checkpoint.hpp"
#include "trace/generator.hpp"

namespace farmer {
namespace {

// A merged two-tenant stream: interleaved tenants exercise the routing
// hash across distinct process/user token populations, so shard slices
// are non-trivial at every lane count.
MultiTenantTrace tenant_trace(std::uint64_t seed) {
  constexpr TraceKind kKinds[] = {TraceKind::kHP, TraceKind::kINS};
  return make_multi_tenant_trace(kKinds, seed, 0.02);
}

void chunked_batches(CorrelationMiner& miner,
                     std::span<const TraceRecord> records,
                     std::size_t chunk) {
  for (std::size_t i = 0; i < records.size(); i += chunk) {
    const std::size_t n = std::min(chunk, records.size() - i);
    miner.observe_batch(records.subspan(i, n));
  }
  miner.flush();
}

// Bitwise comparison of the whole query surface: access counts,
// Correlator-List snapshots, and the pairwise degree/similarity/frequency
// grid (strided — the full cross product is quadratic in files).
void expect_same_query_surface(const CorrelationMiner& ref,
                               const CorrelationMiner& got,
                               std::uint32_t files, const std::string& what) {
  for (std::uint32_t f = 0; f < files; ++f) {
    const FileId id(f);
    ASSERT_EQ(ref.access_count(id), got.access_count(id))
        << what << ": file " << f;
    const CorrelatorView a = ref.snapshot(id);
    const CorrelatorView b = got.snapshot(id);
    ASSERT_EQ(a.size(), b.size()) << what << ": file " << f;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].file, b[i].file)
          << what << ": file " << f << " slot " << i;
      ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i].degree),
                std::bit_cast<std::uint32_t>(b[i].degree))
          << what << ": file " << f << " slot " << i;
    }
  }
  for (std::uint32_t a = 0; a < files; a += 13) {
    for (std::uint32_t b = 0; b < files; b += 31) {
      const FileId fa(a), fb(b);
      ASSERT_EQ(
          std::bit_cast<std::uint64_t>(ref.correlation_degree(fa, fb)),
          std::bit_cast<std::uint64_t>(got.correlation_degree(fa, fb)))
          << what << ": degree " << a << "," << b;
      ASSERT_EQ(
          std::bit_cast<std::uint64_t>(ref.semantic_similarity(fa, fb)),
          std::bit_cast<std::uint64_t>(got.semantic_similarity(fa, fb)))
          << what << ": similarity " << a << "," << b;
      ASSERT_EQ(
          std::bit_cast<std::uint64_t>(ref.access_frequency(fa, fb)),
          std::bit_cast<std::uint64_t>(got.access_frequency(fa, fb)))
          << what << ": frequency " << a << "," << b;
    }
  }
}

void expect_same_shard_blobs(const ShardedFarmer& ref,
                             const ShardedFarmer& got,
                             const std::string& what) {
  ASSERT_EQ(ref.shard_count(), got.shard_count()) << what;
  for (std::size_t s = 0; s < ref.shard_count(); ++s)
    ASSERT_EQ(persist::serialize_shard(ref.shard(s)),
              persist::serialize_shard(got.shard(s)))
        << what << ": shard " << s;
}

class ParallelApplyDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

// "sharded": batches through 1/2/4 apply lanes vs one record at a time
// through observe() on a serial twin. Query surface AND serialized
// per-shard blobs must match bit for bit.
TEST_P(ParallelApplyDifferential, ShardedBatchMatchesSerialObserve) {
  const MultiTenantTrace mt = tenant_trace(GetParam());
  const FarmerConfig cfg;
  MinerOptions serial;
  serial.shards = 4;
  serial.apply_threads = 1;
  const auto ref = make_miner("sharded", cfg, mt.trace.dict, serial);
  for (const TraceRecord& r : mt.trace.records) ref->observe(r);
  const auto* ref_sharded = dynamic_cast<const ShardedFarmer*>(ref.get());
  ASSERT_NE(ref_sharded, nullptr);

  const auto files = static_cast<std::uint32_t>(mt.trace.dict->files.size());
  for (const std::size_t lanes : {1u, 2u, 4u}) {
    MinerOptions opts = serial;
    opts.apply_threads = lanes;
    const auto miner = make_miner("sharded", cfg, mt.trace.dict, opts);
    chunked_batches(*miner, mt.trace.records, /*chunk=*/97);
    const std::string what = "sharded x" + std::to_string(lanes);
    expect_same_query_surface(*ref, *miner, files, what);
    const auto* got = dynamic_cast<const ShardedFarmer*>(miner.get());
    ASSERT_NE(got, nullptr);
    expect_same_shard_blobs(*ref_sharded, *got, what);
    EXPECT_EQ(miner->stats().requests, mt.trace.records.size()) << what;
    EXPECT_EQ(miner->stats().apply_parallel_records,
              lanes > 1 ? mt.trace.records.size() : 0u)
        << what;
  }
}

// "concurrent": the drain hands every collected batch to the same parallel
// apply; after flush() the published model must match the serial sharded
// twin bitwise at every lane count.
TEST_P(ParallelApplyDifferential, ConcurrentDrainMatchesSerialObserve) {
  const MultiTenantTrace mt = tenant_trace(GetParam());
  const FarmerConfig cfg;
  MinerOptions serial;
  serial.shards = 4;
  serial.apply_threads = 1;
  const auto ref = make_miner("sharded", cfg, mt.trace.dict, serial);
  for (const TraceRecord& r : mt.trace.records) ref->observe(r);

  const auto files = static_cast<std::uint32_t>(mt.trace.dict->files.size());
  for (const std::size_t lanes : {1u, 2u, 4u}) {
    MinerOptions opts = serial;
    opts.apply_threads = lanes;
    const auto miner = make_miner("concurrent", cfg, mt.trace.dict, opts);
    chunked_batches(*miner, mt.trace.records, /*chunk=*/97);
    expect_same_query_surface(*ref, *miner, files,
                              "concurrent x" + std::to_string(lanes));
    EXPECT_EQ(miner->stats().requests, mt.trace.records.size());
    EXPECT_EQ(miner->stats().pending, 0u);
  }
}

// "cluster": apply_threads is plumbed through MinerOptions to every
// backend; the loopback deployment must stay byte-identical to the serial
// reference with the option set (each shard server hosts a single Farmer,
// so the option is inert there — but it must not perturb routing).
TEST_P(ParallelApplyDifferential, ClusterUnperturbedByApplyThreads) {
  const MultiTenantTrace mt = tenant_trace(GetParam());
  const FarmerConfig cfg;
  MinerOptions serial;
  serial.shards = 3;
  serial.cluster_shards = 3;
  serial.apply_threads = 1;
  const auto ref = make_miner("sharded", cfg, mt.trace.dict, serial);
  for (const TraceRecord& r : mt.trace.records) ref->observe(r);
  const auto* ref_sharded = dynamic_cast<const ShardedFarmer*>(ref.get());
  ASSERT_NE(ref_sharded, nullptr);

  MinerOptions opts = serial;
  opts.apply_threads = 4;
  const auto cluster = make_miner("cluster", cfg, mt.trace.dict, opts);
  chunked_batches(*cluster, mt.trace.records, /*chunk=*/97);
  const auto files = static_cast<std::uint32_t>(mt.trace.dict->files.size());
  expect_same_query_surface(*ref, *cluster, files, "cluster");
  const auto* cl = dynamic_cast<const net::ClusterMiner*>(cluster.get());
  ASSERT_NE(cl, nullptr);
  for (std::size_t s = 0; s < ref_sharded->shard_count(); ++s)
    ASSERT_EQ(persist::serialize_shard(ref_sharded->shard(s)),
              cl->export_shard_model(s))
        << "cluster shard " << s;
}

// "farmer": the single-shard backend has no parallel path, but its
// observe_batch runs the same rewritten kernel — batches must equal
// record-at-a-time ingestion exactly.
TEST_P(ParallelApplyDifferential, FarmerBatchMatchesSerialObserve) {
  const MultiTenantTrace mt = tenant_trace(GetParam());
  const FarmerConfig cfg;
  const auto ref = make_miner("farmer", cfg, mt.trace.dict);
  for (const TraceRecord& r : mt.trace.records) ref->observe(r);
  const auto batched = make_miner("farmer", cfg, mt.trace.dict);
  chunked_batches(*batched, mt.trace.records, /*chunk=*/97);
  const auto files = static_cast<std::uint32_t>(mt.trace.dict->files.size());
  expect_same_query_surface(*ref, *batched, files, "farmer");
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, ParallelApplyDifferential,
                         ::testing::Values(7u, 23u, 61u));

}  // namespace
}  // namespace farmer
