// Shared helpers for constructing hand-crafted micro-traces in tests.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/correlation_miner.hpp"
#include "trace/record.hpp"

namespace farmer::testing {

/// Partitions records across `producers` ingest streams by process id
/// (stream affinity, mirroring ShardedFarmer's routing), keeping each
/// process's records in stream order within its partition.
inline std::vector<std::vector<TraceRecord>> partition_by_process(
    const std::vector<TraceRecord>& records, std::size_t producers) {
  std::vector<std::vector<TraceRecord>> parts(producers == 0 ? 1 : producers);
  for (const TraceRecord& r : records)
    parts[static_cast<std::size_t>(r.process.value()) % parts.size()]
        .push_back(r);
  return parts;
}

/// One producer thread per partition, each pushing chunked observe_batch()
/// calls. Returns the joined threads' work; the caller decides when (and
/// whether) to flush().
inline void replay_partitioned(CorrelationMiner& miner,
                               const std::vector<std::vector<TraceRecord>>&
                                   parts,
                               std::size_t chunk) {
  std::vector<std::thread> producers;
  producers.reserve(parts.size());
  for (const auto& part : parts) {
    producers.emplace_back([&miner, &part, chunk] {
      for (std::size_t i = 0; i < part.size(); i += chunk) {
        const std::size_t n = std::min(chunk, part.size() - i);
        miner.observe_batch(std::span<const TraceRecord>(&part[i], n));
      }
    });
  }
  for (auto& t : producers) t.join();
}

/// Builds tiny traces with explicit control over every attribute. Files,
/// users, hosts etc. are created on demand by name.
class MicroTrace {
 public:
  MicroTrace() : dict_(std::make_shared<TraceDictionary>()) {}

  /// Creates (or returns) a file with the given path ("" = no path).
  FileId file(const std::string& name, const std::string& path = "",
              bool read_only = true, std::uint32_t size = 4096) {
    auto it = files_.find(name);
    if (it != files_.end()) return it->second;
    FileMeta meta;
    if (!path.empty()) {
      SmallVector<TokenId, 8> comps;
      intern_path(path, comps);
      meta.path = dict_->add_path(std::move(comps));
    }
    meta.dev = dict_->tokens.intern("dev0");
    meta.fid = dict_->tokens.intern("fid_" + name);
    meta.size_bytes = size;
    meta.read_only = read_only;
    meta.group = kNoGroup;
    const FileId id(static_cast<std::uint32_t>(dict_->files.size()));
    dict_->files.push_back(meta);
    files_[name] = id;
    return id;
  }

  /// Appends an access record. Context strings are interned on the fly.
  TraceRecord& access(FileId f, const std::string& user = "u0",
                      const std::string& pid = "pid0",
                      const std::string& host = "h0",
                      const std::string& program = "prog0") {
    TraceRecord r;
    r.timestamp = static_cast<SimTime>(records_.size()) * 1000;
    r.file = f;
    r.user = UserId(0);
    r.process = ProcessId(id_of(pid));
    r.host = HostId(0);
    r.path = dict_->files[f.value()].path;
    r.user_token = dict_->tokens.intern(user);
    r.process_token = dict_->tokens.intern(pid);
    r.host_token = dict_->tokens.intern(host);
    r.dev_token = dict_->files[f.value()].dev;
    r.fid_token = dict_->files[f.value()].fid;
    r.program_token = dict_->tokens.intern(program);
    r.size_bytes = dict_->files[f.value()].size_bytes;
    records_.push_back(r);
    return records_.back();
  }

  [[nodiscard]] Trace build(const std::string& name = "micro") const {
    Trace t;
    t.name = name;
    t.kind = TraceKind::kCustom;
    t.has_paths = true;
    t.records = records_;
    t.dict = dict_;
    return t;
  }

  [[nodiscard]] std::shared_ptr<TraceDictionary> dict() const {
    return dict_;
  }
  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }

 private:
  void intern_path(const std::string& path, SmallVector<TokenId, 8>& out) {
    std::size_t i = 0;
    while (i < path.size()) {
      while (i < path.size() && path[i] == '/') ++i;
      std::size_t j = i;
      while (j < path.size() && path[j] != '/') ++j;
      if (j > i) out.push_back(dict_->tokens.intern(path.substr(i, j - i)));
      i = j;
    }
  }

  std::uint32_t id_of(const std::string& s) {
    auto it = pid_ids_.find(s);
    if (it != pid_ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(pid_ids_.size());
    pid_ids_[s] = id;
    return id;
  }

  std::shared_ptr<TraceDictionary> dict_;
  std::vector<TraceRecord> records_;
  std::unordered_map<std::string, FileId> files_;
  std::unordered_map<std::string, std::uint32_t> pid_ids_;
};

}  // namespace farmer::testing
