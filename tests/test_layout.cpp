// Tests for correlation-directed grouping and data layout.
#include <gtest/gtest.h>

#include "core/farmer.hpp"
#include "layout/layout.hpp"
#include "test_helpers.hpp"

namespace farmer {
namespace {

using testing::MicroTrace;

TEST(UnionFind, BasicMerge) {
  UnionFind uf(10);
  EXPECT_TRUE(uf.merge(1, 2, 10));
  EXPECT_TRUE(uf.merge(2, 3, 10));
  EXPECT_EQ(uf.find(1), uf.find(3));
  EXPECT_NE(uf.find(1), uf.find(5));
  EXPECT_EQ(uf.size_of(1), 3u);
}

TEST(UnionFind, CapBlocksOversizedMerge) {
  UnionFind uf(10);
  EXPECT_TRUE(uf.merge(0, 1, 2));
  EXPECT_FALSE(uf.merge(0, 2, 2));  // would make 3 > cap 2
  EXPECT_NE(uf.find(0), uf.find(2));
  EXPECT_TRUE(uf.merge(0, 1, 2));  // same-set merge is a no-op success
}

/// Builds a mined model over two clear groups plus a lone file.
struct LayoutFixture {
  MicroTrace mt;
  FileId a1, a2, a3, b1, b2, lone;
  Trace trace;
  std::unique_ptr<Farmer> model;

  LayoutFixture() {
    a1 = mt.file("a1", "/h/u/ga/a1");
    a2 = mt.file("a2", "/h/u/ga/a2");
    a3 = mt.file("a3", "/h/u/ga/a3");
    b1 = mt.file("b1", "/h/u/gb/b1");
    b2 = mt.file("b2", "/h/u/gb/b2");
    lone = mt.file("lone", "/tmp/lone");
    for (int i = 0; i < 6; ++i) {
      mt.access(a1, "u0", "pa", "ha");
      mt.access(a2, "u0", "pa", "ha");
      mt.access(a3, "u0", "pa", "ha");
      mt.access(b1, "u1", "pb", "hb");
      mt.access(b2, "u1", "pb", "hb");
    }
    mt.access(lone, "u2", "pc", "hc");
    trace = mt.build();
    model = std::make_unique<Farmer>(FarmerConfig{}, mt.dict());
    for (const auto& r : trace.records) model->observe(r);
  }
};

TEST(Grouper, FindsMinedGroups) {
  LayoutFixture fx;
  const auto groups = build_groups(*fx.model, *fx.trace.dict, GrouperConfig{});
  EXPECT_GE(groups.groups.size(), 2u);
  EXPECT_TRUE(groups.same_group(fx.a1, fx.a2));
  EXPECT_TRUE(groups.same_group(fx.a1, fx.a3));
  EXPECT_TRUE(groups.same_group(fx.b1, fx.b2));
  EXPECT_FALSE(groups.same_group(fx.a1, fx.b1));
  EXPECT_FALSE(groups.same_group(fx.lone, fx.a1));
}

TEST(Grouper, ReadOnlyRestrictionExcludesMutableFiles) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/g/a", /*read_only=*/true);
  const FileId w = mt.file("w", "/g/w", /*read_only=*/false);
  for (int i = 0; i < 6; ++i) {
    mt.access(a);
    mt.access(w);
  }
  Farmer model(FarmerConfig{}, mt.dict());
  for (const auto& r : mt.records()) model.observe(r);
  GrouperConfig ro;
  ro.read_only_only = true;
  const auto strict = build_groups(model, *mt.dict(), ro);
  EXPECT_FALSE(strict.same_group(a, w));
  GrouperConfig loose;
  loose.read_only_only = false;
  const auto relaxed = build_groups(model, *mt.dict(), loose);
  EXPECT_TRUE(relaxed.same_group(a, w));
}

TEST(Grouper, GroupSizeCapRespected) {
  MicroTrace mt;
  std::vector<FileId> files;
  for (int i = 0; i < 12; ++i)
    files.push_back(mt.file("f" + std::to_string(i),
                            "/g/f" + std::to_string(i)));
  for (int rep = 0; rep < 6; ++rep)
    for (const FileId f : files) mt.access(f);
  Farmer model(FarmerConfig{}, mt.dict());
  for (const auto& r : mt.records()) model.observe(r);
  GrouperConfig cfg;
  cfg.max_group_files = 4;
  const auto groups = build_groups(model, *mt.dict(), cfg);
  for (const auto& g : groups.groups) EXPECT_LE(g.size(), 4u);
}

TEST(Layout, ScatterPlacesEverything) {
  LayoutFixture fx;
  LayoutConfig cfg;
  cfg.osd_count = 2;
  const auto map = place_scatter(*fx.trace.dict, cfg);
  ASSERT_EQ(map.of_file.size(), fx.trace.dict->files.size());
  for (const auto& p : map.of_file) EXPECT_GT(p.extent.length, 0u);
}

TEST(Layout, GroupedPlacesGroupContiguouslyOnOneOsd) {
  LayoutFixture fx;
  const auto groups = build_groups(*fx.model, *fx.trace.dict, GrouperConfig{});
  LayoutConfig cfg;
  cfg.osd_count = 2;
  const auto map = place_grouped(*fx.trace.dict, groups, cfg);
  // Members of the a-group share an OSD and form one contiguous run.
  const auto& pa1 = map.of_file[fx.a1.value()];
  const auto& pa2 = map.of_file[fx.a2.value()];
  const auto& pa3 = map.of_file[fx.a3.value()];
  EXPECT_EQ(pa1.osd, pa2.osd);
  EXPECT_EQ(pa2.osd, pa3.osd);
  // Contiguity: extents are adjacent in some order.
  std::vector<Extent> ex = {pa1.extent, pa2.extent, pa3.extent};
  std::sort(ex.begin(), ex.end(),
            [](const Extent& x, const Extent& y) { return x.start < y.start; });
  EXPECT_EQ(ex[0].end(), ex[1].start);
  EXPECT_EQ(ex[1].end(), ex[2].start);
}

TEST(Layout, GroupedBeatsScatterOnSequentiality) {
  LayoutFixture fx;
  const auto groups = build_groups(*fx.model, *fx.trace.dict, GrouperConfig{});
  LayoutConfig cfg;
  cfg.osd_count = 2;
  const auto scatter = place_scatter(*fx.trace.dict, cfg);
  const auto grouped = place_grouped(*fx.trace.dict, groups, cfg);
  const auto m_scatter = evaluate_layout(fx.trace, scatter, nullptr, cfg);
  const auto m_grouped = evaluate_layout(fx.trace, grouped, &groups, cfg);
  EXPECT_GT(m_grouped.sequential_fraction(), m_scatter.sequential_fraction());
  EXPECT_LT(m_grouped.total_io_ms, m_scatter.total_io_ms);
  EXPECT_LT(m_grouped.seeks, m_scatter.seeks);
}

TEST(Layout, MetricsCountAccesses) {
  LayoutFixture fx;
  LayoutConfig cfg;
  const auto map = place_scatter(*fx.trace.dict, cfg);
  const auto m = evaluate_layout(fx.trace, map, nullptr, cfg);
  EXPECT_EQ(m.accesses, fx.trace.records.size());
}

}  // namespace
}  // namespace farmer
