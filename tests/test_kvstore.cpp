// Tests for the Berkeley-DB stand-ins: B+tree and the persistent log store.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "common/rng.hpp"
#include "kvstore/btree.hpp"
#include "kvstore/log_store.hpp"

namespace farmer {
namespace {

// ---------------------------------------------------------------- BTree --

TEST(BTree, PutGetSingle) {
  BTreeStore t;
  t.put(1, "one");
  ASSERT_TRUE(t.get(1).has_value());
  EXPECT_EQ(*t.get(1), "one");
  EXPECT_FALSE(t.get(2).has_value());
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTree, OverwriteKeepsSize) {
  BTreeStore t;
  t.put(1, "a");
  t.put(1, "b");
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.get(1), "b");
}

TEST(BTree, EraseRemoves) {
  BTreeStore t;
  t.put(1, "a");
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_FALSE(t.get(1).has_value());
  EXPECT_EQ(t.size(), 0u);
}

TEST(BTree, HeightGrowsWithInserts) {
  BTreeStore t;
  EXPECT_EQ(t.height(), 1u);
  for (std::uint64_t k = 0; k < 10000; ++k) t.put(k, "v");
  EXPECT_GT(t.height(), 1u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(BTree, OrderedScanFullRange) {
  BTreeStore t;
  // Insert in reverse to exercise rebalancing order.
  for (std::uint64_t k = 500; k-- > 0;) t.put(k, std::to_string(k));
  std::uint64_t expect = 0;
  t.scan(0, UINT64_MAX, [&](std::uint64_t k, std::string_view v) {
    EXPECT_EQ(k, expect);
    EXPECT_EQ(v, std::to_string(k));
    ++expect;
    return true;
  });
  EXPECT_EQ(expect, 500u);
}

TEST(BTree, ScanSubrangeInclusive) {
  BTreeStore t;
  for (std::uint64_t k = 0; k < 100; ++k) t.put(k * 2, "v");
  std::vector<std::uint64_t> seen;
  t.scan(10, 20, [&](std::uint64_t k, std::string_view) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{10, 12, 14, 16, 18, 20}));
}

TEST(BTree, ScanEarlyStop) {
  BTreeStore t;
  for (std::uint64_t k = 0; k < 100; ++k) t.put(k, "v");
  int count = 0;
  t.scan(0, UINT64_MAX, [&](std::uint64_t, std::string_view) {
    return ++count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(BTree, InvariantsHoldUnderRandomOps) {
  BTreeStore t;
  std::map<std::uint64_t, std::string> ref;
  Rng rng(13);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t k = rng.next_below(4000);
    if (rng.next_bool(0.7)) {
      const std::string v = "v" + std::to_string(op);
      t.put(k, v);
      ref[k] = v;
    } else {
      EXPECT_EQ(t.erase(k), ref.erase(k) > 0) << "op " << op;
    }
  }
  ASSERT_TRUE(t.check_invariants());
  ASSERT_EQ(t.size(), ref.size());
  for (const auto& [k, v] : ref) {
    auto got = t.get(k);
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(*got, v);
  }
  // Full scan equals the reference order.
  auto it = ref.begin();
  t.scan(0, UINT64_MAX, [&](std::uint64_t k, std::string_view v) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, ref.end());
}

TEST(BTree, FootprintGrows) {
  BTreeStore t;
  const auto before = t.footprint_bytes();
  for (std::uint64_t k = 0; k < 1000; ++k) t.put(k, "some value payload");
  EXPECT_GT(t.footprint_bytes(), before);
}

TEST(BTree, ExtremeKeysWork) {
  BTreeStore t;
  t.put(0, "zero");
  t.put(UINT64_MAX, "max");
  EXPECT_EQ(*t.get(0), "zero");
  EXPECT_EQ(*t.get(UINT64_MAX), "max");
  EXPECT_TRUE(t.check_invariants());
}

// ------------------------------------------------------------- LogStore --

class LogStoreTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Per-test file name: ctest runs each test as its own process, so a
  // shared name would race under a parallel ctest invocation.
  std::string path_ =
      ::testing::TempDir() + "farmer_log_test_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".db";
};

TEST_F(LogStoreTest, PutGetErase) {
  LogStore s(path_);
  s.put(1, "alpha");
  s.put(2, "beta");
  EXPECT_EQ(*s.get(1), "alpha");
  EXPECT_TRUE(s.erase(1));
  EXPECT_FALSE(s.get(1).has_value());
  EXPECT_EQ(s.size(), 1u);
}

TEST_F(LogStoreTest, PersistsAcrossReopen) {
  {
    LogStore s(path_);
    s.put(10, "ten");
    s.put(20, "twenty");
    s.erase(10);
    s.sync();
  }
  LogStore reopened(path_);
  EXPECT_EQ(reopened.recovered_records(), 3u);
  EXPECT_FALSE(reopened.get(10).has_value());
  ASSERT_TRUE(reopened.get(20).has_value());
  EXPECT_EQ(*reopened.get(20), "twenty");
}

TEST_F(LogStoreTest, RecoversFromTornTail) {
  {
    LogStore s(path_);
    s.put(1, "good");
    s.put(2, "also good");
    s.sync();
  }
  // Append garbage simulating a torn write.
  {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char junk[] = {0x13, 0x37, 0x00, 0x42};
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  LogStore recovered(path_);
  EXPECT_EQ(recovered.recovered_records(), 2u);
  EXPECT_EQ(*recovered.get(1), "good");
  EXPECT_EQ(*recovered.get(2), "also good");
  // The store keeps working after truncating the torn tail.
  recovered.put(3, "new");
  recovered.sync();
  LogStore again(path_);
  EXPECT_EQ(again.size(), 3u);
}

TEST_F(LogStoreTest, CompactionPreservesContents) {
  LogStore s(path_);
  for (int i = 0; i < 50; ++i) s.put(7, "version " + std::to_string(i));
  s.put(8, "keep");
  const std::size_t reclaimed = s.compact();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(*s.get(7), "version 49");
  EXPECT_EQ(*s.get(8), "keep");
  s.put(9, "after-compact");
  s.sync();
  LogStore reopened(path_);
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(*reopened.get(9), "after-compact");
}

TEST_F(LogStoreTest, ScanIsOrdered) {
  LogStore s(path_);
  s.put(5, "e");
  s.put(1, "a");
  s.put(3, "c");
  std::vector<std::uint64_t> keys;
  s.scan(0, UINT64_MAX, [&](std::uint64_t k, std::string_view) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 3, 5}));
}

TEST_F(LogStoreTest, EmptyValueRoundTrip) {
  {
    LogStore s(path_);
    s.put(1, "");
    s.sync();
  }
  LogStore reopened(path_);
  ASSERT_TRUE(reopened.get(1).has_value());
  EXPECT_EQ(*reopened.get(1), "");
}

TEST_F(LogStoreTest, FsyncModeRoundTrip) {
  {
    LogStore s(path_, LogStore::Durability::kFsync);
    s.put(1, "stale");
    s.put(1, "durable");
    s.put(2, "records");
    s.sync();
    EXPECT_GT(s.compact(), 0u);  // exercises the fsync'd compaction path
    s.put(3, "after");
    s.sync();
  }
  LogStore reopened(path_, LogStore::Durability::kFsync);
  EXPECT_EQ(*reopened.get(1), "durable");
  EXPECT_EQ(*reopened.get(2), "records");
  EXPECT_EQ(*reopened.get(3), "after");
}

// Torn-write fuzz: truncate a valid log at EVERY byte offset inside the
// last few records and assert reopening always recovers the longest prefix
// of fully contained records — never more, never fewer, never a crash.
TEST_F(LogStoreTest, TruncationAtEveryOffsetRecoversLongestValidPrefix) {
  // Record i is appended at offset boundaries_[i] (boundaries_[n] = EOF), so
  // a cut at byte b recovers exactly the records whose end is <= b.
  std::vector<long> boundaries;
  constexpr int kRecords = 6;
  {
    LogStore s(path_);
    for (int i = 0; i < kRecords; ++i) {
      s.put(static_cast<std::uint64_t>(i + 1),
            "value-" + std::string(static_cast<std::size_t>(i * 3), 'x'));
      s.sync();
      std::FILE* f = std::fopen(path_.c_str(), "rb");
      ASSERT_NE(f, nullptr);
      ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
      boundaries.push_back(std::ftell(f));
      std::fclose(f);
    }
  }
  // Read the pristine image once; every iteration rewrites a truncated copy.
  std::string image;
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) image.append(buf, n);
    std::fclose(f);
  }
  ASSERT_EQ(static_cast<long>(image.size()), boundaries.back());

  const std::string cut_path = path_ + ".cut";
  for (std::size_t cut = 0; cut <= image.size(); ++cut) {
    {
      std::FILE* f = std::fopen(cut_path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      if (cut > 0) {
        ASSERT_EQ(std::fwrite(image.data(), 1, cut, f), cut);
      }
      std::fclose(f);
    }
    std::size_t expect = 0;
    while (expect < boundaries.size() &&
           boundaries[expect] <= static_cast<long>(cut))
      ++expect;

    LogStore recovered(cut_path);
    EXPECT_EQ(recovered.recovered_records(), expect) << "cut at " << cut;
    for (std::size_t i = 0; i < kRecords; ++i) {
      const auto got = recovered.get(i + 1);
      if (i < expect) {
        ASSERT_TRUE(got.has_value()) << "cut at " << cut << ", key " << i + 1;
        EXPECT_EQ(*got, "value-" + std::string(i * 3, 'x'));
      } else {
        EXPECT_FALSE(got.has_value()) << "cut at " << cut << ", key "
                                      << i + 1;
      }
    }
    // The truncated store must stay appendable.
    recovered.put(99, "appended-after-recovery");
    recovered.sync();
    LogStore again(cut_path);
    EXPECT_EQ(*again.get(99), "appended-after-recovery");
  }
  std::remove(cut_path.c_str());
}

}  // namespace
}  // namespace farmer
