// Tests for the DES engine and the two-priority service station.
#include <gtest/gtest.h>

#include <vector>

#include "sim/service_station.hpp"
#include "sim/simulator.hpp"

namespace farmer {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] { order.push_back(2); });
  sim.schedule_at(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_at(10, [&] {
    fired.push_back(sim.now());
    sim.schedule_after(5, [&] { fired.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  SimTime fired = -1;
  sim.schedule_at(10, [&] {
    sim.schedule_at(3, [&] { fired = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (SimTime t = 10; t <= 100; t += 10)
    sim.schedule_at(t, [&] { ++count; });
  sim.run_until(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.pending(), 5u);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.run(), 7u);
  EXPECT_EQ(sim.executed(), 7u);
}

// --------------------------------------------------------- ServiceStation --

TEST(ServiceStation, ServesFifoWithinPriority) {
  Simulator sim;
  ServiceStation st(sim, 1);
  std::vector<int> order;
  sim.schedule_at(0, [&] {
    st.submit(ServiceStation::kDemand, 10, [&] { order.push_back(1); });
    st.submit(ServiceStation::kDemand, 10, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 20);
}

TEST(ServiceStation, DemandPreemptsQueuedPrefetch) {
  Simulator sim;
  ServiceStation st(sim, 1);
  std::vector<std::string> order;
  sim.schedule_at(0, [&] {
    // One prefetch starts immediately (server free), two more queue.
    st.submit(ServiceStation::kPrefetch, 10,
              [&] { order.push_back("p1"); });
    st.submit(ServiceStation::kPrefetch, 10,
              [&] { order.push_back("p2"); });
  });
  sim.schedule_at(5, [&] {
    st.submit(ServiceStation::kDemand, 10, [&] { order.push_back("d"); });
  });
  sim.run();
  // p1 occupies the server (non-preemptive); the demand then jumps the
  // queued prefetch p2.
  EXPECT_EQ(order, (std::vector<std::string>{"p1", "d", "p2"}));
}

TEST(ServiceStation, MultipleServersRunConcurrently) {
  Simulator sim;
  ServiceStation st(sim, 2);
  std::vector<SimTime> done;
  sim.schedule_at(0, [&] {
    st.submit(ServiceStation::kDemand, 10, [&] { done.push_back(sim.now()); });
    st.submit(ServiceStation::kDemand, 10, [&] { done.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 10);
  EXPECT_EQ(done[1], 10);  // in parallel, not 20
}

TEST(ServiceStation, WaitStatsRecorded) {
  Simulator sim;
  ServiceStation st(sim, 1);
  sim.schedule_at(0, [&] {
    st.submit(ServiceStation::kDemand, 10, nullptr);
    st.submit(ServiceStation::kDemand, 10, nullptr);  // waits 10
  });
  sim.run();
  EXPECT_EQ(st.wait_stats(ServiceStation::kDemand).count(), 2u);
  EXPECT_DOUBLE_EQ(st.wait_stats(ServiceStation::kDemand).max(), 10.0);
  EXPECT_EQ(st.completed(), 2u);
}

TEST(ServiceStation, QueueDepthsVisible) {
  Simulator sim;
  ServiceStation st(sim, 1);
  sim.schedule_at(0, [&] {
    st.submit(ServiceStation::kDemand, 100, nullptr);
    st.submit(ServiceStation::kPrefetch, 10, nullptr);
    st.submit(ServiceStation::kPrefetch, 10, nullptr);
    EXPECT_EQ(st.queued(ServiceStation::kPrefetch), 2u);
    EXPECT_EQ(st.busy_servers(), 1u);
  });
  sim.run();
  EXPECT_EQ(st.queued(ServiceStation::kPrefetch), 0u);
}

TEST(ServiceStation, StarvationOfPrefetchUnderDemandLoad) {
  // Continuous demand keeps the single server busy; the prefetch only runs
  // once demand drains.
  Simulator sim;
  ServiceStation st(sim, 1);
  SimTime prefetch_done = -1;
  sim.schedule_at(0, [&] {
    st.submit(ServiceStation::kPrefetch, 5,
              [&] { prefetch_done = sim.now(); });
  });
  // The first demand arrives at t=0 too and the server picks... demand
  // queue is checked first at dispatch, but the prefetch was submitted
  // first and dispatched immediately. Subsequent demands queue behind it.
  for (SimTime t = 0; t < 50; t += 5)
    sim.schedule_at(t, [&] {
      st.submit(ServiceStation::kDemand, 5, nullptr);
    });
  sim.run();
  EXPECT_GE(prefetch_done, 5);
}

}  // namespace
}  // namespace farmer
