// Unit tests for the VSM module, anchored on the paper's worked examples
// (Table 1 and Table 2): the DPA and IPA similarity values must reproduce
// the published numbers exactly.
#include <gtest/gtest.h>

#include "common/interner.hpp"
#include "vsm/attribute.hpp"
#include "vsm/semantic_vector.hpp"
#include "vsm/similarity.hpp"

namespace farmer {
namespace {

/// Builds the three example files of the paper's Table 1:
///   A: user1, p1, host1, /home/user1/paper/a
///   B: user1, p2, host1, /home/user1/paper/b
///   C: user2, p3, host2, /home/user2/c
struct PaperExample {
  Interner interner;
  SemanticVector a, b, c;

  PaperExample() {
    a.user = interner.intern("user1");
    a.process = interner.intern("p1");
    a.host = interner.intern("host1");
    intern_path_components("/home/user1/paper/a", interner, a.path_components);

    b.user = interner.intern("user1");
    b.process = interner.intern("p2");
    b.host = interner.intern("host1");
    intern_path_components("/home/user1/paper/b", interner, b.path_components);

    c.user = interner.intern("user2");
    c.process = interner.intern("p3");
    c.host = interner.intern("host2");
    intern_path_components("/home/user2/c", interner, c.path_components);
  }
};

constexpr AttributeMask kAllPath = AttributeMask::all_with_path();

// --------------------------------------------------- paper Table 2: DPA --

TEST(PaperTable2, DpaSimAB) {
  PaperExample ex;
  // Items of A: {user1, p1, host1, home, user1, paper, a} -> 7 items.
  // A ∩ B = {user1(attr), host1, home, user1(path), paper} = 5.
  EXPECT_DOUBLE_EQ(similarity(ex.a, ex.b, kAllPath, PathMode::kDivided),
                   5.0 / 7.0);
}

TEST(PaperTable2, DpaSimAC) {
  PaperExample ex;
  EXPECT_DOUBLE_EQ(similarity(ex.a, ex.c, kAllPath, PathMode::kDivided),
                   1.0 / 7.0);
}

TEST(PaperTable2, DpaSimBC) {
  PaperExample ex;
  EXPECT_DOUBLE_EQ(similarity(ex.b, ex.c, kAllPath, PathMode::kDivided),
                   1.0 / 7.0);
}

// --------------------------------------------------- paper Table 2: IPA --

TEST(PaperTable2, IpaSimAB) {
  PaperExample ex;
  // user matches (1) + host matches (1) + dir similarity 3/4 = 2.75 over
  // max item count 4.
  EXPECT_DOUBLE_EQ(similarity(ex.a, ex.b, kAllPath, PathMode::kIntegrated),
                   2.75 / 4.0);
}

TEST(PaperTable2, IpaSimAC) {
  PaperExample ex;
  // No scalar matches; dir similarity = |{home}| / max(4,3) = 0.25.
  EXPECT_DOUBLE_EQ(similarity(ex.a, ex.c, kAllPath, PathMode::kIntegrated),
                   0.25 / 4.0);
}

TEST(PaperTable2, IpaSimBC) {
  PaperExample ex;
  EXPECT_DOUBLE_EQ(similarity(ex.b, ex.c, kAllPath, PathMode::kIntegrated),
                   0.25 / 4.0);
}

// -------------------------------------------------- similarity mechanics --

TEST(Similarity, IdenticalVectorsGiveOne) {
  PaperExample ex;
  EXPECT_DOUBLE_EQ(similarity(ex.a, ex.a, kAllPath, PathMode::kDivided), 1.0);
  EXPECT_DOUBLE_EQ(similarity(ex.a, ex.a, kAllPath, PathMode::kIntegrated),
                   1.0);
}

TEST(Similarity, SymmetricInArguments) {
  PaperExample ex;
  for (const auto mode : {PathMode::kDivided, PathMode::kIntegrated}) {
    EXPECT_DOUBLE_EQ(similarity(ex.a, ex.b, kAllPath, mode),
                     similarity(ex.b, ex.a, kAllPath, mode));
    EXPECT_DOUBLE_EQ(similarity(ex.a, ex.c, kAllPath, mode),
                     similarity(ex.c, ex.a, kAllPath, mode));
  }
}

TEST(Similarity, BoundedInUnitInterval) {
  PaperExample ex;
  for (const auto mode : {PathMode::kDivided, PathMode::kIntegrated}) {
    const double s = similarity(ex.a, ex.b, kAllPath, mode);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Similarity, EmptyMaskGivesZero) {
  PaperExample ex;
  EXPECT_DOUBLE_EQ(
      similarity(ex.a, ex.b, AttributeMask{}, PathMode::kIntegrated), 0.0);
}

TEST(Similarity, SubsetMaskCountsOnlySelected) {
  PaperExample ex;
  // Only User: both are user1 -> 1/1.
  EXPECT_DOUBLE_EQ(similarity(ex.a, ex.b, AttributeMask{Attribute::kUser},
                              PathMode::kIntegrated),
                   1.0);
  // Only Process: p1 vs p2 -> 0.
  EXPECT_DOUBLE_EQ(similarity(ex.a, ex.b, AttributeMask{Attribute::kProcess},
                              PathMode::kIntegrated),
                   0.0);
}

TEST(Similarity, DeepPathDrownsAttributesUnderDpaOnly) {
  // The paper's argument for IPA: under DPA a deep directory dominates the
  // scalar attributes; under IPA the path is one item out of four.
  Interner in;
  SemanticVector x, y;
  x.user = in.intern("u");
  x.process = in.intern("p");
  x.host = in.intern("h");
  intern_path_components("/a/b/c/d/e/f/g/x.bin", in, x.path_components);
  y.user = in.intern("u");
  y.process = in.intern("p");
  y.host = in.intern("h");
  intern_path_components("/lib/y.so", in, y.path_components);

  const double dpa = similarity(x, y, kAllPath, PathMode::kDivided);
  const double ipa = similarity(x, y, kAllPath, PathMode::kIntegrated);
  // All three scalar attributes match, yet DPA is dragged to 3/11 while
  // IPA keeps 3/4.
  EXPECT_DOUBLE_EQ(dpa, 3.0 / 11.0);
  EXPECT_DOUBLE_EQ(ipa, 3.0 / 4.0);
  EXPECT_GT(ipa, dpa);
}

TEST(Similarity, FileIdAttributeSharedDevice) {
  Interner in;
  SemanticVector x, y;
  x.user = in.intern("u1");
  x.dev = in.intern("dev3");
  x.fid = in.intern("fid1");
  y.user = in.intern("u1");
  y.dev = in.intern("dev3");
  y.fid = in.intern("fid2");
  const AttributeMask mask{Attribute::kUser, Attribute::kFileId};
  // Items: {u1, dev3, fidX}; matches = u1 + dev3 = 2 of 3.
  EXPECT_DOUBLE_EQ(similarity(x, y, mask, PathMode::kIntegrated), 2.0 / 3.0);
}

TEST(Similarity, MissingTokensShrinkVector) {
  Interner in;
  SemanticVector x, y;
  x.user = in.intern("u1");
  y.user = in.intern("u1");
  y.host = in.intern("h1");
  const AttributeMask mask{Attribute::kUser, Attribute::kHost};
  // |x| = 1, |y| = 2 -> intersection 1 / max 2.
  EXPECT_DOUBLE_EQ(similarity(x, y, mask, PathMode::kIntegrated), 0.5);
}

TEST(Similarity, BothEmptyVectorsGiveZero) {
  SemanticVector x, y;
  EXPECT_DOUBLE_EQ(similarity(x, y, kAllPath, PathMode::kIntegrated), 0.0);
}

// -------------------------------------------------- multiset primitives --

TEST(MultisetIntersection, CountsMinMultiplicity) {
  Interner in;
  const TokenId a = in.intern("a"), b = in.intern("b"), c = in.intern("c");
  SmallVector<TokenId, 8> x{a, a, b};
  SmallVector<TokenId, 8> y{a, b, b, c};
  std::sort(x.begin(), x.end());
  std::sort(y.begin(), y.end());
  // min(2,1) for a + min(1,2) for b = 2.
  EXPECT_EQ(multiset_intersection(x.data(), x.size(), y.data(), y.size()), 2u);
}

TEST(MultisetIntersection, DisjointIsZero) {
  Interner in;
  SmallVector<TokenId, 8> x{in.intern("a")};
  SmallVector<TokenId, 8> y{in.intern("b")};
  EXPECT_EQ(multiset_intersection(x.data(), x.size(), y.data(), y.size()), 0u);
}

TEST(PathSimilarity, PaperValues) {
  Interner in;
  SmallVector<TokenId, 8> a, b, c;
  intern_path_components("/home/user1/paper/a", in, a);
  intern_path_components("/home/user1/paper/b", in, b);
  intern_path_components("/home/user2/c", in, c);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::sort(c.begin(), c.end());
  EXPECT_DOUBLE_EQ(path_similarity(a, b), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(path_similarity(a, c), 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(path_similarity(b, c), 1.0 / 4.0);
}

TEST(PathComponents, ParsingNormalises) {
  Interner in;
  SmallVector<TokenId, 8> out;
  intern_path_components("//home///user1/paper/", in, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(in.resolve(out[0]), "home");
  EXPECT_EQ(in.resolve(out[1]), "user1");
  EXPECT_EQ(in.resolve(out[2]), "paper");
}

TEST(PathComponents, EmptyPath) {
  Interner in;
  SmallVector<TokenId, 8> out;
  intern_path_components("", in, out);
  EXPECT_TRUE(out.empty());
  intern_path_components("/", in, out);
  EXPECT_TRUE(out.empty());
}

// ------------------------------------------------------------ signature --

TEST(Signature, DpaExpandsPathIntoItems) {
  PaperExample ex;
  const Signature s = build_signature(ex.a, kAllPath, PathMode::kDivided);
  EXPECT_EQ(s.items.size(), 7u);
  EXPECT_FALSE(s.ipa_path);
  EXPECT_EQ(s.item_count(), 7u);
}

TEST(Signature, IpaKeepsPathAsOneItem) {
  PaperExample ex;
  const Signature s = build_signature(ex.a, kAllPath, PathMode::kIntegrated);
  EXPECT_EQ(s.items.size(), 3u);  // user, process, host
  EXPECT_TRUE(s.ipa_path);
  EXPECT_EQ(s.item_count(), 4u);
  EXPECT_EQ(s.path_sorted.size(), 4u);
}

TEST(Signature, ItemsAreSorted) {
  PaperExample ex;
  const Signature s = build_signature(ex.a, kAllPath, PathMode::kDivided);
  EXPECT_TRUE(std::is_sorted(s.items.begin(), s.items.end()));
}

// ----------------------------------------------------------- attributes --

TEST(AttributeMask, BasicOps) {
  AttributeMask m{Attribute::kUser};
  EXPECT_TRUE(m.has(Attribute::kUser));
  EXPECT_FALSE(m.has(Attribute::kHost));
  m |= Attribute::kHost;
  EXPECT_TRUE(m.has(Attribute::kHost));
  EXPECT_FALSE(m.empty());
  EXPECT_TRUE(AttributeMask{}.empty());
}

TEST(AttributeCombinations, FifteenRowsMatchingPaperOrder) {
  const auto hp = paper_attribute_combinations(/*use_path=*/true);
  ASSERT_EQ(hp.size(), 15u);
  EXPECT_EQ(hp.front().label, "{User}");
  EXPECT_EQ(hp.back().label, "{Host, User, Process, File Path}");
  const auto ins = paper_attribute_combinations(/*use_path=*/false);
  ASSERT_EQ(ins.size(), 15u);
  EXPECT_EQ(ins[3].label, "{File ID}");
  // Every mask distinct.
  for (std::size_t i = 0; i < hp.size(); ++i)
    for (std::size_t j = i + 1; j < hp.size(); ++j)
      EXPECT_FALSE(hp[i].mask == hp[j].mask) << i << "," << j;
}

TEST(AttributeMask, ToString) {
  EXPECT_EQ(mask_to_string(AttributeMask{Attribute::kUser, Attribute::kPath}),
            "{User, File Path}");
  EXPECT_EQ(mask_to_string(AttributeMask{}), "{}");
}

}  // namespace
}  // namespace farmer
