// Unit tests for src/common: ids, RNG, Zipf, interner, stats, SmallVector,
// parallel helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/interner.hpp"
#include "common/mpsc_queue.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/small_vector.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/zipf.hpp"

namespace farmer {
namespace {

// ------------------------------------------------------------- TaggedId --

TEST(TaggedId, DefaultIsInvalid) {
  FileId f;
  EXPECT_FALSE(f.valid());
  EXPECT_EQ(f, FileId());
}

TEST(TaggedId, ValueRoundTrip) {
  FileId f(42);
  EXPECT_TRUE(f.valid());
  EXPECT_EQ(f.value(), 42u);
}

TEST(TaggedId, Ordering) {
  EXPECT_LT(FileId(1), FileId(2));
  EXPECT_LE(FileId(2), FileId(2));
  EXPECT_GT(FileId(3), FileId(2));
  EXPECT_NE(FileId(1), FileId(2));
}

TEST(TaggedId, DistinctTagTypesDoNotMix) {
  // Compile-time property: FileId and UserId are different types.
  static_assert(!std::is_same_v<FileId, UserId>);
}

TEST(TaggedId, HashSpreadsDenseIds) {
  std::set<std::size_t> buckets;
  std::hash<FileId> h;
  for (std::uint32_t i = 0; i < 64; ++i)
    buckets.insert(h(FileId(i)) % 1024);
  // Dense ids should not collapse into few buckets.
  EXPECT_GT(buckets.size(), 48u);
}

TEST(SimTimeConversion, ToMs) {
  EXPECT_DOUBLE_EQ(to_ms(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_ms(kSecond), 1000.0);
}

// ------------------------------------------------------------------ Rng --

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, ExponentialMeanApprox) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.next_normal(10.0, 2.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(42);
  Rng child = parent.split();
  // Child continues deterministically and differs from the parent stream.
  Rng parent2(42);
  Rng child2 = parent2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
}

TEST(Rng, BernoulliProbability) {
  Rng rng(21);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

// ----------------------------------------------------------------- Zipf --

TEST(ZipfTable, PmfDecreasesWithRank) {
  ZipfTable z(100, 1.0);
  for (std::size_t r = 1; r < 100; ++r) EXPECT_LE(z.pmf(r), z.pmf(r - 1));
}

TEST(ZipfTable, PmfSumsToOne) {
  ZipfTable z(50, 0.8);
  double sum = 0;
  for (std::size_t r = 0; r < 50; ++r) sum += z.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTable, SamplesMatchPmfHead) {
  ZipfTable z(20, 1.0);
  Rng rng(3);
  std::vector<int> counts(20, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, z.pmf(0), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, z.pmf(1), 0.01);
}

TEST(ZipfTable, SingleElement) {
  ZipfTable z(1, 1.2);
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(ZipfRejection, MatchesTableDistribution) {
  const double s = 1.1;
  const std::size_t n = 200;
  ZipfTable table(n, s);
  ZipfRejection rej(n, s);
  Rng rng(17);
  std::vector<int> counts(n, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rej.sample(rng)];
  // Head ranks must match the exact pmf closely.
  for (std::size_t r = 0; r < 5; ++r)
    EXPECT_NEAR(static_cast<double>(counts[r]) / draws, table.pmf(r), 0.01)
        << "rank " << r;
}

TEST(ZipfRejection, HandlesSNearOne) {
  ZipfRejection rej(50, 1.0);
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rej.sample(rng), 50u);
}

// ------------------------------------------------------------- Interner --

TEST(Interner, InternReturnsStableIds) {
  Interner in;
  const TokenId a = in.intern("hello");
  const TokenId b = in.intern("world");
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern("hello"), a);
  EXPECT_EQ(in.size(), 2u);
}

TEST(Interner, ResolveRoundTrip) {
  Interner in;
  const TokenId a = in.intern("user1");
  EXPECT_EQ(in.resolve(a), "user1");
}

TEST(Interner, LookupMissingIsInvalid) {
  Interner in;
  EXPECT_FALSE(in.lookup("nope").valid());
  (void)in.intern("yes");
  EXPECT_TRUE(in.lookup("yes").valid());
}

TEST(Interner, FootprintGrows) {
  Interner in;
  const auto before = in.footprint_bytes();
  for (int i = 0; i < 100; ++i) (void)in.intern("token" + std::to_string(i));
  EXPECT_GT(in.footprint_bytes(), before);
}

TEST(SharedInterner, ConcurrentInternConsistent) {
  SharedInterner in;
  constexpr int kThreads = 4;
  constexpr int kStrings = 200;
  std::vector<std::vector<TokenId>> ids(kThreads,
                                        std::vector<TokenId>(kStrings));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kStrings; ++i)
        ids[t][i] = in.intern("shared" + std::to_string(i));
    });
  }
  for (auto& th : threads) th.join();
  // All threads must agree on every string's id.
  for (int t = 1; t < kThreads; ++t)
    for (int i = 0; i < kStrings; ++i) EXPECT_EQ(ids[t][i], ids[0][i]);
  EXPECT_EQ(in.size(), static_cast<std::size_t>(kStrings));
  for (int i = 0; i < kStrings; ++i)
    EXPECT_EQ(in.resolve(ids[0][i]), "shared" + std::to_string(i));
}

// ---------------------------------------------------------------- Stats --

TEST(RunningStats, MeanVarianceAgainstNaive) {
  RunningStats st;
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 100};
  double sum = 0;
  for (double x : xs) {
    st.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double ss = 0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(st.mean(), mean, 1e-9);
  EXPECT_NEAR(st.variance(), ss / (static_cast<double>(xs.size()) - 1), 1e-9);
  EXPECT_EQ(st.min(), 1);
  EXPECT_EQ(st.max(), 100);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a, b, all;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_normal(5, 3);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_EQ(st.mean(), 0.0);
  EXPECT_EQ(st.variance(), 0.0);
}

TEST(LatencyHistogram, QuantilesBracketValues) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  // <=6.25% relative bucket error allowed.
  EXPECT_NEAR(static_cast<double>(h.p50()), 500.0, 500.0 * 0.07);
  EXPECT_NEAR(static_cast<double>(h.p99()), 990.0, 990.0 * 0.07);
  EXPECT_GE(h.max_value(), 1000u);
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  a.record(10);
  b.record(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_GE(a.max_value(), 1000000u);
}

TEST(LatencyHistogram, SmallValuesExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 0u);
}

TEST(RatioCounter, Basics) {
  RatioCounter r;
  r.hit();
  r.miss();
  r.miss();
  EXPECT_EQ(r.numerator(), 1u);
  EXPECT_EQ(r.denominator(), 3u);
  EXPECT_NEAR(r.ratio(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.percent(), 100.0 / 3.0, 1e-9);
}

TEST(RatioCounter, EmptySafe) {
  RatioCounter r;
  EXPECT_EQ(r.ratio(), 0.0);
}

TEST(Format, Doubles) { EXPECT_EQ(fmt_double(3.14159, 2), "3.14"); }

TEST(Format, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512.0 B");
  EXPECT_EQ(fmt_bytes(1536), "1.5 KB");
  EXPECT_EQ(fmt_bytes(103180288), "98.4 MB");
}

// ---------------------------------------------------------- SmallVector --

TEST(SmallVector, StartsInline) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.heap_bytes(), 0u);
  v.push_back(1);
  v.push_back(2);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVector, SpillsToHeap) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  EXPECT_GT(v.heap_bytes(), 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, CopyPreservesContents) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 6; ++i) v.push_back(i);
  SmallVector<int, 2> w(v);
  EXPECT_EQ(v, w);
  w.push_back(99);
  EXPECT_NE(v, w);
}

TEST(SmallVector, MoveStealsHeap) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 6; ++i) v.push_back(i);
  const int* data = v.data();
  SmallVector<int, 2> w(std::move(v));
  EXPECT_EQ(w.data(), data);  // heap buffer moved, not copied
  EXPECT_EQ(w.size(), 6u);
  EXPECT_EQ(v.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVector, EraseAtShiftsTail) {
  SmallVector<int, 8> v{1, 2, 3, 4};
  v.erase_at(1);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 3);
  EXPECT_EQ(v[2], 4);
}

TEST(SmallVector, ResizeFills) {
  SmallVector<int, 4> v;
  v.resize(3, 7);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 7);
  v.resize(1);
  EXPECT_EQ(v.size(), 1u);
}

TEST(SmallVector, AssignmentSelfAndCross) {
  SmallVector<int, 2> v{1, 2, 3};
  SmallVector<int, 2> w;
  w = v;
  EXPECT_EQ(w, v);
  w = std::move(v);
  EXPECT_EQ(w.size(), 3u);
}

// ------------------------------------------------------------- Parallel --

TEST(Parallel, ForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, MapProducesOrderedResults) {
  const auto out =
      parallel_map<std::size_t>(100, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, ZeroIterationsIsNoop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(Parallel, ZeroIterationsEarlyReturnsBeforeWorkerSetup) {
  // n == 0 must take the explicit early return, never the std::thread
  // fallback's workers == 0 partitioning (which only no-opped by accident
  // of the `workers <= 1` serial branch).
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  const auto mapped =
      parallel_map<int>(0, [](std::size_t) { return 7; });
  EXPECT_TRUE(mapped.empty());
}

TEST(Parallel, HardwareParallelismIsPositive) {
  EXPECT_GE(hardware_parallelism(), 1u);
}

// WorkerPool: the persistent-thread executor behind the shard-disjoint
// parallel apply. These run in the TSan CI tier via the Parallel.* filter,
// racing the generation handshake and the work-stealing index.
TEST(Parallel, WorkerPoolCoversAllIndicesExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, WorkerPoolIsReusableAcrossManyDispatches) {
  // Many small jobs through one pool: each run() is a fresh generation, so
  // a stale helper that double-claimed or missed a job would corrupt the
  // per-round sums with high probability.
  WorkerPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> sum{0};
    pool.run(7, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i) + 1);
    });
    ASSERT_EQ(sum.load(), 28) << "round " << round;
  }
}

TEST(Parallel, WorkerPoolZeroAndSingleItemShortCircuit) {
  WorkerPool pool(2);
  int calls = 0;
  pool.run(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller: no handshake, body sees index 0.
  pool.run(1, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, WorkerPoolSingleThreadDegradesToSerialLoop) {
  // threads == 1 spawns no helpers; run() must still execute every index,
  // in order, on the caller.
  WorkerPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.run(5, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Parallel, WorkerPoolMoreItemsThanThreads) {
  WorkerPool pool(2);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ------------------------------------------------------------ MpscQueue --

TEST(MpscQueue, FifoForSingleProducer) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 100; ++i) q.push(i);
  EXPECT_FALSE(q.empty());
  int v = -1;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.pop(v));
  EXPECT_TRUE(q.empty());
}

TEST(MpscQueue, MoveOnlyPayloads) {
  MpscQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(42));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(MpscQueue, DestructionReleasesUnpoppedNodes) {
  // Covered by LeakSanitizer/valgrind runs; structurally: destructor walks
  // and frees whatever was never popped.
  MpscQueue<std::unique_ptr<int>> q;
  for (int i = 0; i < 16; ++i) q.push(std::make_unique<int>(i));
}

TEST(MpscQueue, ConcurrentProducersLoseNothingAndKeepPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  MpscQueue<std::pair<int, int>> q;  // (producer, seq)
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int s = 0; s < kPerProducer; ++s) q.push({p, s});
    });
  }
  // Consume concurrently with the producers (the interesting interleaving).
  std::vector<int> next_seq(kProducers, 0);
  int received = 0;
  std::pair<int, int> v;
  while (received < kProducers * kPerProducer) {
    if (q.pop(v)) {
      ASSERT_EQ(v.second, next_seq[v.first])
          << "producer " << v.first << " reordered";
      ++next_seq[v.first];
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(q.pop(v));
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kPerProducer);
}

// ----------------------------------------------------------------- Hash --

TEST(Hash, PairHashDiffersOnSwappedPair) {
  PairHash h;
  const auto a = h(std::make_pair(1u, 2u));
  const auto b = h(std::make_pair(2u, 1u));
  EXPECT_NE(a, b);
}

TEST(Hash, Mix64Bijective) {
  // mix64 must not collide on a small dense range (it is invertible).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace farmer
