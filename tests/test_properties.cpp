// Property-based suites: invariants that must hold across the whole
// configuration space, swept with parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include "analysis/experiment.hpp"
#include "api/miner_factory.hpp"
#include "common/rng.hpp"
#include "core/concurrent_farmer.hpp"
#include "prefetch/fpa.hpp"
#include "prefetch/nexus.hpp"
#include "prefetch/replay.hpp"
#include "test_helpers.hpp"
#include "trace/generator.hpp"
#include "vsm/similarity.hpp"

namespace farmer {
namespace {

const Trace& small_hp() {
  static const Trace t = make_paper_trace(TraceKind::kHP, 99, 0.05);
  return t;
}

// ------------------------------------------- FARMER config-space sweep ---

class FarmerConfigSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FarmerConfigSweep, CorrelatorInvariantsHold) {
  const auto [p, max_strength] = GetParam();
  FarmerConfig cfg;
  cfg.p = p;
  cfg.max_strength = max_strength;
  const Trace& t = small_hp();
  Farmer model(cfg, t.dict);
  for (const auto& rec : t.records) model.observe(rec);

  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    const auto& list = model.correlators(FileId(f));
    ASSERT_LE(list.size(), cfg.correlator_capacity);
    for (std::size_t i = 0; i < list.size(); ++i) {
      // Every entry passed the validity threshold at its last evaluation.
      EXPECT_GE(list[i].degree, static_cast<float>(max_strength) - 1e-4f)
          << "file " << f;
      EXPECT_NE(list[i].file, FileId(f));  // no self-correlation
      if (i > 0) {  // sorted descending
        EXPECT_GE(list[i - 1].degree, list[i].degree);
      }
    }
  }
  EXPECT_GT(model.footprint_bytes(), 0u);
}

TEST_P(FarmerConfigSweep, DegreesBounded) {
  const auto [p, max_strength] = GetParam();
  FarmerConfig cfg;
  cfg.p = p;
  cfg.max_strength = max_strength;
  const Trace& t = small_hp();
  Farmer model(cfg, t.dict);
  for (const auto& rec : t.records) model.observe(rec);
  // R = p*sim + (1-p)*F with sim <= 1 and F <= ~window; check a generous
  // upper bound and non-negativity over sampled pairs.
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const FileId a(
        static_cast<std::uint32_t>(rng.next_below(t.file_count())));
    const FileId b(
        static_cast<std::uint32_t>(rng.next_below(t.file_count())));
    const double r = model.correlation_degree(a, b);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, p + (1.0 - p) * 2.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FarmerConfigSweep,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.7, 1.0),
                       ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8)),
    [](const auto& info) {
      return "p" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
             "_s" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

// ----------------------------------------------- replay invariant sweep --

class ReplaySweep
    : public ::testing::TestWithParam<std::tuple<CachePolicy, std::size_t>> {
};

TEST_P(ReplaySweep, AccountingIdentitiesHold) {
  const auto [policy, degree] = GetParam();
  const Trace& t = small_hp();
  ReplayConfig rc;
  rc.cache_capacity = 64;
  rc.policy = policy;
  rc.prefetch_degree = degree;
  FpaPredictor fpa(FarmerConfig{}, t.dict);
  const auto r = replay_trace(t, fpa, rc);

  // Demand accounting: every record is exactly one demand access.
  EXPECT_EQ(r.cache.demand.denominator(), t.records.size());
  EXPECT_LE(r.cache.demand.numerator(), r.cache.demand.denominator());
  // Prefetch accounting: used + evicted-unused <= inserted (some may still
  // be resident and unused at the end).
  EXPECT_LE(r.cache.prefetch_used + r.cache.prefetch_evicted_unused,
            r.cache.prefetch_inserted);
  EXPECT_GE(r.hit_ratio(), 0.0);
  EXPECT_LE(r.hit_ratio(), 1.0);
  EXPECT_GE(r.prefetch_accuracy(), 0.0);
  EXPECT_LE(r.prefetch_accuracy(), 1.0);
  if (degree == 0) {
    EXPECT_EQ(r.cache.prefetch_inserted, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReplaySweep,
    ::testing::Combine(::testing::Values(CachePolicy::kLRU, CachePolicy::kLFU,
                                         CachePolicy::kCLOCK,
                                         CachePolicy::kARC),
                       ::testing::Values(0u, 1u, 4u, 8u)),
    [](const auto& info) {
      return std::string(cache_policy_name(std::get<0>(info.param))) + "_d" +
             std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------- similarity algebra --

class SimilarityProperty : public ::testing::TestWithParam<PathMode> {};

TEST_P(SimilarityProperty, SymmetricBoundedReflexive) {
  const PathMode mode = GetParam();
  Interner in;
  Rng rng(11);
  const AttributeMask mask = AttributeMask::all_with_path();
  auto random_sv = [&] {
    SemanticVector sv;
    sv.user = in.intern("u" + std::to_string(rng.next_below(5)));
    sv.process = in.intern("p" + std::to_string(rng.next_below(50)));
    sv.host = in.intern("h" + std::to_string(rng.next_below(4)));
    std::string path;
    const auto depth = 1 + rng.next_below(5);
    for (std::uint64_t d = 0; d < depth; ++d)
      path += "/d" + std::to_string(rng.next_below(6));
    intern_path_components(path, in, sv.path_components);
    return sv;
  };
  for (int i = 0; i < 200; ++i) {
    const SemanticVector a = random_sv();
    const SemanticVector b = random_sv();
    const double ab = similarity(a, b, mask, mode);
    const double ba = similarity(b, a, mask, mode);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(similarity(a, a, mask, mode), 1.0);
  }
}

TEST_P(SimilarityProperty, MonotoneInSharedAttributes) {
  // Adding one more matching attribute never decreases similarity when the
  // vector sizes stay equal.
  const PathMode mode = GetParam();
  Interner in;
  SemanticVector a, b;
  a.user = in.intern("u");
  b.user = in.intern("u");
  a.process = in.intern("p1");
  b.process = in.intern("p2");
  a.host = in.intern("h1");
  b.host = in.intern("h2");
  const double base = similarity(a, b, AttributeMask::all_with_path(), mode);
  b.process = a.process;  // now two of three match
  const double more = similarity(a, b, AttributeMask::all_with_path(), mode);
  EXPECT_GT(more, base);
}

INSTANTIATE_TEST_SUITE_P(Modes, SimilarityProperty,
                         ::testing::Values(PathMode::kDivided,
                                           PathMode::kIntegrated),
                         [](const auto& info) {
                           return info.param == PathMode::kDivided ? "DPA"
                                                                   : "IPA";
                         });

// ------------------------------------------------------ generator sweep --

class GeneratorSweep : public ::testing::TestWithParam<TraceKind> {};

TEST_P(GeneratorSweep, StructuralInvariants) {
  const Trace t = make_paper_trace(GetParam(), 5, 0.04);
  ASSERT_GT(t.event_count(), 0u);
  ASSERT_GT(t.file_count(), 0u);
  SimTime prev = 0;
  for (const auto& r : t.records) {
    EXPECT_GE(r.timestamp, prev);
    prev = r.timestamp;
    ASSERT_LT(r.file.value(), t.file_count());
    EXPECT_TRUE(r.user_token.valid());
    EXPECT_TRUE(r.fid_token.valid());
    EXPECT_EQ(r.path.valid(), t.has_paths);
  }
}

TEST_P(GeneratorSweep, SeedStability) {
  const Trace a = make_paper_trace(GetParam(), 77, 0.03);
  const Trace b = make_paper_trace(GetParam(), 77, 0.03);
  ASSERT_EQ(a.event_count(), b.event_count());
  for (std::size_t i = 0; i < a.records.size(); i += 97)
    EXPECT_EQ(a.records[i].file, b.records[i].file) << i;
}

TEST_P(GeneratorSweep, MinableStructureExists) {
  // Every profile must contain recurrence FARMER can exploit: mining the
  // trace yields a non-trivial number of valid correlations.
  const Trace t = make_paper_trace(GetParam(), 5, 0.06);
  Farmer model(FarmerConfig{}, t.dict);
  for (const auto& rec : t.records) model.observe(rec);
  std::size_t entries = 0;
  for (std::uint32_t f = 0; f < t.file_count(); ++f)
    entries += model.correlators(FileId(f)).size();
  EXPECT_GT(entries, t.file_count() / 20);
}

INSTANTIATE_TEST_SUITE_P(AllTraces, GeneratorSweep,
                         ::testing::Values(TraceKind::kLLNL, TraceKind::kINS,
                                           TraceKind::kRES, TraceKind::kHP),
                         [](const auto& info) {
                           return std::string(trace_kind_name(info.param));
                         });

// ------------------------------------- concurrent ingest stress/property --

// Readers hammer epoch snapshots while producers ingest: every snapshot
// must be internally consistent — sorted by descending degree, above the
// validity threshold, self-free, capacity-capped (a torn degree or a
// mid-merge read would violate one of these with high probability) — and
// the epoch stamps each reader observes must be monotone non-decreasing.
// This is the test the ThreadSanitizer CI job runs race detection on.
TEST(ConcurrentMinerStress, SnapshotsConsistentWhileProducersIngest) {
  const Trace& t = small_hp();
  const FarmerConfig cfg;
  constexpr std::size_t kProducers = 4;
  ConcurrentFarmer miner(cfg, t.dict, /*shards=*/4,
                         /*ingest_queues=*/kProducers);

  const auto parts = testing::partition_by_process(t.records, kProducers);

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int rdr = 0; rdr < 2; ++rdr) {
    readers.emplace_back([&, rdr] {
      Rng rng(static_cast<std::uint64_t>(100 + rdr));
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const FileId f(
            static_cast<std::uint32_t>(rng.next_below(t.file_count())));
        const EpochSnapshot snap = miner.epoch_snapshot(f);
        EXPECT_GE(snap.epoch, last_epoch) << "epoch went backwards";
        last_epoch = snap.epoch;
        ASSERT_LE(snap.view.size(), cfg.correlator_capacity);
        for (std::size_t i = 0; i < snap.view.size(); ++i) {
          EXPECT_NE(snap.view[i].file, f) << "self-correlation";
          EXPECT_GE(snap.view[i].degree,
                    static_cast<float>(cfg.max_strength) - 1e-4f)
              << "torn/filtered degree surfaced";
          if (i > 0) {
            EXPECT_GE(snap.view[i - 1].degree, snap.view[i].degree)
                << "snapshot not sorted";
          }
        }
      }
    });
  }

  // Blocks until every producer thread has pushed its partition; the
  // readers above keep hammering snapshots the whole time.
  testing::replay_partitioned(miner, parts, /*chunk=*/32);
  miner.flush();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  const MinerStats s = miner.stats();
  EXPECT_EQ(s.requests, t.records.size());
  EXPECT_EQ(s.pending, 0u);
  EXPECT_GE(miner.epoch(), 1u);
  EXPECT_EQ(s.epoch, miner.epoch());
}

// The Correlator-List cache sits on the reader path, so it must uphold the
// same invariants under concurrent ingest: hits and misses alike may only
// surface sorted, capped, self-free, threshold-passing lists, and epochs
// stay monotone per reader. This variant runs under the ThreadSanitizer CI
// tier (ConcurrentMinerStress.* filter), racing the cache's stripe locks
// and lazy invalidation against the drain's RCU publishes.
TEST(ConcurrentMinerStress, CachedSnapshotsConsistentWhileProducersIngest) {
  const Trace& t = small_hp();
  const FarmerConfig cfg;
  constexpr std::size_t kProducers = 4;
  ConcurrentFarmer miner(cfg, t.dict, /*shards=*/4,
                         /*ingest_queues=*/kProducers,
                         ConcurrentFarmer::kDefaultMaxPending,
                         /*query_cache_capacity=*/128);

  const auto parts = testing::partition_by_process(t.records, kProducers);

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int rdr = 0; rdr < 2; ++rdr) {
    readers.emplace_back([&, rdr] {
      Rng rng(static_cast<std::uint64_t>(400 + rdr));
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        // Small id range: readers collide on hot entries, exercising
        // hit/invalidate/refill races rather than a cold-miss parade.
        const FileId f(static_cast<std::uint32_t>(
            rng.next_below(std::min<std::uint64_t>(t.file_count(), 64))));
        const EpochSnapshot snap = miner.epoch_snapshot(f);
        EXPECT_GE(snap.epoch, last_epoch) << "epoch went backwards";
        last_epoch = snap.epoch;
        ASSERT_LE(snap.view.size(), cfg.correlator_capacity);
        for (std::size_t i = 0; i < snap.view.size(); ++i) {
          EXPECT_NE(snap.view[i].file, f) << "self-correlation";
          EXPECT_GE(snap.view[i].degree,
                    static_cast<float>(cfg.max_strength) - 1e-4f)
              << "torn/filtered degree surfaced";
          if (i > 0) {
            EXPECT_GE(snap.view[i - 1].degree, snap.view[i].degree)
                << "snapshot not sorted";
          }
        }
      }
    });
  }

  testing::replay_partitioned(miner, parts, /*chunk=*/32);
  miner.flush();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  const MinerStats s = miner.stats();
  EXPECT_EQ(s.requests, t.records.size());
  EXPECT_EQ(s.pending, 0u);
  // The readers really went through the cache.
  EXPECT_GT(s.cache_hits + s.cache_misses, 0u);
  // After the final flush, a cached answer must equal a fresh merge.
  for (std::uint32_t f = 0; f < std::min<std::uint32_t>(t.file_count(), 64);
       ++f) {
    const auto warm = miner.correlators(FileId(f));
    const auto again = miner.correlators(FileId(f));
    ASSERT_EQ(warm.size(), again.size()) << "file " << f;
    for (std::size_t i = 0; i < warm.size(); ++i) {
      EXPECT_EQ(warm[i].file, again[i].file);
      EXPECT_EQ(warm[i].degree, again[i].degree);
    }
  }
}

// Publish coalescing under racing producers and readers: with a short
// record interval and a tight staleness deadline the drain keeps switching
// between coalesced and deadline-forced publishes while readers validate
// every snapshot invariant. COW sharing means each published table
// structurally shares per-file blocks with its predecessors — a torn or
// in-place-mutated shared block would surface here (and under the TSan CI
// tier, which runs this via the ConcurrentMinerStress.* filter).
TEST(ConcurrentMinerStress, CoalescedPublishesStayConsistent) {
  const Trace& t = small_hp();
  const FarmerConfig cfg;
  constexpr std::size_t kProducers = 4;
  ConcurrentFarmer miner(cfg, t.dict, /*shards=*/4,
                         /*ingest_queues=*/kProducers,
                         ConcurrentFarmer::kDefaultMaxPending,
                         /*query_cache_capacity=*/128,
                         /*publish_interval_records=*/512,
                         /*publish_max_delay_ms=*/1);

  const auto parts = testing::partition_by_process(t.records, kProducers);

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int rdr = 0; rdr < 2; ++rdr) {
    readers.emplace_back([&, rdr] {
      Rng rng(static_cast<std::uint64_t>(700 + rdr));
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const FileId f(
            static_cast<std::uint32_t>(rng.next_below(t.file_count())));
        const EpochSnapshot snap = miner.epoch_snapshot(f);
        EXPECT_GE(snap.epoch, last_epoch) << "epoch went backwards";
        last_epoch = snap.epoch;
        ASSERT_LE(snap.view.size(), cfg.correlator_capacity);
        for (std::size_t i = 0; i < snap.view.size(); ++i) {
          EXPECT_NE(snap.view[i].file, f) << "self-correlation";
          EXPECT_GE(snap.view[i].degree,
                    static_cast<float>(cfg.max_strength) - 1e-4f)
              << "torn/filtered degree surfaced";
          if (i > 0) {
            EXPECT_GE(snap.view[i - 1].degree, snap.view[i].degree)
                << "snapshot not sorted";
          }
        }
      }
    });
  }

  testing::replay_partitioned(miner, parts, /*chunk=*/32);
  miner.flush();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  const MinerStats s = miner.stats();
  EXPECT_EQ(s.requests, t.records.size());
  EXPECT_EQ(s.pending, 0u);
  EXPECT_GE(s.publishes, 1u);
  EXPECT_EQ(s.publishes, s.epoch);
}

// An owning snapshot cut before further ingest must never change, and
// flush() must be an effective barrier even when called repeatedly.
TEST(ConcurrentMinerStress, SnapshotsAreImmutableAndFlushIsIdempotent) {
  const Trace& t = small_hp();
  ConcurrentFarmer miner(FarmerConfig{}, t.dict, /*shards=*/2,
                         /*ingest_queues=*/2);
  const std::size_t half = t.records.size() / 2;
  miner.observe_batch(
      std::span<const TraceRecord>(t.records.data(), half));
  miner.flush();
  const std::uint64_t epoch_after_half = miner.epoch();

  // Find a file with a non-empty list and pin its snapshot.
  FileId pinned;
  EpochSnapshot snap;
  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    snap = miner.epoch_snapshot(FileId(f));
    if (!snap.view.empty()) {
      pinned = FileId(f);
      break;
    }
  }
  ASSERT_TRUE(pinned.valid()) << "no correlations mined in half a trace";
  ASSERT_TRUE(snap.view.owns_storage());
  const FileId first = snap.view[0].file;
  const float degree = snap.view[0].degree;

  miner.observe_batch(std::span<const TraceRecord>(
      t.records.data() + half, t.records.size() - half));
  miner.flush();
  miner.flush();  // idempotent: nothing pending, returns immediately

  EXPECT_EQ(snap.view[0].file, first);
  EXPECT_EQ(snap.view[0].degree, degree);
  EXPECT_GE(miner.epoch(), epoch_after_half);
  EXPECT_EQ(miner.stats().requests, t.records.size());
  EXPECT_EQ(miner.stats().pending, 0u);
}

// ------------------------------------------- parallel-apply stress --

// The shard-disjoint worker pool under repetition: a 4-lane ShardedFarmer
// re-runs the parallel apply across many batches while a serial twin
// ingests the same stream record by record. TSan (CI runs this suite via
// the ParallelApplyStress.* filter with --gtest_repeat) races the pool's
// generation handshake, work-stealing counter and completion accounting;
// the bitwise compare catches any cross-shard write the race detector
// misses. Sync backends permit no concurrent queries, so the stress here
// is dispatch-side, not reader-side.
TEST(ParallelApplyStress, ShardedWorkerLanesRepeatedBatchesStayIdentical) {
  const Trace& t = small_hp();
  const FarmerConfig cfg;
  ShardedFarmer serial(cfg, t.dict, /*shards=*/4, /*apply_threads=*/1);
  ShardedFarmer lanes(cfg, t.dict, /*shards=*/4, /*apply_threads=*/4);
  EXPECT_EQ(lanes.apply_thread_count(), 4u);

  for (const TraceRecord& r : t.records) serial.observe(r);
  // Small chunks maximize pool dispatches (one run() per batch).
  constexpr std::size_t kChunk = 16;
  for (std::size_t i = 0; i < t.records.size(); i += kChunk) {
    const std::size_t n = std::min(kChunk, t.records.size() - i);
    lanes.observe_batch(std::span<const TraceRecord>(&t.records[i], n));
  }

  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    const FileId id(f);
    ASSERT_EQ(serial.access_count(id), lanes.access_count(id))
        << "file " << f;
    const auto a = serial.correlators(id);
    const auto b = lanes.correlators(id);
    ASSERT_EQ(a.size(), b.size()) << "file " << f;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].file, b[i].file) << "file " << f << " slot " << i;
      EXPECT_EQ(a[i].degree, b[i].degree) << "file " << f << " slot " << i;
    }
  }
  EXPECT_EQ(lanes.stats().apply_parallel_records, t.records.size());
}

// The full async stack with the pool underneath: producers enqueue,
// the drain hands batches to the 4-lane parallel apply, readers validate
// snapshot invariants throughout — three thread populations racing the
// RCU publish path AND the worker pool at once.
TEST(ParallelApplyStress, ConcurrentDrainWithWorkerLanesStaysConsistent) {
  const Trace& t = small_hp();
  const FarmerConfig cfg;
  constexpr std::size_t kProducers = 4;
  ConcurrentFarmer miner(cfg, t.dict, /*shards=*/4,
                         /*ingest_queues=*/kProducers,
                         ConcurrentFarmer::kDefaultMaxPending,
                         /*query_cache_capacity=*/0,
                         /*publish_interval_records=*/0,
                         /*publish_max_delay_ms=*/0,
                         /*persister=*/nullptr,
                         /*apply_threads=*/4);

  const auto parts = testing::partition_by_process(t.records, kProducers);
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int rdr = 0; rdr < 2; ++rdr) {
    readers.emplace_back([&, rdr] {
      Rng rng(static_cast<std::uint64_t>(2100 + rdr));
      std::uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const FileId f(
            static_cast<std::uint32_t>(rng.next_below(t.file_count())));
        const EpochSnapshot snap = miner.epoch_snapshot(f);
        EXPECT_GE(snap.epoch, last_epoch) << "epoch went backwards";
        last_epoch = snap.epoch;
        ASSERT_LE(snap.view.size(), cfg.correlator_capacity);
        for (std::size_t i = 0; i < snap.view.size(); ++i) {
          EXPECT_NE(snap.view[i].file, f) << "self-correlation";
          if (i > 0) {
            EXPECT_GE(snap.view[i - 1].degree, snap.view[i].degree)
                << "snapshot not sorted";
          }
        }
      }
    });
  }

  testing::replay_partitioned(miner, parts, /*chunk=*/32);
  miner.flush();
  done.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  const MinerStats s = miner.stats();
  EXPECT_EQ(s.requests, t.records.size());
  EXPECT_EQ(s.pending, 0u);
  // The drain really applied through the pool: multi-shard batches were
  // counted by the inner sharded miner's parallel path.
  EXPECT_GE(s.apply_batches, 1u);
}

// ------------------------------------------------------- router stress --

// The router under the full concurrent mix: racing producers partitioned
// by process, readers hammering snapshots across every tenant, and a
// flusher thread exercising the fan-out barrier — all while each tenant
// runs its own drain. The router itself keeps no mutable state, so TSan
// failures here indict the routing layer's composition, not the children
// (which the ConcurrentMinerStress suite covers in isolation). Runs in the
// CI thread-sanitizer tier via the RouterStress.* filter.
TEST(RouterStress, SnapshotsAndFlushesRaceAcrossTenants) {
  constexpr TraceKind kKinds[] = {TraceKind::kHP, TraceKind::kINS};
  static const MultiTenantTrace mt = make_multi_tenant_trace(kKinds, 99,
                                                             0.02);
  const FarmerConfig cfg;
  constexpr std::size_t kProducers = 4;
  MinerOptions opts;
  opts.shards = 2;
  opts.ingest_threads = kProducers;
  opts.router_tenants = 2;
  opts.router_backends = "concurrent";
  opts.router_tenant_of = mt.tenant_map();
  const auto miner = make_miner("router", cfg, mt.trace.dict, opts);

  // Tenant-0/tenant-1 boundary, for the isolation assertion below.
  const std::uint32_t boundary = mt.file_begin[1];
  const auto parts = testing::partition_by_process(mt.trace.records,
                                                   kProducers);
  std::atomic<bool> done{false};
  std::vector<std::thread> aux;
  for (int rdr = 0; rdr < 2; ++rdr) {
    aux.emplace_back([&, rdr] {
      Rng rng(static_cast<std::uint64_t>(1300 + rdr));
      while (!done.load(std::memory_order_acquire)) {
        const FileId f(static_cast<std::uint32_t>(
            rng.next_below(mt.trace.file_count())));
        const CorrelatorView view = miner->snapshot(f);
        ASSERT_LE(view.size(), cfg.correlator_capacity);
        for (std::size_t i = 0; i < view.size(); ++i) {
          EXPECT_NE(view[i].file, f) << "self-correlation";
          // Tenant isolation must hold mid-race: a snapshot never names a
          // file from the other tenant's range.
          EXPECT_EQ(view[i].file.value() < boundary, f.value() < boundary)
              << "cross-tenant correlator surfaced";
          if (i > 0) {
            EXPECT_GE(view[i - 1].degree, view[i].degree)
                << "snapshot not sorted";
          }
        }
      }
    });
  }
  aux.emplace_back([&] {  // barrier fan-out racing the producers
    while (!done.load(std::memory_order_acquire)) {
      miner->flush();
      std::this_thread::yield();
    }
  });

  testing::replay_partitioned(*miner, parts, /*chunk=*/32);
  miner->flush();
  done.store(true, std::memory_order_release);
  for (auto& th : aux) th.join();

  const MinerStats s = miner->stats();
  EXPECT_EQ(s.requests, mt.trace.records.size());
  EXPECT_EQ(s.pending, 0u);
  ASSERT_EQ(s.per_tenant.size(), 2u);
  for (const MinerStats& ts : s.per_tenant) EXPECT_GT(ts.requests, 0u);
}

// ------------------------------------------------------ cluster stress --

// The distributed backend under the full concurrent mix: racing producers
// partitioned by process, readers hammering merged snapshots, and a
// flusher thread exercising the cross-shard barrier — all against live
// shard-server threads over loopback transports. Channel state is
// mutex-per-shard; TSan failures here indict the client's pipelining or
// the transport queues. Runs in the CI thread-sanitizer tier via the
// ClusterStress.* filter.
TEST(ClusterStress, ProducersQueriersAndFlusherRace) {
  static const Trace t = make_paper_trace(TraceKind::kHP, 71, 0.02);
  const FarmerConfig cfg;
  constexpr std::size_t kProducers = 4;
  MinerOptions opts;
  opts.cluster_shards = 3;
  const auto miner = make_miner("cluster", cfg, t.dict, opts);

  const auto parts = testing::partition_by_process(t.records, kProducers);
  std::atomic<bool> done{false};
  std::vector<std::thread> aux;
  for (int rdr = 0; rdr < 2; ++rdr) {
    aux.emplace_back([&, rdr] {
      Rng rng(static_cast<std::uint64_t>(1700 + rdr));
      while (!done.load(std::memory_order_acquire)) {
        const FileId f(
            static_cast<std::uint32_t>(rng.next_below(t.file_count())));
        const CorrelatorView view = miner->snapshot(f);
        ASSERT_LE(view.size(), cfg.correlator_capacity);
        for (std::size_t i = 0; i < view.size(); ++i) {
          EXPECT_NE(view[i].file, f) << "self-correlation";
          if (i > 0) {
            EXPECT_GE(view[i - 1].degree, view[i].degree)
                << "merged snapshot not sorted";
          }
        }
      }
    });
  }
  aux.emplace_back([&] {  // cross-shard barrier racing the producers
    while (!done.load(std::memory_order_acquire)) {
      miner->flush();
      std::this_thread::yield();
    }
  });

  testing::replay_partitioned(*miner, parts, /*chunk=*/32);
  miner->flush();
  done.store(true, std::memory_order_release);
  for (auto& th : aux) th.join();

  const MinerStats s = miner->stats();
  EXPECT_EQ(s.requests, t.records.size());
  EXPECT_EQ(s.shards, 3u);
  EXPECT_EQ(s.pending, 0u);
}

// ------------------------------------------------------- LDA properties --

TEST(LdaProperty, WeightsDecreaseWithDistance) {
  for (double delta : {0.05, 0.1, 0.2}) {
    for (std::size_t d = 1; d < 12; ++d) {
      EXPECT_GE(AccessWindow::lda_weight(d, delta),
                AccessWindow::lda_weight(d + 1, delta));
      EXPECT_GE(AccessWindow::lda_weight(d, delta), 0.0);
      EXPECT_LE(AccessWindow::lda_weight(d, delta), 1.0);
    }
  }
}

TEST(LdaProperty, ZeroDeltaIsUniform) {
  for (std::size_t d = 1; d < 16; ++d)
    EXPECT_DOUBLE_EQ(AccessWindow::lda_weight(d, 0.0), 1.0);
}

}  // namespace
}  // namespace farmer
