// End-to-end integration tests: the paper's qualitative claims must hold on
// the synthetic workloads (shapes, not absolute numbers).
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "analysis/interfile_prob.hpp"
#include "core/sharded_farmer.hpp"
#include "prefetch/fpa.hpp"
#include "prefetch/nexus.hpp"
#include "prefetch/replay.hpp"
#include "trace/generator.hpp"

namespace farmer {
namespace {

/// Small but non-trivial instances of the paper traces (shared per suite to
/// keep test runtime sane).
const Trace& hp_trace() {
  static const Trace t = make_paper_trace(TraceKind::kHP, 1234, 0.15);
  return t;
}
const Trace& ins_trace() {
  static const Trace t = make_paper_trace(TraceKind::kINS, 1234, 0.15);
  return t;
}

ReplayConfig replay_cfg(std::size_t capacity) {
  ReplayConfig cfg;
  cfg.cache_capacity = capacity;
  cfg.prefetch_degree = 4;
  return cfg;
}

FarmerConfig fpa_cfg(bool paths) {
  FarmerConfig cfg;
  cfg.attributes = paths ? AttributeMask::all_with_path()
                         : AttributeMask::all_with_fileid();
  return cfg;
}

TEST(Integration, FpaBeatsLruOnHitRatioHp) {
  const Trace& t = hp_trace();
  const std::size_t cap = default_cache_capacity(t);
  NoopPredictor lru;
  const auto r_lru = replay_trace(t, lru, replay_cfg(cap));
  FpaPredictor fpa(fpa_cfg(true), t.dict);
  const auto r_fpa = replay_trace(t, fpa, replay_cfg(cap));
  EXPECT_GT(r_fpa.hit_ratio(), r_lru.hit_ratio());
}

TEST(Integration, FpaMoreAccurateThanNexusOnHp) {
  const Trace& t = hp_trace();
  const std::size_t cap = default_cache_capacity(t);
  FpaPredictor fpa(fpa_cfg(true), t.dict);
  NexusPredictor nexus;
  const auto r_fpa = replay_trace(t, fpa, replay_cfg(cap));
  const auto r_nexus = replay_trace(t, nexus, replay_cfg(cap));
  // Table 3's shape: FARMER's prefetching accuracy clearly above Nexus's.
  EXPECT_GT(r_fpa.prefetch_accuracy(), r_nexus.prefetch_accuracy() + 0.05);
}

TEST(Integration, FpaAtLeastMatchesNexusHitRatio) {
  const Trace& t = hp_trace();
  const std::size_t cap = default_cache_capacity(t);
  FpaPredictor fpa(fpa_cfg(true), t.dict);
  NexusPredictor nexus;
  const auto r_fpa = replay_trace(t, fpa, replay_cfg(cap));
  const auto r_nexus = replay_trace(t, nexus, replay_cfg(cap));
  EXPECT_GE(r_fpa.hit_ratio(), r_nexus.hit_ratio() - 0.01);
}

TEST(Integration, InsHitRatiosHigherThanHp) {
  // INS (instructional, highly repetitive) produces much higher hit ratios
  // than HP at the experiment cache sizes — the paper's Fig. 3/7 contrast.
  const Trace& ins = ins_trace();
  const Trace& hp = hp_trace();
  NoopPredictor l1, l2;
  const auto r_ins =
      replay_trace(ins, l1, replay_cfg(default_cache_capacity(ins)));
  const auto r_hp =
      replay_trace(hp, l2, replay_cfg(default_cache_capacity(hp)));
  EXPECT_GT(r_ins.hit_ratio(), r_hp.hit_ratio());
}

TEST(Integration, UnfilteredStreamHasLowestInterfileProbability) {
  // Fig. 1's third observation.
  const Trace& t = hp_trace();
  const auto rows =
      interfile_access_probability(t, figure1_combinations(true));
  ASSERT_GE(rows.size(), 3u);
  ASSERT_EQ(rows[0].label, "none");
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_LT(rows[0].probability, rows[i].probability) << rows[i].label;
}

TEST(Integration, MiningRecoversGroundTruthGroups) {
  // Precision check: mined correlator entries should overwhelmingly point
  // at files of the same generator group.
  const Trace& t = hp_trace();
  FpaPredictor fpa(fpa_cfg(true), t.dict);
  for (const auto& r : t.records) fpa.observe(r);
  const auto& model = fpa.model();
  std::uint64_t intra = 0, inter = 0;
  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    const auto g = t.dict->files[f].group;
    if (g == kNoGroup) continue;
    for (const auto& c : model.correlators(FileId(f))) {
      if (t.dict->files[c.file.value()].group == g)
        ++intra;
      else
        ++inter;
    }
  }
  ASSERT_GT(intra + inter, 0u);
  const double precision =
      static_cast<double>(intra) / static_cast<double>(intra + inter);
  // Chance level is ~1% (group size / namespace size); mined lists must
  // point overwhelmingly inside the true group. The remainder is context-
  // correlated noise (same session touching out-of-set files), which is a
  // genuine correlation the ground-truth labels do not cover.
  EXPECT_GT(precision, 0.7);
}

TEST(Integration, ThresholdShrinksFootprint) {
  // Section 3.3's efficiency claim: filtering keeps correlator state small.
  const Trace& t = hp_trace();
  auto strict_cfg = fpa_cfg(true);
  strict_cfg.max_strength = 0.4;
  auto loose_cfg = fpa_cfg(true);
  loose_cfg.max_strength = 0.0;
  FpaPredictor strict(strict_cfg, t.dict);
  FpaPredictor loose(loose_cfg, t.dict);
  for (const auto& r : t.records) {
    strict.observe(r);
    loose.observe(r);
  }
  std::size_t strict_entries = 0, loose_entries = 0;
  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    strict_entries += strict.model().correlators(FileId(f)).size();
    loose_entries += loose.model().correlators(FileId(f)).size();
  }
  EXPECT_LT(strict_entries, loose_entries);
}

TEST(Integration, WeightP07BeatsExtremesOnHp) {
  // Fig. 3's shape: the mixed weight dominates pure-sequence (p=0) and
  // pure-semantic (p=1) at the paper's operating threshold.
  const Trace& t = hp_trace();
  const std::size_t cap = default_cache_capacity(t);
  auto run_with_p = [&](double p) {
    auto cfg = fpa_cfg(true);
    cfg.p = p;
    FpaPredictor fpa(cfg, t.dict);
    return replay_trace(t, fpa, replay_cfg(cap)).hit_ratio();
  };
  const double h0 = run_with_p(0.0);
  const double h07 = run_with_p(0.7);
  const double h1 = run_with_p(1.0);
  EXPECT_GE(h07, h0);
  EXPECT_GE(h07 + 0.02, h1);  // p=1 may tie; p=0.7 must not lose badly
}

TEST(Integration, ShardedMiningKeepsPrecision) {
  const Trace& t = hp_trace();
  ShardedFarmer sharded(fpa_cfg(true), t.dict, 4);
  sharded.observe_batch(t.records);
  std::uint64_t intra = 0, inter = 0;
  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    const auto g = t.dict->files[f].group;
    if (g == kNoGroup) continue;
    for (const auto& c : sharded.correlators(FileId(f))) {
      if (t.dict->files[c.file.value()].group == g)
        ++intra;
      else
        ++inter;
    }
  }
  ASSERT_GT(intra + inter, 0u);
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(intra + inter),
            0.7);
}

}  // namespace
}  // namespace farmer
