// Tests for replacement policies, the prefetch-aware metadata cache, and
// the epoch-validated Correlator-List cache.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cache/correlator_cache.hpp"
#include "cache/metadata_cache.hpp"
#include "cache/replacement.hpp"
#include "common/rng.hpp"

namespace farmer {
namespace {

// ------------------------------------------------------ policy-specific --

TEST(Lru, EvictsLeastRecentlyUsed) {
  MetadataCache c(2, CachePolicy::kLRU);
  c.insert_demand(FileId(1));
  c.insert_demand(FileId(2));
  (void)c.access(FileId(1));  // 1 becomes MRU
  c.insert_demand(FileId(3)); // evicts 2
  EXPECT_TRUE(c.contains(FileId(1)));
  EXPECT_FALSE(c.contains(FileId(2)));
  EXPECT_TRUE(c.contains(FileId(3)));
}

TEST(Lfu, EvictsLeastFrequentlyUsed) {
  MetadataCache c(2, CachePolicy::kLFU);
  c.insert_demand(FileId(1));
  c.insert_demand(FileId(2));
  (void)c.access(FileId(1));
  (void)c.access(FileId(1));
  (void)c.access(FileId(2));
  c.insert_demand(FileId(3));  // evicts 2 (freq 2 < freq 3)
  EXPECT_TRUE(c.contains(FileId(1)));
  EXPECT_FALSE(c.contains(FileId(2)));
}

TEST(Clock, GivesSecondChance) {
  MetadataCache c(2, CachePolicy::kCLOCK);
  c.insert_demand(FileId(1));
  c.insert_demand(FileId(2));
  (void)c.access(FileId(1));
  (void)c.access(FileId(2));
  // Both referenced; insertion sweeps, clears bits, evicts the first
  // unreferenced frame — deterministic full rotation.
  c.insert_demand(FileId(3));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_TRUE(c.contains(FileId(3)));
}

TEST(Arc, AdaptsToGhostHits) {
  // Fill, evict, re-insert: the ghost hit must not crash and the entry
  // returns as resident.
  MetadataCache c(2, CachePolicy::kARC);
  c.insert_demand(FileId(1));
  c.insert_demand(FileId(2));
  c.insert_demand(FileId(3));  // evicts something into a ghost list
  const bool one_resident = c.contains(FileId(1));
  c.insert_demand(one_resident ? FileId(2) : FileId(1));  // ghost hit path
  EXPECT_LE(c.size(), 2u);
}

TEST(PolicyFactory, MakesAllPolicies) {
  for (auto p : {CachePolicy::kLRU, CachePolicy::kLFU, CachePolicy::kCLOCK,
                 CachePolicy::kARC}) {
    const auto policy = make_policy(p);
    ASSERT_NE(policy, nullptr);
    EXPECT_STREQ(policy->name(), cache_policy_name(p));
  }
}

// -------------------------------------------- parameterized policy suite --

class PolicySuite : public ::testing::TestWithParam<CachePolicy> {};

TEST_P(PolicySuite, CapacityNeverExceeded) {
  MetadataCache c(8, GetParam());
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const FileId f(static_cast<std::uint32_t>(rng.next_below(64)));
    if (!c.access(f)) {
      if (rng.next_bool(0.5))
        c.insert_demand(f);
      else
        c.insert_prefetch(f);
    }
    ASSERT_LE(c.size(), 8u);
  }
}

TEST_P(PolicySuite, HitAfterInsert) {
  MetadataCache c(4, GetParam());
  c.insert_demand(FileId(7));
  EXPECT_TRUE(c.access(FileId(7)));
}

TEST_P(PolicySuite, MissOnEmpty) {
  MetadataCache c(4, GetParam());
  EXPECT_FALSE(c.access(FileId(1)));
}

TEST_P(PolicySuite, EraseRemoves) {
  MetadataCache c(4, GetParam());
  c.insert_demand(FileId(1));
  c.erase(FileId(1));
  EXPECT_FALSE(c.contains(FileId(1)));
  EXPECT_EQ(c.size(), 0u);
}

TEST_P(PolicySuite, WorkingSetSmallerThanCapacityAlwaysHitsEventually) {
  MetadataCache c(8, GetParam());
  // Working set of 4 distinct files cycled: after the first pass, every
  // access must hit for every sane policy.
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint32_t f = 0; f < 4; ++f) {
      if (!c.access(FileId(f))) c.insert_demand(FileId(f));
    }
  }
  EXPECT_EQ(c.stats().demand.denominator(), 12u);
  EXPECT_GE(c.stats().demand.numerator(), 8u);
}

TEST_P(PolicySuite, DuplicateInsertIsNoop) {
  MetadataCache c(4, GetParam());
  c.insert_demand(FileId(1));
  c.insert_demand(FileId(1));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_FALSE(c.insert_prefetch(FileId(1)));
  EXPECT_EQ(c.stats().prefetch_inserted, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySuite,
                         ::testing::Values(CachePolicy::kLRU,
                                           CachePolicy::kLFU,
                                           CachePolicy::kCLOCK,
                                           CachePolicy::kARC),
                         [](const auto& info) {
                           return cache_policy_name(info.param);
                         });

// ------------------------------------------------------- MetadataCache ---

TEST(MetadataCache, DemandHitMissAccounting) {
  MetadataCache c(4, CachePolicy::kLRU);
  EXPECT_FALSE(c.access(FileId(1)));
  c.insert_demand(FileId(1));
  EXPECT_TRUE(c.access(FileId(1)));
  EXPECT_EQ(c.stats().demand.denominator(), 2u);
  EXPECT_EQ(c.stats().demand.numerator(), 1u);
  EXPECT_DOUBLE_EQ(c.stats().hit_ratio(), 0.5);
}

TEST(MetadataCache, PrefetchAccuracyCountsFirstUse) {
  MetadataCache c(4, CachePolicy::kLRU);
  c.insert_prefetch(FileId(1));
  c.insert_prefetch(FileId(2));
  (void)c.access(FileId(1));  // used
  (void)c.access(FileId(1));  // second hit doesn't double count
  EXPECT_EQ(c.stats().prefetch_inserted, 2u);
  EXPECT_EQ(c.stats().prefetch_used, 1u);
  EXPECT_DOUBLE_EQ(c.stats().prefetch_accuracy(), 0.5);
}

TEST(MetadataCache, PollutionCountsEvictedUnused) {
  MetadataCache c(2, CachePolicy::kLRU);
  c.insert_prefetch(FileId(1));
  c.insert_prefetch(FileId(2));
  c.insert_demand(FileId(3));  // evicts 1 (unused prefetch)
  c.insert_demand(FileId(4));  // evicts 2 (unused prefetch)
  EXPECT_EQ(c.stats().prefetch_evicted_unused, 2u);
  EXPECT_DOUBLE_EQ(c.stats().pollution_ratio(), 1.0);
}

TEST(MetadataCache, UsedPrefetchNotCountedAsPollution) {
  MetadataCache c(2, CachePolicy::kLRU);
  c.insert_prefetch(FileId(1));
  (void)c.access(FileId(1));
  c.insert_demand(FileId(2));
  c.insert_demand(FileId(3));  // evicts the used prefetch
  EXPECT_EQ(c.stats().prefetch_evicted_unused, 0u);
}

TEST(MetadataCache, ResetStatsKeepsResidency) {
  MetadataCache c(4, CachePolicy::kLRU);
  c.insert_demand(FileId(1));
  (void)c.access(FileId(1));
  c.reset_stats();
  EXPECT_EQ(c.stats().demand.denominator(), 0u);
  EXPECT_TRUE(c.contains(FileId(1)));
}

TEST(MetadataCache, CapacityOneWorks) {
  MetadataCache c(1, CachePolicy::kLRU);
  c.insert_demand(FileId(1));
  c.insert_demand(FileId(2));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.contains(FileId(2)));
}

TEST(MetadataCache, ZeroCapacityClampedToOne) {
  MetadataCache c(0, CachePolicy::kLRU);
  c.insert_demand(FileId(1));
  EXPECT_EQ(c.capacity(), 1u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(MetadataCache, EvictionCounterAdvances) {
  MetadataCache c(2, CachePolicy::kLRU);
  for (std::uint32_t i = 0; i < 10; ++i) c.insert_demand(FileId(i));
  EXPECT_EQ(c.stats().evictions, 8u);
}

// LRU stress against a reference model.
TEST(Lru, MatchesReferenceModelUnderRandomOps) {
  MetadataCache c(16, CachePolicy::kLRU);
  std::vector<FileId> ref;  // front = LRU, back = MRU
  Rng rng(77);
  auto ref_touch = [&](FileId f) {
    for (std::size_t i = 0; i < ref.size(); ++i)
      if (ref[i] == f) {
        ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    ref.push_back(f);
  };
  for (int op = 0; op < 5000; ++op) {
    const FileId f(static_cast<std::uint32_t>(rng.next_below(64)));
    const bool hit = c.access(f);
    const bool ref_hit =
        std::find(ref.begin(), ref.end(), f) != ref.end();
    ASSERT_EQ(hit, ref_hit) << "op " << op;
    if (hit) {
      ref_touch(f);
    } else {
      if (ref.size() >= 16) ref.erase(ref.begin());
      ref.push_back(f);
      c.insert_demand(f);
    }
    ASSERT_EQ(c.size(), ref.size());
  }
}

// ------------------------------------------------ Correlator-List cache --

std::vector<Correlator> micro_list() {
  return {{FileId(7), 0.9f}, {FileId(9), 0.5f}};
}

constexpr auto kNeverAbsent = [](std::size_t) { return false; };
constexpr auto kAlwaysAbsent = [](std::size_t) { return true; };

TEST(CorrelatorCache, HitAfterWarm) {
  CorrelatorCache cache(8);
  const std::vector<std::uint64_t> epochs = {3, 5};
  EXPECT_FALSE(cache.lookup(FileId(1), epochs, kNeverAbsent).has_value());
  cache.insert(FileId(1), epochs, {1, 0}, micro_list());
  const auto hit = cache.lookup(FileId(1), epochs, kNeverAbsent);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->size(), 2u);
  EXPECT_EQ((*hit)[0].file, FileId(7));
  EXPECT_FLOAT_EQ((*hit)[0].degree, 0.9f);
  const CorrelatorCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.invalidations, 0u);
}

TEST(CorrelatorCache, ContributingShardEpochAdvanceInvalidates) {
  CorrelatorCache cache(8);
  cache.insert(FileId(1), std::vector<std::uint64_t>{3, 5}, {1, 0},
               micro_list());
  // Shard 0 contributed and republished: the entry must die even though the
  // absence probe would claim the file vanished (contained wins).
  const std::vector<std::uint64_t> advanced = {4, 5};
  EXPECT_FALSE(cache.lookup(FileId(1), advanced, kAlwaysAbsent).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // The stale entry was erased, not served again.
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CorrelatorCache, NonContributingShardAdvanceKeepsEntryWhileAbsent) {
  CorrelatorCache cache(8);
  cache.insert(FileId(1), std::vector<std::uint64_t>{3, 5}, {1, 0},
               micro_list());
  // Shard 1 republished but never contained the file and still does not:
  // the merged list cannot have changed, the entry survives.
  const std::vector<std::uint64_t> advanced = {3, 9};
  EXPECT_TRUE(cache.lookup(FileId(1), advanced, kAlwaysAbsent).has_value());
  // The verdict is memoized: a probe that now said "present" would not be
  // consulted for epoch 9 again (recorded epoch advanced on the hit)...
  EXPECT_TRUE(cache.lookup(FileId(1), advanced, kNeverAbsent).has_value());
  // ...but a *further* advance with the file now present invalidates.
  const std::vector<std::uint64_t> further = {3, 10};
  EXPECT_FALSE(cache.lookup(FileId(1), further, kNeverAbsent).has_value());
  const CorrelatorCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.invalidations, 1u);
}

TEST(CorrelatorCache, ShardCountChangeInvalidates) {
  CorrelatorCache cache(8);
  cache.insert(FileId(1), std::vector<std::uint64_t>{3}, {1}, micro_list());
  const std::vector<std::uint64_t> two_shards = {3, 0};
  EXPECT_FALSE(cache.lookup(FileId(1), two_shards, kAlwaysAbsent).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(CorrelatorCache, CapacityZeroDisablesEverything) {
  CorrelatorCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const std::vector<std::uint64_t> epochs = {1};
  cache.insert(FileId(1), epochs, {1}, micro_list());
  EXPECT_FALSE(cache.lookup(FileId(1), epochs, kNeverAbsent).has_value());
  EXPECT_EQ(cache.size(), 0u);
  // Disabled means invisible: not even miss counters move.
  const CorrelatorCacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses + s.insertions + s.invalidations, 0u);
}

TEST(CorrelatorCache, EvictionRespectsCapacityWithLru) {
  // One stripe so the LRU order is global and deterministic.
  CorrelatorCache cache(2, CachePolicy::kLRU, /*stripes=*/1);
  const std::vector<std::uint64_t> epochs = {1};
  cache.insert(FileId(1), epochs, {1}, micro_list());
  cache.insert(FileId(2), epochs, {1}, micro_list());
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.lookup(FileId(1), epochs, kNeverAbsent).has_value());
  cache.insert(FileId(3), epochs, {1}, micro_list());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(FileId(1), epochs, kNeverAbsent).has_value());
  EXPECT_FALSE(cache.lookup(FileId(2), epochs, kNeverAbsent).has_value());
  EXPECT_TRUE(cache.lookup(FileId(3), epochs, kNeverAbsent).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CorrelatorCache, ClearDropsEntriesKeepsStats) {
  CorrelatorCache cache(8);
  const std::vector<std::uint64_t> epochs = {1};
  cache.insert(FileId(1), epochs, {1}, micro_list());
  EXPECT_TRUE(cache.lookup(FileId(1), epochs, kNeverAbsent).has_value());
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(FileId(1), epochs, kNeverAbsent).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_GT(cache.footprint_bytes(), 0u);
}

}  // namespace
}  // namespace farmer
