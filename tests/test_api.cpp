// Tests for the mining API boundary: the validated config builder, the
// CorrelationMiner interface + CorrelatorView snapshots, and the
// MinerFactory registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <filesystem>
#include <memory>
#include <span>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <vector>

#include "api/miner_factory.hpp"
#include "api/miner_router.hpp"
#include "core/farmer.hpp"
#include "core/sharded_farmer.hpp"
#include "net/cluster_miner.hpp"
#include "persist/checkpoint.hpp"
#include "trace/generator.hpp"
#include "test_helpers.hpp"

namespace farmer {
namespace {

using testing::MicroTrace;

// ------------------------------------------------------- config builder --

TEST(ConfigBuilder, DefaultsAreValid) {
  const auto r = FarmerConfig::builder().build();
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().p, 0.7, 1e-12);
  EXPECT_TRUE(r.error().empty());
}

TEST(ConfigBuilder, SettersPropagate) {
  const auto r = FarmerConfig::builder()
                     .p(0.5)
                     .max_strength(0.2)
                     .window(8)
                     .lda_delta(0.05)
                     .max_successors(32)
                     .correlator_capacity(16)
                     .path_mode(PathMode::kDivided)
                     .build();
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().p, 0.5, 1e-12);
  EXPECT_NEAR(r.value().max_strength, 0.2, 1e-12);
  EXPECT_EQ(r.value().window, 8u);
  EXPECT_NEAR(r.value().lda_delta, 0.05, 1e-12);
  EXPECT_EQ(r.value().max_successors, 32u);
  EXPECT_EQ(r.value().correlator_capacity, 16u);
  EXPECT_EQ(r.value().path_mode, PathMode::kDivided);
}

TEST(ConfigBuilder, RejectsPOutsideUnitInterval) {
  EXPECT_FALSE(FarmerConfig::builder().p(-0.1).build().ok());
  EXPECT_FALSE(FarmerConfig::builder().p(1.1).build().ok());
  EXPECT_TRUE(FarmerConfig::builder().p(0.0).build().ok());
  EXPECT_TRUE(FarmerConfig::builder().p(1.0).build().ok());
  const auto r = FarmerConfig::builder().p(2.0).build();
  EXPECT_NE(r.error().find("p must be in [0, 1]"), std::string::npos);
}

TEST(ConfigBuilder, RejectsZeroWindow) {
  const auto r = FarmerConfig::builder().window(0).build();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("window"), std::string::npos);
}

TEST(ConfigBuilder, RejectsLdaDeltaDrivingWindowNegative) {
  // window 8 with delta 0.2: distance 8 would contribute 1 - 7*0.2 = -0.4.
  const auto r = FarmerConfig::builder().window(8).lda_delta(0.2).build();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("lda_delta"), std::string::npos);
  // The paper's own configuration (window 4, delta 0.1) is fine.
  EXPECT_TRUE(FarmerConfig::builder().window(4).lda_delta(0.1).build().ok());
  // Exactly reaching zero at the window edge is allowed.
  EXPECT_TRUE(FarmerConfig::builder().window(5).lda_delta(0.25).build().ok());
  EXPECT_FALSE(FarmerConfig::builder().lda_delta(-0.1).build().ok());
}

TEST(ConfigBuilder, ValueOnFailedResultThrows) {
  const auto r = FarmerConfig::builder().p(2.0).build();
  ASSERT_FALSE(r.ok());
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(ConfigBuilder, RejectsZeroCapacities) {
  EXPECT_FALSE(FarmerConfig::builder().correlator_capacity(0).build().ok());
  EXPECT_FALSE(FarmerConfig::builder().max_successors(0).build().ok());
}

TEST(ConfigBuilder, ReportsEveryViolationAtOnce) {
  const auto r =
      FarmerConfig::builder().p(3.0).window(0).correlator_capacity(0).build();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("p must be"), std::string::npos);
  EXPECT_NE(r.error().find("window"), std::string::npos);
  EXPECT_NE(r.error().find("correlator_capacity"), std::string::npos);
}

// --------------------------------------------------------------- factory --

TEST(MinerFactory, BuiltInsAreRegistered) {
  const auto names = registered_miners();
  for (const char* expected :
       {"concurrent", "farmer", "nexus", "router", "sharded"})
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
}

TEST(MinerFactory, ConstructsEachBuiltInWithMatchingName) {
  MicroTrace mt;
  (void)mt.file("a", "/p/a");
  for (const char* backend :
       {"farmer", "sharded", "concurrent", "router", "nexus"}) {
    const auto miner = make_miner(backend, FarmerConfig{}, mt.dict());
    ASSERT_NE(miner, nullptr);
    EXPECT_STREQ(miner->name(), backend);
  }
}

TEST(MinerFactory, UnknownBackendThrowsListingRegistered) {
  MicroTrace mt;
  try {
    (void)make_miner("no-such-miner", FarmerConfig{}, mt.dict());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-miner"), std::string::npos);
    EXPECT_NE(msg.find("farmer"), std::string::npos);
  }
}

TEST(MinerFactory, InvalidConfigThrows) {
  MicroTrace mt;
  FarmerConfig bad;
  bad.p = 7.0;
  EXPECT_THROW((void)make_miner("farmer", bad, mt.dict()),
               std::invalid_argument);
}

TEST(MinerFactory, CustomBackendsPlugIn) {
  MicroTrace mt;
  const bool fresh = register_miner(
      "custom-test-backend",
      [](const FarmerConfig& cfg, std::shared_ptr<const TraceDictionary> dict,
         const MinerOptions&) -> std::unique_ptr<CorrelationMiner> {
        return std::make_unique<Farmer>(cfg, std::move(dict));
      });
  EXPECT_TRUE(fresh);
  const auto miner = make_miner("custom-test-backend", FarmerConfig{},
                                mt.dict());
  ASSERT_NE(miner, nullptr);
  // Re-registering the same name replaces, not duplicates.
  EXPECT_FALSE(register_miner(
      "custom-test-backend",
      [](const FarmerConfig& cfg, std::shared_ptr<const TraceDictionary> dict,
         const MinerOptions&) -> std::unique_ptr<CorrelationMiner> {
        return std::make_unique<Farmer>(cfg, std::move(dict));
      }));
}

TEST(MinerFactory, ShardOptionControlsShardCount) {
  MicroTrace mt;
  MinerOptions opts;
  opts.shards = 3;
  const auto miner = make_miner("sharded", FarmerConfig{}, mt.dict(), opts);
  EXPECT_EQ(miner->stats().shards, 3u);
}

// ---------------------------------------------------------- polymorphism --

MicroTrace fixed_trace() {
  MicroTrace mt;
  const FileId a = mt.file("a", "/home/u0/proj/a");
  const FileId b = mt.file("b", "/home/u0/proj/b");
  const FileId c = mt.file("c", "/home/u0/proj/c");
  const FileId x = mt.file("x", "/var/other/x");
  for (int i = 0; i < 6; ++i) {
    mt.access(a, "u0", "pidA");
    mt.access(b, "u0", "pidA");
    mt.access(c, "u0", "pidA");
    mt.access(x, "u9", "pidB", "h9");
  }
  return mt;
}

TEST(CorrelationMinerInterface, FarmerAndSingleShardShardedAgree) {
  const MicroTrace mt = fixed_trace();
  MinerOptions one_shard;
  one_shard.shards = 1;
  const std::unique_ptr<CorrelationMiner> serial =
      make_miner("farmer", FarmerConfig{}, mt.dict());
  const std::unique_ptr<CorrelationMiner> sharded =
      make_miner("sharded", FarmerConfig{}, mt.dict(), one_shard);
  EXPECT_STREQ(sharded->name(), "sharded");

  for (const auto& r : mt.records()) {
    serial->observe(r);
    sharded->observe(r);
  }

  for (std::uint32_t f = 0; f < mt.dict()->files.size(); ++f) {
    const auto ls = serial->correlators(FileId(f));
    const auto lm = sharded->correlators(FileId(f));
    ASSERT_EQ(ls.size(), lm.size()) << "file " << f;
    for (std::size_t i = 0; i < ls.size(); ++i) {
      EXPECT_EQ(ls[i].file, lm[i].file) << "file " << f << " slot " << i;
      EXPECT_FLOAT_EQ(ls[i].degree, lm[i].degree);
    }
    EXPECT_NEAR(serial->correlation_degree(FileId(f), FileId(0)),
                sharded->correlation_degree(FileId(f), FileId(0)), 1e-12);
    EXPECT_EQ(serial->access_count(FileId(f)),
              sharded->access_count(FileId(f)));
  }
  EXPECT_EQ(serial->stats().requests, sharded->stats().requests);
  EXPECT_EQ(serial->stats().pairs_evaluated,
            sharded->stats().pairs_evaluated);
}

TEST(CorrelationMinerInterface, BatchAndSerialIngestAgreeBehindInterface) {
  const MicroTrace mt = fixed_trace();
  MinerOptions opts;
  opts.shards = 4;
  const auto batched = make_miner("sharded", FarmerConfig{}, mt.dict(), opts);
  const auto serial = make_miner("sharded", FarmerConfig{}, mt.dict(), opts);
  batched->observe_batch(mt.records());
  for (const auto& r : mt.records()) serial->observe(r);
  for (std::uint32_t f = 0; f < mt.dict()->files.size(); ++f) {
    const auto lb = batched->correlators(FileId(f));
    const auto ls = serial->correlators(FileId(f));
    ASSERT_EQ(lb.size(), ls.size());
    for (std::size_t i = 0; i < lb.size(); ++i) {
      EXPECT_EQ(lb[i].file, ls[i].file);
      EXPECT_FLOAT_EQ(lb[i].degree, ls[i].degree);
    }
  }
}

// Differential tier: the async "concurrent" backend, once flush()ed, must
// be indistinguishable from the synchronous "sharded" backend on the same
// stream — byte-identical Correlator Lists and identical mining counters.
// Single-producer replay keeps the applied order equal to trace order, so
// the equality is exact, not statistical.
TEST(CorrelationMinerInterface, ConcurrentAfterFlushMatchesSharded) {
  const MicroTrace mt = fixed_trace();
  MinerOptions opts;
  opts.shards = 4;
  const auto sharded = make_miner("sharded", FarmerConfig{}, mt.dict(), opts);
  const auto concurrent =
      make_miner("concurrent", FarmerConfig{}, mt.dict(), opts);
  EXPECT_STREQ(concurrent->name(), "concurrent");

  for (const auto& r : mt.records()) {
    sharded->observe(r);
    concurrent->observe(r);
  }
  concurrent->flush();

  for (std::uint32_t f = 0; f < mt.dict()->files.size(); ++f) {
    const auto ls = sharded->correlators(FileId(f));
    const auto lc = concurrent->correlators(FileId(f));
    ASSERT_EQ(ls.size(), lc.size()) << "file " << f;
    for (std::size_t i = 0; i < ls.size(); ++i) {
      EXPECT_EQ(ls[i].file, lc[i].file) << "file " << f << " slot " << i;
      // Bitwise-equal degrees: identical arithmetic on identical order.
      EXPECT_EQ(ls[i].degree, lc[i].degree) << "file " << f << " slot " << i;
    }
    EXPECT_EQ(sharded->access_count(FileId(f)),
              concurrent->access_count(FileId(f)));
    EXPECT_EQ(sharded->correlation_degree(FileId(f), FileId(0)),
              concurrent->correlation_degree(FileId(f), FileId(0)));
  }
  const MinerStats ss = sharded->stats();
  const MinerStats sc = concurrent->stats();
  EXPECT_EQ(ss.requests, sc.requests);
  EXPECT_EQ(ss.pairs_evaluated, sc.pairs_evaluated);
  EXPECT_EQ(ss.pairs_accepted, sc.pairs_accepted);
  EXPECT_EQ(ss.pairs_filtered, sc.pairs_filtered);
  EXPECT_EQ(sc.pending, 0u);
  EXPECT_GE(sc.epoch, 1u);
}

// The same differential on a generated trace: thousands of records exercise
// batch splits inside the drain (multiple apply epochs) rather than the
// single-epoch fast path of a micro trace.
TEST(CorrelationMinerInterface, ConcurrentDifferentialOnGeneratedTrace) {
  const Trace t = make_paper_trace(TraceKind::kHP, 17, 0.02);
  MinerOptions opts;
  opts.shards = 4;
  const FarmerConfig cfg;
  const auto sharded = make_miner("sharded", cfg, t.dict, opts);
  const auto concurrent = make_miner("concurrent", cfg, t.dict, opts);

  // Push in small batches from one thread: applied order == trace order.
  constexpr std::size_t kChunk = 128;
  for (std::size_t i = 0; i < t.records.size(); i += kChunk) {
    const std::size_t n = std::min(kChunk, t.records.size() - i);
    concurrent->observe_batch(
        std::span<const TraceRecord>(&t.records[i], n));
  }
  sharded->observe_batch(t.records);
  concurrent->flush();

  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    const auto ls = sharded->correlators(FileId(f));
    const auto lc = concurrent->correlators(FileId(f));
    ASSERT_EQ(ls.size(), lc.size()) << "file " << f;
    for (std::size_t i = 0; i < ls.size(); ++i) {
      EXPECT_EQ(ls[i].file, lc[i].file) << "file " << f << " slot " << i;
      EXPECT_EQ(ls[i].degree, lc[i].degree) << "file " << f << " slot " << i;
    }
  }
  EXPECT_EQ(sharded->stats().pairs_evaluated,
            concurrent->stats().pairs_evaluated);
}

// Multi-producer ingest: cross-thread interleaving is relaxed, so exact
// list equality is not promised — but flush() must still account for every
// record, and order-insensitive aggregates must match the sync backend.
TEST(CorrelationMinerInterface, ConcurrentMultiProducerFlushLosesNothing) {
  const Trace t = make_paper_trace(TraceKind::kHP, 23, 0.02);
  MinerOptions opts;
  opts.shards = 4;
  opts.ingest_threads = 4;
  const auto sharded = make_miner("sharded", FarmerConfig{}, t.dict, opts);
  const auto concurrent =
      make_miner("concurrent", FarmerConfig{}, t.dict, opts);
  sharded->observe_batch(t.records);

  // Partition by process (stream affinity), one producer thread each.
  const auto parts = testing::partition_by_process(t.records, 4);
  testing::replay_partitioned(*concurrent, parts, /*chunk=*/64);
  concurrent->flush();

  const MinerStats sc = concurrent->stats();
  EXPECT_EQ(sc.requests, t.records.size());
  EXPECT_EQ(sc.pending, 0u);
  // N_f is order-independent: must match the sync backend exactly.
  for (std::uint32_t f = 0; f < t.file_count(); ++f)
    EXPECT_EQ(sharded->access_count(FileId(f)),
              concurrent->access_count(FileId(f)))
        << "file " << f;
}

// Regression: a single batch larger than the backpressure bound must be
// admitted once the drain catches up — refusing it would live-lock the
// producer forever (pending_ can never shrink below an un-admitted batch).
TEST(CorrelationMinerInterface, ConcurrentAdmitsBatchLargerThanMaxPending) {
  const Trace t = make_paper_trace(TraceKind::kHP, 29, 0.01);
  ASSERT_GT(t.records.size(), 64u);
  MinerOptions opts;
  opts.ingest_threads = 1;
  opts.max_pending = 64;  // far smaller than the one batch below
  const auto miner = make_miner("concurrent", FarmerConfig{}, t.dict, opts);
  miner->observe_batch(t.records);
  miner->flush();
  EXPECT_EQ(miner->stats().requests, t.records.size());
  EXPECT_EQ(miner->stats().pending, 0u);
}

// The MinerStats field contract: synchronous backends report the async-only
// fields as explicit zeros (epoch, pending, cache counters) and an empty
// shard_epochs; the async backend fills all of them. Pinning this down keeps
// "0" meaning "not applicable" instead of "whatever the backend left there".
TEST(MinerStatsContract, SyncBackendsZeroAsyncOnlyFields) {
  const MicroTrace mt = fixed_trace();
  for (const char* backend : {"farmer", "sharded", "nexus"}) {
    const auto miner = make_miner(backend, FarmerConfig{}, mt.dict());
    miner->observe_batch(mt.records());
    miner->flush();  // no-op, but the contract must hold after it too
    const MinerStats s = miner->stats();
    EXPECT_GT(s.requests, 0u) << backend;
    EXPECT_EQ(s.epoch, 0u) << backend;
    EXPECT_EQ(s.pending, 0u) << backend;
    EXPECT_EQ(s.cache_hits, 0u) << backend;
    EXPECT_EQ(s.cache_misses, 0u) << backend;
    EXPECT_EQ(s.publishes, 0u) << backend;
    EXPECT_EQ(s.files_cloned, 0u) << backend;
    EXPECT_EQ(s.bytes_shared, 0u) << backend;
    EXPECT_TRUE(s.shard_epochs.empty()) << backend;
    // Leaf backends never report tenants; empty *means* "not a router".
    EXPECT_TRUE(s.per_tenant.empty()) << backend;
    // Apply counters belong to the sharded batch-apply path alone:
    // single-shard backends report them as explicit zeros.
    if (std::string_view(backend) == "sharded") {
      EXPECT_EQ(s.apply_batches, 1u) << backend;  // one observe_batch above
    } else {
      EXPECT_EQ(s.apply_batches, 0u) << backend;
      EXPECT_EQ(s.apply_parallel_records, 0u) << backend;
    }
  }
}

// The apply-counter side of the contract, pinned at deterministic
// apply_threads settings (the default is "auto" = hardware parallelism,
// which differs per machine): serial apply never counts parallel records,
// multi-lane apply counts every record of every multi-shard batch.
TEST(MinerStatsContract, ShardedApplyCountersFollowLaneCount) {
  const MicroTrace mt = fixed_trace();
  MinerOptions serial;
  serial.shards = 4;
  serial.apply_threads = 1;
  const auto one = make_miner("sharded", FarmerConfig{}, mt.dict(), serial);
  one->observe_batch(mt.records());
  EXPECT_EQ(one->stats().apply_batches, 1u);
  EXPECT_EQ(one->stats().apply_parallel_records, 0u);

  MinerOptions lanes = serial;
  lanes.apply_threads = 4;
  const auto four = make_miner("sharded", FarmerConfig{}, mt.dict(), lanes);
  four->observe_batch(mt.records());
  four->observe_batch(mt.records());
  EXPECT_EQ(four->stats().apply_batches, 2u);
  EXPECT_EQ(four->stats().apply_parallel_records,
            2u * mt.records().size());
}

// The router's side of the stats contract: scalar counters are the sums
// over children (epoch: the max of independent clocks), shard_epochs stays
// empty at the top, and per_tenant carries each child's stats verbatim.
TEST(MinerStatsContract, RouterAggregatesAndBreaksDownPerTenant) {
  constexpr TraceKind kKinds[] = {TraceKind::kHP, TraceKind::kINS};
  const MultiTenantTrace mt = make_multi_tenant_trace(kKinds, 29, 0.02);
  MinerOptions opts;
  opts.shards = 2;
  opts.router_tenants = 2;
  opts.router_backends = "0=concurrent,1=sharded";
  opts.router_tenant_of = mt.tenant_map();
  const auto miner = make_miner("router", FarmerConfig{}, mt.trace.dict,
                                opts);
  miner->observe_batch(mt.trace.records);
  miner->flush();

  const MinerStats s = miner->stats();
  ASSERT_EQ(s.per_tenant.size(), 2u);
  EXPECT_TRUE(s.shard_epochs.empty());
  EXPECT_EQ(s.requests, mt.trace.records.size());
  EXPECT_EQ(s.pending, 0u);  // flush() fanned out as a barrier
  std::uint64_t req = 0, pairs = 0, shards = 0, max_epoch = 0;
  for (const MinerStats& ts : s.per_tenant) {
    EXPECT_GT(ts.requests, 0u) << "a tenant saw no records";
    EXPECT_TRUE(ts.per_tenant.empty()) << "children cannot nest";
    req += ts.requests;
    pairs += ts.pairs_evaluated;
    shards += ts.shards;
    max_epoch = std::max(max_epoch, ts.epoch);
  }
  EXPECT_EQ(s.requests, req);
  EXPECT_EQ(s.pairs_evaluated, pairs);
  EXPECT_EQ(s.shards, shards);
  EXPECT_EQ(s.epoch, max_epoch);
  // The concurrent tenant published at least once; the sharded tenant's
  // async-only fields honor the sync-zero contract inside the breakdown.
  EXPECT_GE(s.per_tenant[0].epoch, 1u);
  EXPECT_EQ(s.per_tenant[1].epoch, 0u);
  EXPECT_TRUE(s.per_tenant[1].shard_epochs.empty());
}

// Mixed-tenant flush barrier: with every tenant asynchronous, one router
// flush() must leave *all* children fully published — nothing pending
// anywhere, every accepted record visible to queries.
TEST(CorrelationMinerInterface, RouterFlushIsABarrierAcrossTenants) {
  constexpr TraceKind kKinds[] = {TraceKind::kHP, TraceKind::kINS};
  const MultiTenantTrace mt = make_multi_tenant_trace(kKinds, 31, 0.02);
  MinerOptions opts;
  opts.shards = 2;
  opts.router_tenants = 2;
  opts.router_backends = "concurrent";
  opts.router_tenant_of = mt.tenant_map();
  const auto miner = make_miner("router", FarmerConfig{}, mt.trace.dict,
                                opts);
  constexpr std::size_t kChunk = 128;
  for (std::size_t i = 0; i < mt.trace.records.size(); i += kChunk) {
    const std::size_t n = std::min(kChunk, mt.trace.records.size() - i);
    miner->observe_batch(
        std::span<const TraceRecord>(&mt.trace.records[i], n));
  }
  miner->flush();
  const MinerStats s = miner->stats();
  EXPECT_EQ(s.requests, mt.trace.records.size());
  EXPECT_EQ(s.pending, 0u);
  for (const MinerStats& ts : s.per_tenant) EXPECT_EQ(ts.pending, 0u);
}

TEST(MinerStatsContract, ConcurrentReportsPerShardEpochs) {
  const MicroTrace mt = fixed_trace();
  MinerOptions opts;
  opts.shards = 4;
  const auto miner = make_miner("concurrent", FarmerConfig{}, mt.dict(),
                                opts);
  miner->observe_batch(mt.records());
  miner->flush();
  const MinerStats s = miner->stats();
  ASSERT_EQ(s.shard_epochs.size(), 4u);
  EXPECT_GE(s.epoch, 1u);
  // Every apply round touches only the shards its records route to, so no
  // shard can have published more often than the global round count —
  // and at least one shard must have published.
  std::uint64_t max_shard = 0;
  for (const std::uint64_t e : s.shard_epochs)
    max_shard = std::max(max_shard, e);
  EXPECT_GE(max_shard, 1u);
  EXPECT_LE(max_shard, s.epoch);
  // Publish accounting is live on the async backend: every epoch is one
  // table publication (with coalescing off by default they are identical).
  EXPECT_EQ(s.publishes, s.epoch);
  // Cache disabled by default: counters stay zero even though queries ran.
  (void)miner->correlators(FileId(0));
  EXPECT_EQ(miner->stats().cache_hits, 0u);
  EXPECT_EQ(miner->stats().cache_misses, 0u);
}

// Differential guarantee for the query cache: with caching on, every answer
// — cold, warm, or served across epoch advances — must be byte-identical to
// the uncached merge, under interleaved ingest/flush/query cycles. The
// cached miner is also queried twice per file so the second read exercises
// the hit path, not just the fill path.
TEST(CorrelationMinerInterface, CachedAnswersEqualUncachedUnderInterleavedIngest) {
  const Trace t = make_paper_trace(TraceKind::kHP, 31, 0.02);
  MinerOptions opts;
  opts.shards = 4;
  MinerOptions cached_opts = opts;
  cached_opts.query_cache_capacity = 256;  // small: exercises eviction too
  const auto uncached = make_miner("concurrent", FarmerConfig{}, t.dict,
                                   opts);
  const auto cached = make_miner("concurrent", FarmerConfig{}, t.dict,
                                 cached_opts);

  constexpr std::size_t kChunk = 512;
  for (std::size_t i = 0; i < t.records.size(); i += kChunk) {
    const std::size_t n = std::min(kChunk, t.records.size() - i);
    const std::span<const TraceRecord> chunk(&t.records[i], n);
    uncached->observe_batch(chunk);
    cached->observe_batch(chunk);
    uncached->flush();
    cached->flush();
    // Mid-stream queries: warm the cache, then compare the hit against the
    // uncached merge at the same published state.
    for (std::uint32_t f = 0; f < t.file_count(); f += 7) {
      (void)cached->correlators(FileId(f));  // fill (or revalidate)
      const auto lc = cached->correlators(FileId(f));
      const auto lu = uncached->correlators(FileId(f));
      ASSERT_EQ(lc.size(), lu.size()) << "file " << f << " at record " << i;
      for (std::size_t k = 0; k < lc.size(); ++k) {
        EXPECT_EQ(lc[k].file, lu[k].file) << "file " << f << " slot " << k;
        EXPECT_EQ(lc[k].degree, lu[k].degree)
            << "file " << f << " slot " << k;
      }
    }
  }
  const MinerStats sc = cached->stats();
  EXPECT_GT(sc.cache_hits, 0u);   // the hit path really ran
  EXPECT_GT(sc.cache_misses, 0u); // so did fills/invalidations
  // And the final state still matches the synchronous reference.
  const auto sharded = make_miner("sharded", FarmerConfig{}, t.dict, opts);
  sharded->observe_batch(t.records);
  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    const auto lc = cached->correlators(FileId(f));
    const auto ls = sharded->correlators(FileId(f));
    ASSERT_EQ(lc.size(), ls.size()) << "file " << f;
    for (std::size_t k = 0; k < lc.size(); ++k)
      EXPECT_EQ(lc[k].degree, ls[k].degree) << "file " << f << " slot " << k;
  }
}

// ----------------------------------------------------------------- router --

// The router's single-tenant degenerate case must vanish entirely: every
// record and every query forwards to the one child, so the output is
// byte-identical to the direct backend — lists, degrees, counters, the lot.
TEST(RouterDifferential, SingleTenantFarmerIsByteIdentical) {
  const Trace t = make_paper_trace(TraceKind::kHP, 17, 0.02);
  const FarmerConfig cfg;
  MinerOptions one;
  one.router_tenants = 1;  // default backend spec: "farmer"
  const auto direct = make_miner("farmer", cfg, t.dict);
  const auto routed = make_miner("router", cfg, t.dict, one);
  EXPECT_STREQ(routed->name(), "router");

  routed->observe_batch(t.records);
  direct->observe_batch(t.records);

  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    const auto ld = direct->correlators(FileId(f));
    const auto lr = routed->correlators(FileId(f));
    ASSERT_EQ(ld.size(), lr.size()) << "file " << f;
    for (std::size_t i = 0; i < ld.size(); ++i) {
      EXPECT_EQ(ld[i].file, lr[i].file) << "file " << f << " slot " << i;
      EXPECT_EQ(ld[i].degree, lr[i].degree) << "file " << f << " slot " << i;
    }
    EXPECT_EQ(direct->access_count(FileId(f)),
              routed->access_count(FileId(f)));
    EXPECT_EQ(direct->correlation_degree(FileId(f), FileId(0)),
              routed->correlation_degree(FileId(f), FileId(0)));
    EXPECT_EQ(direct->semantic_similarity(FileId(f), FileId(0)),
              routed->semantic_similarity(FileId(f), FileId(0)));
    EXPECT_EQ(direct->access_frequency(FileId(f), FileId(0)),
              routed->access_frequency(FileId(f), FileId(0)));
  }
  const MinerStats sd = direct->stats();
  const MinerStats sr = routed->stats();
  EXPECT_EQ(sd.requests, sr.requests);
  EXPECT_EQ(sd.pairs_evaluated, sr.pairs_evaluated);
  EXPECT_EQ(sd.pairs_accepted, sr.pairs_accepted);
  EXPECT_EQ(sd.pairs_filtered, sr.pairs_filtered);
}

// Same degenerate case over the async backend: flush() must propagate as a
// barrier through the router, after which the byte-identity holds.
TEST(RouterDifferential, SingleTenantConcurrentMatchesDirectAfterFlush) {
  const Trace t = make_paper_trace(TraceKind::kHP, 19, 0.02);
  const FarmerConfig cfg;
  MinerOptions opts;
  opts.shards = 4;
  MinerOptions one = opts;
  one.router_tenants = 1;
  one.router_backends = "concurrent";
  const auto direct = make_miner("concurrent", cfg, t.dict, opts);
  const auto routed = make_miner("router", cfg, t.dict, one);

  routed->observe_batch(t.records);
  direct->observe_batch(t.records);
  routed->flush();
  direct->flush();

  EXPECT_EQ(routed->stats().pending, 0u);
  for (std::uint32_t f = 0; f < t.file_count(); ++f) {
    const auto ld = direct->correlators(FileId(f));
    const auto lr = routed->correlators(FileId(f));
    ASSERT_EQ(ld.size(), lr.size()) << "file " << f;
    for (std::size_t i = 0; i < ld.size(); ++i) {
      EXPECT_EQ(ld[i].file, lr[i].file) << "file " << f << " slot " << i;
      EXPECT_EQ(ld[i].degree, lr[i].degree) << "file " << f << " slot " << i;
    }
  }
}

// The partitioning contract: a router over N tenants answers every query
// exactly as N dedicated miners would, each fed only its tenant's records.
TEST(RouterDifferential, MixedTenantsMatchPerTenantDirectMiners) {
  constexpr TraceKind kKinds[] = {TraceKind::kHP, TraceKind::kINS};
  const MultiTenantTrace mt = make_multi_tenant_trace(kKinds, 23, 0.02);
  const FarmerConfig cfg;

  MinerOptions ropts;
  ropts.router_tenants = 2;
  ropts.router_tenant_of = mt.tenant_map();
  const auto routed = make_miner("router", cfg, mt.trace.dict, ropts);
  routed->observe_batch(mt.trace.records);

  std::vector<std::unique_ptr<CorrelationMiner>> direct;
  for (int tnt = 0; tnt < 2; ++tnt)
    direct.push_back(make_miner("farmer", cfg, mt.trace.dict));
  for (const auto& r : mt.trace.records)
    direct[mt.tenant_of(r.file)]->observe(r);

  for (std::uint32_t f = 0; f < mt.trace.file_count(); ++f) {
    const auto& owner = *direct[mt.tenant_of(FileId(f))];
    const auto ld = owner.correlators(FileId(f));
    const auto lr = routed->correlators(FileId(f));
    ASSERT_EQ(ld.size(), lr.size()) << "file " << f;
    for (std::size_t i = 0; i < ld.size(); ++i) {
      EXPECT_EQ(ld[i].file, lr[i].file) << "file " << f << " slot " << i;
      EXPECT_EQ(ld[i].degree, lr[i].degree) << "file " << f << " slot " << i;
    }
    EXPECT_EQ(owner.access_count(FileId(f)), routed->access_count(FileId(f)));
  }
  // Cross-tenant pairs answer 0 from the owning tenant — the isolation
  // contract (tenant 0 never mined a tenant-1 file).
  const FileId t0(0), t1(mt.file_begin[1]);
  EXPECT_EQ(routed->correlation_degree(t0, t1), 0.0);
  EXPECT_EQ(routed->access_frequency(t0, t1), 0.0);
}

TEST(RouterSpec, ParsesSingleNameAndPerTenantItems) {
  MinerOptions base;
  const auto all = parse_router_backends("concurrent", 3, base);
  ASSERT_EQ(all.size(), 3u);
  for (const auto& s : all) EXPECT_EQ(s.backend, "concurrent");

  const auto mixed = parse_router_backends("1=sharded,*=nexus", 3, base);
  EXPECT_EQ(mixed[0].backend, "nexus");
  EXPECT_EQ(mixed[1].backend, "sharded");
  EXPECT_EQ(mixed[2].backend, "nexus");

  const auto defaulted = parse_router_backends("", 2, base);
  EXPECT_EQ(defaulted[0].backend, "farmer");
  EXPECT_EQ(defaulted[1].backend, "farmer");
}

TEST(RouterSpec, RejectsMalformedAndNestedSpecs) {
  MinerOptions base;
  EXPECT_THROW((void)parse_router_backends("5=farmer", 2, base),
               std::invalid_argument);  // index out of range
  EXPECT_THROW((void)parse_router_backends("0=farmer,0=nexus", 2, base),
               std::invalid_argument);  // duplicate tenant
  EXPECT_THROW((void)parse_router_backends("x=farmer", 2, base),
               std::invalid_argument);  // bad index
  EXPECT_THROW((void)parse_router_backends("0=", 2, base),
               std::invalid_argument);  // empty name
  EXPECT_THROW((void)parse_router_backends("router", 2, base),
               std::invalid_argument);  // no nesting
  EXPECT_THROW((void)parse_router_backends("*=farmer,*=nexus", 2, base),
               std::invalid_argument);  // duplicate default
  // A bare name inside a list is rejected, not silently promoted to the
  // wildcard default (positional syntax is not supported).
  EXPECT_THROW((void)parse_router_backends("0=concurrent,sharded", 3, base),
               std::invalid_argument);
  EXPECT_THROW((void)parse_router_backends("concurrent,sharded", 2, base),
               std::invalid_argument);
  EXPECT_THROW((void)parse_router_backends("farmer", 0, base),
               std::invalid_argument);  // zero tenants
  // Unknown backend names surface from make_miner, naming the registry.
  MicroTrace mtrace;
  (void)mtrace.file("a", "/p/a");
  MinerOptions opts;
  opts.router_tenants = 2;
  opts.router_backends = "no-such-backend";
  EXPECT_THROW((void)make_miner("router", FarmerConfig{}, mtrace.dict(), opts),
               std::invalid_argument);
}

TEST(RouterSpec, HeterogeneousChildrenPlugInPerTenant) {
  MicroTrace mtrace;
  (void)mtrace.file("a", "/p/a");
  MinerOptions opts;
  opts.router_tenants = 3;
  opts.router_backends = "0=concurrent,1=sharded,*=farmer";
  const auto miner = make_miner("router", FarmerConfig{}, mtrace.dict(), opts);
  const auto* router = dynamic_cast<const MinerRouter*>(miner.get());
  ASSERT_NE(router, nullptr);
  ASSERT_EQ(router->tenant_count(), 3u);
  EXPECT_STREQ(router->tenant(0).name(), "concurrent");
  EXPECT_STREQ(router->tenant(1).name(), "sharded");
  EXPECT_STREQ(router->tenant(2).name(), "farmer");
}

TEST(RouterSpec, TenantMapsFoldIntoRange) {
  const auto range = MinerRouter::range_tenants(4, 100);
  EXPECT_EQ(range(FileId(0)), 0u);
  EXPECT_EQ(range(FileId(24)), 0u);
  EXPECT_EQ(range(FileId(25)), 1u);
  EXPECT_EQ(range(FileId(99)), 3u);
  // Ids past the population (including the invalid sentinel) clamp.
  EXPECT_EQ(range(FileId(1000)), 3u);
  EXPECT_EQ(range(FileId()), 3u);
  const auto hash = MinerRouter::hash_tenants(4);
  for (std::uint32_t f = 0; f < 64; ++f) EXPECT_LT(hash(FileId(f)), 4u);
}

TEST(CorrelationMinerInterface, NexusIsSequenceOnly) {
  const MicroTrace mt = fixed_trace();
  const auto nexus = make_miner("nexus", FarmerConfig{}, mt.dict());
  nexus->observe_batch(mt.records());
  const FileId a(0), b(1);
  // No semantic component is ever reported ...
  EXPECT_EQ(nexus->semantic_similarity(a, b), 0.0);
  // ... and the degree equals the raw access frequency (p = 0 reduction).
  EXPECT_NEAR(nexus->correlation_degree(a, b), nexus->access_frequency(a, b),
              1e-12);
  EXPECT_FALSE(nexus->snapshot(a).empty());
}

// --------------------------------------------------------------- snapshot --

TEST(CorrelatorView, FarmerSnapshotBorrowsShardedSnapshotOwns) {
  const MicroTrace mt = fixed_trace();
  const auto serial = make_miner("farmer", FarmerConfig{}, mt.dict());
  MinerOptions opts;
  opts.shards = 4;
  const auto sharded = make_miner("sharded", FarmerConfig{}, mt.dict(), opts);
  serial->observe_batch(mt.records());
  sharded->observe_batch(mt.records());

  const CorrelatorView borrowed = serial->snapshot(FileId(0));
  ASSERT_FALSE(borrowed.empty());
  EXPECT_FALSE(borrowed.owns_storage());

  const CorrelatorView owned = sharded->snapshot(FileId(0));
  ASSERT_FALSE(owned.empty());
  EXPECT_TRUE(owned.owns_storage());
}

TEST(CorrelatorView, OwningSnapshotIsImmutableUnderFurtherIngest) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  const FileId b = mt.file("b", "/p/b");
  for (int i = 0; i < 6; ++i) {
    mt.access(a);
    mt.access(b);
  }
  const auto miner = make_miner("sharded", FarmerConfig{}, mt.dict());
  miner->observe_batch(mt.records());
  const CorrelatorView snap = miner->snapshot(a);
  ASSERT_FALSE(snap.empty());
  const FileId first = snap[0].file;
  const float degree = snap[0].degree;
  // Keep mining; the held snapshot must not change underneath the reader.
  for (const auto& r : mt.records()) miner->observe(r);
  EXPECT_EQ(snap[0].file, first);
  EXPECT_FLOAT_EQ(snap[0].degree, degree);
}

TEST(CorrelatorView, MoveTransfersOwnedStorage) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  const FileId b = mt.file("b", "/p/b");
  for (int i = 0; i < 4; ++i) {
    mt.access(a);
    mt.access(b);
  }
  const auto miner = make_miner("sharded", FarmerConfig{}, mt.dict());
  miner->observe_batch(mt.records());
  CorrelatorView snap = miner->snapshot(a);
  ASSERT_FALSE(snap.empty());
  const std::size_t n = snap.size();
  const CorrelatorView moved = std::move(snap);
  EXPECT_EQ(moved.size(), n);
  EXPECT_TRUE(moved.owns_storage());
}

// ----------------------------------------------- cluster differential ----

// The tentpole gate of the distributed backend: "cluster" over the
// loopback transport, flushed, must answer byte-identically to "sharded"
// on the same stream — same partitioning, same per-shard models, same
// merge arithmetic, with every float crossing the wire as a raw bit
// pattern. Compares the full query surface bitwise AND the serialized
// per-shard model blobs byte-for-byte.
TEST(ClusterDifferential, LoopbackFlushThenQueryMatchesSharded) {
  const Trace t = make_paper_trace(TraceKind::kHP, 17, 0.02);
  const FarmerConfig cfg;
  MinerOptions opts;
  opts.shards = 3;
  opts.cluster_shards = 3;
  const auto sharded = make_miner("sharded", cfg, t.dict, opts);
  const auto cluster = make_miner("cluster", cfg, t.dict, opts);
  EXPECT_STREQ(cluster->name(), "cluster");

  constexpr std::size_t kChunk = 128;
  for (std::size_t i = 0; i < t.records.size(); i += kChunk) {
    const std::size_t n = std::min(kChunk, t.records.size() - i);
    const std::span<const TraceRecord> chunk(&t.records[i], n);
    sharded->observe_batch(chunk);
    cluster->observe_batch(chunk);
  }
  cluster->flush();

  const auto files = static_cast<std::uint32_t>(t.dict->files.size());
  for (std::uint32_t f = 0; f < files; ++f) {
    const FileId id(f);
    ASSERT_EQ(sharded->access_count(id), cluster->access_count(id))
        << "file " << f;
    const CorrelatorView ls = sharded->snapshot(id);
    const CorrelatorView lc = cluster->snapshot(id);
    ASSERT_EQ(ls.size(), lc.size()) << "file " << f;
    for (std::size_t i = 0; i < ls.size(); ++i) {
      EXPECT_EQ(ls[i].file, lc[i].file) << "file " << f << " slot " << i;
      EXPECT_EQ(std::bit_cast<std::uint32_t>(ls[i].degree),
                std::bit_cast<std::uint32_t>(lc[i].degree))
          << "file " << f << " slot " << i;
    }
  }
  for (std::uint32_t a = 0; a < files; a += 13) {
    for (std::uint32_t b = 0; b < files; b += 31) {
      const FileId fa(a), fb(b);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(
                    sharded->correlation_degree(fa, fb)),
                std::bit_cast<std::uint64_t>(
                    cluster->correlation_degree(fa, fb)));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(
                    sharded->semantic_similarity(fa, fb)),
                std::bit_cast<std::uint64_t>(
                    cluster->semantic_similarity(fa, fb)));
      EXPECT_EQ(
          std::bit_cast<std::uint64_t>(sharded->access_frequency(fa, fb)),
          std::bit_cast<std::uint64_t>(cluster->access_frequency(fa, fb)));
    }
  }

  const MinerStats ss = sharded->stats();
  const MinerStats sc = cluster->stats();
  EXPECT_EQ(ss.requests, sc.requests);
  EXPECT_EQ(ss.pairs_evaluated, sc.pairs_evaluated);
  EXPECT_EQ(ss.pairs_accepted, sc.pairs_accepted);
  EXPECT_EQ(ss.pairs_filtered, sc.pairs_filtered);
  EXPECT_EQ(sc.shards, 3u);
  EXPECT_EQ(sc.pending, 0u);

  // Serialized-model gate: each remote shard's full model state, exported
  // over the wire, is byte-for-byte the blob the equivalent local sharded
  // shard serializes to.
  const auto* sh = dynamic_cast<const ShardedFarmer*>(sharded.get());
  const auto* cl = dynamic_cast<const net::ClusterMiner*>(cluster.get());
  ASSERT_NE(sh, nullptr);
  ASSERT_NE(cl, nullptr);
  ASSERT_EQ(sh->shard_count(), cl->shard_count());
  for (std::size_t s = 0; s < sh->shard_count(); ++s)
    EXPECT_EQ(persist::serialize_shard(sh->shard(s)),
              cl->export_shard_model(s))
        << "shard " << s;
}

// cluster save() writes a standard checkpoint a local sharded miner can
// load(): the distributed model is portable back into one process.
TEST(ClusterDifferential, SaveIsLoadableBySharded) {
  const MicroTrace mt = fixed_trace();
  MinerOptions opts;
  opts.shards = 2;
  opts.cluster_shards = 2;
  const auto cluster = make_miner("cluster", FarmerConfig{}, mt.dict(), opts);
  cluster->observe_batch(mt.records());
  cluster->flush();

  const std::string dir = ::testing::TempDir() + "cluster_save_load";
  std::filesystem::remove_all(dir);
  cluster->save(dir);
  auto loaded = make_miner("sharded", FarmerConfig{}, mt.dict(), opts);
  loaded->load(dir);
  const auto files = static_cast<std::uint32_t>(mt.dict()->files.size());
  for (std::uint32_t f = 0; f < files; ++f) {
    const FileId id(f);
    EXPECT_EQ(cluster->access_count(id), loaded->access_count(id));
    const CorrelatorView a = cluster->snapshot(id);
    const CorrelatorView b = loaded->snapshot(id);
    ASSERT_EQ(a.size(), b.size()) << "file " << f;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].file, b[i].file);
      EXPECT_EQ(std::bit_cast<std::uint32_t>(a[i].degree),
                std::bit_cast<std::uint32_t>(b[i].degree));
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace farmer
