// Tests for Section 4.3: rule propagation and replica grouping over mined
// correlations.
#include <gtest/gtest.h>

#include "core/farmer.hpp"
#include "core/policy_propagation.hpp"
#include "test_helpers.hpp"

namespace farmer {
namespace {

using testing::MicroTrace;

/// Two strongly-correlated chains a1->a2->a3 and b1->b2, plus a loner.
struct PolicyFixture {
  MicroTrace mt;
  FileId a1, a2, a3, b1, b2, lone;
  std::unique_ptr<Farmer> model;

  PolicyFixture() {
    a1 = mt.file("a1", "/h/u/ga/a1");
    a2 = mt.file("a2", "/h/u/ga/a2");
    a3 = mt.file("a3", "/h/u/ga/a3");
    b1 = mt.file("b1", "/h/u/gb/b1");
    b2 = mt.file("b2", "/h/u/gb/b2");
    lone = mt.file("lone", "/tmp/x");
    for (int i = 0; i < 6; ++i) {
      mt.access(a1, "u0", "pa", "ha");
      mt.access(a2, "u0", "pa", "ha");
      mt.access(a3, "u0", "pa", "ha");
      mt.access(b1, "u1", "pb", "hb");
      mt.access(b2, "u1", "pb", "hb");
    }
    mt.access(lone, "u2", "pc", "hc");
    model = std::make_unique<Farmer>(FarmerConfig{}, mt.dict());
    for (const auto& r : mt.records()) model->observe(r);
  }
};

TEST(RulePropagation, SpreadsAlongStrongCorrelations) {
  PolicyFixture fx;
  const auto result = propagate_rule(*fx.model, fx.a1, PropagationConfig{});
  EXPECT_TRUE(result.covers(fx.a1));
  EXPECT_TRUE(result.covers(fx.a2));
  EXPECT_TRUE(result.covers(fx.a3));
  EXPECT_FALSE(result.covers(fx.b1));
  EXPECT_FALSE(result.covers(fx.lone));
}

TEST(RulePropagation, SeedAlwaysIncludedEvenWithoutCorrelations) {
  PolicyFixture fx;
  const auto result = propagate_rule(*fx.model, fx.lone, PropagationConfig{});
  ASSERT_EQ(result.files.size(), 1u);
  EXPECT_EQ(result.files[0], fx.lone);
  EXPECT_EQ(result.hop[0], 0);
}

TEST(RulePropagation, HopLimitBoundsSpread) {
  PolicyFixture fx;
  PropagationConfig cfg;
  cfg.max_hops = 0;  // seed only
  const auto result = propagate_rule(*fx.model, fx.a1, cfg);
  EXPECT_EQ(result.files.size(), 1u);
}

TEST(RulePropagation, FileCapBoundsSpread) {
  PolicyFixture fx;
  PropagationConfig cfg;
  cfg.max_files = 2;
  const auto result = propagate_rule(*fx.model, fx.a1, cfg);
  EXPECT_LE(result.files.size(), 2u);
}

TEST(RulePropagation, HopsAreBfsDistances) {
  PolicyFixture fx;
  const auto result = propagate_rule(*fx.model, fx.a1, PropagationConfig{});
  ASSERT_EQ(result.files.size(), result.hop.size());
  EXPECT_EQ(result.hop[0], 0);  // seed
  for (std::size_t i = 1; i < result.hop.size(); ++i)
    EXPECT_GE(result.hop[i], result.hop[i - 1]);  // BFS order
}

TEST(RuleRegistry, RulesForReturnsPropagatedRules) {
  PolicyFixture fx;
  RuleRegistry registry(*fx.model);
  registry.attach(fx.a1, {"secure-delete", true}, PropagationConfig{});
  registry.attach(fx.b1, {"audit", false}, PropagationConfig{});
  EXPECT_EQ(registry.rule_count(), 2u);

  const auto on_a3 = registry.rules_for(fx.a3);
  ASSERT_EQ(on_a3.size(), 1u);
  EXPECT_EQ(on_a3[0].name, "secure-delete");
  EXPECT_TRUE(on_a3[0].deny);

  const auto on_b2 = registry.rules_for(fx.b2);
  ASSERT_EQ(on_b2.size(), 1u);
  EXPECT_EQ(on_b2[0].name, "audit");

  EXPECT_TRUE(registry.rules_for(fx.lone).empty());
}

TEST(ReplicaGroups, GroupsStrongComponents) {
  PolicyFixture fx;
  const auto groups = build_replica_groups(
      *fx.model, fx.mt.dict()->files.size(), ReplicaGroupingConfig{});
  ASSERT_GE(groups.size(), 2u);
  // Find the group containing a1: must contain exactly the a-chain.
  bool found_a = false;
  for (const auto& g : groups) {
    const bool has_a1 =
        std::find(g.members.begin(), g.members.end(), fx.a1) !=
        g.members.end();
    if (!has_a1) continue;
    found_a = true;
    EXPECT_NE(std::find(g.members.begin(), g.members.end(), fx.a2),
              g.members.end());
    EXPECT_EQ(std::find(g.members.begin(), g.members.end(), fx.b1),
              g.members.end());
    EXPECT_GE(g.min_internal_degree, 0.6);
  }
  EXPECT_TRUE(found_a);
}

TEST(ReplicaGroups, SingletonsNotReported) {
  PolicyFixture fx;
  const auto groups = build_replica_groups(
      *fx.model, fx.mt.dict()->files.size(), ReplicaGroupingConfig{});
  for (const auto& g : groups) {
    EXPECT_GE(g.members.size(), 2u);
    const bool has_lone =
        std::find(g.members.begin(), g.members.end(), fx.lone) !=
        g.members.end();
    EXPECT_FALSE(has_lone);
  }
}

TEST(ReplicaGroups, SizeCapRespected) {
  MicroTrace mt;
  std::vector<FileId> files;
  for (int i = 0; i < 10; ++i)
    files.push_back(
        mt.file("f" + std::to_string(i), "/g/f" + std::to_string(i)));
  for (int rep = 0; rep < 6; ++rep)
    for (const FileId f : files) mt.access(f);
  Farmer model(FarmerConfig{}, mt.dict());
  for (const auto& r : mt.records()) model.observe(r);
  ReplicaGroupingConfig cfg;
  cfg.max_group_files = 3;
  const auto groups =
      build_replica_groups(model, mt.dict()->files.size(), cfg);
  for (const auto& g : groups) EXPECT_LE(g.members.size(), 3u);
}

}  // namespace
}  // namespace farmer
