// Tests for the predictor implementations and the replay engine.
#include <gtest/gtest.h>

#include "prefetch/fpa.hpp"
#include "prefetch/nexus.hpp"
#include "prefetch/probability_graph.hpp"
#include "prefetch/replay.hpp"
#include "prefetch/sd_graph.hpp"
#include "prefetch/successor.hpp"
#include "test_helpers.hpp"

namespace farmer {
namespace {

using testing::MicroTrace;

PredictionList predict(Predictor& p, const TraceRecord& rec,
                       std::size_t limit = 8) {
  PredictionList out;
  p.predict(rec, limit, out);
  return out;
}

// -------------------------------------------------------- LastSuccessor --

TEST(LastSuccessor, PredictsMostRecentFollower) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b"), c = mt.file("c");
  LastSuccessorPredictor p;
  p.observe(mt.access(a));
  p.observe(mt.access(b));
  p.observe(mt.access(a));
  p.observe(mt.access(c));  // successor of a is now c
  const auto& rec = mt.access(a);
  p.observe(rec);
  const auto out = predict(p, rec);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], c);
}

TEST(LastSuccessor, NoPredictionForUnseenFile) {
  MicroTrace mt;
  const FileId a = mt.file("a");
  LastSuccessorPredictor p;
  const auto& rec = mt.access(a);
  p.observe(rec);
  EXPECT_TRUE(predict(p, rec).empty());
}

TEST(FirstSuccessor, NeverOverwrites) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b"), c = mt.file("c");
  FirstSuccessorPredictor p;
  p.observe(mt.access(a));
  p.observe(mt.access(b));  // first successor of a = b, forever
  p.observe(mt.access(a));
  p.observe(mt.access(c));
  const auto& rec = mt.access(a);
  p.observe(rec);
  const auto out = predict(p, rec);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], b);
}

TEST(RecentPopularity, RequiresJOutOfK) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b"), c = mt.file("c"),
               d = mt.file("d");
  RecentPopularityPredictor p({/*k=*/4, /*j=*/2});
  // successors of a: b, c, d -> none reaches multiplicity 2.
  p.observe(mt.access(a));
  p.observe(mt.access(b));
  p.observe(mt.access(a));
  p.observe(mt.access(c));
  p.observe(mt.access(a));
  p.observe(mt.access(d));
  const auto& r1 = mt.access(a);
  p.observe(r1);
  EXPECT_TRUE(predict(p, r1).empty());
  // One more b: history (c, d, b, b)? -> b has multiplicity 2.
  p.observe(mt.access(b));
  const auto& r2 = mt.access(a);
  p.observe(r2);
  const auto out = predict(p, r2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], b);
}

// ----------------------------------------------------------- PBS / PULS --

TEST(Pbs, SeparatesProgramContexts) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b"), c = mt.file("c");
  ContextualLastSuccessorPredictor p(
      ContextualLastSuccessorPredictor::Mode::kProgram);
  // Program gcc: a -> b.  Program vim: a -> c. Interleaved they would
  // corrupt plain LS; PBS keeps them separate.
  p.observe(mt.access(a, "u0", "p1", "h0", "gcc"));
  p.observe(mt.access(a, "u1", "p2", "h0", "vim"));
  p.observe(mt.access(b, "u0", "p1", "h0", "gcc"));
  p.observe(mt.access(c, "u1", "p2", "h0", "vim"));

  const auto& rg = mt.access(a, "u0", "p3", "h0", "gcc");
  p.observe(rg);
  auto out = predict(p, rg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], b);

  const auto& rv = mt.access(a, "u1", "p4", "h0", "vim");
  p.observe(rv);
  out = predict(p, rv);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], c);
}

TEST(Puls, SeparatesUserWithinProgram) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b"), c = mt.file("c");
  ContextualLastSuccessorPredictor p(
      ContextualLastSuccessorPredictor::Mode::kProgramUser);
  // Same program, two users with different habits.
  p.observe(mt.access(a, "alice", "p1", "h0", "gcc"));
  p.observe(mt.access(b, "alice", "p1", "h0", "gcc"));
  p.observe(mt.access(a, "bob", "p2", "h0", "gcc"));
  p.observe(mt.access(c, "bob", "p2", "h0", "gcc"));

  const auto& ra = mt.access(a, "alice", "p3", "h0", "gcc");
  p.observe(ra);
  auto out = predict(p, ra);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], b);
}

TEST(Pbs, NamesDependOnMode) {
  ContextualLastSuccessorPredictor pbs(
      ContextualLastSuccessorPredictor::Mode::kProgram);
  ContextualLastSuccessorPredictor puls(
      ContextualLastSuccessorPredictor::Mode::kProgramUser);
  EXPECT_STREQ(pbs.name(), "PBS");
  EXPECT_STREQ(puls.name(), "PULS");
}

// ---------------------------------------------------------------- Nexus --

TEST(Nexus, RanksByAccumulatedWeight) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b"), c = mt.file("c");
  NexusPredictor p;
  // a -> b three times, a -> c twice; both exceed the pruning floor.
  for (int i = 0; i < 3; ++i) {
    p.observe(mt.access(a));
    p.observe(mt.access(b));
  }
  for (int i = 0; i < 2; ++i) {
    p.observe(mt.access(a));
    p.observe(mt.access(c));
  }
  const auto& rec = mt.access(a);
  p.observe(rec);
  const auto out = predict(p, rec);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[0], b);
  EXPECT_EQ(out[1], c);
}

TEST(Nexus, PrunesSingleObservationEdges) {
  MicroTrace mt;
  const FileId a = mt.file("a"), z = mt.file("z");
  NexusPredictor p;
  // One observation accumulates at most 1.0 < min_weight (1.5): no
  // prefetch from a single co-occurrence.
  p.observe(mt.access(a));
  p.observe(mt.access(z));
  const auto& rec = mt.access(a);
  p.observe(rec);
  EXPECT_TRUE(predict(p, rec).empty());
}

TEST(Nexus, NoSemanticFilterPrefetchesCrossContext) {
  // The defining weakness: an interleaved foreign file still gets
  // prefetched because only sequence counts matter.
  MicroTrace mt;
  const FileId a = mt.file("a"), x = mt.file("x");
  NexusPredictor p;
  for (int i = 0; i < 5; ++i) {
    p.observe(mt.access(a, "u0", "pid0"));
    p.observe(mt.access(x, "u9", "pid9"));
  }
  const auto& rec = mt.access(a, "u0", "pid0");
  p.observe(rec);
  const auto out = predict(p, rec);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0], x);
}

TEST(Nexus, GroupSizeCapsPredictions) {
  MicroTrace mt;
  const FileId a = mt.file("a");
  NexusPredictor::Config cfg;
  cfg.prefetch_group = 2;
  NexusPredictor p(cfg);
  for (int i = 0; i < 6; ++i) {
    p.observe(mt.access(a));
    p.observe(mt.access(mt.file("s" + std::to_string(i))));
  }
  const auto& rec = mt.access(a);
  p.observe(rec);
  EXPECT_LE(predict(p, rec).size(), 2u);
}

// ------------------------------------------------------ ProbabilityGraph --

TEST(ProbabilityGraph, ThresholdSuppressesRareSuccessors) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b"), z = mt.file("z");
  ProbabilityGraphPredictor p({/*window=*/1, /*min_chance=*/0.5, 16});
  // b follows a 9 times, z once: P(b|a) = .9, P(z|a) = .1.
  for (int i = 0; i < 9; ++i) {
    p.observe(mt.access(a));
    p.observe(mt.access(b));
  }
  p.observe(mt.access(a));
  p.observe(mt.access(z));
  const auto& rec = mt.access(a);
  p.observe(rec);
  const auto out = predict(p, rec);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], b);
}

// --------------------------------------------------------------- SDGraph --

TEST(SdGraph, HarmonicDecayFavoursCloseSuccessors) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b"), c = mt.file("c");
  SdGraphPredictor p;
  // Sequence a,b,c repeatedly: b at distance 1 (w=1), c at distance 2
  // (w=0.5) from a.
  for (int i = 0; i < 4; ++i) {
    p.observe(mt.access(a));
    p.observe(mt.access(b));
    p.observe(mt.access(c));
  }
  const auto& rec = mt.access(a);
  p.observe(rec);
  const auto out = predict(p, rec);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[0], b);
  EXPECT_EQ(out[1], c);
}

// ------------------------------------------------------------------ FPA --

TEST(Fpa, PredictsOnlyValidCorrelators) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/home/u0/p/a");
  const FileId b = mt.file("b", "/home/u0/p/b");
  const FileId x = mt.file("x", "/var/q/x");
  // Strong intra-context pair a->b; interleaved foreign x from a different
  // user, process, and host.
  for (int i = 0; i < 5; ++i) {
    mt.access(a, "u0", "pid0", "h0");
    mt.access(x, "u9", "pid9", "h9");
    mt.access(b, "u0", "pid0", "h0");
  }
  FarmerConfig cfg;
  FpaPredictor p(cfg, mt.dict());
  for (const auto& r : mt.records()) p.observe(r);
  const auto& rec = mt.records().back();
  // Predict successors of the last accessed 'b'... use an 'a' record:
  const auto& a_rec = mt.records()[mt.records().size() - 3];
  ASSERT_EQ(a_rec.file, a);
  PredictionList out;
  p.predict(a_rec, 8, out);
  // x must not be predicted (filtered); b should be.
  bool has_b = false;
  for (FileId f : out) {
    EXPECT_NE(f, x);
    has_b |= (f == b);
  }
  EXPECT_TRUE(has_b);
  (void)rec;
}

TEST(Fpa, RespectsLimit) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/h/u/g/a");
  std::vector<FileId> members;
  for (int i = 0; i < 6; ++i)
    members.push_back(mt.file("m" + std::to_string(i),
                              "/h/u/g/m" + std::to_string(i)));
  for (int rep = 0; rep < 4; ++rep) {
    mt.access(a);
    for (const FileId m : members) mt.access(m);
  }
  FpaPredictor p(FarmerConfig{}, mt.dict());
  for (const auto& r : mt.records()) p.observe(r);
  const auto& a_rec = mt.records()[mt.records().size() - 7];
  ASSERT_EQ(a_rec.file, a);
  PredictionList out;
  p.predict(a_rec, 2, out);
  EXPECT_LE(out.size(), 2u);
}

TEST(Noop, NeverPredicts) {
  MicroTrace mt;
  NoopPredictor p;
  const auto& rec = mt.access(mt.file("a"));
  p.observe(rec);
  EXPECT_TRUE(predict(p, rec).empty());
}

// ---------------------------------------------------------------- Replay --

TEST(Replay, PerfectlyPredictablePatternGetsHighHitRatio) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b");
  for (int i = 0; i < 100; ++i) {
    mt.access(a);
    mt.access(b);
  }
  const Trace t = mt.build();
  LastSuccessorPredictor p;
  ReplayConfig cfg;
  cfg.cache_capacity = 1;  // only prefetching can save the day
  const auto result = replay_trace(t, p, cfg);
  // With capacity 1 and alternating accesses, every demand access misses
  // under pure LRU; LS prefetching turns most of them into hits.
  EXPECT_GT(result.hit_ratio(), 0.8);
  EXPECT_GT(result.prefetch_accuracy(), 0.8);
}

TEST(Replay, NoopPredictorEqualsPlainCache) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b");
  for (int i = 0; i < 10; ++i) {
    mt.access(a);
    mt.access(b);
  }
  const Trace t = mt.build();
  NoopPredictor p;
  ReplayConfig cfg;
  cfg.cache_capacity = 4;
  const auto result = replay_trace(t, p, cfg);
  // Two compulsory misses, everything else hits; zero prefetches.
  EXPECT_EQ(result.cache.prefetch_inserted, 0u);
  EXPECT_EQ(result.cache.demand.denominator(), 20u);
  EXPECT_EQ(result.cache.demand.numerator(), 18u);
}

TEST(Replay, WarmupDiscardsColdCounters) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b");
  for (int i = 0; i < 50; ++i) {
    mt.access(a);
    mt.access(b);
  }
  const Trace t = mt.build();
  NoopPredictor p1, p2;
  ReplayConfig cold;
  cold.cache_capacity = 4;
  ReplayConfig warm = cold;
  warm.warmup_fraction = 0.5;
  const auto r_cold = replay_trace(t, p1, cold);
  const auto r_warm = replay_trace(t, p2, warm);
  // Warm measurement has no compulsory misses -> strictly better ratio.
  EXPECT_GT(r_warm.hit_ratio(), r_cold.hit_ratio());
  EXPECT_DOUBLE_EQ(r_warm.hit_ratio(), 1.0);
}

TEST(Replay, AccuracyAccountsUnusedPrefetches) {
  MicroTrace mt;
  const FileId a = mt.file("a"), b = mt.file("b"), c = mt.file("c");
  // First successor of a is b (once); later always c. FS keeps predicting
  // b which is never accessed again => low accuracy.
  mt.access(a);
  mt.access(b);
  for (int i = 0; i < 20; ++i) {
    mt.access(a);
    mt.access(c);
  }
  const Trace t = mt.build();
  FirstSuccessorPredictor p;
  ReplayConfig cfg;
  cfg.cache_capacity = 2;
  const auto result = replay_trace(t, p, cfg);
  EXPECT_LT(result.prefetch_accuracy(), 0.5);
}

}  // namespace
}  // namespace farmer
