// Tests for the MDS, OSD, and the DES cluster replay.
#include <gtest/gtest.h>

#include "prefetch/fpa.hpp"
#include "prefetch/nexus.hpp"
#include "storage/cluster.hpp"
#include "storage/osd.hpp"
#include "test_helpers.hpp"
#include "trace/generator.hpp"

namespace farmer {
namespace {

using testing::MicroTrace;

MdsConfig fast_mds() {
  MdsConfig cfg;
  cfg.cache_capacity = 8;
  cfg.cpu_time = 10;
  cfg.db_fetch_time = 1000;
  cfg.db_fetch_jitter = 0;
  cfg.seq_fetch_time = 100;
  return cfg;
}

// ------------------------------------------------------------------ MDS --

TEST(Mds, HitIsFasterThanMiss) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  mt.access(a);
  mt.access(a);
  Simulator sim;
  NoopPredictor noop;
  MdsServer mds(sim, fast_mds(), noop);
  mds.populate(4);
  std::vector<SimTime> rts;
  const auto& recs = mt.records();
  sim.schedule_at(0, [&] {
    mds.handle_demand(recs[0], [&](SimTime rt) { rts.push_back(rt); });
  });
  sim.schedule_at(5000, [&] {
    mds.handle_demand(recs[1], [&](SimTime rt) { rts.push_back(rt); });
  });
  sim.run();
  ASSERT_EQ(rts.size(), 2u);
  EXPECT_EQ(rts[0], 1000 + 10);  // miss: disk + cpu
  EXPECT_EQ(rts[1], 10);         // hit: cpu only
}

TEST(Mds, DuplicateMissesCoalesce) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  mt.access(a);
  mt.access(a);
  Simulator sim;
  NoopPredictor noop;
  MdsServer mds(sim, fast_mds(), noop);
  mds.populate(4);
  int responses = 0;
  const auto& recs = mt.records();
  sim.schedule_at(0, [&] {
    mds.handle_demand(recs[0], [&](SimTime) { ++responses; });
    mds.handle_demand(recs[1], [&](SimTime) { ++responses; });
  });
  sim.run();
  EXPECT_EQ(responses, 2);
  EXPECT_EQ(mds.duplicate_suppressed(), 1u);
  // Only one disk fetch happened.
  EXPECT_EQ(mds.disk().completed(), 1u);
}

TEST(Mds, PrefetchLandsInCache) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/h/u/g/a");
  const FileId b = mt.file("b", "/h/u/g/b");
  const FileId c = mt.file("c", "/h/u/g/c");
  // Teach FPA the cycle a->b->c. Capacity 1 means the successor is never
  // resident when predicted, so only a prefetch can produce the hit.
  for (int i = 0; i < 4; ++i) {
    mt.access(a);
    mt.access(b);
    mt.access(c);
  }
  FpaPredictor fpa(FarmerConfig{}, mt.dict());
  Simulator sim;
  auto cfg = fast_mds();
  cfg.cache_capacity = 1;
  MdsServer mds(sim, cfg, fpa);
  mds.populate(4);
  const auto& recs = mt.records();
  SimTime t = 0;
  for (const auto& r : recs) {
    sim.schedule_at(t, [&mds, &r] { mds.handle_demand(r, [](SimTime) {}); });
    t += 20000;
  }
  sim.run();
  EXPECT_GT(mds.prefetch_batches(), 0u);
  EXPECT_GT(mds.cache().stats().prefetch_used, 0u);
}

TEST(Mds, PopulateFillsTable) {
  Simulator sim;
  NoopPredictor noop;
  MdsServer mds(sim, fast_mds(), noop);
  mds.populate(100);
  EXPECT_EQ(mds.metadata_table().size(), 100u);
  EXPECT_TRUE(mds.metadata_table().get(99).has_value());
}

// -------------------------------------------------------------- cluster --

TEST(Cluster, EveryDemandGetsResponse) {
  const Trace t = make_paper_trace(TraceKind::kHP, 3, 0.01);
  NoopPredictor noop;
  ClusterConfig cfg;
  cfg.mds = fast_mds();
  cfg.mds.cache_capacity = 64;
  const auto metrics = run_cluster(t, noop, cfg);
  EXPECT_EQ(metrics.response.count(), t.records.size());
  EXPECT_GT(metrics.mean_response_ms(), 0.0);
}

TEST(Cluster, PrefetchingReducesLatencyOnPredictableLoad) {
  MicroTrace mt;
  // A six-file cycle against a two-entry cache: LRU always misses, while
  // accurate prefetching can stream the group ahead of the demands.
  std::vector<FileId> ring;
  for (int i = 0; i < 6; ++i)
    ring.push_back(
        mt.file("f" + std::to_string(i), "/h/u/g/f" + std::to_string(i)));
  for (int rep = 0; rep < 60; ++rep)
    for (const FileId f : ring) mt.access(f);
  Trace t = mt.build();
  ClusterConfig cfg;
  cfg.mds = fast_mds();
  cfg.mds.cache_capacity = 2;
  cfg.mds.prefetch_degree = 1;  // just-in-time successor; degree > capacity
                                // would evict its own prefetches
  cfg.time_scale = 5.0;  // leave disk idle time for prefetches to run

  NoopPredictor noop;
  const auto lru = run_cluster(t, noop, cfg);
  FpaPredictor fpa(FarmerConfig{}, mt.dict());
  const auto far = run_cluster(t, fpa, cfg);
  EXPECT_LT(far.response.mean(), lru.response.mean() * 0.8);
}

TEST(Cluster, TimeScaleCompressesSimulation) {
  const Trace t = make_paper_trace(TraceKind::kINS, 9, 0.01);
  NoopPredictor n1, n2;
  ClusterConfig slow;
  slow.mds = fast_mds();
  ClusterConfig fast = slow;
  fast.time_scale = 0.5;
  const auto m_slow = run_cluster(t, n1, slow);
  const auto m_fast = run_cluster(t, n2, fast);
  EXPECT_LT(m_fast.sim_duration, m_slow.sim_duration);
}

// ------------------------------------------------------------------ OSD --

TEST(Osd, AllocateAndFreeRoundTrip) {
  Osd osd(1000);
  auto e1 = osd.allocate(100);
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->start, 0u);
  auto e2 = osd.allocate(200);
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->start, 100u);
  EXPECT_EQ(osd.allocated(), 300u);
  osd.free_extent(*e1);
  EXPECT_EQ(osd.allocated(), 200u);
}

TEST(Osd, CoalescesAdjacentFreeExtents) {
  Osd osd(1000);
  auto a = osd.allocate(100);
  auto b = osd.allocate(100);
  auto c = osd.allocate(100);
  ASSERT_TRUE(a && b && c);
  osd.free_extent(*a);
  osd.free_extent(*c);
  // c coalesces with the tail free region -> fragments: [a], [c..end].
  EXPECT_EQ(osd.free_fragments(), 2u);
  osd.free_extent(*b);
  EXPECT_EQ(osd.free_fragments(), 1u);
  EXPECT_EQ(osd.largest_free(), 1000u);
}

TEST(Osd, AllocationFailsWhenFragmented) {
  Osd osd(100);
  auto a = osd.allocate(60);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(osd.allocate(50).has_value());
  osd.free_extent(*a);
  EXPECT_TRUE(osd.allocate(100).has_value());
}

TEST(Osd, SeekDistanceSymmetric) {
  EXPECT_EQ(Osd::seek_distance(10, 50), 40u);
  EXPECT_EQ(Osd::seek_distance(50, 10), 40u);
  EXPECT_EQ(Osd::seek_distance(7, 7), 0u);
}

TEST(Osd, ZeroBlockAllocation) {
  Osd osd(10);
  auto e = osd.allocate(0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->length, 0u);
  EXPECT_EQ(osd.allocated(), 0u);
}

}  // namespace
}  // namespace farmer
