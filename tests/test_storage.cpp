// Tests for the MDS, OSD, the DES cluster replay, and the message-passing
// shard tier (wire framing fuzz + transport fault injection).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/farmer.hpp"
#include "net/cluster_miner.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/shard_server.hpp"
#include "net/transport.hpp"
#include "prefetch/fpa.hpp"
#include "prefetch/nexus.hpp"
#include "storage/cluster.hpp"
#include "storage/osd.hpp"
#include "test_helpers.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

namespace farmer {
namespace {

using testing::MicroTrace;

MdsConfig fast_mds() {
  MdsConfig cfg;
  cfg.cache_capacity = 8;
  cfg.cpu_time = 10;
  cfg.db_fetch_time = 1000;
  cfg.db_fetch_jitter = 0;
  cfg.seq_fetch_time = 100;
  return cfg;
}

// ------------------------------------------------------------------ MDS --

TEST(Mds, HitIsFasterThanMiss) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  mt.access(a);
  mt.access(a);
  Simulator sim;
  NoopPredictor noop;
  MdsServer mds(sim, fast_mds(), noop);
  mds.populate(4);
  std::vector<SimTime> rts;
  const auto& recs = mt.records();
  sim.schedule_at(0, [&] {
    mds.handle_demand(recs[0], [&](SimTime rt) { rts.push_back(rt); });
  });
  sim.schedule_at(5000, [&] {
    mds.handle_demand(recs[1], [&](SimTime rt) { rts.push_back(rt); });
  });
  sim.run();
  ASSERT_EQ(rts.size(), 2u);
  EXPECT_EQ(rts[0], 1000 + 10);  // miss: disk + cpu
  EXPECT_EQ(rts[1], 10);         // hit: cpu only
}

TEST(Mds, DuplicateMissesCoalesce) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  mt.access(a);
  mt.access(a);
  Simulator sim;
  NoopPredictor noop;
  MdsServer mds(sim, fast_mds(), noop);
  mds.populate(4);
  int responses = 0;
  const auto& recs = mt.records();
  sim.schedule_at(0, [&] {
    mds.handle_demand(recs[0], [&](SimTime) { ++responses; });
    mds.handle_demand(recs[1], [&](SimTime) { ++responses; });
  });
  sim.run();
  EXPECT_EQ(responses, 2);
  EXPECT_EQ(mds.duplicate_suppressed(), 1u);
  // Only one disk fetch happened.
  EXPECT_EQ(mds.disk().completed(), 1u);
}

TEST(Mds, PrefetchLandsInCache) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/h/u/g/a");
  const FileId b = mt.file("b", "/h/u/g/b");
  const FileId c = mt.file("c", "/h/u/g/c");
  // Teach FPA the cycle a->b->c. Capacity 1 means the successor is never
  // resident when predicted, so only a prefetch can produce the hit.
  for (int i = 0; i < 4; ++i) {
    mt.access(a);
    mt.access(b);
    mt.access(c);
  }
  FpaPredictor fpa(FarmerConfig{}, mt.dict());
  Simulator sim;
  auto cfg = fast_mds();
  cfg.cache_capacity = 1;
  MdsServer mds(sim, cfg, fpa);
  mds.populate(4);
  const auto& recs = mt.records();
  SimTime t = 0;
  for (const auto& r : recs) {
    sim.schedule_at(t, [&mds, &r] { mds.handle_demand(r, [](SimTime) {}); });
    t += 20000;
  }
  sim.run();
  EXPECT_GT(mds.prefetch_batches(), 0u);
  EXPECT_GT(mds.cache().stats().prefetch_used, 0u);
}

TEST(Mds, PopulateFillsTable) {
  Simulator sim;
  NoopPredictor noop;
  MdsServer mds(sim, fast_mds(), noop);
  mds.populate(100);
  EXPECT_EQ(mds.metadata_table().size(), 100u);
  EXPECT_TRUE(mds.metadata_table().get(99).has_value());
}

// -------------------------------------------------------------- cluster --

TEST(Cluster, EveryDemandGetsResponse) {
  const Trace t = make_paper_trace(TraceKind::kHP, 3, 0.01);
  NoopPredictor noop;
  ClusterConfig cfg;
  cfg.mds = fast_mds();
  cfg.mds.cache_capacity = 64;
  const auto metrics = run_cluster(t, noop, cfg);
  EXPECT_EQ(metrics.response.count(), t.records.size());
  EXPECT_GT(metrics.mean_response_ms(), 0.0);
}

TEST(Cluster, PrefetchingReducesLatencyOnPredictableLoad) {
  MicroTrace mt;
  // A six-file cycle against a two-entry cache: LRU always misses, while
  // accurate prefetching can stream the group ahead of the demands.
  std::vector<FileId> ring;
  for (int i = 0; i < 6; ++i)
    ring.push_back(
        mt.file("f" + std::to_string(i), "/h/u/g/f" + std::to_string(i)));
  for (int rep = 0; rep < 60; ++rep)
    for (const FileId f : ring) mt.access(f);
  Trace t = mt.build();
  ClusterConfig cfg;
  cfg.mds = fast_mds();
  cfg.mds.cache_capacity = 2;
  cfg.mds.prefetch_degree = 1;  // just-in-time successor; degree > capacity
                                // would evict its own prefetches
  cfg.time_scale = 5.0;  // leave disk idle time for prefetches to run

  NoopPredictor noop;
  const auto lru = run_cluster(t, noop, cfg);
  FpaPredictor fpa(FarmerConfig{}, mt.dict());
  const auto far = run_cluster(t, fpa, cfg);
  EXPECT_LT(far.response.mean(), lru.response.mean() * 0.8);
}

TEST(Cluster, TimeScaleCompressesSimulation) {
  const Trace t = make_paper_trace(TraceKind::kINS, 9, 0.01);
  NoopPredictor n1, n2;
  ClusterConfig slow;
  slow.mds = fast_mds();
  ClusterConfig fast = slow;
  fast.time_scale = 0.5;
  const auto m_slow = run_cluster(t, n1, slow);
  const auto m_fast = run_cluster(t, n2, fast);
  EXPECT_LT(m_fast.sim_duration, m_slow.sim_duration);
}

// ------------------------------------------------------------------ OSD --

TEST(Osd, AllocateAndFreeRoundTrip) {
  Osd osd(1000);
  auto e1 = osd.allocate(100);
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->start, 0u);
  auto e2 = osd.allocate(200);
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->start, 100u);
  EXPECT_EQ(osd.allocated(), 300u);
  osd.free_extent(*e1);
  EXPECT_EQ(osd.allocated(), 200u);
}

TEST(Osd, CoalescesAdjacentFreeExtents) {
  Osd osd(1000);
  auto a = osd.allocate(100);
  auto b = osd.allocate(100);
  auto c = osd.allocate(100);
  ASSERT_TRUE(a && b && c);
  osd.free_extent(*a);
  osd.free_extent(*c);
  // c coalesces with the tail free region -> fragments: [a], [c..end].
  EXPECT_EQ(osd.free_fragments(), 2u);
  osd.free_extent(*b);
  EXPECT_EQ(osd.free_fragments(), 1u);
  EXPECT_EQ(osd.largest_free(), 1000u);
}

TEST(Osd, AllocationFailsWhenFragmented) {
  Osd osd(100);
  auto a = osd.allocate(60);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(osd.allocate(50).has_value());
  osd.free_extent(*a);
  EXPECT_TRUE(osd.allocate(100).has_value());
}

TEST(Osd, SeekDistanceSymmetric) {
  EXPECT_EQ(Osd::seek_distance(10, 50), 40u);
  EXPECT_EQ(Osd::seek_distance(50, 10), 40u);
  EXPECT_EQ(Osd::seek_distance(7, 7), 0u);
}

TEST(Osd, ZeroBlockAllocation) {
  Osd osd(10);
  auto e = osd.allocate(0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->length, 0u);
  EXPECT_EQ(osd.allocated(), 0u);
}

// ==================================================== wire-format fuzz ===
//
// The frame decoder's corruption contract: truncation at every prefix
// length and a byte flip at every offset of a valid frame must throw (or,
// for a streaming assembler, defer) cleanly — never crash, hang, or
// allocate based on an unvalidated length. The suite runs under the
// ASan/UBSan CI tier, so "cleanly" is sanitizer-checked.

using net::Frame;
using net::FrameAssembler;
using net::FrameKind;
using net::OpCode;

/// A representative valid frame with a non-trivial payload.
std::string valid_frame() {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  const FileId b = mt.file("b", "/p/b");
  mt.access(a);
  mt.access(b);
  mt.access(a, "u1", "pid1");
  return net::encode_frame(FrameKind::kRequest, OpCode::kObserveBatch, 42,
                           net::encode_observe_batch(mt.records()));
}

TEST(FrameCodec, RoundTrip) {
  const std::string payload = "hello shard";
  const std::string bytes =
      net::encode_frame(FrameKind::kResponse, OpCode::kStats, 7, payload);
  EXPECT_EQ(net::announced_frame_size(bytes), bytes.size());
  const Frame f = net::decode_frame(bytes);
  EXPECT_EQ(f.kind, FrameKind::kResponse);
  EXPECT_EQ(f.op, OpCode::kStats);
  EXPECT_EQ(f.request_id, 7u);
  EXPECT_EQ(f.payload, payload);
}

TEST(FrameCodec, TruncationAtEveryPrefixLengthThrows) {
  const std::string bytes = valid_frame();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)net::decode_frame(std::string_view(bytes.data(), len)),
                 std::runtime_error)
        << "prefix length " << len;
  }
  EXPECT_NO_THROW((void)net::decode_frame(bytes));
}

TEST(FrameCodec, ByteFlipAtEveryOffsetNeverCrashesOrOverAllocates) {
  const std::string bytes = valid_frame();
  for (const unsigned char flip : {0x01u, 0xFFu}) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
      try {
        const Frame f = net::decode_frame(corrupt);
        // A flip in the request id or payload body can still frame-decode;
        // the decoded payload is bounded by what was actually present.
        EXPECT_LE(f.payload.size(), bytes.size());
        // The payload decoder must then also be corruption-safe.
        try {
          const auto records = net::decode_observe_batch(f.payload);
          EXPECT_LE(records.size() * kTraceRecordBytes, f.payload.size());
        } catch (const std::runtime_error&) {
          // Bounded rejection is the expected outcome.
        }
      } catch (const std::runtime_error&) {
      } catch (const std::invalid_argument&) {
      }
    }
  }
}

TEST(FrameCodec, AnnouncedLengthIsBoundedBeforeAllocation) {
  // Craft a header announcing an absurd payload: the decoder must reject
  // it from the 20 header bytes alone, before allocating anything.
  std::string bytes = net::encode_frame(FrameKind::kRequest, OpCode::kFlush,
                                        1, std::string_view{});
  const std::uint32_t huge = 0xFFFFFFFF;
  bytes.replace(16, 4, reinterpret_cast<const char*>(&huge), 4);
  EXPECT_THROW((void)net::announced_frame_size(bytes), std::runtime_error);
  EXPECT_THROW((void)net::decode_frame(bytes), std::runtime_error);
  FrameAssembler asm_;
  EXPECT_THROW(asm_.feed(bytes), std::runtime_error);
}

TEST(FrameCodec, OversizedPayloadRejectedAtEncode) {
  EXPECT_THROW((void)net::encode_frame(
                   FrameKind::kRequest, OpCode::kObserveBatch, 1,
                   std::string(net::kMaxFramePayload + 1, 'x')),
               std::invalid_argument);
}

TEST(FrameAssembler, ReassemblesByteByByteDelivery) {
  const std::string bytes = valid_frame();
  FrameAssembler asm_;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    asm_.feed(std::string_view(bytes.data() + i, 1));
    if (auto f = asm_.poll()) {
      ++delivered;
      EXPECT_EQ(i, bytes.size() - 1);
      EXPECT_EQ(f->request_id, 42u);
    }
  }
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(asm_.buffered(), 0u);
}

TEST(FrameAssembler, PoisonsOnCorruptStreamAndStaysPoisoned) {
  std::string bytes = valid_frame();
  bytes[0] = static_cast<char>(bytes[0] ^ 0xFF);  // break the magic
  FrameAssembler asm_;
  EXPECT_THROW(asm_.feed(bytes), std::runtime_error);
  EXPECT_THROW((void)asm_.poll(), std::runtime_error);
  EXPECT_THROW(asm_.feed(valid_frame()), std::runtime_error);
}

// Every payload codec under the same regimen: truncation at every prefix
// length must throw, a byte flip at every offset must throw or produce a
// bounded value — never crash or over-allocate.
void fuzz_payload(const std::string& valid,
                  const std::function<void(std::string_view)>& decode) {
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_THROW(decode(std::string_view(valid.data(), len)),
                 std::runtime_error)
        << "prefix length " << len;
  }
  EXPECT_NO_THROW(decode(valid));
  for (const unsigned char flip : {0x01u, 0xFFu}) {
    for (std::size_t i = 0; i < valid.size(); ++i) {
      std::string corrupt = valid;
      corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
      try {
        decode(corrupt);
      } catch (const std::runtime_error&) {
        // Bounded rejection.
      }
    }
  }
}

TEST(ProtocolFuzz, EveryDecoderRejectsCorruptionCleanly) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  const FileId b = mt.file("b", "/p/b");
  mt.access(a);
  mt.access(b);

  fuzz_payload(net::encode_observe_batch(mt.records()),
               [](std::string_view p) {
                 const auto records = net::decode_observe_batch(p);
                 ASSERT_LE(records.size() * kTraceRecordBytes, p.size());
               });
  fuzz_payload(net::encode_file_query(a), [](std::string_view p) {
    (void)net::decode_file_query(p);
  });
  fuzz_payload(net::encode_pair_query(a, b), [](std::string_view p) {
    FileId x, y;
    net::decode_pair_query(p, x, y);
  });
  fuzz_payload(net::encode_u64(123456789), [](std::string_view p) {
    (void)net::decode_u64(p);
  });
  const std::vector<Correlator> list = {{b, 0.5f}, {a, 0.25f}};
  fuzz_payload(net::encode_correlators(list), [](std::string_view p) {
    const auto l = net::decode_correlators(p);
    ASSERT_LE(l.size() * 8, p.size());
  });
  net::PairQueryResult pr{0.5, 0.25, 3.0, 7};
  fuzz_payload(net::encode_pair_result(pr), [](std::string_view p) {
    (void)net::decode_pair_result(p);
  });
  net::ShardStatsResult sr{10, 20, 30, 40, 50};
  fuzz_payload(net::encode_stats_result(sr), [](std::string_view p) {
    (void)net::decode_stats_result(p);
  });
}

// A shard server fed a corrupt *payload* in a well-formed frame answers
// kError and keeps serving; corrupt *framing* severs the connection.
TEST(ProtocolFuzz, ShardServerSurvivesCorruptPayloads) {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  mt.access(a);
  auto [client, server_end] = net::make_loopback_pair();
  net::ShardServer server(FarmerConfig{}, mt.dict(), std::move(server_end),
                          net::ShardServer::Options{});

  // Truncated observe payload inside a valid frame -> kError response.
  std::string bad = net::encode_observe_batch(mt.records());
  bad.resize(bad.size() - 3);
  ASSERT_TRUE(client->send(
      net::encode_frame(FrameKind::kRequest, OpCode::kObserveBatch, 1, bad)));
  auto resp = client->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(resp.has_value());
  Frame f = net::decode_frame(*resp);
  EXPECT_EQ(f.op, OpCode::kError);
  EXPECT_EQ(f.request_id, 1u);

  // The server is still alive and serves the repaired request.
  ASSERT_TRUE(client->send(net::encode_frame(
      FrameKind::kRequest, OpCode::kObserveBatch, 2,
      net::encode_observe_batch(mt.records()))));
  resp = client->receive(std::chrono::milliseconds(2000));
  ASSERT_TRUE(resp.has_value());
  f = net::decode_frame(*resp);
  EXPECT_EQ(f.op, OpCode::kObserveBatch);
  EXPECT_EQ(net::decode_u64(f.payload), mt.records().size());

  // Corrupt framing (bad magic) is a protocol violation: the server
  // closes the connection rather than guessing at re-sync.
  std::string garbage = net::encode_frame(FrameKind::kRequest, OpCode::kFlush,
                                          3, std::string_view{});
  garbage[0] = static_cast<char>(garbage[0] ^ 0xFF);
  (void)client->send(garbage);
  for (int i = 0; i < 200 && !client->closed(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(client->closed());
}

// =================================================== fault injection =====
//
// The cluster backend's failure contract, pinned down with scripted
// transport faults: lost requests and responses are retried idempotently
// (never double-applied), duplicates and reorders are absorbed by request
// id matching, and unrecoverable failures surface as bounded-time
// std::runtime_error — never a hang.

struct ClusterRig {
  std::vector<net::FaultyTransport*> faults;  ///< borrowed, per shard
  std::vector<net::ShardServer*> servers;     ///< borrowed, per shard
  std::unique_ptr<net::ClusterMiner> miner;
};

ClusterRig make_faulty_cluster(const FarmerConfig& cfg,
                               std::shared_ptr<const TraceDictionary> dict,
                               std::size_t shards,
                               net::ClusterOptions copts) {
  ClusterRig rig;
  std::vector<std::unique_ptr<net::Transport>> transports;
  std::vector<std::unique_ptr<net::ShardServer>> servers;
  for (std::size_t s = 0; s < shards; ++s) {
    auto [client_end, server_end] = net::make_loopback_pair();
    auto server = std::make_unique<net::ShardServer>(
        cfg, dict, std::move(server_end), net::ShardServer::Options{});
    rig.servers.push_back(server.get());
    servers.push_back(std::move(server));
    auto faulty =
        std::make_unique<net::FaultyTransport>(std::move(client_end));
    rig.faults.push_back(faulty.get());
    transports.push_back(std::move(faulty));
  }
  rig.miner = std::make_unique<net::ClusterMiner>(
      cfg, std::move(dict), std::move(transports), copts,
      std::move(servers));
  return rig;
}

/// A micro trace whose records all hash to whatever shard; with one shard
/// everything lands on shard 0, which the single-shard fault tests rely on.
MicroTrace fault_trace() {
  MicroTrace mt;
  const FileId a = mt.file("a", "/p/a");
  const FileId b = mt.file("b", "/p/b");
  const FileId c = mt.file("c", "/p/c");
  for (int round = 0; round < 3; ++round) {
    mt.access(a);
    mt.access(b);
    mt.access(c);
    mt.access(a, "u1", "pid1");
    mt.access(c, "u1", "pid1");
  }
  return mt;
}

net::ClusterOptions fast_timeouts() {
  net::ClusterOptions copts;
  copts.request_timeout = std::chrono::milliseconds(150);
  copts.max_retries = 3;
  return copts;
}

/// The idempotency differential: after the scripted faults, the cluster
/// must hold exactly the reference model — same request count (nothing
/// double-applied), same correlator lists.
void expect_matches_reference(const net::ClusterMiner& miner,
                              const MicroTrace& mt) {
  Farmer reference(FarmerConfig{}, mt.dict());
  reference.observe_batch(mt.records());
  ASSERT_EQ(miner.stats().requests, reference.stats().requests);
  for (std::uint32_t f = 0; f < mt.dict()->files.size(); ++f) {
    const FileId id(f);
    EXPECT_EQ(miner.access_count(id), reference.access_count(id));
    const CorrelatorView got = miner.snapshot(id);
    const CorrelatorView want = reference.snapshot(id);
    ASSERT_EQ(got.size(), want.size()) << "file " << f;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].file, want[i].file);
      EXPECT_EQ(got[i].degree, want[i].degree);
    }
  }
}

TEST(FaultInjection, DroppedResponseRetriesIdempotently) {
  const MicroTrace mt = fault_trace();
  auto rig = make_faulty_cluster(FarmerConfig{}, mt.dict(), 1,
                                 fast_timeouts());
  // The server applies the batch but its ack evaporates: the client must
  // retry (same request id) and the server must re-ack WITHOUT re-applying.
  rig.faults[0]->drop_next_receives(1);
  rig.miner->observe_batch(mt.records());
  rig.miner->flush();
  expect_matches_reference(*rig.miner, mt);
}

TEST(FaultInjection, DroppedRequestRetriesIdempotently) {
  const MicroTrace mt = fault_trace();
  auto rig = make_faulty_cluster(FarmerConfig{}, mt.dict(), 1,
                                 fast_timeouts());
  // The request itself vanishes on the wire: the retry is the first copy
  // the server sees, and exactly one application results.
  rig.faults[0]->drop_next_sends(1);
  rig.miner->observe_batch(mt.records());
  rig.miner->flush();
  expect_matches_reference(*rig.miner, mt);
}

TEST(FaultInjection, DuplicatedResponsesAreIgnored) {
  const MicroTrace mt = fault_trace();
  auto rig = make_faulty_cluster(FarmerConfig{}, mt.dict(), 1,
                                 fast_timeouts());
  rig.faults[0]->duplicate_next_receive();
  rig.miner->observe_batch(mt.records());
  rig.miner->flush();
  // The duplicated ack arrives with an already-retired request id and is
  // dropped; queries still answer correctly through the same channel.
  expect_matches_reference(*rig.miner, mt);
}

TEST(FaultInjection, ReorderedResponsesMatchById) {
  const MicroTrace mt = fault_trace();
  auto rig = make_faulty_cluster(FarmerConfig{}, mt.dict(), 1,
                                 fast_timeouts());
  // Pipeline several observes, then swap two acks: matching is by request
  // id, not arrival order, so the barrier still retires everything.
  rig.faults[0]->reorder_next_receives();
  const std::span<const TraceRecord> records(mt.records());
  for (std::size_t i = 0; i < records.size(); i += 2)
    rig.miner->observe_batch(
        records.subspan(i, std::min<std::size_t>(2, records.size() - i)));
  rig.miner->flush();
  expect_matches_reference(*rig.miner, mt);
}

TEST(FaultInjection, DelayedResponseWithinBudgetSucceeds) {
  const MicroTrace mt = fault_trace();
  net::ClusterOptions copts;
  copts.request_timeout = std::chrono::milliseconds(2000);
  copts.max_retries = 0;
  auto rig = make_faulty_cluster(FarmerConfig{}, mt.dict(), 1, copts);
  rig.faults[0]->delay_next_receives(1, std::chrono::milliseconds(50));
  rig.miner->observe_batch(mt.records());
  rig.miner->flush();
  expect_matches_reference(*rig.miner, mt);
}

TEST(FaultInjection, PersistentLossFailsInBoundedTime) {
  const MicroTrace mt = fault_trace();
  net::ClusterOptions copts;
  copts.request_timeout = std::chrono::milliseconds(40);
  copts.max_retries = 2;
  auto rig = make_faulty_cluster(FarmerConfig{}, mt.dict(), 1, copts);
  // Eat every response the query's attempts could produce: the client must
  // give up with an error after (1 + retries) timeouts — not hang.
  rig.faults[0]->drop_next_receives(16);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)rig.miner->access_count(FileId(0)),
               std::runtime_error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // 3 attempts x 40 ms plus generous scheduling slack — the bound matters,
  // not the constant.
  EXPECT_LT(elapsed, std::chrono::milliseconds(5000));
}

TEST(FaultInjection, KilledShardServerSurfacesError) {
  const MicroTrace mt = fault_trace();
  auto rig = make_faulty_cluster(FarmerConfig{}, mt.dict(), 1,
                                 fast_timeouts());
  rig.miner->observe_batch(mt.records());
  rig.miner->flush();
  // Kill the shard server mid-conversation: the transport severs, and
  // every subsequent operation fails fast instead of hanging.
  rig.servers[0]->stop();
  EXPECT_THROW((void)rig.miner->access_count(FileId(0)),
               std::runtime_error);
  EXPECT_THROW(rig.miner->observe_batch(mt.records()), std::runtime_error);
}

TEST(FaultInjection, SeveredMidPipelineFailsTheBarrier) {
  const MicroTrace mt = fault_trace();
  auto rig = make_faulty_cluster(FarmerConfig{}, mt.dict(), 1,
                                 fast_timeouts());
  rig.miner->observe_batch(mt.records());
  rig.faults[0]->sever();
  // The flush barrier cannot confirm the outstanding acks on a severed
  // connection: bounded-time error, not silent data loss.
  EXPECT_THROW(rig.miner->flush(), std::runtime_error);
}

TEST(FaultInjection, CompoundFaultPlanStillConverges) {
  const MicroTrace mt = fault_trace();
  auto rig = make_faulty_cluster(FarmerConfig{}, mt.dict(), 1,
                                 fast_timeouts());
  // Drop + duplicate + reorder + delay on one conversation: the request-id
  // protocol absorbs all of it and the model still matches the reference.
  rig.faults[0]->drop_next_receives(1);
  rig.faults[0]->duplicate_next_receive();
  rig.faults[0]->reorder_next_receives();
  rig.faults[0]->delay_next_receives(1, std::chrono::milliseconds(20));
  const std::span<const TraceRecord> records(mt.records());
  for (std::size_t i = 0; i < records.size(); i += 3)
    rig.miner->observe_batch(
        records.subspan(i, std::min<std::size_t>(3, records.size() - i)));
  rig.miner->flush();
  expect_matches_reference(*rig.miner, mt);
}

}  // namespace
}  // namespace farmer
