// Tests for the trace substrate: synthetic generators, profiles, and I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <iterator>
#include <set>
#include <sstream>
#include <vector>

#include "trace/generator.hpp"
#include "trace/trace_io.hpp"

namespace farmer {
namespace {

WorkloadProfile tiny_hp() {
  auto p = WorkloadProfile::hp().scaled(0.02);
  return p;
}

TEST(Generator, DeterministicForSeed) {
  const Trace a = generate_trace(tiny_hp(), 42);
  const Trace b = generate_trace(tiny_hp(), 42);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].timestamp, b.records[i].timestamp) << i;
    EXPECT_EQ(a.records[i].file, b.records[i].file) << i;
    EXPECT_EQ(a.records[i].process, b.records[i].process) << i;
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Trace a = generate_trace(tiny_hp(), 1);
  const Trace b = generate_trace(tiny_hp(), 2);
  bool any_diff = a.records.size() != b.records.size();
  for (std::size_t i = 0; !any_diff && i < a.records.size(); ++i)
    any_diff = a.records[i].file != b.records[i].file;
  EXPECT_TRUE(any_diff);
}

TEST(Generator, TimestampsNonDecreasing) {
  const Trace t = generate_trace(tiny_hp(), 7);
  for (std::size_t i = 1; i < t.records.size(); ++i)
    EXPECT_LE(t.records[i - 1].timestamp, t.records[i].timestamp) << i;
}

TEST(Generator, RecordsReferenceValidFiles) {
  const Trace t = generate_trace(tiny_hp(), 7);
  ASSERT_GT(t.records.size(), 0u);
  for (const auto& r : t.records) {
    ASSERT_TRUE(r.file.valid());
    ASSERT_LT(r.file.value(), t.dict->files.size());
    EXPECT_TRUE(r.user_token.valid());
    EXPECT_TRUE(r.process_token.valid());
    EXPECT_TRUE(r.host_token.valid());
    EXPECT_TRUE(r.dev_token.valid());
    EXPECT_TRUE(r.fid_token.valid());
  }
}

TEST(Generator, HpHasPaths) {
  const Trace t = generate_trace(tiny_hp(), 7);
  EXPECT_TRUE(t.has_paths);
  std::size_t with_path = 0;
  for (const auto& r : t.records)
    if (r.path.valid()) ++with_path;
  EXPECT_EQ(with_path, t.records.size());
}

TEST(Generator, InsAndResLackPaths) {
  for (auto kind : {TraceKind::kINS, TraceKind::kRES}) {
    const Trace t = make_paper_trace(kind, 5, 0.02);
    EXPECT_FALSE(t.has_paths);
    for (const auto& r : t.records) EXPECT_FALSE(r.path.valid());
  }
}

TEST(Generator, LlnlJobModeProducesJobsAndManyFiles) {
  auto p = WorkloadProfile::llnl().scaled(0.05);
  const Trace t = generate_trace(p, 11);
  ASSERT_GT(t.records.size(), 0u);
  std::set<std::uint32_t> jobs;
  for (const auto& r : t.records)
    if (r.job.valid()) jobs.insert(r.job.value());
  EXPECT_GT(jobs.size(), 1u);
  // Per-rank checkpoint files dominate the namespace.
  EXPECT_GT(t.file_count(), p.jobs * p.ranks_per_job);
}

TEST(Generator, GroundTruthGroupsPopulated) {
  const Trace t = generate_trace(tiny_hp(), 7);
  std::size_t grouped = 0;
  for (const auto& f : t.dict->files)
    if (f.group != kNoGroup) ++grouped;
  EXPECT_GT(grouped, 0u);
}

TEST(Generator, FileSizesWithinClamp) {
  const Trace t = generate_trace(tiny_hp(), 7);
  for (const auto& f : t.dict->files) {
    EXPECT_GE(f.size_bytes, 512u);
    EXPECT_LE(f.size_bytes, 64u * 1024 * 1024);
  }
}

TEST(Generator, ScaledProfileShrinksVolume) {
  const Trace big = generate_trace(WorkloadProfile::hp().scaled(0.05), 3);
  const Trace small = generate_trace(WorkloadProfile::hp().scaled(0.01), 3);
  EXPECT_GT(big.records.size(), small.records.size());
  EXPECT_GT(big.file_count(), small.file_count());
}

TEST(Generator, InterleavingPresent) {
  // Concurrency must interleave sessions: somewhere two adjacent records
  // come from different processes.
  const Trace t = generate_trace(tiny_hp(), 7);
  bool interleaved = false;
  for (std::size_t i = 1; i < t.records.size() && !interleaved; ++i)
    interleaved = t.records[i].process != t.records[i - 1].process;
  EXPECT_TRUE(interleaved);
}

TEST(Generator, PaperTraceFactoryCoversAllKinds) {
  for (auto kind :
       {TraceKind::kLLNL, TraceKind::kINS, TraceKind::kRES, TraceKind::kHP}) {
    const Trace t = make_paper_trace(kind, 1, 0.02);
    EXPECT_EQ(t.kind, kind);
    EXPECT_GT(t.records.size(), 0u) << trace_kind_name(kind);
  }
}

TEST(TraceKindName, AllNamed) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kLLNL), "LLNL");
  EXPECT_STREQ(trace_kind_name(TraceKind::kINS), "INS");
  EXPECT_STREQ(trace_kind_name(TraceKind::kRES), "RES");
  EXPECT_STREQ(trace_kind_name(TraceKind::kHP), "HP");
}

TEST(Dictionary, PathStringRebuilds) {
  TraceDictionary d;
  SmallVector<TokenId, 8> comps;
  comps.push_back(d.tokens.intern("home"));
  comps.push_back(d.tokens.intern("user1"));
  const PathId p = d.add_path(std::move(comps));
  EXPECT_EQ(d.path_string(p), "/home/user1");
  EXPECT_EQ(d.path_string(PathId()), "");
}

// ------------------------------------------------------------ trace I/O --

class TraceIoTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "farmer_trace_test.bin";
};

TEST_F(TraceIoTest, BinaryRoundTrip) {
  const Trace t = generate_trace(tiny_hp(), 99);
  write_trace_binary(t, path_);
  const Trace u = read_trace_binary(path_);
  EXPECT_EQ(u.name, t.name);
  EXPECT_EQ(u.kind, t.kind);
  EXPECT_EQ(u.has_paths, t.has_paths);
  ASSERT_EQ(u.records.size(), t.records.size());
  ASSERT_EQ(u.file_count(), t.file_count());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(u.records[i].timestamp, t.records[i].timestamp);
    EXPECT_EQ(u.records[i].file, t.records[i].file);
    EXPECT_EQ(u.records[i].user_token, t.records[i].user_token);
  }
  // Dictionary strings survive.
  for (std::size_t i = 0; i < t.dict->tokens.size(); ++i)
    EXPECT_EQ(u.dict->tokens.resolve(TokenId(static_cast<std::uint32_t>(i))),
              t.dict->tokens.resolve(TokenId(static_cast<std::uint32_t>(i))));
}

TEST_F(TraceIoTest, RejectsGarbage) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)read_trace_binary(path_), std::runtime_error);
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_binary("/nonexistent/dir/t.bin"),
               std::runtime_error);
}

TEST(TraceTsv, WritesHeaderAndRows) {
  const Trace t = generate_trace(tiny_hp(), 1);
  std::ostringstream os;
  write_trace_tsv(t, os, 5);
  const std::string out = os.str();
  EXPECT_NE(out.find("timestamp_us"), std::string::npos);
  // 1 header + 5 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

// ----------------------------------------------------- multi-tenant merge --

constexpr TraceKind kTwoTenants[] = {TraceKind::kHP, TraceKind::kINS};

MultiTenantTrace tiny_multi_tenant() {
  return make_multi_tenant_trace(kTwoTenants, 42, 0.02);
}

TEST(MultiTenantTrace_, ContiguousFileRangesCoverTheDictionary) {
  const MultiTenantTrace mt = tiny_multi_tenant();
  ASSERT_EQ(mt.tenant_count(), 2u);
  ASSERT_EQ(mt.file_begin.size(), 3u);
  EXPECT_EQ(mt.file_begin.front(), 0u);
  EXPECT_EQ(mt.file_begin.back(), mt.trace.file_count());
  EXPECT_LT(mt.file_begin[0], mt.file_begin[1]);
  EXPECT_LT(mt.file_begin[1], mt.file_begin[2]);
  // tenant_of agrees with the ranges at both sides of the boundary.
  EXPECT_EQ(mt.tenant_of(FileId(0)), 0u);
  EXPECT_EQ(mt.tenant_of(FileId(mt.file_begin[1] - 1)), 0u);
  EXPECT_EQ(mt.tenant_of(FileId(mt.file_begin[1])), 1u);
  EXPECT_EQ(
      mt.tenant_of(FileId(static_cast<std::uint32_t>(
          mt.trace.file_count() - 1))),
      1u);
}

TEST(MultiTenantTrace_, RecordsInterleaveButStayInTenantRanges) {
  const MultiTenantTrace mt = tiny_multi_tenant();
  ASSERT_GT(mt.trace.records.size(), 0u);
  std::set<std::uint32_t> tenants_seen;
  for (std::size_t i = 0; i < mt.trace.records.size(); ++i) {
    const auto& r = mt.trace.records[i];
    ASSERT_LT(r.file.value(), mt.trace.file_count()) << i;
    tenants_seen.insert(mt.tenant_of(r.file));
    if (i > 0) {
      EXPECT_LE(mt.trace.records[i - 1].timestamp, r.timestamp)
          << "not time-sorted at " << i;
    }
  }
  EXPECT_EQ(tenants_seen.size(), 2u) << "one tenant produced no records";
}

// Tenants must share nothing: users, processes, ground-truth groups and
// every interned token are disjoint, so any cross-tenant correlation a
// miner later reports is a mining artifact by construction.
TEST(MultiTenantTrace_, TenantIdentitySpacesAreDisjoint) {
  const MultiTenantTrace mt = tiny_multi_tenant();
  std::array<std::set<std::uint32_t>, 2> users, procs, toks;
  std::array<std::set<std::uint32_t>, 2> groups;
  for (const auto& r : mt.trace.records) {
    const std::uint32_t t = mt.tenant_of(r.file);
    users[t].insert(r.user.value());
    procs[t].insert(r.process.value());
    toks[t].insert(r.user_token.value());
    toks[t].insert(r.process_token.value());
    toks[t].insert(r.host_token.value());
    toks[t].insert(r.dev_token.value());
    toks[t].insert(r.fid_token.value());
    toks[t].insert(r.program_token.value());
  }
  for (std::uint32_t f = 0; f < mt.trace.file_count(); ++f) {
    const FileMeta& m = mt.trace.dict->files[f];
    if (m.group != kNoGroup) groups[mt.tenant_of(FileId(f))].insert(m.group);
  }
  const auto disjoint = [](const std::set<std::uint32_t>& a,
                           const std::set<std::uint32_t>& b) {
    std::vector<std::uint32_t> common;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(common));
    return common.empty();
  };
  EXPECT_TRUE(disjoint(users[0], users[1]));
  EXPECT_TRUE(disjoint(procs[0], procs[1]));
  EXPECT_TRUE(disjoint(toks[0], toks[1]));
  EXPECT_TRUE(disjoint(groups[0], groups[1]));
}

TEST(MultiTenantTrace_, DeterministicForSeed) {
  const MultiTenantTrace a = tiny_multi_tenant();
  const MultiTenantTrace b = tiny_multi_tenant();
  ASSERT_EQ(a.trace.records.size(), b.trace.records.size());
  ASSERT_EQ(a.file_begin, b.file_begin);
  for (std::size_t i = 0; i < a.trace.records.size(); ++i) {
    EXPECT_EQ(a.trace.records[i].file, b.trace.records[i].file) << i;
    EXPECT_EQ(a.trace.records[i].timestamp, b.trace.records[i].timestamp)
        << i;
    EXPECT_EQ(a.trace.records[i].process, b.trace.records[i].process) << i;
  }
}

TEST(MultiTenantTrace_, HasPathsIsTheConjunction) {
  // HP has paths, INS does not: the merged stream must not claim paths.
  const MultiTenantTrace mixed = tiny_multi_tenant();
  EXPECT_FALSE(mixed.trace.has_paths);
  constexpr TraceKind kBothHp[] = {TraceKind::kHP, TraceKind::kHP};
  const MultiTenantTrace hp_only = make_multi_tenant_trace(kBothHp, 42, 0.02);
  EXPECT_TRUE(hp_only.trace.has_paths);
}

}  // namespace
}  // namespace farmer
